/**
 * @file
 * Command-line parser tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/args.hh"
#include "util/logging.hh"

namespace {

using ganacc::util::ArgParser;
using ganacc::util::FatalError;

ArgParser
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ArgParser(int(argv.size()), argv.data());
}

TEST(Args, DefaultsWhenAbsent)
{
    ArgParser p = parse({});
    EXPECT_EQ(p.getInt("pes", 1680, "PE count"), 1680);
    EXPECT_DOUBLE_EQ(p.getDouble("gbps", 192.0, "bandwidth"), 192.0);
    EXPECT_EQ(p.getString("model", "dcgan", "network"), "dcgan");
    EXPECT_FALSE(p.getFlag("verbose", "chatty output"));
    EXPECT_NO_THROW(p.finish());
}

TEST(Args, SpaceAndEqualsForms)
{
    ArgParser p = parse({"--pes", "512", "--gbps=96.5", "--verbose"});
    EXPECT_EQ(p.getInt("pes", 1680, "h"), 512);
    EXPECT_DOUBLE_EQ(p.getDouble("gbps", 192.0, "h"), 96.5);
    EXPECT_TRUE(p.getFlag("verbose", "h"));
    EXPECT_NO_THROW(p.finish());
}

TEST(Args, StringValues)
{
    ArgParser p = parse({"--model", "cgan"});
    EXPECT_EQ(p.getString("model", "dcgan", "h"), "cgan");
}

TEST(Args, BadIntegerRejected)
{
    ArgParser p = parse({"--pes", "abc"});
    EXPECT_THROW(p.getInt("pes", 0, "h"), FatalError);
}

TEST(Args, UnknownFlagRejectedByFinish)
{
    ArgParser p = parse({"--tyop", "5"});
    p.getInt("typo", 1, "the real flag");
    EXPECT_THROW(p.finish(), FatalError);
}

TEST(Args, PositionalArgumentsRejected)
{
    EXPECT_THROW(parse({"positional"}), FatalError);
}

TEST(Args, HelpDetectedAndUsagePrints)
{
    ArgParser p = parse({"--help"});
    EXPECT_TRUE(p.helpRequested());
    p.getInt("pes", 1680, "PE count");
    std::ostringstream os;
    p.usage(os);
    EXPECT_NE(os.str().find("--pes"), std::string::npos);
    EXPECT_NE(os.str().find("PE count"), std::string::npos);
    EXPECT_NO_THROW(p.finish()); // --help is always known
}

TEST(Args, NegativeNumbersParse)
{
    ArgParser p = parse({"--shift=-3"});
    EXPECT_EQ(p.getInt("shift", 0, "h"), -3);
}

TEST(Args, OutOfRangeIntegerRejected)
{
    // strtol saturates with ERANGE instead of failing; before the
    // range check these silently truncated through int(v).
    ArgParser p = parse({"--pes=9999999999999999999"});
    EXPECT_THROW(p.getInt("pes", 0, "h"), FatalError);
    ArgParser q = parse({"--pes=-9999999999999999999"});
    EXPECT_THROW(q.getInt("pes", 0, "h"), FatalError);
}

TEST(Args, IntegerBeyondIntButWithinLongRejected)
{
    // Fits in a 64-bit long, so errno stays clear — the INT_MIN/MAX
    // clamp must catch the narrowing on its own.
    ArgParser p = parse({"--pes=2147483648"});
    EXPECT_THROW(p.getInt("pes", 0, "h"), FatalError);
    ArgParser q = parse({"--pes=-2147483649"});
    EXPECT_THROW(q.getInt("pes", 0, "h"), FatalError);
}

TEST(Args, IntegerLimitsAccepted)
{
    ArgParser p = parse({"--hi=2147483647", "--lo=-2147483648"});
    EXPECT_EQ(p.getInt("hi", 0, "h"), 2147483647);
    EXPECT_EQ(p.getInt("lo", 0, "h"), -2147483647 - 1);
}

TEST(Args, OverflowingDoubleRejected)
{
    ArgParser p = parse({"--gbps=1e999"});
    EXPECT_THROW(p.getDouble("gbps", 0.0, "h"), FatalError);
    ArgParser q = parse({"--gbps=-1e999"});
    EXPECT_THROW(q.getDouble("gbps", 0.0, "h"), FatalError);
}

TEST(Args, UnderflowingDoubleAccepted)
{
    // Denormal/zero underflow also sets ERANGE but is a usable value.
    ArgParser p = parse({"--gbps=1e-999"});
    EXPECT_DOUBLE_EQ(p.getDouble("gbps", 1.0, "h"), 0.0);
}

} // namespace
