/**
 * @file
 * Fault-campaign description.
 *
 * A FaultPlan is the single input of the fault-injection subsystem: it
 * names which physical fault mechanisms are active and with what
 * parameters, plus the seed every stochastic choice derives from. The
 * same plan driven through different architectures is the resilience
 * comparison of EXPERIMENTS.md — all randomness is keyed off
 * (seed, job index, lattice site), never off visit order or thread
 * scheduling, so a campaign is bit-reproducible under any GANACC_JOBS.
 *
 * Plans come from tool flags or from a small JSON file:
 *
 *   {
 *     "seed": 7,
 *     "pe": [ {"lane": 3, "kind": "stuck0"},
 *             {"lane": 9, "kind": "stuck", "value": 0.5} ],
 *     "transient": {"sitesPerJob": 256, "bits": 1},
 *     "memory": {"flipProbPerAccess": 1e-7, "bits": 1},
 *     "saturation": {"fracBits": 12}
 *   }
 *
 * Every section is optional; an empty plan injects nothing and leaves
 * the simulators bit-identical to their pre-fault behaviour.
 */

#ifndef GANACC_FAULT_FAULT_PLAN_HH
#define GANACC_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ganacc {
namespace fault {

/** A permanent fault on one physical PE lane's multiplier. */
struct PeFault
{
    enum class Kind
    {
        StuckAtZero,  ///< multiplier output wired to 0
        StuckAtValue, ///< multiplier output wired to `value`
    };

    int lane = 0;
    Kind kind = Kind::StuckAtZero;
    float value = 0.0f; ///< forced product for StuckAtValue
};

/** Transient MAC-path upsets, armed on the dense MAC lattice. */
struct TransientSpec
{
    /** Dense-lattice sites armed per job (0 disables). A site only
     *  *fires* when the dataflow physically schedules its multiply;
     *  armed-but-never-issued sites are masked. */
    int sitesPerJob = 0;
    int bits = 1; ///< Fixed16 bits flipped per fired site
};

/** Storage bit flips on Fixed16 words, per buffer/DRAM access. */
struct MemorySpec
{
    double flipProbPerAccess = 0.0; ///< per 16-bit word access
    int bits = 1;                   ///< bits flipped per corrupted word
};

/** Forced writeback-format narrowing (saturation stress). */
struct SaturationSpec
{
    int fracBits = -1; ///< Q(15-fracBits).fracBits writeback; -1 off
};

/** Everything one campaign injects. */
struct FaultPlan
{
    std::uint64_t seed = 0x5eedULL;
    std::vector<PeFault> peFaults;
    TransientSpec transient;
    MemorySpec memory;
    SaturationSpec saturation;

    /** True when the plan injects nothing at all. */
    bool empty() const;

    /** One-line human-readable summary. */
    std::string describe() const;

    /** Parse the JSON schema above; throws util::FatalError with the
     *  offending position on malformed input. */
    static FaultPlan parse(const std::string &json);

    /** parse() over a file's contents. */
    static FaultPlan fromFile(const std::string &path);
};

/**
 * SplitMix64 finalizer: the one hash every fault-site decision goes
 * through. Statelessly mixing (seed, index) keys is what makes the
 * subsystem order- and thread-independent.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace fault
} // namespace ganacc

#endif // GANACC_FAULT_FAULT_PLAN_HH
