/**
 * @file
 * WST cycle-level model.
 */

#include "sim/wst.hh"

#include <algorithm>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Tensor;

RunStats
Wst::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
           Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    ScheduleRecorder *const rec = schedRec();
    RunStats st;

    const int ktiles_y = (spec.kh + unroll_.pKy - 1) / unroll_.pKy;
    const int ktiles_x = (spec.kw + unroll_.pKx - 1) / unroll_.pKx;

    // Partial sums accumulate in the zero-initialized output buffer
    // across every pass: one job-wide write-through window.
    if (rec)
        rec->onWindowBegin(std::uint64_t(spec.nof) * spec.oh * spec.ow *
                               (spec.fourDimOutput ? spec.nif : 1),
                           WindowKind::WriteThrough);

    for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
        const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
        for (int kty = 0; kty < ktiles_y; ++kty) {
            const int ky0 = kty * unroll_.pKy;
            const int ky_cnt = std::min(unroll_.pKy, spec.kh - ky0);
            for (int ktx = 0; ktx < ktiles_x; ++ktx) {
                const int kx0 = ktx * unroll_.pKx;
                const int kx_cnt = std::min(unroll_.pKx, spec.kw - kx0);
                // Load the resident weight tile once per pass.
                st.weightLoads +=
                    std::uint64_t(ky_cnt) * kx_cnt * of_cnt;
                if (rec)
                    rec->onPort(SchedPort::Weight,
                                std::uint64_t(ky_cnt) * kx_cnt * of_cnt);

                for (int c = 0; c < spec.nif; ++c) {
                    for (int iy = 0; iy < spec.ih; ++iy) {
                        for (int ix = 0; ix < spec.iw; ++ix) {
                            // ---- one cycle: broadcast in(c,iy,ix) ----
                            st.cycles += 1;
                            st.inputLoads += 1;
                            if (rec) {
                                rec->onCycle();
                                rec->onPort(SchedPort::Input, 1);
                            }
                            const bool in_zero =
                                spec.inputIsZero(iy, ix);
                            int eff = 0, ineff = 0, contrib = 0;
                            for (int ky = ky0; ky < ky0 + ky_cnt; ++ky) {
                                int ny = iy - ky + spec.pad;
                                if (ny < 0 || ny % spec.stride != 0)
                                    continue;
                                int oy = ny / spec.stride;
                                if (oy >= spec.oh)
                                    continue;
                                for (int kx = kx0; kx < kx0 + kx_cnt;
                                     ++kx) {
                                    int nx = ix - kx + spec.pad;
                                    if (nx < 0 ||
                                        nx % spec.stride != 0)
                                        continue;
                                    int ox = nx / spec.stride;
                                    if (ox >= spec.ow)
                                        continue;
                                    ++contrib;
                                    if (rec) {
                                        rec->onLanes(
                                            ((ky - ky0) * unroll_.pKx +
                                             (kx - kx0)) *
                                                unroll_.pOf,
                                            of_cnt);
                                        const std::uint64_t cell =
                                            schedCellIndex(spec, of0, c,
                                                           oy, ox);
                                        rec->onCellRead(
                                            cell, std::uint64_t(of_cnt));
                                        rec->onCellWrite(
                                            cell, std::uint64_t(of_cnt));
                                    }
                                    bool useful =
                                        !in_zero &&
                                        !spec.kernelIsZero(ky, kx);
                                    if (useful)
                                        ++eff;
                                    else
                                        ++ineff;
                                    // Zero-operand slots still occupy
                                    // the multipliers, so visit them
                                    // for the fault hook on request.
                                    if (functional &&
                                        (useful ||
                                         faultVisitsIneffectual())) {
                                        float v = in->get(0, c, iy, ix);
                                        for (int f = 0; f < of_cnt;
                                             ++f) {
                                            int of = of0 + f;
                                            int wc =
                                                spec.fourDimOutput ? 0
                                                                   : c;
                                            float ww = w->get(of, wc,
                                                              ky, kx);
                                            const MacContext ctx{
                                                ((ky - ky0) *
                                                     unroll_.pKx +
                                                 (kx - kx0)) *
                                                        unroll_.pOf +
                                                    f,
                                                of, c, oy, ox, ky, kx};
                                            float p =
                                                macProduct(v, ww, ctx);
                                            if (spec.fourDimOutput)
                                                out->ref(of, c, oy,
                                                         ox) += p;
                                            else
                                                out->ref(0, of, oy,
                                                         ox) += p;
                                        }
                                    }
                                }
                            }
                            st.effectiveMacs +=
                                std::uint64_t(eff) * of_cnt;
                            st.ineffectualMacs +=
                                std::uint64_t(ineff) * of_cnt;
                            st.idlePeSlots +=
                                std::uint64_t(n_pes) -
                                std::uint64_t(eff + ineff) * of_cnt;
                            // Every contribution is a read-modify-write
                            // of a different partial sum.
                            st.outputReads +=
                                std::uint64_t(contrib) * of_cnt;
                            st.outputWrites +=
                                std::uint64_t(contrib) * of_cnt;
                            if (rec) {
                                rec->onPort(SchedPort::OutputRead,
                                            std::uint64_t(contrib) *
                                                of_cnt);
                                rec->onPort(SchedPort::OutputWrite,
                                            std::uint64_t(contrib) *
                                                of_cnt);
                            }
                        }
                    }
                }
            }
        }
    }
    if (rec)
        rec->onWindowEnd();
    return st;
}

bool
Wst::fastStats(const ConvSpec &spec, RunStats &st) const
{
    st = wstClosedForm(unroll_, spec);
    return true;
}

} // namespace sim
} // namespace ganacc
