/**
 * @file
 * Conditional trainer implementation.
 */

#include "gan/conditional.hh"

#include "gan/trainer.hh"
#include "nn/loss.hh"
#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Tensor;

ConditionalTrainer::ConditionalTrainer(const GanModel &model,
                                       std::uint64_t seed,
                                       float recon_weight, float clip)
    : model_(model), reconWeight_(recon_weight), clip_(clip)
{
    GANACC_ASSERT(recon_weight >= 0.0f, "negative recon weight");
    util::Rng rng(seed);
    gen_ = std::make_unique<Network>(model_.gen, rng);
    disc_ = std::make_unique<Network>(model_.disc, rng);
}

Tensor
ConditionalTrainer::inpaint(const Tensor &conditions)
{
    return gen_->forward(conditions);
}

double
ConditionalTrainer::discriminatorStep(const Tensor &real,
                                      const Tensor &conditions,
                                      nn::Optimizer &opt)
{
    const int m = real.shape().d0;
    GANACC_ASSERT(conditions.shape().d0 == m,
                  "conditions/real batch mismatch");
    std::vector<double> real_scores, fake_scores;
    for (int i = 0; i < m; ++i) {
        Tensor real_i = extractSample(real, i);
        Tensor out_r = disc_->forward(real_i);
        real_scores.push_back(Network::scores(out_r)[0]);
        disc_->backward(
            Tensor(out_r.shape(), float(nn::criticOutputErrorReal(m))));

        Tensor cond_i = extractSample(conditions, i);
        Tensor fake_i = gen_->forward(cond_i);
        Tensor out_f = disc_->forward(fake_i);
        fake_scores.push_back(Network::scores(out_f)[0]);
        disc_->backward(
            Tensor(out_f.shape(), float(nn::criticOutputErrorFake(m))));
    }
    disc_->applyUpdates(opt);
    if (clip_ > 0.0f)
        disc_->clipWeights(clip_);
    return nn::wassersteinCriticLoss(real_scores, fake_scores);
}

ConditionalLosses
ConditionalTrainer::generatorStep(const Tensor &real,
                                  const Tensor &conditions,
                                  nn::Optimizer &opt)
{
    const int m = real.shape().d0;
    GANACC_ASSERT(conditions.shape().d0 == m,
                  "conditions/real batch mismatch");
    ConditionalLosses losses;
    for (int i = 0; i < m; ++i) {
        Tensor cond_i = extractSample(conditions, i);
        Tensor truth_i = extractSample(real, i);
        Tensor rec = gen_->forward(cond_i);

        // Adversarial error relayed through the (frozen) critic.
        Tensor out = disc_->forward(rec);
        losses.adversarial += -Network::scores(out)[0] / m;
        Tensor derr_head(out.shape(),
                         float(nn::generatorOutputError(m)));
        Tensor derr_adv = disc_->backwardError(derr_head);

        // Reconstruction error: d(lambda/2m * ||rec - truth||^2 / P)
        // where P is pixels per sample.
        const float scale =
            reconWeight_ / (float(m) * float(rec.numel()));
        Tensor derr = rec;
        derr.axpy(-1.0f, truth_i);
        double mse = 0.0;
        for (std::size_t k = 0; k < derr.numel(); ++k)
            mse += double(derr.data()[k]) * derr.data()[k];
        losses.reconstruction += mse / double(rec.numel()) / m;
        derr.scale(scale);
        derr.add(derr_adv);

        gen_->backward(derr);
    }
    gen_->applyUpdates(opt);
    return losses;
}

} // namespace gan
} // namespace ganacc
