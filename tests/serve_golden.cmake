# CTest driver for the serving-golden check. Two byte-comparisons:
#
#  1. ganacc-client --emit table5 --model mnist-gan must regenerate
#     the committed request file (request encoder stability);
#  2. ganacc-served --pipe --jobs 1 --deterministic replaying that
#     file must reproduce the committed response file (response
#     encoder, engine, and cycle-walk stability — the stats inside
#     are full RunStats, so this doubles as a coarse golden on the
#     simulators).
#
# Variables: SERVED, CLIENT (binaries), REQS/GOLDEN (committed
# request/response files), OUT/OUT_REQS (scratch outputs).

execute_process(
    COMMAND ${CLIENT} --emit table5 --model mnist-gan
    OUTPUT_FILE ${OUT_REQS}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ganacc-client --emit exited with status ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT_REQS} ${REQS}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "generated requests diverge from ${REQS}; inspect ${OUT_REQS} "
        "and, if the protocol change is intended, regenerate with: "
        "ganacc-client --emit table5 --model mnist-gan")
endif()

execute_process(
    COMMAND ${SERVED} --pipe --jobs 1 --deterministic --quiet
    INPUT_FILE ${REQS}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ganacc-served exited with status ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "responses diverge from ${GOLDEN}; inspect ${OUT} and, if the "
        "change is intended (remember to bump simulatorVersion() when "
        "counters move), regenerate with: ganacc-served --pipe "
        "--jobs 1 --deterministic --quiet < ${REQS}")
endif()
