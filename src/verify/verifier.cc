/**
 * @file
 * Composed verification pipelines.
 */

#include "verify/verifier.hh"

#include "core/resource_model.hh"
#include "mem/offchip.hh"
#include "mem/onchip_buffer.hh"
#include "sim/phase.hh"

namespace ganacc {
namespace verify {

Report
verifyModel(const gan::GanModel &model, const VerifyOptions &opts)
{
    Report report;
    checkModel(model, report);
    if (!report.ok())
        return report; // shape info unreliable: stop here

    if (opts.checkRanges)
        analyzeRanges(model, opts.range, report);

    if (opts.checkBuffers) {
        int w_pof =
            opts.wPof > 0 ? opts.wPof : mem::deriveWPof(mem::OffChipConfig{});
        int budget = opts.bram36Budget > 0 ? opts.bram36Budget
                                           : core::vcu9pBudget().bram36;
        mem::BufferPlan plan =
            mem::planBuffers(model, w_pof, opts.bytesPerElem);
        checkBramBudget(plan, budget, report);
        checkBufferWorkingSets(model, plan, w_pof, opts.bytesPerElem,
                               report);
    }
    return report;
}

Report
verifySchedule(const gan::GanModel &model, core::ArchKind kind,
               const sim::Unroll &unroll)
{
    Report report;
    checkModel(model, report);
    if (!report.ok())
        return report;

    std::vector<sim::ConvSpec> jobs;
    for (sim::Phase p : sim::allPhases())
        for (sim::ConvSpec &job : sim::phaseJobs(model, p))
            jobs.push_back(std::move(job));
    checkUnroll(kind, unroll, jobs, report);
    return report;
}

} // namespace verify
} // namespace ganacc
