/**
 * @file
 * Cnvlutin-style cycle-level model.
 */

#include "sim/cnv.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Tensor;

RunStats
Cnv::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
           Tensor *out) const
{
    GANACC_ASSERT(in != nullptr,
                  "CNV skips zeros by value inspection and needs "
                  "functional operands (timing-only runs are "
                  "impossible by construction)");
    const int n_pes = numPes();
    ScheduleRecorder *const rec = schedRec();
    RunStats st;

    // Partial sums accumulate in the zero-initialized output buffer:
    // one job-wide write-through window.
    if (rec)
        rec->onWindowBegin(std::uint64_t(spec.nof) * spec.oh * spec.ow *
                               (spec.fourDimOutput ? spec.nif : 1),
                           WindowKind::WriteThrough);

    for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
        const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
        for (int oy = 0; oy < spec.oh; ++oy) {
            for (int ox = 0; ox < spec.ow; ++ox) {
                if (!spec.fourDimOutput) {
                    // Lanes own interleaved channels; each streams its
                    // non-zero (activation, offset) pairs for this
                    // window and the slowest lane paces the window.
                    std::vector<std::uint64_t> lane_nz(
                        std::size_t(unroll_.pIf), 0);
                    std::uint64_t window_nz = 0;
                    for (int c = 0; c < spec.nif; ++c) {
                        const int lane = c % unroll_.pIf;
                        for (int ky = 0; ky < spec.kh; ++ky)
                            for (int kx = 0; kx < spec.kw; ++kx) {
                                int iy = oy * spec.stride + ky -
                                         spec.pad;
                                int ix = ox * spec.stride + kx -
                                         spec.pad;
                                float v = in->getPadded(0, c, iy, ix);
                                if (v == 0.0f)
                                    continue;
                                ++lane_nz[std::size_t(lane)];
                                ++window_nz;
                                // Zero activations never reach the
                                // array (the encoded stream drops
                                // them), so only these products are
                                // presented to the fault hook.
                                for (int f = 0; f < of_cnt; ++f) {
                                    const int of = of0 + f;
                                    out->ref(0, of, oy, ox) +=
                                        macProduct(
                                            v, w->get(of, c, ky, kx),
                                            MacContext{
                                                lane * unroll_.pOf + f,
                                                of, c, oy, ox, ky, kx});
                                }
                            }
                    }
                    std::uint64_t window_cycles = 0;
                    for (auto nz : lane_nz)
                        window_cycles = std::max(window_cycles, nz);
                    if (rec) {
                        // Narrate the window the walk just summed:
                        // cycle k runs every lane still holding a
                        // non-zero pair, and the adder tree read-
                        // modify-writes the window's partial each
                        // cycle. Totals match the bulk counts below.
                        const std::uint64_t cell =
                            schedCellIndex(spec, of0, 0, oy, ox);
                        for (std::uint64_t k = 0; k < window_cycles;
                             ++k) {
                            rec->onCycle();
                            std::uint64_t active = 0;
                            for (int lane = 0; lane < unroll_.pIf;
                                 ++lane)
                                if (lane_nz[std::size_t(lane)] > k) {
                                    rec->onLanes(lane * unroll_.pOf,
                                                 of_cnt);
                                    ++active;
                                }
                            rec->onPort(SchedPort::Input, active);
                            rec->onPort(SchedPort::Weight,
                                        active * of_cnt);
                            rec->onPort(SchedPort::OutputRead,
                                        std::uint64_t(of_cnt));
                            rec->onPort(SchedPort::OutputWrite,
                                        std::uint64_t(of_cnt));
                            rec->onCellRead(cell, std::uint64_t(of_cnt));
                            rec->onCellWrite(cell,
                                             std::uint64_t(of_cnt));
                        }
                    }
                    st.cycles += window_cycles;
                    st.effectiveMacs += window_nz * of_cnt;
                    st.idlePeSlots +=
                        window_cycles * std::uint64_t(n_pes) -
                        window_nz * of_cnt;
                    // Encoded activation stream: one read per
                    // non-zero; weights indexed by its offset.
                    st.inputLoads += window_nz;
                    st.weightLoads += window_nz * of_cnt;
                    st.outputReads += window_cycles * of_cnt;
                    st.outputWrites += window_cycles * of_cnt;
                } else {
                    // Four-dimension outputs: nothing to accumulate
                    // across lanes, channels stream sequentially. And
                    // Cnvlutin skips zero *activations* only — the
                    // zero-inserted kernel of Dw still burns cycles
                    // (the Section VII critique: it "could not handle
                    // the zero-inserting in the kernel for W-CONV").
                    for (int c = 0; c < spec.nif; ++c) {
                        std::uint64_t nz = 0, wasted = 0;
                        for (int ky = 0; ky < spec.kh; ++ky)
                            for (int kx = 0; kx < spec.kw; ++kx) {
                                int iy = oy * spec.stride + ky -
                                         spec.pad;
                                int ix = ox * spec.stride + kx -
                                         spec.pad;
                                float v = in->getPadded(0, c, iy, ix);
                                if (v == 0.0f)
                                    continue;
                                const bool k_zero =
                                    spec.kernelIsZero(ky, kx);
                                if (k_zero)
                                    ++wasted;
                                else
                                    ++nz;
                                // Kernel-zero steps still burn cycles
                                // on the array (Section VII critique),
                                // so the fault hook may visit them.
                                if (k_zero && !faultVisitsIneffectual())
                                    continue;
                                for (int f = 0; f < of_cnt; ++f) {
                                    const int of = of0 + f;
                                    out->ref(of, c, oy, ox) +=
                                        macProduct(
                                            v, w->get(of, 0, ky, kx),
                                            MacContext{f, of, c, oy, ox,
                                                       ky, kx});
                                }
                            }
                        const std::uint64_t steps = nz + wasted;
                        if (rec) {
                            const std::uint64_t cell =
                                schedCellIndex(spec, of0, c, oy, ox);
                            for (std::uint64_t k = 0; k < steps; ++k) {
                                rec->onCycle();
                                rec->onLanes(0, of_cnt);
                                rec->onPort(SchedPort::Input, 1);
                                rec->onPort(SchedPort::Weight,
                                            std::uint64_t(of_cnt));
                                rec->onPort(SchedPort::OutputRead,
                                            std::uint64_t(of_cnt));
                                rec->onPort(SchedPort::OutputWrite,
                                            std::uint64_t(of_cnt));
                                rec->onCellRead(cell,
                                                std::uint64_t(of_cnt));
                                rec->onCellWrite(cell,
                                                 std::uint64_t(of_cnt));
                            }
                        }
                        st.cycles += steps;
                        st.effectiveMacs += nz * of_cnt;
                        st.ineffectualMacs += wasted * of_cnt;
                        st.idlePeSlots +=
                            steps * std::uint64_t(n_pes) -
                            steps * of_cnt;
                        st.inputLoads += steps;
                        st.weightLoads += steps * of_cnt;
                        st.outputReads += steps * of_cnt;
                        st.outputWrites += steps * of_cnt;
                    }
                }
            }
        }
    }
    if (rec)
        rec->onWindowEnd();
    return st;
}

} // namespace sim
} // namespace ganacc
