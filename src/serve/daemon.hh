/**
 * @file
 * Transports of the simulation service: a stdin/stdout pipe loop (CI
 * and golden replay) and a Unix-domain-socket server (long-lived
 * daemon, many clients).
 *
 * Both speak the JSON-lines protocol of serve/protocol.hh and drive a
 * shared Engine. Responses to one connection are written in request
 * order (the engine may execute out of order; the writer re-serializes)
 * so a client can match responses to requests positionally as well as
 * by id.
 *
 * Lifecycle: runSocketServer() polls the listening socket so it can
 * observe the stop flag — the SIGTERM/SIGINT handler merely sets it —
 * then stops accepting, lets every live connection finish its
 * buffered requests, drains the engine, and returns. One malformed
 * line yields one ok:false response; it never terminates the server.
 */

#ifndef GANACC_SERVE_DAEMON_HH
#define GANACC_SERVE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/engine.hh"

namespace ganacc {
namespace serve {

/** Totals returned by a transport run. */
struct ServeTotals
{
    std::uint64_t lines = 0;     ///< requests read
    std::uint64_t responses = 0; ///< responses written
};

/**
 * Pipe mode: read JSON-lines requests from `in` until EOF, write one
 * response line per request to `out` in input order.
 */
ServeTotals runPipeServer(std::istream &in, std::ostream &out,
                          Engine &engine);

/**
 * Socket mode: listen on the Unix-domain socket at `path` (unlinking
 * a stale file first), serve every connection with the pipe loop,
 * and return once `*stop` becomes true and live connections finish.
 * Throws util::FatalError when the socket cannot be created.
 */
ServeTotals runSocketServer(const std::string &path, Engine &engine,
                            const std::atomic<bool> &stop);

/**
 * Create a listening TCP socket for `hostport` ("host:port"; a bare
 * ":port" binds 127.0.0.1; port 0 picks a free port). Returns the
 * listener fd and writes the actually bound "host:port" (with the
 * kernel-assigned port resolved) to `*boundAddr` when non-null, so a
 * caller can hand the address to clients before serving. Throws
 * util::FatalError on failure.
 */
int listenTcp(const std::string &hostport, std::string *boundAddr);

/**
 * Serve an already-listening socket (from listenTcp(), or any bound +
 * listening stream socket) with the shared accept loop: one thread
 * per connection, ordered responses, SIGUSR1 metrics dumps serviced
 * between polls. Returns once `*stop` becomes true, live connections
 * finish their buffered requests, and the engine drains. Closes the
 * listener.
 */
ServeTotals serveListener(int listener, Engine &engine,
                          const std::atomic<bool> &stop);

/**
 * TCP mode: listenTcp() + serveListener(). The same JSONL protocol
 * and drain semantics as the Unix transport, addressable across
 * hosts — this is the transport fleet shards speak.
 */
ServeTotals runTcpServer(const std::string &hostport, Engine &engine,
                         const std::atomic<bool> &stop,
                         std::string *boundAddr = nullptr);

/** Install SIGTERM/SIGINT handlers that set `flag`. */
void installStopHandlers(std::atomic<bool> &flag);

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_DAEMON_HH
