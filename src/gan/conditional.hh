/**
 * @file
 * Conditional GAN training (the Context-Encoder recipe behind the
 * paper's cGAN): the generator is conditioned on an input image
 * (e.g. a masked photo) and trained with a joint objective —
 * adversarial (the critic judges the reconstruction) plus a
 * weighted reconstruction loss toward the ground truth.
 *
 * Both updates run the deferred-synchronization per-sample loops: the
 * adversarial term's output error is the constant of eq. (6) and the
 * reconstruction term is intrinsically per-sample, so the algorithm
 * the accelerator executes computes the exact mini-batch gradient
 * here too.
 */

#ifndef GANACC_GAN_CONDITIONAL_HH
#define GANACC_GAN_CONDITIONAL_HH

#include <memory>

#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"

namespace ganacc {
namespace gan {

/** Losses of one conditional-generator step. */
struct ConditionalLosses
{
    double adversarial = 0.0;   ///< -mean D(G(condition))
    double reconstruction = 0.0; ///< mean squared error to the truth
};

/** Trainer for encoder-decoder conditional GANs. */
class ConditionalTrainer
{
  public:
    /**
     * @param model        topology with an image-conditioned
     *                     generator (makeContextEncoder-style).
     * @param seed         deterministic initialization.
     * @param recon_weight weight of the reconstruction term (the
     *                     Context-Encoder paper weighs reconstruction
     *                     heavily).
     * @param clip         WGAN critic clip bound (0 disables).
     */
    ConditionalTrainer(const GanModel &model, std::uint64_t seed,
                       float recon_weight = 10.0f, float clip = 0.01f);

    /** Reconstruct from conditions (no training side effects kept). */
    tensor::Tensor inpaint(const tensor::Tensor &conditions);

    /**
     * One deferred-sync critic update: real images against
     * reconstructions from their conditions. @return critic loss.
     */
    double discriminatorStep(const tensor::Tensor &real,
                             const tensor::Tensor &conditions,
                             nn::Optimizer &opt);

    /**
     * One deferred-sync generator update with the joint objective.
     */
    ConditionalLosses generatorStep(const tensor::Tensor &real,
                                    const tensor::Tensor &conditions,
                                    nn::Optimizer &opt);

    Network &generator() { return *gen_; }
    Network &discriminator() { return *disc_; }
    float reconWeight() const { return reconWeight_; }

  private:
    GanModel model_;
    float reconWeight_;
    float clip_;
    std::unique_ptr<Network> gen_;
    std::unique_ptr<Network> disc_;
};

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_CONDITIONAL_HH
