/**
 * @file
 * Trainer implementation.
 */

#include "gan/trainer.hh"

#include "nn/loss.hh"
#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Shape4;
using tensor::Tensor;

Tensor
extractSample(const Tensor &batch, int index)
{
    const Shape4 &s = batch.shape();
    GANACC_ASSERT(index >= 0 && index < s.d0, "sample index out of range");
    Tensor out(Shape4(1, s.d1, s.d2, s.d3));
    for (int c = 0; c < s.d1; ++c)
        for (int y = 0; y < s.d2; ++y)
            for (int x = 0; x < s.d3; ++x)
                out.ref(0, c, y, x) = batch.get(index, c, y, x);
    return out;
}

Tensor
concatBatch(const Tensor &a, const Tensor &b)
{
    const Shape4 &sa = a.shape();
    const Shape4 &sb = b.shape();
    GANACC_ASSERT(sa.d1 == sb.d1 && sa.d2 == sb.d2 && sa.d3 == sb.d3,
                  "concatBatch per-sample shapes differ");
    Tensor out(Shape4(sa.d0 + sb.d0, sa.d1, sa.d2, sa.d3));
    for (int n = 0; n < sa.d0; ++n)
        for (int c = 0; c < sa.d1; ++c)
            for (int y = 0; y < sa.d2; ++y)
                for (int x = 0; x < sa.d3; ++x)
                    out.ref(n, c, y, x) = a.get(n, c, y, x);
    for (int n = 0; n < sb.d0; ++n)
        for (int c = 0; c < sb.d1; ++c)
            for (int y = 0; y < sb.d2; ++y)
                for (int x = 0; x < sb.d3; ++x)
                    out.ref(sa.d0 + n, c, y, x) = b.get(n, c, y, x);
    return out;
}

Trainer::Trainer(const GanModel &model, std::uint64_t seed, SyncMode mode,
                 float clip)
    : model_(model), mode_(mode), clip_(clip)
{
    util::Rng rng(seed);
    gen_ = std::make_unique<Network>(model_.gen, rng);
    disc_ = std::make_unique<Network>(model_.disc, rng);
}

Tensor
Trainer::sampleNoise(int m, util::Rng &rng) const
{
    Tensor z(Shape4(m, model_.latentDim, 1, 1));
    z.fillGaussian(rng);
    return z;
}

Tensor
Trainer::generate(const Tensor &noise)
{
    return gen_->forward(noise);
}

double
Trainer::accumulateDiscriminatorGradients(const Tensor &real,
                                          const Tensor &noise)
{
    GANACC_ASSERT(real.shape().d0 == noise.shape().d0,
                  "real batch and noise batch sizes differ");
    if (mode_ == SyncMode::Synchronized)
        return discGradientsSynchronized(real, noise);
    return discGradientsDeferred(real, noise);
}

double
Trainer::discGradientsSynchronized(const Tensor &real, const Tensor &noise)
{
    const int m = real.shape().d0;
    // Steps 1-2 of Fig. 2: generate the whole fake batch, then push
    // the combined 2m samples through the discriminator. Every layer
    // keeps its full 2m-sample activations buffered (the memory cost
    // the paper's Section III-A quantifies).
    Tensor fake = gen_->forward(noise);
    Tensor combined = concatBatch(real, fake);
    Tensor out = disc_->forward(combined);
    auto all_scores = Network::scores(out);
    std::vector<double> real_scores(all_scores.begin(),
                                    all_scores.begin() + m);
    std::vector<double> fake_scores(all_scores.begin() + m,
                                    all_scores.end());
    // Step 3: the synchronized loss/error computation.
    Tensor derr(out.shape());
    for (int n = 0; n < m; ++n)
        derr.ref(n, 0, 0, 0) = float(nn::criticOutputErrorReal(m));
    for (int n = 0; n < m; ++n)
        derr.ref(m + n, 0, 0, 0) = float(nn::criticOutputErrorFake(m));
    // Step 4: backward error + weight gradients.
    disc_->backward(derr);
    return nn::wassersteinCriticLoss(real_scores, fake_scores);
}

double
Trainer::discGradientsDeferred(const Tensor &real, const Tensor &noise)
{
    const int m = real.shape().d0;
    std::vector<double> real_scores, fake_scores;
    // Fig. 8(a): m independent loops; each sample's backward starts as
    // soon as its own forward completes, so only one sample's
    // intermediates are ever live.
    for (int i = 0; i < m; ++i) {
        Tensor real_i = extractSample(real, i);
        Tensor out_r = disc_->forward(real_i);
        real_scores.push_back(Network::scores(out_r)[0]);
        Tensor derr_r(out_r.shape(),
                      float(nn::criticOutputErrorReal(m)));
        disc_->backward(derr_r);

        Tensor noise_i = extractSample(noise, i);
        Tensor fake_i = gen_->forward(noise_i);
        Tensor out_f = disc_->forward(fake_i);
        fake_scores.push_back(Network::scores(out_f)[0]);
        Tensor derr_f(out_f.shape(),
                      float(nn::criticOutputErrorFake(m)));
        disc_->backward(derr_f);
    }
    return nn::wassersteinCriticLoss(real_scores, fake_scores);
}

double
Trainer::accumulateGeneratorGradients(const Tensor &noise)
{
    if (mode_ == SyncMode::Synchronized)
        return genGradientsSynchronized(noise);
    return genGradientsDeferred(noise);
}

double
Trainer::genGradientsSynchronized(const Tensor &noise)
{
    const int m = noise.shape().d0;
    // Steps 5-9 of Fig. 2 for the whole batch at once.
    Tensor fake = gen_->forward(noise);
    Tensor out = disc_->forward(fake);
    auto fake_scores = Network::scores(out);
    Tensor derr(out.shape(), float(nn::generatorOutputError(m)));
    Tensor at_gen_output = disc_->backwardError(derr);
    gen_->backward(at_gen_output);
    return nn::wassersteinGeneratorLoss(fake_scores);
}

double
Trainer::genGradientsDeferred(const Tensor &noise)
{
    const int m = noise.shape().d0;
    std::vector<double> fake_scores;
    for (int i = 0; i < m; ++i) {
        Tensor noise_i = extractSample(noise, i);
        Tensor fake_i = gen_->forward(noise_i);
        Tensor out = disc_->forward(fake_i);
        fake_scores.push_back(Network::scores(out)[0]);
        Tensor derr(out.shape(), float(nn::generatorOutputError(m)));
        Tensor at_gen_output = disc_->backwardError(derr);
        gen_->backward(at_gen_output);
    }
    return nn::wassersteinGeneratorLoss(fake_scores);
}

void
Trainer::applyDiscriminatorUpdate(nn::Optimizer &opt)
{
    disc_->applyUpdates(opt);
    if (clip_ > 0.0f)
        disc_->clipWeights(clip_);
}

void
Trainer::applyGeneratorUpdate(nn::Optimizer &opt)
{
    gen_->applyUpdates(opt);
}

IterationLosses
Trainer::trainIteration(const Tensor &real, nn::Optimizer &d_opt,
                        nn::Optimizer &g_opt, util::Rng &rng, int n_critic)
{
    GANACC_ASSERT(n_critic >= 1, "n_critic must be >= 1");
    const int m = real.shape().d0;
    IterationLosses losses;
    for (int k = 0; k < n_critic; ++k) {
        Tensor noise = sampleNoise(m, rng);
        losses.discLoss = accumulateDiscriminatorGradients(real, noise);
        applyDiscriminatorUpdate(d_opt);
    }
    Tensor noise = sampleNoise(m, rng);
    losses.genLoss = accumulateGeneratorGradients(noise);
    applyGeneratorUpdate(g_opt);
    return losses;
}

} // namespace gan
} // namespace ganacc
