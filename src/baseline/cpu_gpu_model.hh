/**
 * @file
 * Calibrated roofline models of the paper's CPU and GPU baselines
 * (Fig. 19): Caffe on an Intel i7-6850K, an NVIDIA K20 and an NVIDIA
 * Titan X.
 *
 * SUBSTITUTION NOTE (see DESIGN.md): the paper measured real hardware
 * with a wall-power meter; we model each device as peak throughput
 * times a phase-dependent efficiency. Dense work (including the
 * multiply-by-zero work Caffe's im2col does on zero-inserted maps)
 * runs at `peak * efficiency`; devices are charged their sustained
 * board/package power. Peak rates and power are from the vendors'
 * published specifications; the efficiency fractions are the only
 * free parameters and are documented in EXPERIMENTS.md.
 */

#ifndef GANACC_BASELINE_CPU_GPU_MODEL_HH
#define GANACC_BASELINE_CPU_GPU_MODEL_HH

#include <string>
#include <vector>

#include "gan/models.hh"
#include "sim/phase.hh"

namespace ganacc {
namespace baseline {

/** A roofline device model. */
struct DeviceModel
{
    std::string name;
    double peakGops = 0.0;      ///< dense peak (2 ops per MAC)
    double convEfficiency = 0.0;  ///< fraction of peak on S-CONV work
    double tconvEfficiency = 0.0; ///< fraction on zero-inserted work
    double powerWatts = 0.0;      ///< sustained power under load

    /** Efficiency applying to one phase family. */
    double efficiencyFor(sim::PhaseFamily f) const;
};

/** Intel i7-6850K, 6 cores Broadwell-E @3.6 GHz, Caffe CPU path. */
DeviceModel intelI7_6850K();

/** NVIDIA Tesla K20 (Kepler GK110), Caffe GPU path. */
DeviceModel nvidiaK20();

/** NVIDIA GeForce Titan X (Maxwell GM200), Caffe GPU path. */
DeviceModel nvidiaTitanX();

/** All three baselines in Fig. 19 order. */
std::vector<DeviceModel> allDevices();

/** Sustained board power assumed for the FPGA accelerator. */
double fpgaBoardPowerWatts();

/**
 * Seconds the device spends on one training iteration per sample
 * (5 forward + 4 backward phase passes of Fig. 2). Devices execute
 * dense arithmetic — inserted zeros are multiplied, not skipped.
 */
double iterationSeconds(const DeviceModel &dev,
                        const gan::GanModel &model);

/** Effective (useful-operation) GOP/s the device sustains on one
 *  training iteration — the Fig. 19 performance metric. */
double iterationGops(const DeviceModel &dev, const gan::GanModel &model);

/** Joules per training iteration per sample. */
double iterationJoules(const DeviceModel &dev,
                       const gan::GanModel &model);

/** GOP/s per watt — the Fig. 19 energy-efficiency metric. */
double gopsPerWatt(const DeviceModel &dev, const gan::GanModel &model);

/** Useful (effective) operations of one training iteration. */
double iterationUsefulOps(const gan::GanModel &model);

} // namespace baseline
} // namespace ganacc

#endif // GANACC_BASELINE_CPU_GPU_MODEL_HH
