/**
 * @file
 * Distribution-distance metrics for evaluating generator quality.
 *
 * The paper evaluates throughput, not sample quality, but a training
 * substrate needs a way to tell whether the GAN it trains is actually
 * learning. Two standard, label-free metrics:
 *
 *  - Moment distance: L2 gap between the first two per-pixel moments
 *    of the real and generated batches (cheap, coarse).
 *  - Kernel MMD^2 (unbiased, RBF kernel): the maximum mean
 *    discrepancy estimator of Gretton et al., a proper two-sample
 *    statistic that goes to zero iff the distributions match.
 */

#ifndef GANACC_GAN_METRICS_HH
#define GANACC_GAN_METRICS_HH

#include "tensor/tensor.hh"

namespace ganacc {
namespace gan {

/**
 * L2 distance between per-pixel means plus per-pixel standard
 * deviations of two same-shape batches, normalized by pixel count.
 */
double momentDistance(const tensor::Tensor &a, const tensor::Tensor &b);

/**
 * Unbiased MMD^2 estimate between two batches with an RBF kernel.
 *
 * @param bandwidth kernel bandwidth sigma; <= 0 selects the median
 *                  pairwise distance heuristic.
 */
double mmd2(const tensor::Tensor &a, const tensor::Tensor &b,
            double bandwidth = -1.0);

/** The median-heuristic bandwidth for a pair of batches. */
double medianBandwidth(const tensor::Tensor &a, const tensor::Tensor &b);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_METRICS_HH
