/**
 * @file
 * Diagnostic report implementation.
 */

#include "verify/diagnostics.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace verify {

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    util::panic("unknown severity");
}

void
Report::add(Diagnostic d)
{
    diags_.push_back(std::move(d));
}

void
Report::error(const std::string &code, const std::string &where,
              const std::string &message)
{
    add({code, Severity::Error, where, message});
}

void
Report::warning(const std::string &code, const std::string &where,
                const std::string &message)
{
    add({code, Severity::Warning, where, message});
}

void
Report::note(const std::string &code, const std::string &where,
             const std::string &message)
{
    add({code, Severity::Note, where, message});
}

void
Report::merge(const Report &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

namespace {

int
countSeverity(const std::vector<Diagnostic> &diags, Severity s)
{
    return int(std::count_if(
        diags.begin(), diags.end(),
        [s](const Diagnostic &d) { return d.severity == s; }));
}

} // namespace

int
Report::errorCount() const
{
    return countSeverity(diags_, Severity::Error);
}

int
Report::warningCount() const
{
    return countSeverity(diags_, Severity::Warning);
}

int
Report::noteCount() const
{
    return countSeverity(diags_, Severity::Note);
}

bool
Report::has(const std::string &code) const
{
    return find(code) != nullptr;
}

const Diagnostic *
Report::find(const std::string &code) const
{
    for (const Diagnostic &d : diags_)
        if (d.code == code)
            return &d;
    return nullptr;
}

void
Report::renderText(std::ostream &os) const
{
    for (const Diagnostic &d : diags_) {
        os << severityName(d.severity) << " " << d.code;
        if (!d.where.empty())
            os << " [" << d.where << "]";
        os << ": " << d.message << "\n";
    }
}

void
Report::renderJson(std::ostream &os) const
{
    os << "{\"errors\":" << errorCount()
       << ",\"warnings\":" << warningCount()
       << ",\"notes\":" << noteCount() << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        if (i)
            os << ",";
        os << "{\"code\":\"" << util::escapeJson(d.code)
           << "\",\"severity\":\"" << severityName(d.severity)
           << "\",\"where\":\"" << util::escapeJson(d.where)
           << "\",\"message\":\"" << util::escapeJson(d.message)
           << "\"}";
    }
    os << "]}";
}

} // namespace verify
} // namespace ganacc
