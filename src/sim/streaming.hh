/**
 * @file
 * Operand streaming: how software lays tensors out for the
 * accelerator.
 *
 * Each phase's ConvSpec (phase.hh) describes streamed *geometry*;
 * this module produces the streamed *contents* from the dense
 * layer-level tensors — zero-insertion for T-CONV inputs, the
 * flip+swap that turns a transposed convolution into a plain
 * convolution over the stuffed map, stride-dilation of error maps for
 * W-CONV kernels — and converts raw job outputs back to layer-level
 * tensors (e.g. un-flipping the generator's weight gradient).
 *
 * With these, a whole training pass can be chained job-by-job through
 * the microarchitecture models and compared against the reference
 * trainer (tests/test_accel_functional.cc) — proving the phase
 * mapping end to end, not just per job.
 */

#ifndef GANACC_SIM_STREAMING_HH
#define GANACC_SIM_STREAMING_HH

#include "gan/models.hh"
#include "sim/conv_spec.hh"
#include "tensor/tensor.hh"

namespace ganacc {
namespace sim {

/** Streamed operands of one job. */
struct StreamedOperands
{
    tensor::Tensor input;  ///< (1, nif, ih, iw)
    tensor::Tensor kernel; ///< (nof, nif or 1, kh, kw)
};

/** D→: dense activations and the layer's weights, as-is. */
StreamedOperands streamDiscForward(const gan::LayerSpec &layer,
                                   const tensor::Tensor &dense_in,
                                   const tensor::Tensor &weights);

/** G→: zero-inserted input; flipped, axis-swapped kernel. */
StreamedOperands streamGenForward(const gan::LayerSpec &layer,
                                  const tensor::Tensor &dense_in,
                                  const tensor::Tensor &weights);

/** D←: zero-inserted output-side error; flipped, swapped kernel. */
StreamedOperands streamDiscBackward(const gan::LayerSpec &layer,
                                    const tensor::Tensor &derr_out,
                                    const tensor::Tensor &weights);

/** G←: dense output-side error; the (IF,OF) kernel streams as-is. */
StreamedOperands streamGenBackward(const gan::LayerSpec &layer,
                                   const tensor::Tensor &derr_out,
                                   const tensor::Tensor &weights);

/** Dw: dense input data; the stride-dilated error map as per-channel
 *  kernel planes. */
StreamedOperands streamDiscWeight(const gan::LayerSpec &layer,
                                  const tensor::Tensor &dense_in,
                                  const tensor::Tensor &derr_out);

/** Gw: zero-inserted input; the dense error map as kernel planes. */
StreamedOperands streamGenWeight(const gan::LayerSpec &layer,
                                 const tensor::Tensor &dense_in,
                                 const tensor::Tensor &derr_out);

/**
 * Convert a Gw job's raw (OF, IF, k, k) output — the gradient of the
 * *flipped* kernel the stuffed convolution used — back to the
 * transposed-conv layer's (IF, OF, k, k) weight-gradient layout.
 */
tensor::Tensor unflipGenWeightGrad(const tensor::Tensor &raw);

/** @name Kind-generic dispatch
 * Encoder-decoder generators (Context Encoders) mix strided and
 * transposed layers; these wrappers pick the right streaming
 * transform from the layer's kind so callers can chain any stack.
 * @{ */
StreamedOperands streamForward(const gan::LayerSpec &layer,
                               const tensor::Tensor &dense_in,
                               const tensor::Tensor &weights);
StreamedOperands streamBackwardData(const gan::LayerSpec &layer,
                                    const tensor::Tensor &derr_out,
                                    const tensor::Tensor &weights);
StreamedOperands streamWeightGrad(const gan::LayerSpec &layer,
                                  const tensor::Tensor &dense_in,
                                  const tensor::Tensor &derr_out);
/** Convert a raw weight-gradient job output to the layer's weight
 *  layout (identity for strided, unflip+swap for transposed). */
tensor::Tensor finishWeightGrad(const gan::LayerSpec &layer,
                                const tensor::Tensor &raw);
/** @} */

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_STREAMING_HH
