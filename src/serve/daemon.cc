/**
 * @file
 * Daemon transport implementation.
 */

#include "serve/daemon.hh"

#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ganacc {
namespace serve {

namespace {

/**
 * Submit one request line and return the response future. Decode
 * errors resolve immediately: the protocol promises a response per
 * line no matter how broken the line is.
 */
std::future<Response>
submitLine(Engine &engine, const std::string &line)
{
    try {
        obs::TraceSink &sink = obs::TraceSink::instance();
        if (sink.enabled()) {
            // Stamp transport-side decode timing (never on the wire)
            // so the engine's span batch covers the whole hop.
            const std::uint64_t t0 = sink.nowUs();
            Request req = decodeRequest(line);
            const std::uint64_t t1 = sink.nowUs();
            req.decodeTs = t0;
            req.decodeDurUs = t1 > t0 ? t1 - t0 : 1;
            return engine.submit(req);
        }
        return engine.submit(decodeRequest(line));
    } catch (const std::exception &e) {
        std::uint64_t id = 0;
        // Best effort: salvage the id so the client can correlate.
        try {
            const auto doc = util::json::parse(line);
            if (doc.isObject() && doc.asObject().contains("id"))
                id = doc.asObject().at("id").asUint64();
        } catch (...) {
            // The line is not even JSON; scrape an "id":NNN textually
            // so the error still lands on the right request.
            const auto at = line.find("\"id\":");
            if (at != std::string::npos) {
                std::size_t p = at + 5;
                while (p < line.size() && line[p] >= '0' &&
                       line[p] <= '9')
                    id = id * 10 + std::uint64_t(line[p++] - '0');
            }
        }
        std::promise<Response> p;
        p.set_value(errorResponse(id, e.what()));
        return p.get_future();
    }
}

/**
 * Pump a line stream through the engine, writing responses in input
 * order. A dedicated writer thread drains the in-order future queue,
 * so responses go out the moment they resolve even while the reader
 * is blocked waiting for the client's next line — an interactive
 * client that pipelines a burst and then waits for replies before
 * closing would deadlock otherwise. The window bounds this stream's
 * in-flight requests on top of the engine's global queue bound.
 */
ServeTotals
pumpOrderedStream(Engine &engine,
                  const std::function<bool(std::string &)> &getLine,
                  const std::function<bool(const std::string &)> &put)
{
    ServeTotals totals;
    const std::size_t window = 64;
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::future<Response>> pending;
    bool done = false;
    std::uint64_t written = 0;

    std::thread writer([&] {
        std::unique_lock<std::mutex> lk(m);
        while (true) {
            cv.wait(lk, [&] { return done || !pending.empty(); });
            if (pending.empty())
                return; // done and nothing left to write
            std::future<Response> fut = std::move(pending.front());
            pending.pop_front();
            cv.notify_all(); // a window slot freed up for the reader
            lk.unlock();
            const Response rsp = fut.get();
            obs::TraceSink &sink = obs::TraceSink::instance();
            const bool traceEncode = rsp.traceKept && sink.enabled();
            const std::uint64_t encT0 = traceEncode ? sink.nowUs() : 0;
            const bool ok = put(encodeResponse(rsp) + "\n");
            if (traceEncode) {
                // Close the hop with the transport's encode+write
                // span, parented under the engine's request span.
                obs::TraceEvent ev;
                ev.name = "serve.encode";
                ev.cat = "serve";
                ev.tid = obs::TraceSink::threadLane();
                ev.ts = encT0;
                const std::uint64_t encT1 = sink.nowUs();
                ev.dur = encT1 > encT0 ? encT1 - encT0 : 1;
                ev.args = obs::spanArgs(rsp.traceId, obs::newSpanId(),
                                        rsp.traceSpan);
                sink.record(std::move(ev));
            }
            lk.lock();
            if (ok)
                ++written;
        }
    });

    std::string line;
    while (getLine(line)) {
        if (line.empty())
            continue;
        ++totals.lines;
        std::future<Response> fut = submitLine(engine, line);
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return pending.size() < window; });
        pending.push_back(std::move(fut));
        cv.notify_all();
    }
    {
        std::lock_guard<std::mutex> lk(m);
        done = true;
    }
    cv.notify_all();
    writer.join();
    totals.responses = written;
    return totals;
}

} // namespace

ServeTotals
runPipeServer(std::istream &in, std::ostream &out, Engine &engine)
{
    return pumpOrderedStream(
        engine,
        [&in](std::string &line) {
            return bool(std::getline(in, line));
        },
        [&out](const std::string &bytes) {
            out << bytes;
            out.flush();
            return bool(out);
        });
}

namespace {

std::atomic<bool> *g_stop_flag = nullptr;

void
onStopSignal(int)
{
    if (g_stop_flag)
        g_stop_flag->store(true);
}

/** Line-buffered reader over a connected socket fd. */
class FdLineReader
{
  public:
    explicit FdLineReader(int fd) : fd_(fd) {}

    /** Next full line (without '\n'); false on EOF/error. */
    bool
    getline(std::string &line)
    {
        while (true) {
            auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR)
                continue; // interrupted by a signal, not EOF — retry
            if (n <= 0) {
                if (buf_.empty())
                    return false;
                line.swap(buf_);
                buf_.clear();
                return true;
            }
            buf_.append(chunk, std::size_t(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

bool
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        // MSG_NOSIGNAL: a client that disconnects mid-stream must
        // cost the daemon one failed connection, not a SIGPIPE.
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // the writer thread shares the process's signal
                      // dispositions (SIGUSR1 metrics dump) — retry
        if (n <= 0)
            return false;
        off += std::size_t(n);
    }
    return true;
}

/** Serve one accepted connection with the ordered pump loop. */
void
serveConnection(int fd, Engine &engine, std::atomic<std::uint64_t> &lines,
                std::atomic<std::uint64_t> &responses)
{
    static obs::Gauge &connections = obs::Registry::instance().gauge(
        "ganacc_serve_connections", "live client connections");
    connections.add(1);
    FdLineReader reader(fd);
    const ServeTotals totals = pumpOrderedStream(
        engine,
        [&reader](std::string &line) { return reader.getline(line); },
        [fd](const std::string &bytes) { return writeAll(fd, bytes); });
    lines.fetch_add(totals.lines, std::memory_order_relaxed);
    responses.fetch_add(totals.responses, std::memory_order_relaxed);
    ::close(fd);
    connections.add(-1);
}

} // namespace

void
installStopHandlers(std::atomic<bool> &flag)
{
    g_stop_flag = &flag;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onStopSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

ServeTotals
serveListener(int listener, Engine &engine,
              const std::atomic<bool> &stop)
{
    std::atomic<std::uint64_t> lines{0};
    std::atomic<std::uint64_t> responses{0};
    std::vector<std::thread> conns;
    while (!stop.load()) {
        pollfd pfd{listener, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200 /* ms: stop-flag latency */);
        // SIGUSR1 dumps are serviced here, on a normal thread within
        // one poll interval of the signal — never in the handler.
        obs::serviceMetricsDump();
        if (r < 0 && errno != EINTR)
            break;
        if (r <= 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        conns.emplace_back([fd, &engine, &lines, &responses] {
            serveConnection(fd, engine, lines, responses);
        });
    }
    // Drain: no new connections; live ones finish their streams.
    ::close(listener);
    for (auto &t : conns)
        t.join();
    engine.drain();

    ServeTotals totals;
    totals.lines = lines.load();
    totals.responses = responses.load();
    return totals;
}

ServeTotals
runSocketServer(const std::string &path, Engine &engine,
                const std::atomic<bool> &stop)
{
    if (path.empty())
        util::fatal("socket server needs a non-empty path");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        util::fatal("socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);

    int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0)
        util::fatal("socket(AF_UNIX): ", std::strerror(errno));
    ::unlink(path.c_str()); // stale socket from a dead daemon
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        util::fatal("bind(", path, "): ", std::strerror(errno));
    if (::listen(listener, 64) != 0)
        util::fatal("listen(", path, "): ", std::strerror(errno));

    const ServeTotals totals = serveListener(listener, engine, stop);
    ::unlink(path.c_str());
    return totals;
}

int
listenTcp(const std::string &hostport, std::string *boundAddr)
{
    const auto colon = hostport.rfind(':');
    if (colon == std::string::npos)
        util::fatal("TCP listen address must be host:port, not \"",
                    hostport, "\"");
    std::string host = hostport.substr(0, colon);
    const std::string port = hostport.substr(colon + 1);
    if (host.empty())
        host = "127.0.0.1";

    addrinfo hints;
    std::memset(&hints, 0, sizeof hints);
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const int gai =
        ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (gai != 0)
        util::fatal("getaddrinfo(", hostport, "): ",
                    gai_strerror(gai));

    int listener = -1;
    std::string error = "no usable address";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        listener = ::socket(ai->ai_family, ai->ai_socktype,
                            ai->ai_protocol);
        if (listener < 0)
            continue;
        int one = 1;
        ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        if (::bind(listener, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(listener, 64) == 0)
            break;
        error = std::strerror(errno);
        ::close(listener);
        listener = -1;
    }
    ::freeaddrinfo(res);
    if (listener < 0)
        util::fatal("bind(", hostport, "): ", error);

    if (boundAddr) {
        // Resolve a kernel-assigned port (":0") for announcement.
        sockaddr_storage ss;
        socklen_t len = sizeof ss;
        if (::getsockname(listener,
                          reinterpret_cast<sockaddr *>(&ss),
                          &len) != 0)
            util::fatal("getsockname(", hostport, "): ",
                        std::strerror(errno));
        char hostbuf[NI_MAXHOST], portbuf[NI_MAXSERV];
        if (::getnameinfo(reinterpret_cast<sockaddr *>(&ss), len,
                          hostbuf, sizeof hostbuf, portbuf,
                          sizeof portbuf,
                          NI_NUMERICHOST | NI_NUMERICSERV) != 0)
            util::fatal("getnameinfo(", hostport, ") failed");
        *boundAddr = std::string(hostbuf) + ":" + portbuf;
    }
    return listener;
}

ServeTotals
runTcpServer(const std::string &hostport, Engine &engine,
             const std::atomic<bool> &stop, std::string *boundAddr)
{
    return serveListener(listenTcp(hostport, boundAddr), engine,
                         stop);
}

} // namespace serve
} // namespace ganacc
