/**
 * @file
 * Shared helpers for the reproduction benches: each bench binary
 * regenerates one table or figure of the paper and prints it in a
 * diffable plain-text format, leading with a header that names the
 * experiment (see DESIGN.md section 3 for the index).
 */

#ifndef GANACC_BENCH_BENCH_COMMON_HH
#define GANACC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "util/table.hh"

namespace ganacc {
namespace bench {

/** Print the experiment banner. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "==================================================="
                 "=====================\n";
    std::cout << "Reproduction: " << experiment << "\n";
    std::cout << "Paper claim:  " << paper_claim << "\n";
    std::cout << "==================================================="
                 "=====================\n";
}

} // namespace bench
} // namespace ganacc

#endif // GANACC_BENCH_BENCH_COMMON_HH
