/**
 * @file
 * Small string helpers shared by the text emitters.
 */

#ifndef GANACC_UTIL_STRINGS_HH
#define GANACC_UTIL_STRINGS_HH

#include <cstdio>
#include <string>

namespace ganacc {
namespace util {

/**
 * Escape a string for inclusion inside a JSON string literal:
 * backslash, double quote and every control character below 0x20
 * (named escapes where JSON has them, \u00XX otherwise). Bytes above
 * 0x7f pass through untouched — JSON permits raw UTF-8.
 */
inline std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_STRINGS_HH
