/**
 * @file
 * Reference-model implementation.
 */

#include "conform/reference.hh"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/cycle_cache.hh"
#include "gan/models.hh"
#include "sim/json.hh"
#include "sim/phase.hh"
#include "sim/stats_diff.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ganacc {
namespace conform {

namespace {

/**
 * Mirrors of the engine's model/family resolution, with the *exact*
 * error messages of serve/engine.cc — the conformance differ compares
 * error text verbatim, so a drift in either copy fails the harness
 * (which is the point: the wire error contract is pinned).
 */
gan::GanModel
modelByName(const std::string &name)
{
    if (name == "dcgan")
        return gan::makeDcgan();
    if (name == "mnist-gan")
        return gan::makeMnistGan();
    if (name == "cgan")
        return gan::makeCgan();
    if (name == "context-encoder")
        return gan::makeContextEncoder();
    util::fatal("unknown model \"", name,
                "\" (dcgan, mnist-gan, cgan, context-encoder)");
}

sim::PhaseFamily
familyByName(const std::string &name)
{
    if (name == "D")
        return sim::PhaseFamily::D;
    if (name == "G")
        return sim::PhaseFamily::G;
    if (name == "Dw")
        return sim::PhaseFamily::Dw;
    if (name == "Gw")
        return sim::PhaseFamily::Gw;
    util::fatal("unknown phase family \"", name,
                "\" (D, G, Dw, Gw)");
}

/** The per-layer jobs of a (model, family) request; memoized because
 *  network construction is pure and the fuzzer repeats pairs. Throws
 *  with the engine's exact message on an unknown pair. */
const std::vector<sim::ConvSpec> &
jobsFor(const std::string &model, const std::string &family)
{
    static std::map<std::string, std::vector<sim::ConvSpec>> memo;
    static std::mutex m;
    const std::string key = model + '|' + family;
    std::lock_guard<std::mutex> lk(m);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;
    const gan::GanModel gm = modelByName(model);
    auto jobs = sim::familyJobs(gm, familyByName(family));
    if (jobs.empty())
        util::fatal("model \"", model, "\" family \"", family,
                    "\" has no jobs");
    return memo.emplace(key, std::move(jobs)).first->second;
}

/** Mirror of the daemon's best-effort id salvage for broken lines. */
std::uint64_t
salvageId(const std::string &line)
{
    std::uint64_t id = 0;
    try {
        const auto doc = util::json::parse(line);
        if (doc.isObject() && doc.asObject().contains("id"))
            id = doc.asObject().at("id").asUint64();
    } catch (...) {
        const auto at = line.find("\"id\":");
        if (at != std::string::npos) {
            std::size_t p = at + 5;
            while (p < line.size() && line[p] >= '0' &&
                   line[p] <= '9')
                id = id * 10 + std::uint64_t(line[p++] - '0');
        }
    }
    return id;
}

int
coldness(const std::string &tier)
{
    if (tier == "mem")
        return 0;
    if (tier == "disk")
        return 1;
    return 2;
}

const char *
tierName(int coldness_rank)
{
    switch (coldness_rank) {
      case 0: return "mem";
      case 1: return "disk";
      default: return "sim";
    }
}

} // namespace

std::string
Interval::str() const
{
    if (lo == hi)
        return std::to_string(lo);
    std::string s = "[";
    s += std::to_string(lo);
    s += ',';
    s += std::to_string(hi);
    s += ']';
    return s;
}

ReferenceModel::ReferenceModel(std::string storeDir)
    : storeDir_(std::move(storeDir))
{
}

const sim::RunStats &
ReferenceModel::directStats(core::ArchKind kind, const sim::Unroll &u,
                            const sim::ConvSpec &spec)
{
    // Process-wide memo: the stats are a pure function of the triple,
    // and the shrinker re-runs the harness dozens of times over the
    // same triples — map nodes are address-stable, so references
    // handed out survive later insertions.
    static std::map<std::string, sim::RunStats> memo;
    static std::mutex m;
    const std::string key = serve::contentKey(kind, u, spec);
    std::lock_guard<std::mutex> lk(m);
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key, core::makeArch(kind, u)->run(spec))
                 .first;
    return it->second;
}

std::string
ReferenceModel::entryPath(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec) const
{
    const std::string key = serve::contentKey(kind, u, spec);
    return (fs::path(storeDir_) / key.substr(0, 2) / (key + ".json"))
        .string();
}

std::string
ReferenceModel::entryBody(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec,
                          const sim::RunStats &stats,
                          const std::string &version)
{
    std::ostringstream body;
    body << "{\"version\":\"" << version << "\",\"arch\":\""
         << core::archKindName(kind)
         << "\",\"unroll\":" << sim::toJson(u)
         << ",\"spec\":" << sim::specShapeKey(spec)
         << ",\"stats\":" << sim::toJson(stats) << "}\n";
    return body.str();
}

ReferenceModel::Entry &
ReferenceModel::entryOf(core::ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec)
{
    const std::string key = serve::contentKey(kind, u, spec);
    auto it = disk_.find(key);
    if (it == disk_.end()) {
        Entry e;
        e.kind = kind;
        e.unroll = u;
        e.spec = spec;
        it = disk_.emplace(key, std::move(e)).first;
    }
    return it->second;
}

std::string
ReferenceModel::lookupJob(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec)
{
    const std::string key = serve::contentKey(kind, u, spec);
    if (mem_.count(key)) {
        c_.cacheHits.bump();
        return "mem";
    }
    c_.cacheMisses.bump();
    Entry &e = entryOf(kind, u, spec);
    // Store load, mirroring ResultStore::load's seam order: an armed
    // read fault is consumed before the file is even looked at.
    if (readFaults_ > 0) {
        --readFaults_;
        c_.storeMisses.bump();
    } else {
        switch (e.state) {
          case DiskState::Absent:
            c_.storeMisses.bump();
            break;
          case DiskState::Good:
            c_.storeHits.bump();
            c_.cacheDiskHits.bump();
            mem_.insert(key);
            return "disk";
          case DiskState::PlantedStale:
            c_.storeStale.bump();
            break;
          case DiskState::Corrupt:
            c_.storeCorrupt.bump();
            e.state = DiskState::Absent;
            e.quarantineFile = true;
            break;
        }
    }
    // Cycle walk plus write-through.
    c_.cacheSimulated.bump();
    writeThrough(e);
    mem_.insert(key);
    return "sim";
}

void
ReferenceModel::writeThrough(Entry &e)
{
    // Mirrors ResultStore::store's seam order: a write fault drops
    // the entry entirely (previous disk state survives), a torn
    // write lands half an entry.
    if (writeFaults_ > 0) {
        --writeFaults_;
    } else if (tornWrites_ > 0) {
        --tornWrites_;
        c_.storeWrites.bump();
        e.state = DiskState::Corrupt;
    } else {
        c_.storeWrites.bump();
        e.state = DiskState::Good;
    }
}

void
ReferenceModel::notePut(core::ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec)
{
    c_.requests.bump();
    c_.puts.bump();
    writeThrough(entryOf(kind, u, spec));
    mem_.insert(serve::contentKey(kind, u, spec));
}

ExpectedResponse
ReferenceModel::handleDecoded(const serve::Request &req)
{
    ExpectedResponse r;
    r.id = req.id;
    if (req.statsProbe) {
        c_.probes.bump();
        c_.cacheEntries = mem_.size();
        r.ok = true;
        r.isProbe = true;
        return r;
    }
    if (req.metricsProbe) {
        c_.metricsProbes.bump();
        r.ok = true;
        r.isMetricsProbe = true;
        return r;
    }
    if (req.traceDrainProbe) {
        c_.traceDrains.bump();
        r.ok = true;
        r.isTraceDrain = true;
        return r;
    }
    if (req.fleetProbe) {
        // A daemon started without --fleet answers topology probes
        // with this exact error, outside the request counters (the
        // probe bypasses admission like a stats probe).
        r.ok = false;
        r.checkError = true;
        r.error = "daemon is not part of a fleet";
        return r;
    }
    if (req.put) {
        try {
            req.spec.validate();
            if (req.putSimVersion != serve::simulatorVersion())
                util::fatal("put carries simulator version \"",
                            req.putSimVersion,
                            "\", this daemon runs \"",
                            serve::simulatorVersion(), "\"");
        } catch (const std::exception &e) {
            c_.requests.bump();
            c_.errors.bump();
            r.ok = false;
            r.checkError = true;
            r.error = e.what();
            return r;
        }
        notePut(req.kind, req.unroll, req.spec);
        r.ok = true;
        r.arch = core::archKindName(req.kind);
        r.unrollJson = sim::toJson(req.unroll);
        r.stats = req.putStats;
        r.allowedTiers = {"put"};
        return r;
    }
    try {
        sim::RunStats sum;
        int worst = 0;
        if (req.hasSpec) {
            req.spec.validate();
            const std::string tier =
                lookupJob(req.kind, req.unroll, req.spec);
            worst = coldness(tier);
            sum = directStats(req.kind, req.unroll, req.spec);
        } else {
            const auto &jobs = jobsFor(req.model, req.family);
            for (const auto &job : jobs) {
                const std::string tier =
                    lookupJob(req.kind, req.unroll, job);
                worst = std::max(worst, coldness(tier));
                sum += directStats(req.kind, req.unroll, job);
            }
        }
        c_.requests.bump();
        switch (worst) {
          case 0:
            c_.memHits.bump();
            c_.memPlusDup.bump();
            break;
          case 1:
            c_.diskHits.bump();
            break;
          default:
            c_.simulated.bump();
            break;
        }
        r.ok = true;
        r.arch = core::archKindName(req.kind);
        r.unrollJson = sim::toJson(req.unroll);
        r.stats = sum;
        r.allowedTiers = {tierName(worst)};
    } catch (const std::exception &e) {
        c_.requests.bump();
        c_.errors.bump();
        r.ok = false;
        r.checkError = true;
        r.error = e.what();
    }
    return r;
}

std::vector<ExpectedResponse>
ReferenceModel::apply(const Op &op)
{
    switch (op.kind) {
      case OpKind::SimRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.spec = op.spec;
        req.hasSpec = true;
        return {handleDecoded(req)};
      }
      case OpKind::NetRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.model = op.model;
        req.family = op.family;
        return {handleDecoded(req)};
      }
      case OpKind::DupBurst: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.spec = op.spec;
        req.hasSpec = true;
        ExpectedResponse leader = handleDecoded(req);
        std::vector<ExpectedResponse> out;
        out.push_back(leader);
        const std::uint64_t followers =
            op.count > 1 ? std::uint64_t(op.count - 1) : 0;
        // Followers either coalesce into the leader ("dup") or race
        // past its completion into the freshly warm memory tier
        // ("mem") — the split is scheduling-dependent, but the sum
        // is not, and nothing past the memory tier can run twice.
        c_.requests.bump(followers);
        c_.deduped.widen(followers);
        c_.memHits.widen(followers);
        c_.memPlusDup.bump(followers);
        c_.cacheHits.widen(followers);
        if (!leader.ok)
            c_.errors.widen(followers);
        for (std::uint64_t i = 1; i <= followers; ++i) {
            ExpectedResponse f = leader;
            f.id = op.id + i;
            f.checkError = false;
            f.allowedTiers = {"mem", "dup"};
            out.push_back(std::move(f));
        }
        return out;
      }
      case OpKind::Malformed: {
        serve::Request req;
        try {
            req = serve::decodeRequest(op.raw);
        } catch (const std::exception &e) {
            ExpectedResponse r;
            r.id = salvageId(op.raw);
            r.ok = false;
            r.checkError = true;
            r.error = e.what();
            return {r};
        }
        return {handleDecoded(req)};
      }
      case OpKind::StatsProbe: {
        serve::Request req;
        req.id = op.id;
        req.statsProbe = true;
        return {handleDecoded(req)};
      }
      case OpKind::MetricsProbe: {
        serve::Request req;
        req.id = op.id;
        req.metricsProbe = true;
        return {handleDecoded(req)};
      }
      case OpKind::TraceDrain: {
        serve::Request req;
        req.id = op.id;
        req.traceDrainProbe = true;
        return {handleDecoded(req)};
      }
      case OpKind::EvictMemory:
        noteEvictMemory();
        return {};
      case OpKind::EvictEntry:
        noteEvictEntry(op);
        return {};
      case OpKind::CorruptEntry:
        noteCorruptEntry(op);
        return {};
      case OpKind::PlantStale:
        notePlantStale(op);
        return {};
      case OpKind::FsFault:
        noteFsFaults(op.faults);
        return {};
      case OpKind::Restart:
        noteRestart();
        return {};
    }
    return {};
}

void
ReferenceModel::noteEvictMemory()
{
    // CycleCache::clear() drops the memo *and* zeroes its counters,
    // so the cache expectations restart from zero too.
    mem_.clear();
    c_.cacheHits = Interval{};
    c_.cacheMisses = Interval{};
    c_.cacheDiskHits = Interval{};
    c_.cacheSimulated = Interval{};
    c_.cacheEntries = 0;
}

void
ReferenceModel::noteEvictEntry(const Op &t)
{
    entryOf(t.arch, t.unroll, t.spec).state = DiskState::Absent;
}

void
ReferenceModel::noteCorruptEntry(const Op &t)
{
    entryOf(t.arch, t.unroll, t.spec).state = DiskState::Corrupt;
}

void
ReferenceModel::notePlantStale(const Op &t)
{
    entryOf(t.arch, t.unroll, t.spec).state = DiskState::PlantedStale;
}

void
ReferenceModel::noteFsFaults(const fault::FsFaultPlan &plan)
{
    readFaults_ += plan.failReads;
    writeFaults_ += plan.failWrites;
    tornWrites_ += plan.tornWrites;
}

void
ReferenceModel::noteRestart()
{
    // A restart emulates process death: the memory tier and the store
    // session counters reset, the on-disk entries and the process-
    // global serve counters (the obs registry outlives engines) do
    // not. Armed fault budgets are process-global too.
    noteEvictMemory();
    c_.storeHits = Interval{};
    c_.storeMisses = Interval{};
    c_.storeStale = Interval{};
    c_.storeCorrupt = Interval{};
    c_.storeWrites = Interval{};
}

std::string
ReferenceModel::diffStore() const
{
    std::vector<std::string> bad;
    std::set<std::string> seenLive;
    std::set<std::string> seenQuarantine;
    std::error_code ec;
    for (fs::recursive_directory_iterator
             it(storeDir_,
                fs::directory_options::skip_permission_denied, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        if (name.find(".tmp.") != std::string::npos) {
            bad.push_back("leaked tmp file " + name);
            continue;
        }
        const std::string qsuffix = ".json.quarantined";
        if (name.size() > qsuffix.size() &&
            name.compare(name.size() - qsuffix.size(),
                         qsuffix.size(), qsuffix) == 0) {
            const std::string key =
                name.substr(0, name.size() - qsuffix.size());
            seenQuarantine.insert(key);
            auto e = disk_.find(key);
            if (e == disk_.end() || !e->second.quarantineFile)
                bad.push_back("unexpected quarantine file " + name);
            continue;
        }
        const std::string jsuffix = ".json";
        if (name.size() > jsuffix.size() &&
            name.compare(name.size() - jsuffix.size(),
                         jsuffix.size(), jsuffix) == 0) {
            const std::string key =
                name.substr(0, name.size() - jsuffix.size());
            seenLive.insert(key);
            auto e = disk_.find(key);
            if (e == disk_.end()) {
                bad.push_back("unexpected store entry " + key);
                continue;
            }
            switch (e->second.state) {
              case DiskState::Absent:
                bad.push_back("entry " + key +
                              " present but expected absent");
                break;
              case DiskState::Corrupt:
                break; // damaged bytes: any content admissible
              case DiskState::Good:
              case DiskState::PlantedStale: {
                std::ifstream is(it->path(), std::ios::binary);
                std::ostringstream text;
                text << is.rdbuf();
                try {
                    const auto doc = util::json::parse(text.str());
                    const auto &o = doc.asObject();
                    const bool stale =
                        o.at("version").asString() !=
                        serve::simulatorVersion();
                    if (e->second.state == DiskState::PlantedStale) {
                        if (!stale)
                            bad.push_back(
                                "entry " + key +
                                " should carry a stale version");
                        break;
                    }
                    if (stale) {
                        bad.push_back("entry " + key +
                                      " has a stale version stamp");
                        break;
                    }
                    const sim::RunStats got =
                        sim::runStatsFromJson(o.at("stats"));
                    const sim::RunStats &want = directStats(
                        e->second.kind, e->second.unroll,
                        e->second.spec);
                    const std::string d = sim::diffRunStats(got, want);
                    if (!d.empty())
                        bad.push_back("entry " + key +
                                      " stats diverge: " + d);
                    if (o.at("arch").asString() !=
                        core::archKindName(e->second.kind))
                        bad.push_back("entry " + key +
                                      " names the wrong arch");
                } catch (const std::exception &ex) {
                    bad.push_back("entry " + key +
                                  " unparseable: " + ex.what());
                }
                break;
              }
            }
            continue;
        }
        bad.push_back("unexpected file " + name);
    }
    for (const auto &[key, e] : disk_) {
        if (e.state != DiskState::Absent && !seenLive.count(key))
            bad.push_back("entry " + key + " missing (expected " +
                          (e.state == DiskState::Good
                               ? "good"
                               : e.state == DiskState::Corrupt
                                     ? "corrupt"
                                     : "stale") +
                          ")");
        if (e.quarantineFile && !seenQuarantine.count(key))
            bad.push_back("quarantine file for " + key + " missing");
    }
    std::string out;
    for (const std::string &b : bad) {
        if (!out.empty())
            out += "; ";
        out += b;
    }
    return out;
}

} // namespace conform
} // namespace ganacc
