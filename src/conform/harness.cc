/**
 * @file
 * Conformance-harness implementation: the two SUT wrappers, the
 * response/counter/store differs and the lockstep driver.
 */

#include "conform/harness.hh"

#include <atomic>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "conform/fdstream.hh"
#include "conform/reference.hh"
#include "core/cycle_cache.hh"
#include "fault/fs_faults.hh"
#include "fleet/ring.hh"
#include "fleet/router.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "sim/json.hh"
#include "sim/stats_diff.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ganacc {
namespace conform {

namespace {

bool
writeAllFd(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += std::size_t(n);
    }
    return true;
}

/** Line-buffered reader over a pipe fd (mirror of the daemon's). */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool
    getline(std::string &line)
    {
        while (true) {
            auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                if (buf_.empty())
                    return false;
                line.swap(buf_);
                buf_.clear();
                return true;
            }
            buf_.append(chunk, std::size_t(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

/** A daemon under test: start, exchange lines, stop-and-drain. */
class Sut
{
  public:
    virtual ~Sut() = default;

    virtual void start() = 0;

    /** Pipeline `lines`, then read one response line per request.
     *  Throws util::FatalError when the transport dies. */
    virtual std::vector<std::string>
    transact(const std::vector<std::string> &lines) = 0;

    /** Stop the daemon and drain. Returns "" when every accepted
     *  request was answered, else a description of the violation. */
    virtual std::string stop() = 0;

    /** The EvictMemory op: clear whatever memory tier this SUT's
     *  daemon actually reads (the process singleton by default; a
     *  fleet clears every shard's private cache). */
    virtual void
    evictMemory()
    {
        core::CycleCache::instance().clear();
    }

    /** Emulate process death: stop-drain, wipe the memory tier the
     *  way an exec() would, start a fresh daemon over the same
     *  store directory. A fleet overrides this with a rolling
     *  restart of one shard. */
    virtual std::string
    restart()
    {
        const std::string err = stop();
        core::CycleCache::instance().clear();
        start();
        return err;
    }

  protected:
    /** Shared drain verdict: every line sent must have been read and
     *  answered by the transport before it returned. */
    static std::string
    drainVerdict(const serve::ServeTotals &totals,
                 std::uint64_t sent, const std::string &threadError)
    {
        if (!threadError.empty())
            return "daemon thread failed: " + threadError;
        if (totals.lines != sent)
            return "daemon read " + std::to_string(totals.lines) +
                   " of " + std::to_string(sent) + " request lines";
        if (totals.responses != totals.lines)
            return "daemon answered " +
                   std::to_string(totals.responses) + " of " +
                   std::to_string(totals.lines) +
                   " accepted requests";
        return "";
    }

    static serve::EngineOptions
    engineOptions(const RunOptions &opt, const std::string &storeDir)
    {
        serve::EngineOptions eo;
        eo.maxQueue = opt.maxQueue;
        eo.cacheDir = storeDir;
        eo.deterministic = true;
        return eo;
    }
};

/** AF_UNIX daemon: serve::runSocketServer + serve::Client. */
class UnixSut : public Sut
{
  public:
    UnixSut(const RunOptions &opt, std::string storeDir)
        : opt_(opt), storeDir_(std::move(storeDir)),
          socket_(opt.scratchDir + "/sock")
    {
    }

    ~UnixSut() override
    {
        try {
            if (thread_.joinable())
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        sent_ = 0;
        totals_ = {};
        threadError_.clear();
        stop_.store(false);
        engine_ = std::make_unique<serve::Engine>(
            engineOptions(opt_, storeDir_));
        thread_ = std::thread([this] {
            try {
                totals_ =
                    serve::runSocketServer(socket_, *engine_, stop_);
            } catch (const std::exception &e) {
                threadError_ = e.what();
            }
        });
        client_ = std::make_unique<serve::Client>();
        for (int attempt = 0;; ++attempt) {
            try {
                client_->connect(socket_);
                break;
            } catch (const std::exception &) {
                if (!threadError_.empty() || attempt > 2500)
                    util::fatal("conform: cannot reach daemon at ",
                                socket_, threadError_.empty()
                                             ? ""
                                             : ": " + threadError_);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        for (const std::string &line : lines)
            client_->sendLine(line);
        sent_ += lines.size();
        std::vector<std::string> out;
        out.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i)
            out.push_back(client_->recvLine());
        return out;
    }

    std::string
    stop() override
    {
        client_->close();
        stop_.store(true);
        thread_.join();
        const std::string err =
            drainVerdict(totals_, sent_, threadError_);
        engine_.reset();
        return err;
    }

  private:
    RunOptions opt_;
    std::string storeDir_;
    std::string socket_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<serve::Client> client_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    serve::ServeTotals totals_;
    std::string threadError_;
    std::uint64_t sent_ = 0;
};

/** Pipe daemon: serve::runPipeServer over real pipe(2) pairs. */
class PipeSut : public Sut
{
  public:
    PipeSut(const RunOptions &opt, std::string storeDir)
        : opt_(opt), storeDir_(std::move(storeDir))
    {
    }

    ~PipeSut() override
    {
        try {
            if (thread_.joinable())
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        sent_ = 0;
        totals_ = {};
        threadError_.clear();
        if (::pipe(toSrv_) != 0 || ::pipe(fromSrv_) != 0)
            util::fatal("conform: pipe(2): ", std::strerror(errno));
        engine_ = std::make_unique<serve::Engine>(
            engineOptions(opt_, storeDir_));
        thread_ = std::thread([this] {
            try {
                FdIStream in(toSrv_[0]);
                FdOStream out(fromSrv_[1]);
                totals_ = serve::runPipeServer(in, out, *engine_);
                engine_->drain();
            } catch (const std::exception &e) {
                threadError_ = e.what();
            }
        });
        reader_ = std::make_unique<LineReader>(fromSrv_[0]);
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        std::string block;
        for (const std::string &line : lines) {
            block += line;
            block += '\n';
        }
        if (!writeAllFd(toSrv_[1], block))
            util::fatal("conform: pipe write failed");
        sent_ += lines.size();
        std::vector<std::string> out;
        out.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            std::string line;
            if (!reader_->getline(line))
                util::fatal("conform: daemon closed the pipe with ",
                            lines.size() - i, " responses pending");
            out.push_back(std::move(line));
        }
        return out;
    }

    std::string
    stop() override
    {
        ::close(toSrv_[1]); // EOF: the pump loop drains and returns
        toSrv_[1] = -1;
        thread_.join();
        ::close(toSrv_[0]);
        ::close(fromSrv_[1]);
        toSrv_[0] = fromSrv_[1] = -1;
        std::string leftover;
        if (reader_->getline(leftover) && !leftover.empty())
            return "daemon wrote an unsolicited response: " +
                   leftover;
        ::close(fromSrv_[0]);
        fromSrv_[0] = -1;
        reader_.reset();
        const std::string err =
            drainVerdict(totals_, sent_, threadError_);
        engine_.reset();
        return err;
    }

  private:
    RunOptions opt_;
    std::string storeDir_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<LineReader> reader_;
    std::thread thread_;
    serve::ServeTotals totals_;
    std::string threadError_;
    std::uint64_t sent_ = 0;
    int toSrv_[2] = {-1, -1};
    int fromSrv_[2] = {-1, -1};
};

/** Loopback-TCP daemon: serve::listenTcp + serveListener. */
class TcpSut : public Sut
{
  public:
    TcpSut(const RunOptions &opt, std::string storeDir)
        : opt_(opt), storeDir_(std::move(storeDir))
    {
    }

    ~TcpSut() override
    {
        try {
            if (thread_.joinable())
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        sent_ = 0;
        totals_ = {};
        threadError_.clear();
        stop_.store(false);
        engine_ = std::make_unique<serve::Engine>(
            engineOptions(opt_, storeDir_));
        // Bind synchronously, then serve on a thread: the listen
        // backlog holds the client's connect until the first poll,
        // so no connect-retry loop is needed.
        const int listener =
            serve::listenTcp("127.0.0.1:0", &bound_);
        thread_ = std::thread([this, listener] {
            try {
                totals_ =
                    serve::serveListener(listener, *engine_, stop_);
            } catch (const std::exception &e) {
                threadError_ = e.what();
            }
        });
        client_ = std::make_unique<serve::Client>();
        client_->connect(bound_);
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        for (const std::string &line : lines)
            client_->sendLine(line);
        sent_ += lines.size();
        std::vector<std::string> out;
        out.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i)
            out.push_back(client_->recvLine());
        return out;
    }

    std::string
    stop() override
    {
        client_->close();
        stop_.store(true);
        thread_.join();
        const std::string err =
            drainVerdict(totals_, sent_, threadError_);
        engine_.reset();
        return err;
    }

  private:
    RunOptions opt_;
    std::string storeDir_;
    std::string bound_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<serve::Client> client_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    serve::ServeTotals totals_;
    std::string threadError_;
    std::uint64_t sent_ = 0;
};

/// Fleet conformance runs replicate at the paper fleet's default.
constexpr int kFleetRf = 2;

/**
 * A multi-shard TCP fleet behind a fleet::Router. Every shard is an
 * in-process daemon with a *private* cache and store
 * (serve::EngineOptions::ownCache — the singleton memory tier would
 * otherwise be one shared cache across shards and hide all routing
 * behaviour). A Restart op rolls one shard at a time, round-robin,
 * rebinding the shard's original address so the ring placement never
 * moves; the router is disconnected from that shard first, which is
 * exactly the drain contract a SIGTERMed production shard honours.
 */
class FleetSut : public Sut
{
  public:
    FleetSut(const RunOptions &opt, const std::string &scratch)
        : opt_(opt)
    {
        for (int i = 0; i < opt.shards; ++i) {
            auto sh = std::make_unique<Shard>();
            sh->storeDir = scratch + "/store" + std::to_string(i);
            shards_.push_back(std::move(sh));
        }
    }

    ~FleetSut() override
    {
        try {
            if (running_)
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        for (std::size_t i = 0; i < shards_.size(); ++i)
            startShard(int(i), "127.0.0.1:0");
        fleet::RouterOptions ropt;
        for (const auto &sh : shards_)
            ropt.topology.shards.push_back(sh->bound);
        ropt.topology.rf = kFleetRf;
        router_ = std::make_unique<fleet::Router>(std::move(ropt));
        running_ = true;
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        return router_->transactLines(lines);
    }

    std::string
    stop() override
    {
        std::string err;
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            router_->disconnect(int(i));
            const std::string e = stopShard(int(i));
            if (!e.empty() && err.empty())
                err = e;
        }
        router_.reset();
        running_ = false;
        return err;
    }

    void
    evictMemory() override
    {
        for (const auto &sh : shards_)
            sh->engine->clearMemoryCache();
    }

    std::string
    restart() override
    {
        // Rolling restart: one shard, round-robin — the same order
        // the fleet model assumes. The shard keeps its address and
        // its store; it loses its memory tier and its connection.
        const int k = nextRestart_;
        nextRestart_ = (nextRestart_ + 1) % int(shards_.size());
        router_->disconnect(k);
        const std::string err = stopShard(k);
        startShard(k, shards_[std::size_t(k)]->bound);
        return err;
    }

    std::vector<std::string>
    addresses() const
    {
        std::vector<std::string> out;
        for (const auto &sh : shards_)
            out.push_back(sh->bound);
        return out;
    }

    std::vector<std::string>
    storeDirs() const
    {
        std::vector<std::string> out;
        for (const auto &sh : shards_)
            out.push_back(sh->storeDir);
        return out;
    }

  private:
    struct Shard
    {
        std::string storeDir;
        std::string bound;
        std::unique_ptr<serve::Engine> engine;
        std::thread thread;
        std::atomic<bool> stop{false};
        serve::ServeTotals totals;
        std::string threadError;
        /// Router lines sent to this shard before its current
        /// daemon session started (the router counter is cumulative
        /// across restarts, the daemon's is not).
        std::uint64_t sentBase = 0;
    };

    void
    startShard(int i, const std::string &addr)
    {
        Shard &sh = *shards_[std::size_t(i)];
        sh.totals = {};
        sh.threadError.clear();
        sh.stop.store(false);
        serve::EngineOptions eo = engineOptions(opt_, sh.storeDir);
        eo.ownCache = true;
        sh.engine = std::make_unique<serve::Engine>(eo);
        const int listener = serve::listenTcp(addr, &sh.bound);
        sh.thread = std::thread([&sh, listener] {
            try {
                sh.totals = serve::serveListener(listener, *sh.engine,
                                                 sh.stop);
            } catch (const std::exception &e) {
                sh.threadError = e.what();
            }
        });
        sh.sentBase =
            router_ ? router_->counters().sentPerShard[std::size_t(i)]
                    : 0;
    }

    /** Stop one drained shard; the caller has already disconnected
     *  the router from it (a live connection would hold the drain). */
    std::string
    stopShard(int i)
    {
        Shard &sh = *shards_[std::size_t(i)];
        sh.stop.store(true);
        sh.thread.join();
        std::string err;
        const std::uint64_t sent =
            router_->counters().sentPerShard[std::size_t(i)] -
            sh.sentBase;
        if (!sh.threadError.empty())
            err = "daemon thread failed: " + sh.threadError;
        else if (sh.totals.responses != sh.totals.lines)
            err = "daemon answered " +
                  std::to_string(sh.totals.responses) + " of " +
                  std::to_string(sh.totals.lines) +
                  " accepted requests";
        else if (sh.totals.lines != sent)
            err = "daemon read " + std::to_string(sh.totals.lines) +
                  " request lines, the router sent " +
                  std::to_string(sent);
        sh.engine.reset();
        if (!err.empty())
            err = "shard " + std::to_string(i) + ": " + err;
        return err;
    }

    RunOptions opt_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<fleet::Router> router_;
    int nextRestart_ = 0;
    bool running_ = false;
};

std::unique_ptr<Sut>
makeSut(const RunOptions &opt, const std::string &storeDir)
{
    switch (opt.mode) {
      case SutMode::Unix:
        return std::make_unique<UnixSut>(opt, storeDir);
      case SutMode::Pipe:
        return std::make_unique<PipeSut>(opt, storeDir);
      case SutMode::Tcp:
        return std::make_unique<TcpSut>(opt, storeDir);
    }
    return std::make_unique<UnixSut>(opt, storeDir);
}

/** The wire lines one operation sends. */
std::vector<std::string>
wireLines(const Op &op)
{
    switch (op.kind) {
      case OpKind::SimRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.spec = op.spec;
        req.hasSpec = true;
        return {serve::encodeRequest(req)};
      }
      case OpKind::NetRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.model = op.model;
        req.family = op.family;
        return {serve::encodeRequest(req)};
      }
      case OpKind::DupBurst: {
        std::vector<std::string> lines;
        for (int i = 0; i < op.count; ++i) {
            serve::Request req;
            req.id = op.id + std::uint64_t(i);
            req.kind = op.arch;
            req.unroll = op.unroll;
            req.spec = op.spec;
            req.hasSpec = true;
            lines.push_back(serve::encodeRequest(req));
        }
        return lines;
      }
      case OpKind::Malformed:
        return {op.raw};
      case OpKind::StatsProbe: {
        serve::Request req;
        req.id = op.id;
        req.statsProbe = true;
        return {serve::encodeRequest(req)};
      }
      case OpKind::MetricsProbe: {
        serve::Request req;
        req.id = op.id;
        req.metricsProbe = true;
        return {serve::encodeRequest(req)};
      }
      case OpKind::TraceDrain: {
        serve::Request req;
        req.id = op.id;
        req.traceDrainProbe = true;
        return {serve::encodeRequest(req)};
      }
      default:
        return {};
    }
}

/**
 * Reference model of a whole fleet: one ReferenceModel per shard plus
 * an exact mirror of the router's placement (the same Ring math over
 * the same route keys). A request op applies to the primary shard of
 * its route key; a fresh "sim" spec result additionally lands on
 * every other replica of the key as a modelled put — the router
 * replicates synchronously inside transactLines, so lockstep holds.
 * Counter expectations sum across shards: the serve counters are one
 * process-global registry series every engine bumps, and the obs
 * snapshot sums the per-shard cache/store collector series.
 */
class FleetModel
{
  public:
    FleetModel(const std::vector<std::string> &addrs,
               const std::vector<std::string> &stores)
        : ring_(topologyOf(addrs)),
          rf_(std::min(kFleetRf, int(addrs.size())))
    {
        for (const std::string &dir : stores)
            shards_.push_back(
                std::make_unique<ReferenceModel>(dir));
    }

    std::vector<ExpectedResponse>
    apply(const Op &op)
    {
        switch (op.kind) {
          case OpKind::EvictMemory:
            for (const auto &m : shards_)
                m->noteEvictMemory();
            return {};
          case OpKind::EvictEntry:
          case OpKind::CorruptEntry:
          case OpKind::PlantStale:
            // A store perturbation touches one file: the copy in the
            // key's primary store (entryPath() resolves there too).
            return owner(op).apply(op);
          case OpKind::FsFault:
            util::fatal(
                "conform: FsFault ops are unsupported in fleet runs "
                "(the budgets are process-global; which shard "
                "consumes them is scheduling, not model state)");
          case OpKind::Restart:
            // Mirrors FleetSut::restart(): same round-robin order,
            // same starting shard.
            shards_[std::size_t(nextRestart_)]->noteRestart();
            nextRestart_ = (nextRestart_ + 1) % int(shards_.size());
            return {};
          default:
            return applyRequest(op);
        }
    }

    /** Fleet-wide expectations (a stats probe's telemetry covers
     *  every shard: global serve series, summed collector series). */
    CounterExpectations
    counters() const
    {
        CounterExpectations sum;
        for (const auto &m : shards_) {
            m->syncCacheEntries();
            merge(sum, m->counters());
        }
        return sum;
    }

    std::string
    diffStore() const
    {
        std::string out;
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const std::string d = shards_[i]->diffStore();
            if (d.empty())
                continue;
            if (!out.empty())
                out += "; ";
            out += "shard " + std::to_string(i) + ": " + d;
        }
        return out;
    }

    /** The live store address of a triple: under its primary shard's
     *  store directory. */
    std::string
    entryPath(core::ArchKind kind, const sim::Unroll &u,
              const sim::ConvSpec &spec) const
    {
        const std::string key = serve::contentKey(kind, u, spec);
        return shards_[std::size_t(ring_.primary(key))]->entryPath(
            kind, u, spec);
    }

  private:
    static fleet::Topology
    topologyOf(const std::vector<std::string> &addrs)
    {
        fleet::Topology t;
        t.shards = addrs;
        t.rf = kFleetRf;
        return t;
    }

    ReferenceModel &
    owner(const Op &op)
    {
        const std::string key =
            serve::contentKey(op.arch, op.unroll, op.spec);
        return *shards_[std::size_t(ring_.primary(key))];
    }

    static void
    add(Interval &a, const Interval &b)
    {
        a.lo += b.lo;
        a.hi += b.hi;
    }

    static void
    merge(CounterExpectations &sum, const CounterExpectations &c)
    {
        add(sum.requests, c.requests);
        add(sum.errors, c.errors);
        add(sum.probes, c.probes);
        add(sum.metricsProbes, c.metricsProbes);
        add(sum.traceDrains, c.traceDrains);
        add(sum.memHits, c.memHits);
        add(sum.diskHits, c.diskHits);
        add(sum.simulated, c.simulated);
        add(sum.deduped, c.deduped);
        add(sum.memPlusDup, c.memPlusDup);
        add(sum.puts, c.puts);
        add(sum.overloaded, c.overloaded);
        add(sum.cacheHits, c.cacheHits);
        add(sum.cacheMisses, c.cacheMisses);
        add(sum.cacheDiskHits, c.cacheDiskHits);
        add(sum.cacheSimulated, c.cacheSimulated);
        sum.cacheEntries += c.cacheEntries;
        add(sum.storeHits, c.storeHits);
        add(sum.storeMisses, c.storeMisses);
        add(sum.storeStale, c.storeStale);
        add(sum.storeCorrupt, c.storeCorrupt);
        add(sum.storeWrites, c.storeWrites);
    }

    std::vector<ExpectedResponse>
    applyRequest(const Op &op)
    {
        // Mirror the router's per-line routing off the op's first
        // wire line; all lines of one op share a route key (a
        // DupBurst repeats one triple). Undecodable lines route on
        // their raw bytes, exactly like the router.
        const std::vector<std::string> lines = wireLines(op);
        serve::Request req;
        bool decoded = true;
        try {
            req = serve::decodeRequest(lines.at(0));
        } catch (...) {
            decoded = false;
        }
        std::string key;
        int primary = 0;
        if (decoded) {
            key = fleet::routeKeyOf(req);
            if (!key.empty())
                primary = ring_.primary(key);
        } else {
            primary = ring_.primary(lines.at(0));
        }
        std::vector<ExpectedResponse> out =
            shards_[std::size_t(primary)]->apply(op);
        // Replication: at most one fresh "sim" spec result per op
        // (burst followers never report "sim") lands on every other
        // replica of the key as a put.
        const bool fresh =
            decoded && req.hasSpec && !req.put && !out.empty() &&
            out.front().ok &&
            out.front().allowedTiers ==
                std::vector<std::string>{"sim"};
        if (fresh && rf_ > 1)
            for (int r : ring_.replicas(key, rf_))
                if (r != primary)
                    shards_[std::size_t(r)]->notePut(
                        req.kind, req.unroll, req.spec);
        return out;
    }

    fleet::Ring ring_;
    int rf_;
    std::vector<std::unique_ptr<ReferenceModel>> shards_;
    int nextRestart_ = 0;
};

/** Compare one decoded response against the model's expectation;
 *  "" when they agree. */
std::string
diffOneResponse(const serve::Response &got,
                const ExpectedResponse &want)
{
    if (got.id != want.id)
        return "id " + std::to_string(got.id) + ", model expects " +
               std::to_string(want.id);
    if (got.ok != want.ok)
        return std::string("ok=") + (got.ok ? "true" : "false") +
               ", model expects " + (want.ok ? "true" : "false") +
               (got.ok ? "" : " (error: " + got.error + ")");
    if (!want.ok) {
        if (want.checkError && got.error != want.error)
            return "error \"" + got.error + "\", model expects \"" +
                   want.error + "\"";
        return "";
    }
    if (got.simVersion != serve::simulatorVersion())
        return "sim version \"" + got.simVersion + "\"";
    if (want.isProbe) {
        if (got.telemetry.empty())
            return "probe response carries no telemetry";
        return "";
    }
    if (want.isMetricsProbe) {
        if (got.metricsText.empty())
            return "metrics probe response carries no Prometheus "
                   "text";
        return "";
    }
    if (want.isTraceDrain) {
        if (got.spans.empty())
            return "trace-drain response carries no span batch";
        return "";
    }
    if (got.arch != want.arch)
        return "arch \"" + got.arch + "\", model expects \"" +
               want.arch + "\"";
    if (sim::toJson(got.unroll) != want.unrollJson)
        return "unroll " + sim::toJson(got.unroll) +
               ", model expects " + want.unrollJson;
    bool tierOk = false;
    for (const std::string &t : want.allowedTiers)
        tierOk = tierOk || t == got.cache;
    if (!tierOk) {
        std::string tiers;
        for (const std::string &t : want.allowedTiers)
            tiers += (tiers.empty() ? "" : "/") + t;
        return "cache tier \"" + got.cache + "\", model admits " +
               tiers;
    }
    if (got.latencyUs != 0)
        return "latencyUs " + std::to_string(got.latencyUs) +
               " in deterministic mode";
    const std::string d = sim::diffRunStats(got.stats, want.stats);
    if (!d.empty())
        return "stats diverge: " + d;
    return "";
}

std::map<std::string, std::uint64_t>
snapshotCounters()
{
    std::map<std::string, std::uint64_t> out;
    const obs::Snapshot snap = obs::Registry::instance().snapshot();
    for (const auto &[name, v] : snap.counters())
        out[name] = v;
    return out;
}

/** Check a probe's telemetry payload against the model's counter
 *  expectations. */
void
checkCounters(std::size_t opIndex, const std::string &telemetry,
              const CounterExpectations &c,
              const std::map<std::string, std::uint64_t> &baseline,
              std::vector<Divergence> &out)
{
    const util::json::Value doc = util::json::parse(telemetry);
    const util::json::Object &root = doc.asObject();
    const util::json::Object &counters =
        root.at("counters").asObject();
    const util::json::Object &gauges = root.at("gauges").asObject();
    auto cval = [&](const char *name) -> std::uint64_t {
        const util::json::Value *v = counters.find(name);
        return v ? v->asUint64() : 0;
    };
    auto gval = [&](const char *name) -> std::uint64_t {
        const util::json::Value *v = gauges.find(name);
        return v ? v->asUint64() : 0;
    };
    auto base = [&](const char *name) -> std::uint64_t {
        auto it = baseline.find(name);
        return it == baseline.end() ? 0 : it->second;
    };
    // The serve counters are process-cumulative (the obs registry
    // outlives engines), so the model's expectations are deltas
    // against the run-start snapshot.
    auto serveDelta = [&](const char *name) {
        return cval(name) - base(name);
    };
    auto check = [&](const char *label, std::uint64_t got,
                     const Interval &want) {
        if (!want.admits(got))
            out.push_back(
                {opIndex, std::string("probe: ") + label + " = " +
                              std::to_string(got) +
                              ", model expects " + want.str()});
    };
    check("serve requests",
          serveDelta("ganacc_serve_requests_total"), c.requests);
    check("serve errors", serveDelta("ganacc_serve_errors_total"),
          c.errors);
    check("serve stats probes",
          serveDelta("ganacc_serve_stats_probes_total"), c.probes);
    check("serve metrics probes",
          serveDelta("ganacc_serve_metrics_probes_total"),
          c.metricsProbes);
    check("serve trace drains",
          serveDelta("ganacc_serve_trace_drains_total"),
          c.traceDrains);
    check("serve disk hits",
          serveDelta("ganacc_serve_disk_hits_total"), c.diskHits);
    check("serve simulated",
          serveDelta("ganacc_serve_simulated_total"), c.simulated);
    const std::uint64_t mem =
        serveDelta("ganacc_serve_mem_hits_total");
    const std::uint64_t dup = serveDelta("ganacc_serve_deduped_total");
    check("serve mem hits", mem, c.memHits);
    check("serve deduped", dup, c.deduped);
    check("serve mem+dup", mem + dup, c.memPlusDup);
    check("serve puts", serveDelta("ganacc_serve_puts_total"),
          c.puts);
    check("serve overloaded",
          serveDelta("ganacc_serve_overloaded_total"), c.overloaded);
    // Cache counters reset with CycleCache::clear(), store counters
    // with each store session: both compare absolute.
    check("cache hits", cval("ganacc_cache_mem_hits_total"),
          c.cacheHits);
    check("cache misses", cval("ganacc_cache_misses_total"),
          c.cacheMisses);
    check("cache disk hits", cval("ganacc_cache_disk_hits_total"),
          c.cacheDiskHits);
    check("cache simulated", cval("ganacc_cache_simulated_total"),
          c.cacheSimulated);
    check("store hits", cval("ganacc_store_hits_total"),
          c.storeHits);
    check("store misses", cval("ganacc_store_misses_total"),
          c.storeMisses);
    check("store stale misses",
          cval("ganacc_store_stale_misses_total"), c.storeStale);
    check("store corrupt misses",
          cval("ganacc_store_corrupt_misses_total"), c.storeCorrupt);
    check("store writes", cval("ganacc_store_writes_total"),
          c.storeWrites);
    if (gval("ganacc_cache_entries") != c.cacheEntries)
        out.push_back(
            {opIndex,
             "probe: cache entries = " +
                 std::to_string(gval("ganacc_cache_entries")) +
                 ", model expects " +
                 std::to_string(c.cacheEntries)});
    if (gval("ganacc_serve_inflight") != 0)
        out.push_back({opIndex,
                       "probe: inflight gauge nonzero in lockstep"});
}

/** Perform a CorruptEntry op on the real filesystem. `Model` is
 *  ReferenceModel or FleetModel — entryPath() resolves the store
 *  (fleet: the key's primary shard) holding the file to damage. */
template <typename Model>
void
corruptFile(const Model &model, const Op &op)
{
    const fs::path path =
        model.entryPath(op.arch, op.unroll, op.spec);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    std::string bytes;
    switch (op.corrupt) {
      case CorruptMode::Garbage:
        bytes = "@@not json@@ {{{ \xff\xfe broken";
        break;
      case CorruptMode::Truncate: {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream text;
        text << is.rdbuf();
        bytes = text.str();
        if (bytes.empty())
            bytes = ReferenceModel::entryBody(
                op.arch, op.unroll, op.spec,
                ReferenceModel::directStats(op.arch, op.unroll,
                                            op.spec),
                serve::simulatorVersion());
        bytes.resize(bytes.size() / 2);
        break;
      }
      case CorruptMode::ZeroByte:
        break; // empty file
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
}

/** Perform a PlantStale op: a fully valid entry whose version stamp
 *  names a foreign simulator and whose counters are deliberately
 *  perturbed — a store that skips stale-version invalidation serves
 *  these wrong numbers, which is exactly what the harness's
 *  self-test must catch. */
template <typename Model>
void
plantStaleFile(const Model &model, const Op &op)
{
    const fs::path path =
        model.entryPath(op.arch, op.unroll, op.spec);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    sim::RunStats st =
        ReferenceModel::directStats(op.arch, op.unroll, op.spec);
    st.cycles += 1; // provably wrong, minimally so
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << ReferenceModel::entryBody(op.arch, op.unroll, op.spec, st,
                                    "ganacc-0.0.0+conform-stale");
}

/** RAII: disarm the store bug and the fault budgets on every exit
 *  path, so a throwing run cannot poison the next one. */
struct ProcessStateGuard
{
    ~ProcessStateGuard()
    {
        serve::setStoreBugForTesting(serve::StoreBug::None);
        fault::clearFsFaults();
    }
};

/**
 * The lockstep loop plus the final drain and store scan, shared by
 * the single-daemon and fleet paths. `Model` is ReferenceModel or
 * FleetModel (same apply/counters/diffStore/entryPath surface).
 */
template <typename Model>
void
driveSequence(const std::vector<Op> &seq, const RunOptions &opt,
              Sut &sut, Model &model, Report &rep,
              const std::map<std::string, std::uint64_t> &baseline)
{
    auto diverged = [&] {
        return int(rep.divergences.size()) >= opt.maxDivergences;
    };

    for (std::size_t i = 0; i < seq.size() && !diverged(); ++i) {
        const Op &op = seq[i];
        rep.opsApplied = i + 1;
        try {
            if (op.sendsRequests()) {
                const std::vector<std::string> lines = wireLines(op);
                rep.linesSent += lines.size();
                const std::vector<std::string> raw =
                    sut.transact(lines);
                const std::vector<ExpectedResponse> want =
                    model.apply(op);
                if (raw.size() != want.size()) {
                    rep.divergences.push_back(
                        {i, std::to_string(raw.size()) +
                                " responses to " +
                                std::to_string(want.size()) +
                                " requests"});
                    continue;
                }
                for (std::size_t r = 0; r < raw.size(); ++r) {
                    serve::Response rsp;
                    try {
                        rsp = serve::decodeResponse(raw[r]);
                    } catch (const std::exception &e) {
                        rep.divergences.push_back(
                            {i, std::string(
                                    "undecodable response: ") +
                                    e.what() + ": " + raw[r]});
                        continue;
                    }
                    const std::string d =
                        diffOneResponse(rsp, want[r]);
                    if (!d.empty())
                        rep.divergences.push_back({i, d});
                    if (want[r].isProbe && rsp.ok &&
                        !rsp.telemetry.empty())
                        checkCounters(i, rsp.telemetry,
                                      model.counters(), baseline,
                                      rep.divergences);
                }
            } else {
                switch (op.kind) {
                  case OpKind::EvictMemory:
                    sut.evictMemory();
                    break;
                  case OpKind::EvictEntry: {
                    std::error_code ec;
                    fs::remove(model.entryPath(op.arch, op.unroll,
                                               op.spec),
                               ec);
                    break;
                  }
                  case OpKind::CorruptEntry:
                    corruptFile(model, op);
                    break;
                  case OpKind::PlantStale:
                    plantStaleFile(model, op);
                    break;
                  case OpKind::FsFault:
                    fault::armFsFaults(op.faults);
                    break;
                  case OpKind::Restart: {
                    const std::string err = sut.restart();
                    if (!err.empty())
                        rep.divergences.push_back({i, err});
                    break;
                  }
                  default:
                    break;
                }
                model.apply(op);
            }
        } catch (const std::exception &e) {
            rep.divergences.push_back(
                {i, std::string("harness: ") + e.what()});
            break;
        }
        if (opt.storeCheckInterval &&
            (i + 1) % opt.storeCheckInterval == 0) {
            const std::string d = model.diffStore();
            if (!d.empty())
                rep.divergences.push_back({i, "store scan: " + d});
        }
    }

    try {
        const std::string err = sut.stop();
        if (!err.empty())
            rep.divergences.push_back({seq.size(), "drain: " + err});
    } catch (const std::exception &e) {
        rep.divergences.push_back(
            {seq.size(), std::string("drain: ") + e.what()});
    }
    const std::string d = model.diffStore();
    if (!d.empty())
        rep.divergences.push_back(
            {seq.size(), "final store scan: " + d});
}

} // namespace

std::string
sutModeName(SutMode m)
{
    switch (m) {
      case SutMode::Unix: return "unix";
      case SutMode::Pipe: return "pipe";
      case SutMode::Tcp:  return "tcp";
    }
    return "unix";
}

std::string
defaultScratchDir()
{
    return (fs::temp_directory_path() /
            ("ganacc-conform-" + std::to_string(::getpid())))
        .string();
}

std::string
Report::text() const
{
    std::ostringstream os;
    for (const Divergence &d : divergences)
        os << "op " << d.opIndex << ": " << d.what << "\n";
    os << opsApplied << " ops applied, " << linesSent
       << " lines sent, " << divergences.size() << " divergences";
    return os.str();
}

Report
runConformance(const std::vector<Op> &seq, const RunOptions &opt)
{
    if (opt.scratchDir.empty())
        util::fatal("conform: RunOptions.scratchDir must be set");
    if (opt.shards < 1)
        util::fatal("conform: RunOptions.shards must be >= 1");
    Report rep;
    ProcessStateGuard guard;
    fault::clearFsFaults();
    serve::setStoreBugForTesting(opt.bug);
    fs::remove_all(opt.scratchDir);
    fs::create_directories(opt.scratchDir);
    core::CycleCache::instance().clear();
    const auto baseline = snapshotCounters();

    if (opt.shards > 1) {
        FleetSut sut(opt, opt.scratchDir);
        sut.start();
        // The ring places on bound addresses, so the model can only
        // exist once the shards are up.
        FleetModel model(sut.addresses(), sut.storeDirs());
        driveSequence(seq, opt, sut, model, rep, baseline);
    } else {
        const std::string storeDir = opt.scratchDir + "/store";
        ReferenceModel model(storeDir);
        std::unique_ptr<Sut> sut = makeSut(opt, storeDir);
        sut->start();
        driveSequence(seq, opt, *sut, model, rep, baseline);
    }
    return rep;
}

} // namespace conform
} // namespace ganacc
