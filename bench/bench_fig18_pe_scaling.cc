/**
 * @file
 * Fig. 18 reproduction: performance of the top three designs
 * (NLR-OST, unique ZFOST, ZFOST-ZFWST) as the PE count sweeps, under
 * deferred synchronization. The paper's headline: ZFOST-ZFWST with
 * 512 PEs roughly matches the other two with 1024 PEs.
 */

#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;
    using sched::SyncPolicy;

    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    bench::CacheScope cache(args);
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    bench::banner("Fig. 18 — performance vs PE count",
                  "ZFOST-ZFWST best at every size; with 512 PEs it "
                  "matches NLR-OST and ZFOST at 1024 PEs");

    const std::vector<int> pe_counts = {256, 512, 1024, 1680, 2048};

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (iterations/sec at 200 MHz, deferred sync)\n";
        util::Table t({"PEs", "NLR-OST", "ZFOST", "ZFOST-ZFWST",
                       "ZF advantage"});
        // Each PE count is an independent three-design evaluation:
        // sweep them on the worker pool, print rows in size order.
        struct Rates
        {
            double nlrOst = 0, zfost = 0, zz = 0;
        };
        auto rows = util::parallelMap(
            pe_counts,
            [&](int pes) {
                auto rate = [&](const Design &d) {
                    return 200e6 /
                           double(sched::iterationCycles(
                               d, m, SyncPolicy::Deferred));
                };
                Rates r;
                r.nlrOst = rate(
                    Design::combo(ArchKind::NLR, ArchKind::OST, pes));
                r.zfost = rate(Design::unique(ArchKind::ZFOST, pes));
                r.zz = rate(Design::combo(ArchKind::ZFOST,
                                          ArchKind::ZFWST, pes));
                return r;
            },
            jobs);
        for (std::size_t i = 0; i < pe_counts.size(); ++i)
            t.addRow(pe_counts[i], rows[i].nlrOst, rows[i].zfost,
                     rows[i].zz,
                     rows[i].zz /
                         std::max(rows[i].nlrOst, rows[i].zfost));
        t.print(std::cout);
    }

    // The crossover claim, spelled out.
    gan::GanModel dcgan = gan::makeDcgan();
    auto cycles = [&](const Design &d) {
        return sched::iterationCycles(d, dcgan, SyncPolicy::Deferred);
    };
    std::cout << "\nCrossover check (DCGAN iteration cycles): "
              << "ZFOST-ZFWST@512 = "
              << cycles(Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                      512))
              << ", NLR-OST@1024 = "
              << cycles(Design::combo(ArchKind::NLR, ArchKind::OST,
                                      1024))
              << ", ZFOST@1024 = "
              << cycles(Design::unique(ArchKind::ZFOST, 1024)) << "\n";
    return 0;
}
