/**
 * @file
 * Design-point timing implementation.
 */

#include "sched/design.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/cycle_cache.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sched {

using core::ArchKind;
using core::BankRole;
using gan::GanModel;
using sim::Phase;
using sim::RunStats;

std::string
syncPolicyName(SyncPolicy p)
{
    return p == SyncPolicy::Synchronized ? "sync" : "deferred";
}

Design
Design::unique(ArchKind kind, int total_pes)
{
    GANACC_ASSERT(total_pes >= 4, "design too small");
    Design d;
    d.name_ = core::archKindName(kind);
    d.isCombo_ = false;
    d.totalPes_ = total_pes;
    d.stPes_ = total_pes;
    d.wPes_ = total_pes;
    d.stKind_ = kind;
    d.wKind_ = kind;
    return d;
}

Design
Design::combo(ArchKind st_kind, ArchKind w_kind, int total_pes)
{
    GANACC_ASSERT(total_pes >= 7, "design too small to split 5:2");
    // Eq. (8): ST : W = 2.5 : 1, i.e. a 5:2 PE split.
    int st = total_pes * 5 / 7;
    return comboWithSplit(st_kind, w_kind, st, total_pes - st);
}

Design
Design::comboWithSplit(ArchKind st_kind, ArchKind w_kind, int st_pes,
                       int w_pes)
{
    GANACC_ASSERT(st_pes >= 1 && w_pes >= 1,
                  "both banks need at least one PE");
    Design d;
    d.name_ = core::archKindName(st_kind) + "-" +
              core::archKindName(w_kind);
    d.isCombo_ = true;
    d.totalPes_ = st_pes + w_pes;
    d.stPes_ = st_pes;
    d.wPes_ = w_pes;
    d.stKind_ = st_kind;
    d.wKind_ = w_kind;
    return d;
}

RunStats
phaseStats(const sim::Architecture &arch, const GanModel &model, Phase p)
{
    RunStats total;
    for (const sim::ConvSpec &job : sim::phaseJobs(model, p))
        total += arch.run(job);
    return total;
}

namespace {

/** Run one phase on the bank owning it, with the Table V unrolling
 *  for that (architecture, role, family). Per-job stats come from the
 *  memoizing CycleCache, so layers repeated across phases, designs
 *  and sweep points simulate once. */
RunStats
runPhaseOnBank(ArchKind kind, BankRole role, int pes,
               const GanModel &model, Phase p)
{
    sim::Unroll u = core::paperUnroll(kind, role, sim::familyOf(p), pes);
    RunStats total;
    for (const sim::ConvSpec &job : sim::phaseJobs(model, p))
        total += core::cachedRun(kind, u, job);
    return total;
}

/** One update's bank cycles given per-phase multiplicities. */
UpdateTiming
updateTiming(const Design &design, const GanModel &model,
             const std::vector<std::pair<Phase, int>> &st_phases,
             const std::vector<std::pair<Phase, int>> &w_phases)
{
    UpdateTiming t;
    for (auto [phase, count] : st_phases) {
        RunStats st = runPhaseOnBank(design.stKind(), BankRole::ST,
                                     design.stPes(), model, phase);
        for (int i = 0; i < count; ++i) {
            t.bank.st += st.cycles;
            t.stStats += st;
        }
    }
    for (auto [phase, count] : w_phases) {
        RunStats st = runPhaseOnBank(design.wKind(), BankRole::W,
                                     design.wPes(), model, phase);
        for (int i = 0; i < count; ++i) {
            t.bank.w += st.cycles;
            t.wStats += st;
        }
    }
    // Synchronized: the loss barrier serializes the banks. Deferred:
    // combos overlap; a unique design still shares one array.
    t.syncCycles = t.bank.serial();
    t.deferredCycles =
        design.isCombo() ? t.bank.overlapped() : t.bank.serial();
    return t;
}

} // namespace

UpdateTiming
discriminatorUpdateTiming(const Design &design, const GanModel &model)
{
    // Fig. 8(a): per sample-pair, 5 ST passes and 2 W passes.
    return updateTiming(design, model,
                        {{Phase::GenForward, 1},
                         {Phase::DiscForward, 2},
                         {Phase::DiscBackward, 2}},
                        {{Phase::DiscWeight, 2}});
}

UpdateTiming
generatorUpdateTiming(const Design &design, const GanModel &model)
{
    // Fig. 8(b): per sample, 4 ST passes and 1 W pass.
    return updateTiming(design, model,
                        {{Phase::GenForward, 1},
                         {Phase::DiscForward, 1},
                         {Phase::DiscBackward, 1},
                         {Phase::GenBackward, 1}},
                        {{Phase::GenWeight, 1}});
}

std::uint64_t
iterationCycles(const Design &design, const GanModel &model,
                SyncPolicy policy)
{
    UpdateTiming d = discriminatorUpdateTiming(design, model);
    UpdateTiming g = generatorUpdateTiming(design, model);
    if (policy == SyncPolicy::Synchronized)
        return d.syncCycles + g.syncCycles;
    return d.deferredCycles + g.deferredCycles;
}

double
iterationGops(const Design &design, const GanModel &model,
              SyncPolicy policy, double frequency_hz)
{
    // Useful work of one iteration: the effective MACs of every phase
    // pass, counted once per execution.
    auto phase_macs = [&](Phase p) {
        return sim::totalEffectiveMacs(sim::phaseJobs(model, p));
    };
    std::uint64_t macs = phase_macs(Phase::GenForward) * 2 +
                         phase_macs(Phase::DiscForward) * 3 +
                         phase_macs(Phase::DiscBackward) * 3 +
                         phase_macs(Phase::GenBackward) +
                         phase_macs(Phase::DiscWeight) * 2 +
                         phase_macs(Phase::GenWeight);
    std::uint64_t cycles = iterationCycles(design, model, policy);
    GANACC_ASSERT(cycles > 0, "zero-cycle iteration");
    double seconds = double(cycles) / frequency_hz;
    return 2.0 * double(macs) / seconds / 1e9;
}

} // namespace sched
} // namespace ganacc
