/**
 * @file
 * FaultPlan parsing: a minimal recursive-descent JSON reader covering
 * exactly the subset the plan schema uses (objects, arrays, numbers,
 * strings, booleans). No third-party JSON dependency exists in this
 * repository, and the schema is small enough that a purpose-built
 * parser with precise error positions beats a generic one.
 */

#include "fault/fault_plan.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ganacc {
namespace fault {

namespace {

/** Cursor over the JSON text with schema-aware helpers. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    FaultPlan
    plan()
    {
        FaultPlan p;
        expect('{');
        if (!tryConsume('}')) {
            do {
                const std::string key = string();
                expect(':');
                if (key == "seed") {
                    p.seed = std::uint64_t(number());
                } else if (key == "pe") {
                    peArray(p);
                } else if (key == "transient") {
                    transientObject(p);
                } else if (key == "memory") {
                    memoryObject(p);
                } else if (key == "saturation") {
                    saturationObject(p);
                } else {
                    fail("unknown plan key \"" + key + "\"");
                }
            } while (tryConsume(','));
            expect('}');
        }
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the plan object");
        return p;
    }

  private:
    void
    peArray(FaultPlan &p)
    {
        expect('[');
        if (tryConsume(']'))
            return;
        do {
            PeFault f;
            bool have_kind = false;
            expect('{');
            do {
                const std::string key = string();
                expect(':');
                if (key == "lane") {
                    f.lane = int(number());
                } else if (key == "kind") {
                    const std::string kind = string();
                    if (kind == "stuck0")
                        f.kind = PeFault::Kind::StuckAtZero;
                    else if (kind == "stuck")
                        f.kind = PeFault::Kind::StuckAtValue;
                    else
                        fail("unknown PE fault kind \"" + kind + "\"");
                    have_kind = true;
                } else if (key == "value") {
                    f.value = float(number());
                } else {
                    fail("unknown PE fault key \"" + key + "\"");
                }
            } while (tryConsume(','));
            expect('}');
            if (!have_kind)
                fail("PE fault without a \"kind\"");
            if (f.lane < 0)
                fail("PE fault lane must be >= 0");
            p.peFaults.push_back(f);
        } while (tryConsume(','));
        expect(']');
    }

    void
    transientObject(FaultPlan &p)
    {
        expect('{');
        do {
            const std::string key = string();
            expect(':');
            if (key == "sitesPerJob")
                p.transient.sitesPerJob = int(number());
            else if (key == "bits")
                p.transient.bits = int(number());
            else
                fail("unknown transient key \"" + key + "\"");
        } while (tryConsume(','));
        expect('}');
        if (p.transient.sitesPerJob < 0)
            fail("transient.sitesPerJob must be >= 0");
        if (p.transient.bits < 1 || p.transient.bits > 16)
            fail("transient.bits must be in [1, 16]");
    }

    void
    memoryObject(FaultPlan &p)
    {
        expect('{');
        do {
            const std::string key = string();
            expect(':');
            if (key == "flipProbPerAccess")
                p.memory.flipProbPerAccess = number();
            else if (key == "bits")
                p.memory.bits = int(number());
            else
                fail("unknown memory key \"" + key + "\"");
        } while (tryConsume(','));
        expect('}');
        if (p.memory.flipProbPerAccess < 0.0 ||
            p.memory.flipProbPerAccess > 1.0)
            fail("memory.flipProbPerAccess must be in [0, 1]");
        if (p.memory.bits < 1 || p.memory.bits > 16)
            fail("memory.bits must be in [1, 16]");
    }

    void
    saturationObject(FaultPlan &p)
    {
        expect('{');
        do {
            const std::string key = string();
            expect(':');
            if (key == "fracBits")
                p.saturation.fracBits = int(number());
            else
                fail("unknown saturation key \"" + key + "\"");
        } while (tryConsume(','));
        expect('}');
        if (p.saturation.fracBits != -1 &&
            (p.saturation.fracBits < 1 || p.saturation.fracBits > 15))
            fail("saturation.fracBits must be in [1, 15] or -1");
    }

    // ---- lexical layer ----

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                fail("escape sequences are not supported");
            out += text_[pos_++];
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    double
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        std::istringstream is(text_.substr(start, pos_ - start));
        double v = 0.0;
        is >> v;
        if (is.fail())
            fail("malformed number");
        return v;
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        util::fatal("fault plan: ", what, " at offset ", pos_);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
FaultPlan::empty() const
{
    return peFaults.empty() && transient.sitesPerJob == 0 &&
           memory.flipProbPerAccess == 0.0 && saturation.fracBits == -1;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const auto &f : peFaults) {
        os << " pe[" << f.lane << "]=";
        if (f.kind == PeFault::Kind::StuckAtZero)
            os << "stuck0";
        else
            os << "stuck(" << f.value << ")";
    }
    if (transient.sitesPerJob > 0)
        os << " transient(sites=" << transient.sitesPerJob
           << ",bits=" << transient.bits << ")";
    if (memory.flipProbPerAccess > 0.0)
        os << " memory(p=" << memory.flipProbPerAccess
           << ",bits=" << memory.bits << ")";
    if (saturation.fracBits != -1)
        os << " saturation(fracBits=" << saturation.fracBits << ")";
    if (empty())
        os << " (empty)";
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &json)
{
    Parser p(json);
    return p.plan();
}

FaultPlan
FaultPlan::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open fault plan '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return parse(os.str());
}

} // namespace fault
} // namespace ganacc
