/**
 * @file
 * Wire-protocol implementation.
 */

#include "serve/protocol.hh"

#include <cstdio>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace serve {

const std::string &
simulatorVersion()
{
    // <project version>+<cycle-model generation>: regenerate
    // tests/golden/serve_responses.jsonl when bumping.
    static const std::string v = "ganacc-1.0.0+cycles1";
    return v;
}

std::string
encodeRequest(const Request &req)
{
    std::ostringstream os;
    os << "{\"v\":" << kProtocolVersion << ",\"id\":" << req.id;
    // The trace context rides along on any request form. Omitted
    // entirely when absent, so untraced requests encode byte-
    // identically to the pre-tracing wire format (the serve golden
    // replay pins this).
    if (!req.trace.empty())
        os << ",\"trace\":\"" << util::escapeJson(req.trace) << "\"";
    if (req.statsProbe) {
        os << ",\"stats\":true}";
        return os.str();
    }
    if (req.fleetProbe) {
        os << ",\"fleet\":true}";
        return os.str();
    }
    if (req.metricsProbe) {
        os << ",\"metrics\":true}";
        return os.str();
    }
    if (req.traceDrainProbe) {
        os << ",\"trace-drain\":true}";
        return os.str();
    }
    if (req.put) {
        os << ",\"put\":true,\"arch\":\""
           << core::archKindName(req.kind) << "\""
           << ",\"unroll\":" << sim::toJson(req.unroll)
           << ",\"spec\":" << sim::toJson(req.spec)
           << ",\"result\":" << sim::toJson(req.putStats)
           << ",\"sim\":\"" << util::escapeJson(req.putSimVersion)
           << "\"}";
        return os.str();
    }
    os << ",\"arch\":\"" << core::archKindName(req.kind) << "\""
       << ",\"unroll\":" << sim::toJson(req.unroll);
    if (req.hasSpec)
        os << ",\"spec\":" << sim::toJson(req.spec);
    else
        os << ",\"model\":\"" << util::escapeJson(req.model) << "\""
           << ",\"family\":\"" << util::escapeJson(req.family) << "\"";
    os << "}";
    return os.str();
}

Request
decodeRequest(const std::string &line)
{
    const util::json::Value doc = util::json::parse(line);
    const util::json::Object &o = doc.asObject();
    const int v = o.at("v").asInt();
    if (v != kProtocolVersion)
        util::fatal("unsupported protocol version ", v, " (this "
                    "daemon speaks v", kProtocolVersion, ")");
    Request req;
    req.id = o.at("id").asUint64();
    // The optional distributed-tracing context; legal on every form.
    if (o.contains("trace"))
        req.trace = o.at("trace").asString();
    if (o.contains("put")) {
        // Replication write: a finished result plus the full triple
        // it belongs to and the stamp it was computed under.
        if (!o.at("put").asBool())
            util::fatal("\"put\" must be true when present");
        if (o.contains("model") || o.contains("family") ||
            o.contains("stats") || o.contains("fleet") ||
            o.contains("metrics") || o.contains("trace-drain"))
            util::fatal("a put carries exactly arch, unroll, spec, "
                        "result and sim");
        req.put = true;
        const std::string arch = o.at("arch").asString();
        auto kind = core::archKindFromName(arch);
        if (!kind)
            util::fatal("unknown architecture \"", arch,
                        "\" (NLR, WST, OST, ZFOST, ZFWST)");
        req.kind = *kind;
        req.unroll = sim::unrollFromJson(o.at("unroll"));
        req.hasSpec = true;
        req.spec = sim::convSpecFromJson(o.at("spec"));
        req.putStats = sim::runStatsFromJson(o.at("result"));
        req.putSimVersion = o.at("sim").asString();
        return req;
    }
    if (o.contains("fleet")) {
        // Topology probe: {"v":1,"id":N,"fleet":true}, nothing else.
        if (!o.at("fleet").asBool())
            util::fatal("\"fleet\" must be true when present");
        if (o.contains("spec") || o.contains("model") ||
            o.contains("family") || o.contains("arch") ||
            o.contains("stats") || o.contains("metrics") ||
            o.contains("trace-drain"))
            util::fatal("a fleet probe carries no simulation payload");
        req.fleetProbe = true;
        return req;
    }
    if (o.contains("stats")) {
        // Telemetry probe: {"v":1,"id":N,"stats":true}, nothing else.
        if (!o.at("stats").asBool())
            util::fatal("\"stats\" must be true when present");
        if (o.contains("spec") || o.contains("model") ||
            o.contains("family") || o.contains("arch") ||
            o.contains("metrics") || o.contains("trace-drain"))
            util::fatal("a stats probe carries no simulation payload");
        req.statsProbe = true;
        return req;
    }
    if (o.contains("metrics")) {
        // Prometheus scrape probe: {"v":1,"id":N,"metrics":true}.
        if (!o.at("metrics").asBool())
            util::fatal("\"metrics\" must be true when present");
        if (o.contains("spec") || o.contains("model") ||
            o.contains("family") || o.contains("arch") ||
            o.contains("trace-drain"))
            util::fatal("a metrics probe carries no simulation "
                        "payload");
        req.metricsProbe = true;
        return req;
    }
    if (o.contains("trace-drain")) {
        // Span-batch drain probe: {"v":1,"id":N,"trace-drain":true}.
        if (!o.at("trace-drain").asBool())
            util::fatal("\"trace-drain\" must be true when present");
        if (o.contains("spec") || o.contains("model") ||
            o.contains("family") || o.contains("arch"))
            util::fatal("a trace-drain probe carries no simulation "
                        "payload");
        req.traceDrainProbe = true;
        return req;
    }
    const std::string arch = o.at("arch").asString();
    auto kind = core::archKindFromName(arch);
    if (!kind)
        util::fatal("unknown architecture \"", arch,
                    "\" (NLR, WST, OST, ZFOST, ZFWST)");
    req.kind = *kind;
    req.unroll = sim::unrollFromJson(o.at("unroll"));
    const bool hasSpec = o.contains("spec");
    const bool hasModel = o.contains("model") || o.contains("family");
    if (hasSpec == hasModel)
        util::fatal("request must carry exactly one of \"spec\" or "
                    "\"model\"+\"family\"");
    if (hasSpec) {
        req.hasSpec = true;
        req.spec = sim::convSpecFromJson(o.at("spec"));
    } else {
        req.model = o.at("model").asString();
        req.family = o.at("family").asString();
    }
    return req;
}

std::string
encodeResponse(const Response &rsp)
{
    std::ostringstream os;
    os << "{\"v\":" << kProtocolVersion << ",\"id\":" << rsp.id
       << ",\"ok\":" << (rsp.ok ? "true" : "false");
    if (!rsp.ok) {
        os << ",\"error\":\"" << util::escapeJson(rsp.error) << "\"}";
        return os.str();
    }
    if (!rsp.telemetry.empty()) {
        // Stats-probe responses replace the simulation payload with
        // the (already canonical JSON) metric snapshot.
        os << ",\"sim\":\"" << util::escapeJson(rsp.simVersion)
           << "\",\"telemetry\":" << rsp.telemetry << "}";
        return os.str();
    }
    if (!rsp.fleet.empty()) {
        // Fleet-probe responses carry the shard map instead.
        os << ",\"sim\":\"" << util::escapeJson(rsp.simVersion)
           << "\",\"fleet\":" << rsp.fleet << "}";
        return os.str();
    }
    if (!rsp.metricsText.empty()) {
        // Metrics-probe responses carry the Prometheus text as one
        // JSON string (it is not JSON itself).
        os << ",\"sim\":\"" << util::escapeJson(rsp.simVersion)
           << "\",\"metrics\":\"" << util::escapeJson(rsp.metricsText)
           << "\"}";
        return os.str();
    }
    if (!rsp.spans.empty()) {
        // Trace-drain responses carry the (already canonical JSON)
        // span batch.
        os << ",\"sim\":\"" << util::escapeJson(rsp.simVersion)
           << "\",\"spans\":" << rsp.spans << "}";
        return os.str();
    }
    os << ",\"sim\":\"" << util::escapeJson(rsp.simVersion) << "\""
       << ",\"arch\":\"" << util::escapeJson(rsp.arch) << "\""
       << ",\"unroll\":" << sim::toJson(rsp.unroll) << ",\"cache\":\""
       << util::escapeJson(rsp.cache) << "\",\"latencyUs\":"
       << rsp.latencyUs << ",\"stats\":" << sim::toJson(rsp.stats)
       << "}";
    return os.str();
}

Response
decodeResponse(const std::string &line)
{
    const util::json::Value doc = util::json::parse(line);
    const util::json::Object &o = doc.asObject();
    const int v = o.at("v").asInt();
    if (v != kProtocolVersion)
        util::fatal("unsupported protocol version ", v);
    Response rsp;
    rsp.id = o.at("id").asUint64();
    rsp.ok = o.at("ok").asBool();
    if (!rsp.ok) {
        rsp.error = o.at("error").asString();
        return rsp;
    }
    rsp.simVersion = o.at("sim").asString();
    if (o.contains("telemetry")) {
        // Round-trips byte-identically: util::json objects preserve
        // insertion order and the snapshot holds only exact integers.
        rsp.telemetry = o.at("telemetry").dump();
        return rsp;
    }
    if (o.contains("fleet")) {
        rsp.fleet = o.at("fleet").dump();
        return rsp;
    }
    if (o.contains("metrics")) {
        rsp.metricsText = o.at("metrics").asString();
        return rsp;
    }
    if (o.contains("spans")) {
        rsp.spans = o.at("spans").dump();
        return rsp;
    }
    rsp.arch = o.at("arch").asString();
    rsp.unroll = sim::unrollFromJson(o.at("unroll"));
    rsp.cache = o.at("cache").asString();
    rsp.latencyUs = o.at("latencyUs").asUint64();
    rsp.stats = sim::runStatsFromJson(o.at("stats"));
    return rsp;
}

Response
errorResponse(std::uint64_t id, const std::string &message)
{
    Response rsp;
    rsp.id = id;
    rsp.ok = false;
    rsp.error = message;
    return rsp;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
encodeSpanBatch(const std::vector<obs::TraceEvent> &events)
{
    util::json::Array out;
    for (const obs::TraceEvent &e : events) {
        util::json::Object ev;
        ev.set("name", util::json::Value(e.name));
        if (!e.cat.empty())
            ev.set("cat", util::json::Value(e.cat));
        ev.set("ph", util::json::Value(std::string(1, e.ph)));
        ev.set("tid", util::json::Value(
                          std::uint64_t(e.tid < 0 ? 0 : e.tid)));
        ev.set("ts", util::json::Value(e.ts));
        ev.set("dur", util::json::Value(e.dur));
        if (!e.args.empty())
            ev.set("args", util::json::parse(e.args));
        out.push_back(util::json::Value(std::move(ev)));
    }
    util::json::Object root;
    root.set("events", util::json::Value(std::move(out)));
    return util::json::Value(std::move(root)).dump();
}

std::vector<obs::TraceEvent>
decodeSpanBatch(const std::string &text)
{
    const util::json::Value doc = util::json::parse(text);
    const util::json::Array &events =
        doc.asObject().at("events").asArray();
    std::vector<obs::TraceEvent> out;
    out.reserve(events.size());
    for (const util::json::Value &v : events) {
        const util::json::Object &o = v.asObject();
        obs::TraceEvent e;
        e.name = o.at("name").asString();
        if (o.contains("cat"))
            e.cat = o.at("cat").asString();
        const std::string ph = o.at("ph").asString();
        if (ph.size() != 1)
            util::fatal("span batch event has a malformed ph \"", ph,
                        "\"");
        e.ph = ph[0];
        e.tid = int(o.at("tid").asUint64());
        e.ts = o.at("ts").asUint64();
        e.dur = o.at("dur").asUint64();
        if (o.contains("args"))
            e.args = o.at("args").dump();
        out.push_back(std::move(e));
    }
    return out;
}

std::string
contentKey(core::ArchKind kind, const sim::Unroll &u,
           const sim::ConvSpec &spec, const std::string &version)
{
    std::ostringstream os;
    os << version << '|' << core::archKindName(kind) << '|'
       << sim::toJson(u) << '|' << sim::specShapeKey(spec);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(os.str())));
    return hex;
}

} // namespace serve
} // namespace ganacc
