/**
 * @file
 * Canonical JSON encodings of RunStats, ConvSpec and Unroll.
 */

#include "sim/json.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace sim {

std::string
toJson(const RunStats &st)
{
    std::ostringstream os;
    os << "{\"cycles\":" << st.cycles << ",\"nPes\":" << st.nPes
       << ",\"effectiveMacs\":" << st.effectiveMacs
       << ",\"ineffectualMacs\":" << st.ineffectualMacs
       << ",\"idlePeSlots\":" << st.idlePeSlots
       << ",\"gatedSlots\":" << st.gatedSlots
       << ",\"weightLoads\":" << st.weightLoads
       << ",\"inputLoads\":" << st.inputLoads
       << ",\"outputReads\":" << st.outputReads
       << ",\"outputWrites\":" << st.outputWrites << "}";
    return os.str();
}

RunStats
runStatsFromJson(const util::json::Value &v)
{
    const util::json::Object &o = v.asObject();
    RunStats st;
    st.cycles = o.at("cycles").asUint64();
    st.nPes = o.at("nPes").asUint64();
    st.effectiveMacs = o.at("effectiveMacs").asUint64();
    st.ineffectualMacs = o.at("ineffectualMacs").asUint64();
    st.idlePeSlots = o.at("idlePeSlots").asUint64();
    st.gatedSlots = o.at("gatedSlots").asUint64();
    st.weightLoads = o.at("weightLoads").asUint64();
    st.inputLoads = o.at("inputLoads").asUint64();
    st.outputReads = o.at("outputReads").asUint64();
    st.outputWrites = o.at("outputWrites").asUint64();
    return st;
}

std::string
toJson(const Unroll &u)
{
    std::ostringstream os;
    os << "{\"pIf\":" << u.pIf << ",\"pOf\":" << u.pOf
       << ",\"pKx\":" << u.pKx << ",\"pKy\":" << u.pKy
       << ",\"pOx\":" << u.pOx << ",\"pOy\":" << u.pOy << "}";
    return os.str();
}

Unroll
unrollFromJson(const util::json::Value &v)
{
    const util::json::Object &o = v.asObject();
    Unroll u;
    u.pIf = o.at("pIf").asInt();
    u.pOf = o.at("pOf").asInt();
    u.pKx = o.at("pKx").asInt();
    u.pKy = o.at("pKy").asInt();
    u.pOx = o.at("pOx").asInt();
    u.pOy = o.at("pOy").asInt();
    return u;
}

std::string
toJson(const ConvSpec &s)
{
    std::ostringstream os;
    os << "{\"label\":\"" << util::escapeJson(s.label) << "\""
       << ",\"nif\":" << s.nif << ",\"nof\":" << s.nof
       << ",\"ih\":" << s.ih << ",\"iw\":" << s.iw
       << ",\"kh\":" << s.kh << ",\"kw\":" << s.kw
       << ",\"oh\":" << s.oh << ",\"ow\":" << s.ow
       << ",\"stride\":" << s.stride << ",\"pad\":" << s.pad
       << ",\"inZeroStride\":" << s.inZeroStride
       << ",\"inOrigH\":" << s.inOrigH << ",\"inOrigW\":" << s.inOrigW
       << ",\"kZeroStride\":" << s.kZeroStride
       << ",\"kOrigH\":" << s.kOrigH << ",\"kOrigW\":" << s.kOrigW
       << ",\"fourDimOutput\":"
       << (s.fourDimOutput ? "true" : "false") << "}";
    return os.str();
}

namespace {

/** Signed fields (the -1 "dense" sentinels) need asInt through the
 *  double path; util::json stores negative integers as doubles. */
int
signedInt(const util::json::Object &o, const char *key)
{
    return o.at(key).asInt();
}

} // namespace

ConvSpec
convSpecFromJson(const util::json::Value &v)
{
    const util::json::Object &o = v.asObject();
    ConvSpec s;
    s.label = o.at("label").asString();
    s.nif = signedInt(o, "nif");
    s.nof = signedInt(o, "nof");
    s.ih = signedInt(o, "ih");
    s.iw = signedInt(o, "iw");
    s.kh = signedInt(o, "kh");
    s.kw = signedInt(o, "kw");
    s.oh = signedInt(o, "oh");
    s.ow = signedInt(o, "ow");
    s.stride = signedInt(o, "stride");
    s.pad = signedInt(o, "pad");
    s.inZeroStride = signedInt(o, "inZeroStride");
    s.inOrigH = signedInt(o, "inOrigH");
    s.inOrigW = signedInt(o, "inOrigW");
    s.kZeroStride = signedInt(o, "kZeroStride");
    s.kOrigH = signedInt(o, "kOrigH");
    s.kOrigW = signedInt(o, "kOrigW");
    s.fourDimOutput = o.at("fourDimOutput").asBool();
    return s;
}

std::string
specShapeKey(const ConvSpec &s)
{
    ConvSpec shape = s;
    shape.label.clear();
    return toJson(shape);
}

} // namespace sim
} // namespace ganacc
