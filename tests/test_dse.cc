/**
 * @file
 * Design-space-exploration tests: the optimizer's optimum must land
 * on (or immediately beside) the paper's eq. (7)/(8) configuration
 * under the paper's constraints, and the feasibility laws must cut
 * the space the way Sections V-B/V-C describe.
 */

#include <gtest/gtest.h>

#include "core/dse.hh"
#include "gan/models.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
using core::DseConstraints;
using core::DsePoint;

DseConstraints
paperConstraints()
{
    DseConstraints c;
    c.budget = core::vcu9pBudget();
    // Cap the sweep at 45 channels: enough to expose the eq. (7) cut
    // at 30 and the beyond-30 region, while keeping the test quick.
    c.maxWPof = 45;
    return c; // defaults: 192 Gbps, 200 MHz, 16-bit, 16 PEs/channel
}

TEST(Dse, OptimumLandsOnThePaperConfiguration)
{
    DseConstraints cons = paperConstraints();
    gan::GanModel dcgan = gan::makeDcgan();
    auto pts = core::sweepFrontier(cons, dcgan);
    auto best = core::bestFeasible(pts);
    ASSERT_TRUE(best.has_value());
    // Eq. (7) caps W_Pof at 30; throughput is monotone in width up to
    // that cap, so the optimizer should pick exactly the paper point.
    EXPECT_EQ(best->wPof, 30);
    EXPECT_EQ(best->stPof, 75);
    EXPECT_EQ(best->totalPes, 1680);
}

TEST(Dse, BandwidthCutsTheFrontierAtEq7)
{
    DseConstraints cons = paperConstraints();
    gan::GanModel m = gan::makeMnistGan();
    auto pts = core::sweepFrontier(cons, m);
    for (const DsePoint &p : pts) {
        if (p.wPof <= 30)
            EXPECT_TRUE(p.bandwidthFeasible) << p.wPof;
        else
            EXPECT_FALSE(p.bandwidthFeasible) << p.wPof;
    }
}

TEST(Dse, MoreBandwidthMovesTheOptimumUp)
{
    DseConstraints cons = paperConstraints();
    cons.offchip.bandwidthBitsPerSec = 384e9;
    gan::GanModel dcgan = gan::makeDcgan();
    auto best = core::bestFeasible(core::sweepFrontier(cons, dcgan));
    ASSERT_TRUE(best.has_value());
    EXPECT_GT(best->wPof, 30);
    // At 384 Gbps the DSP/LUT budget is the next wall, not DRAM.
    EXPECT_TRUE(best->fitsDevice);
}

TEST(Dse, TinyDeviceForcesASmallerDesign)
{
    DseConstraints cons = paperConstraints();
    cons.budget.dsp = 600; // a much smaller part
    gan::GanModel dcgan = gan::makeDcgan();
    auto best = core::bestFeasible(core::sweepFrontier(cons, dcgan));
    ASSERT_TRUE(best.has_value());
    EXPECT_LE(best->resources.dsp, 600);
    EXPECT_LT(best->totalPes, 600);
}

TEST(Dse, InfeasibleSpaceYieldsNothing)
{
    DseConstraints cons = paperConstraints();
    cons.budget.bram36 = 10; // no buffers fit
    gan::GanModel dcgan = gan::makeDcgan();
    auto best = core::bestFeasible(core::sweepFrontier(cons, dcgan));
    EXPECT_FALSE(best.has_value());
}

TEST(Dse, ThroughputMonotoneInWidthWhileFeasible)
{
    DseConstraints cons = paperConstraints();
    gan::GanModel m = gan::makeCgan();
    auto pts = core::sweepFrontier(cons, m);
    double prev = 0.0;
    for (const DsePoint &p : pts) {
        if (!p.feasible())
            continue;
        EXPECT_GE(p.samplesPerSecond + 1e-9, prev) << p.wPof;
        prev = p.samplesPerSecond;
    }
}

TEST(Dse, RejectsDegeneratePoints)
{
    DseConstraints cons = paperConstraints();
    gan::GanModel m = gan::makeMnistGan();
    EXPECT_THROW(core::evaluatePoint(cons, m, 0, 10),
                 util::PanicError);
}

TEST(Dse, ScheduleRejectionsBitIdenticalSerialAndParallel)
{
    // The schedule prefilter runs inside both sweep engines; its
    // verdicts (and the rejected-point bookkeeping) must not depend on
    // evaluation order or worker count.
    DseConstraints cons = paperConstraints();
    cons.maxWPof = 20;
    gan::GanModel dcgan = gan::makeDcgan();
    auto serial = core::sweepFrontier(cons, dcgan);
    auto parallel = core::sweepFrontierParallel(cons, dcgan, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].verifierRejected,
                  parallel[i].verifierRejected) << i;
        EXPECT_EQ(serial[i].scheduleRejected,
                  parallel[i].scheduleRejected) << i;
        EXPECT_EQ(serial[i].verifierCode, parallel[i].verifierCode)
            << i;
    }
    EXPECT_EQ(core::scheduleRejectedCount(serial),
              core::scheduleRejectedCount(parallel));
    // The paper-shaped frontier is schedule-clean: every GA-SCHED
    // invariant holds by construction for legal (w, st) splits, so
    // rejections here would be analyzer false positives.
    EXPECT_EQ(core::scheduleRejectedCount(serial), 0);
    EXPECT_LE(core::scheduleRejectedCount(serial),
              core::verifierRejectedCount(serial));
}

} // namespace
