/**
 * @file
 * Persistent result-store tests: round-trips, version-stamp
 * self-invalidation (an entry written by an older simulator reads as
 * a miss and is overwritten), corrupt-entry quarantine, atomicity
 * under concurrent writers, and the ScopedDiskCache attachment that
 * wires the store under the process-wide CycleCache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "serve/result_store.hh"
#include "sim/json.hh"
#include "sim/phase.hh"

namespace {

using namespace ganacc;
namespace fs = std::filesystem;

/** Fresh scratch directory per test (removed on fixture teardown). */
class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("ganacc-store-test-" + std::to_string(::getpid()) +
                 "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        core::CycleCache::instance().attachDiskTier(nullptr);
        fs::remove_all(dir_);
    }

    std::string dir_;
};

/** A real job so the cached stats are honest simulator output. */
sim::ConvSpec
sampleSpec(std::size_t i = 0)
{
    const auto jobs =
        sim::familyJobs(gan::makeMnistGan(), sim::PhaseFamily::D);
    return jobs[i % jobs.size()];
}

sim::RunStats
simulate(core::ArchKind kind, const sim::Unroll &u,
         const sim::ConvSpec &spec)
{
    return core::makeArch(kind, u)->run(spec);
}

TEST_F(ResultStoreTest, RoundTripAndCounters)
{
    serve::ResultStore store(dir_);
    const core::ArchKind kind = core::ArchKind::ZFOST;
    const sim::Unroll u = core::paperUnroll(
        kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
    const sim::ConvSpec spec = sampleSpec();

    EXPECT_FALSE(store.load(kind, u, spec).has_value());
    EXPECT_EQ(store.counters().misses, 1u);

    const sim::RunStats st = simulate(kind, u, spec);
    store.store(kind, u, spec, st);
    EXPECT_EQ(store.counters().writes, 1u);
    EXPECT_EQ(store.entryCount(), 1u);

    const auto back = store.load(kind, u, spec);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(sim::toJson(*back), sim::toJson(st));
    EXPECT_EQ(store.counters().hits, 1u);

    // The label names, it does not shape: a relabeled probe hits.
    sim::ConvSpec relabeled = spec;
    relabeled.label = "same shape, different name";
    EXPECT_TRUE(store.load(kind, u, relabeled).has_value());

    // A different unrolling is a different simulation.
    sim::Unroll u2 = u;
    u2.pOf += 1;
    EXPECT_FALSE(store.load(kind, u2, spec).has_value());

    // storeStats() is the same snapshot the telemetry collector and
    // the stats probe read; it must agree with counters() exactly.
    const serve::StoreCounters snap = store.storeStats();
    EXPECT_EQ(snap.hits, store.counters().hits);
    EXPECT_EQ(snap.misses, store.counters().misses);
    EXPECT_EQ(snap.writes, store.counters().writes);
    EXPECT_EQ(snap.staleMisses, store.counters().staleMisses);
    EXPECT_EQ(snap.corruptMisses, store.counters().corruptMisses);
    EXPECT_EQ(snap.hits, 2u);
    EXPECT_EQ(snap.misses, 2u);
    EXPECT_EQ(snap.writes, 1u);
}

TEST_F(ResultStoreTest, StaleVersionReadsAsMissAndIsOverwritten)
{
    const core::ArchKind kind = core::ArchKind::OST;
    const sim::Unroll u = core::paperUnroll(
        kind, core::BankRole::ST, sim::PhaseFamily::G, 1200);
    const sim::ConvSpec spec = sampleSpec(1);
    const sim::RunStats st = simulate(kind, u, spec);

    // An older simulator wrote this entry...
    {
        serve::ResultStore old_store(dir_, "ganacc-0.9.0+cycles0");
        old_store.store(kind, u, spec, st);
    }
    // ...so the current one must refuse to serve it. Note the content
    // key includes the version: the stale entry lives at a different
    // address, so this is a plain miss either way — and the stamp
    // check also rejects a manually copied entry (covered next).
    serve::ResultStore store(dir_);
    EXPECT_FALSE(store.load(kind, u, spec).has_value());

    // Copy the stale entry to the current address: now only the
    // embedded stamp protects us.
    {
        serve::ResultStore old_store(dir_, "ganacc-0.9.0+cycles0");
        const std::string stale_path =
            old_store.entryPath(kind, u, spec);
        const std::string live_path = store.entryPath(kind, u, spec);
        fs::create_directories(fs::path(live_path).parent_path());
        fs::copy_file(stale_path, live_path,
                      fs::copy_options::overwrite_existing);
    }
    EXPECT_FALSE(store.load(kind, u, spec).has_value());
    EXPECT_GE(store.counters().staleMisses, 1u);

    // Write-through repairs it for good.
    store.store(kind, u, spec, st);
    const auto back = store.load(kind, u, spec);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(sim::toJson(*back), sim::toJson(st));
}

TEST_F(ResultStoreTest, CorruptEntryIsQuarantined)
{
    serve::ResultStore store(dir_);
    const core::ArchKind kind = core::ArchKind::ZFWST;
    const sim::Unroll u = core::paperUnroll(
        kind, core::BankRole::W, sim::PhaseFamily::Dw, 480);
    const sim::ConvSpec spec = sampleSpec(2);
    store.store(kind, u, spec, simulate(kind, u, spec));

    // Truncate the entry mid-object, as a torn pre-atomic writer
    // would have left it.
    const std::string path = store.entryPath(kind, u, spec);
    {
        std::ofstream os(path, std::ios::trunc);
        os << "{\"version\":\"gan";
    }
    EXPECT_FALSE(store.load(kind, u, spec).has_value());
    EXPECT_EQ(store.counters().corruptMisses, 1u);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".quarantined"))
        << "corrupt entries must be kept for post-mortem";

    // The address is usable again immediately.
    store.store(kind, u, spec, simulate(kind, u, spec));
    EXPECT_TRUE(store.load(kind, u, spec).has_value());
}

TEST_F(ResultStoreTest, ZeroByteEntryIsQuarantined)
{
    // Regression: a crash between open and the first write (or an
    // interrupted copy) leaves a zero-byte file at the live address.
    // It must be treated exactly like any other corrupt entry —
    // counted, quarantined out of the way, address reusable — not
    // looped over as a parse error forever.
    serve::ResultStore store(dir_);
    const core::ArchKind kind = core::ArchKind::NLR;
    const sim::Unroll u = core::paperUnroll(
        kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
    const sim::ConvSpec spec = sampleSpec(3);

    const std::string path = store.entryPath(kind, u, spec);
    fs::create_directories(fs::path(path).parent_path());
    { std::ofstream os(path, std::ios::trunc); }
    ASSERT_TRUE(fs::exists(path));
    ASSERT_EQ(fs::file_size(path), 0u);

    EXPECT_FALSE(store.load(kind, u, spec).has_value());
    EXPECT_EQ(store.counters().corruptMisses, 1u);
    EXPECT_EQ(store.counters().misses, 0u)
        << "a present-but-empty entry is corruption, not absence";
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".quarantined"));

    // A second probe is a clean miss, and write-through repairs it.
    EXPECT_FALSE(store.load(kind, u, spec).has_value());
    EXPECT_EQ(store.counters().misses, 1u);
    store.store(kind, u, spec, simulate(kind, u, spec));
    const auto back = store.load(kind, u, spec);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(sim::toJson(*back),
              sim::toJson(simulate(kind, u, spec)));
}

TEST_F(ResultStoreTest, ConcurrentWritersAgree)
{
    const core::ArchKind kind = core::ArchKind::ZFOST;
    const sim::Unroll u = core::paperUnroll(
        kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
    const sim::ConvSpec spec = sampleSpec();
    const sim::RunStats st = simulate(kind, u, spec);
    const std::string want = sim::toJson(st);

    // Many threads, each its own store handle (as separate processes
    // would have), all writing and reading the same key.
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            serve::ResultStore store(dir_);
            for (int i = 0; i < 25; ++i) {
                store.store(kind, u, spec, st);
                const auto got = store.load(kind, u, spec);
                if (!got || sim::toJson(*got) != want)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0)
        << "readers must only ever observe complete entries";

    serve::ResultStore store(dir_);
    EXPECT_EQ(store.entryCount(), 1u)
        << "no leaked tmp files after racing renames";
    EXPECT_TRUE(store.load(kind, u, spec).has_value());
}

TEST_F(ResultStoreTest, ScopedDiskCacheAttachesAndDetaches)
{
    auto &cache = core::CycleCache::instance();
    cache.clear();
    EXPECT_EQ(cache.diskTier(), nullptr);
    {
        serve::ScopedDiskCache scoped(dir_);
        ASSERT_TRUE(scoped.attached());
        EXPECT_EQ(cache.diskTier(), scoped.store());

        // A cachedRun writes through to disk; a cleared memory cache
        // then reads it back from the tier.
        const core::ArchKind kind = core::ArchKind::NLR;
        const sim::Unroll u = core::paperUnroll(
            kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
        const sim::ConvSpec spec = sampleSpec();
        core::CacheOutcome outcome;
        const sim::RunStats first =
            cache.stats(kind, u, spec, &outcome);
        EXPECT_EQ(outcome, core::CacheOutcome::Simulated);
        cache.clear();
        const sim::RunStats second =
            cache.stats(kind, u, spec, &outcome);
        EXPECT_EQ(outcome, core::CacheOutcome::DiskHit);
        EXPECT_EQ(sim::toJson(first), sim::toJson(second));
        EXPECT_GE(cache.diskHits(), 1u);
    }
    EXPECT_EQ(cache.diskTier(), nullptr);

    // Empty dir => no store, nothing attached.
    serve::ScopedDiskCache off("");
    EXPECT_FALSE(off.attached());
    EXPECT_EQ(cache.diskTier(), nullptr);
}

} // namespace
