/**
 * @file
 * Microarchitecture validation: every architecture (NLR, WST, OST,
 * ZFOST, ZFWST) must compute exactly what the golden model computes on
 * every job family, while its counters obey the dataflow's published
 * properties — eq. (5) for WST, zero freedom for ZFOST/ZFWST, the
 * idle-adder-tree penalty of NLR on W-CONV.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "sim/nlr.hh"
#include "sim/ost.hh"
#include "sim/phase.hh"
#include "sim/wst.hh"
#include "tensor/tensor.hh"
#include "stats_helpers.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using core::Zfwst;
using sim::Architecture;
using sim::ConvSpec;
using sim::Nlr;
using sim::Ost;
using sim::RunStats;
using sim::Unroll;
using sim::Wst;
using tensor::approxEqual;
using tensor::maxAbsDiff;
using tensor::Tensor;
using util::Rng;

/** All five architectures with small arrays for functional tests. */
std::vector<std::unique_ptr<Architecture>>
smallArchs()
{
    std::vector<std::unique_ptr<Architecture>> v;
    v.push_back(std::make_unique<Nlr>(Unroll{.pIf = 2, .pOf = 3}));
    v.push_back(std::make_unique<Wst>(Unroll{.pOf = 2, .pKx = 3,
                                             .pKy = 3}));
    v.push_back(std::make_unique<Ost>(Unroll{.pOf = 2, .pOx = 3,
                                             .pOy = 3}));
    v.push_back(std::make_unique<Zfost>(Unroll{.pOf = 2, .pOx = 3,
                                               .pOy = 3}));
    v.push_back(std::make_unique<Zfwst>(Unroll{.pOf = 2, .pKx = 3,
                                               .pKy = 3}));
    return v;
}

/** Representative job specs covering every GAN convolution pattern. */
std::vector<ConvSpec>
representativeSpecs()
{
    std::vector<ConvSpec> specs;

    // Dense strided S-CONV (D-fwd).
    ConvSpec s;
    s.label = "sconv";
    s.nif = 3;
    s.nof = 4;
    s.ih = s.iw = 12;
    s.kh = s.kw = 5;
    s.stride = 2;
    s.pad = 2;
    s.oh = s.ow = 6;
    specs.push_back(s);

    // Dense stride-1 conv (the critic head).
    ConvSpec h;
    h.label = "head";
    h.nif = 4;
    h.nof = 1;
    h.ih = h.iw = 4;
    h.kh = h.kw = 4;
    h.stride = 1;
    h.pad = 0;
    h.oh = h.ow = 1;
    specs.push_back(h);

    // Stuffed T-CONV (G-fwd) with trailing output-padding zeros.
    ConvSpec t;
    t.label = "tconv";
    t.nif = 2;
    t.nof = 3;
    t.inZeroStride = 2;
    t.inOrigH = t.inOrigW = 5;
    t.ih = t.iw = 10; // (5-1)*2+1 = 9, +1 extra
    t.kh = t.kw = 5;
    t.stride = 1;
    t.pad = 2;
    t.oh = t.ow = 10;
    specs.push_back(t);

    // W-CONV, discriminator form: dilated-error kernel, 4-D output.
    ConvSpec dw;
    dw.label = "wconv-D";
    dw.nif = 2;
    dw.nof = 3;
    dw.ih = dw.iw = 12;
    dw.kZeroStride = 2;
    dw.kOrigH = dw.kOrigW = 6;
    dw.kh = dw.kw = 11;
    dw.stride = 1;
    dw.pad = 2;
    dw.oh = dw.ow = 5;
    dw.fourDimOutput = true;
    specs.push_back(dw);

    // W-CONV, generator form: stuffed input, dense error kernel.
    ConvSpec gw;
    gw.label = "wconv-G";
    gw.nif = 2;
    gw.nof = 2;
    gw.inZeroStride = 2;
    gw.inOrigH = gw.inOrigW = 5;
    gw.ih = gw.iw = 10;
    gw.kh = gw.kw = 10;
    gw.stride = 1;
    gw.pad = 2;
    gw.oh = gw.ow = 5;
    gw.fourDimOutput = true;
    specs.push_back(gw);

    return specs;
}

// ---------------------------------------------------------------------
// Functional equivalence with the golden model
// ---------------------------------------------------------------------

TEST(ArchFunctional, AllArchsMatchGoldenOnAllPatterns)
{
    Rng rng(1234);
    for (const ConvSpec &spec : representativeSpecs()) {
        Tensor in = sim::makeStreamedInput(spec, rng);
        Tensor w = sim::makeStreamedKernel(spec, rng);
        Tensor golden = sim::genericConvRef(spec, in, w);
        for (const auto &arch : smallArchs()) {
            Tensor out = sim::makeOutputTensor(spec);
            arch->run(spec, &in, &w, &out);
            EXPECT_TRUE(approxEqual(golden, out, 1e-3f))
                << arch->name() << " on " << spec.describe()
                << " maxdiff=" << maxAbsDiff(golden, out);
        }
    }
}

/** Randomized property sweep: random small jobs, all archs. */
class ArchRandomSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ArchRandomSweep, FunctionalAndConservation)
{
    Rng rng(1000 + GetParam());
    // Draw a random job, biased over the three pattern kinds.
    ConvSpec s;
    s.label = "random";
    s.nif = rng.uniformInt(1, 3);
    s.nof = rng.uniformInt(1, 4);
    int kind = rng.uniformInt(0, 2);
    if (kind == 0) { // dense strided
        s.ih = s.iw = rng.uniformInt(6, 14);
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = rng.uniformInt(1, 2);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    } else if (kind == 1) { // stuffed
        int dense = rng.uniformInt(3, 6);
        int z = 2;
        int extra = rng.uniformInt(0, 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(3, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
    } else { // dilated-kernel four-dim
        s.ih = s.iw = rng.uniformInt(8, 14);
        int err = rng.uniformInt(2, 5);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 2);
        s.fourDimOutput = true;
        int natural = s.ih + 2 * s.pad - s.kh + 1;
        GANACC_ASSERT(natural >= 1, "bad random spec");
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 5));
    }

    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor golden = sim::genericConvRef(s, in, w);
    for (const auto &arch : smallArchs()) {
        Tensor out = sim::makeOutputTensor(s);
        // run() itself asserts PE-slot conservation and the
        // effective-MAC upper bound.
        RunStats st = arch->run(s, &in, &w, &out);
        EXPECT_TRUE(approxEqual(golden, out, 1e-3f))
            << arch->name() << " on " << s.describe();
        EXPECT_GT(st.cycles, 0u);
        tests::expectSlotConservation(st, arch->name());
        // Timing-only mode must report identical counters.
        RunStats st2 = arch->run(s);
        tests::expectStatsEqual(st, st2, arch->name());
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArchRandomSweep, ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Dataflow properties from the paper
// ---------------------------------------------------------------------

TEST(ArchProperties, WstUtilizationObeysEq5)
{
    // Eq. (5): Util = (Noy*Nox) / (Niy*Nix) for a fully-resident
    // kernel and a pad-free strided convolution.
    ConvSpec s;
    s.label = "eq5";
    s.nif = 2;
    s.nof = 4;
    s.ih = s.iw = 12;
    s.kh = s.kw = 4;
    s.stride = 2;
    s.pad = 0;
    s.oh = s.ow = 5;
    Wst wst(Unroll{.pOf = 2, .pKx = 4, .pKy = 4});
    RunStats st = wst.run(s);
    double expected = double(s.oh * s.ow) / double(s.ih * s.iw);
    EXPECT_NEAR(st.utilization(), expected, 1e-9);
}

TEST(ArchProperties, ZeroFreeArchsDoNoIneffectualWorkWithoutPadding)
{
    // On pad-free jobs with no trailing stuffing rows, ZFOST and
    // ZFWST must schedule exactly the effective MACs: zero ineffectual
    // slots, and cycles*activePEs bounded by effective + idle.
    ConvSpec t;
    t.label = "tconv-nopad";
    t.nif = 2;
    t.nof = 3;
    t.inZeroStride = 2;
    t.inOrigH = t.inOrigW = 6;
    t.ih = t.iw = 11;
    t.kh = t.kw = 3;
    t.stride = 1;
    t.pad = 0;
    t.oh = t.ow = 9;

    Zfost zfost(Unroll{.pOf = 3, .pOx = 3, .pOy = 3});
    RunStats a = zfost.run(t);
    EXPECT_EQ(a.ineffectualMacs, 0u) << a.str();
    EXPECT_EQ(a.effectiveMacs, t.effectiveMacs());

    Zfwst zfwst(Unroll{.pOf = 3, .pKx = 2, .pKy = 2});
    RunStats b = zfwst.run(t);
    EXPECT_EQ(b.ineffectualMacs, 0u) << b.str();
    EXPECT_EQ(b.effectiveMacs, t.effectiveMacs());
}

TEST(ArchProperties, OstCannotSkipInsertedZeros)
{
    // Fig. 7(c): OST burns ~3/4 of its MAC slots on a stuffed input.
    // Sized so the 3x3 output tiles divide each parity class exactly,
    // isolating the zero-skip factor from tile-rounding noise.
    ConvSpec t;
    t.label = "tconv";
    t.nif = 2;
    t.nof = 4;
    t.inZeroStride = 2;
    t.inOrigH = t.inOrigW = 9;
    t.ih = t.iw = 18;
    t.kh = t.kw = 5;
    t.stride = 1;
    t.pad = 2;
    t.oh = t.ow = 18;

    Ost ost(Unroll{.pOf = 4, .pOx = 3, .pOy = 3});
    Zfost zfost(Unroll{.pOf = 4, .pOx = 3, .pOy = 3});
    RunStats o = ost.run(t);
    RunStats z = zfost.run(t);
    // Same array, same job: the zero-free schedule needs ~4x fewer
    // cycles.
    double speedup = double(o.cycles) / double(z.cycles);
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 5.0);
    // And OST wasted slots outnumber its useful ones.
    EXPECT_GT(o.ineffectualMacs, o.effectiveMacs);
}

TEST(ArchProperties, NlrAdderTreeIdlesOnFourDimOutput)
{
    // Section III-C1: NLR keeps only P_of of its P_if*P_of multipliers
    // busy on W-CONV.
    ConvSpec dw;
    dw.label = "wconv";
    dw.nif = 4;
    dw.nof = 4;
    dw.ih = dw.iw = 10;
    dw.kZeroStride = 2;
    dw.kOrigH = dw.kOrigW = 4;
    dw.kh = dw.kw = 7;
    dw.stride = 1;
    dw.pad = 0;
    dw.oh = dw.ow = 4;
    dw.fourDimOutput = true;

    Nlr nlr(Unroll{.pIf = 4, .pOf = 2});
    RunStats st = nlr.run(dw);
    // Utilization capped at 1/P_if.
    EXPECT_LE(st.utilization(), 1.0 / 4 + 1e-9);
    EXPECT_GT(st.idlePeSlots, 0u);
}

TEST(ArchProperties, ZfostReusesInputsWhereOstReloads)
{
    // Fig. 12(a): on S-CONV the reordered weight feed restores
    // register-array shifting, so ZFOST reads far fewer inputs from
    // the buffer than OST at identical cycle counts.
    ConvSpec s;
    s.label = "sconv";
    s.nif = 3;
    s.nof = 4;
    s.ih = s.iw = 16;
    s.kh = s.kw = 5;
    s.stride = 2;
    s.pad = 2;
    s.oh = s.ow = 8;

    Ost ost(Unroll{.pOf = 4, .pOx = 4, .pOy = 4});
    Zfost zfost(Unroll{.pOf = 4, .pOx = 4, .pOy = 4});
    RunStats o = ost.run(s);
    RunStats z = zfost.run(s);
    EXPECT_EQ(o.cycles, z.cycles); // no zeros to skip on S-CONV
    EXPECT_LT(z.inputLoads * 2, o.inputLoads);
}

TEST(ArchProperties, ZfwstBeatsWstOnDilatedKernels)
{
    // Dw: WST wastes resident PEs on inserted kernel zeros; ZFWST
    // allocates only the dense error values.
    ConvSpec dw;
    dw.label = "wconv-D";
    dw.nif = 2;
    dw.nof = 4;
    dw.ih = dw.iw = 14;
    dw.kZeroStride = 2;
    dw.kOrigH = dw.kOrigW = 6;
    dw.kh = dw.kw = 11;
    dw.stride = 1;
    dw.pad = 2;
    dw.oh = dw.ow = 5;
    dw.fourDimOutput = true;

    Wst wst(Unroll{.pOf = 2, .pKx = 4, .pKy = 4});
    Zfwst zfwst(Unroll{.pOf = 2, .pKx = 4, .pKy = 4});
    RunStats w = wst.run(dw);
    RunStats z = zfwst.run(dw);
    EXPECT_GT(w.cycles, 2 * z.cycles);
    EXPECT_GT(z.utilization(), 2 * w.utilization());
}

TEST(ArchProperties, EffectiveMacsIdenticalAcrossArchitectures)
{
    // Every architecture must perform the same useful arithmetic —
    // they only differ in how many slots they waste getting there.
    for (const ConvSpec &spec : representativeSpecs()) {
        std::uint64_t expected = spec.effectiveMacs();
        for (const auto &arch : smallArchs()) {
            RunStats st = arch->run(spec);
            EXPECT_EQ(st.effectiveMacs, expected)
                << arch->name() << " on " << spec.describe();
        }
    }
}

TEST(ArchProperties, MoreChannelsNeverSlowerPerJob)
{
    // Widening P_of must not increase cycles (work-conservation).
    ConvSpec s = representativeSpecs()[0];
    Zfost narrow(Unroll{.pOf = 1, .pOx = 3, .pOy = 3});
    Zfost wide(Unroll{.pOf = 4, .pOx = 3, .pOy = 3});
    EXPECT_GE(narrow.run(s).cycles, wide.run(s).cycles);
}

TEST(ArchBasics, RunRejectsMixedNullOperands)
{
    ConvSpec s = representativeSpecs()[0];
    Zfost z(Unroll{.pOf = 1, .pOx = 2, .pOy = 2});
    Rng rng(3);
    Tensor in = sim::makeStreamedInput(s, rng);
    EXPECT_THROW(z.run(s, &in, nullptr, nullptr), util::PanicError);
}

} // namespace
