/**
 * @file
 * FaultInjector implementation.
 */

#include "fault/injector.hh"

#include <algorithm>
#include <utility>

#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ganacc {
namespace fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan))
{
    for (const auto &f : plan_.peFaults)
        GANACC_ASSERT(f.lane >= 0, "PE fault lane must be >= 0");
}

void
FaultInjector::beginJob(const sim::ConvSpec &spec,
                        std::uint64_t job_index)
{
    spec_ = spec;
    haveJob_ = true;
    armedSites_.clear();

    const std::uint64_t dense = spec.denseMacs();
    const std::uint64_t want = std::min(
        std::uint64_t(plan_.transient.sitesPerJob), dense);
    if (want == 0)
        return;

    // The arming draw is keyed on (seed, job index) alone so every
    // architecture sees the identical upset set for this job.
    util::Rng rng(mix64(plan_.seed ^ mix64(job_index + 1)));
    std::uniform_int_distribution<std::uint64_t> dist(0, dense - 1);
    armedSites_.reserve(std::size_t(want));
    while (armedSites_.size() < std::size_t(want)) {
        const std::uint64_t site = dist(rng.engine());
        if (std::find(armedSites_.begin(), armedSites_.end(), site) ==
            armedSites_.end())
            armedSites_.push_back(site);
    }
    std::sort(armedSites_.begin(), armedSites_.end());
    counters_.armed += want;
}

std::uint64_t
FaultInjector::latticeIndex(const sim::MacContext &ctx) const
{
    // Row-major order over (of, c, oy, ox, ky, kx) — the same
    // factorization ConvSpec::denseMacs() counts.
    std::uint64_t i = std::uint64_t(ctx.of);
    i = i * std::uint64_t(spec_.nif) + std::uint64_t(ctx.c);
    i = i * std::uint64_t(spec_.oh) + std::uint64_t(ctx.oy);
    i = i * std::uint64_t(spec_.ow) + std::uint64_t(ctx.ox);
    i = i * std::uint64_t(spec_.kh) + std::uint64_t(ctx.ky);
    i = i * std::uint64_t(spec_.kw) + std::uint64_t(ctx.kx);
    return i;
}

float
FaultInjector::flipProductBits(float product, std::uint64_t site) const
{
    // The corrupted pattern depends only on (seed, site), never on
    // visit order, keeping parallel campaigns bit-reproducible.
    std::uint16_t raw = std::uint16_t(
        util::AccelFixed::fromDouble(double(product)).raw());
    std::uint64_t h = mix64(plan_.seed ^ mix64(site));
    std::uint16_t flipped = 0;
    for (int i = 0; i < plan_.transient.bits; ++i) {
        std::uint16_t bit;
        do {
            bit = std::uint16_t(1u << (h & 15u));
            h = mix64(h);
        } while ((flipped & bit) != 0);
        flipped = std::uint16_t(flipped | bit);
    }
    raw = std::uint16_t(raw ^ flipped);
    return float(
        util::AccelFixed::fromRaw(std::int16_t(raw)).toDouble());
}

float
FaultInjector::onMac(const sim::MacContext &ctx, float a, float b)
{
    GANACC_ASSERT(haveJob_,
                  "FaultInjector::onMac before beginJob()");
    ++counters_.macsObserved;
    float product = a * b;

    if (!armedSites_.empty()) {
        const std::uint64_t site = latticeIndex(ctx);
        if (std::binary_search(armedSites_.begin(), armedSites_.end(),
                               site)) {
            ++counters_.fired;
            product = flipProductBits(product, site);
        }
    }

    // Stuck-at lanes override whatever the multiplier computed.
    for (const auto &f : plan_.peFaults) {
        if (f.lane != ctx.lane)
            continue;
        ++counters_.peHits;
        product = f.kind == PeFault::Kind::StuckAtZero ? 0.0f : f.value;
    }
    return product;
}

bool
FaultInjector::visitIneffectual() const
{
    // Both fault classes live on the physical multipliers, which the
    // baselines clock through zero-operand slots too — those slots
    // must be observed or a stuck lane would look artificially benign.
    return !plan_.peFaults.empty() || plan_.transient.sitesPerJob > 0;
}

} // namespace fault
} // namespace ganacc
