/**
 * @file
 * BatchNorm tests: normalization semantics, full gradient checks in
 * both modes, and the deferred-synchronization interaction — batch
 * statistics couple samples (per-sample loops diverge), frozen
 * statistics restore the independence the paper's algorithm needs.
 */

#include <gtest/gtest.h>

#include "nn/batchnorm.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using nn::BatchNormLayer;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

double
dot(const Tensor &a, const Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i)
        s += double(a.data()[i]) * b.data()[i];
    return s;
}

TEST(BatchNorm, NormalizesToZeroMeanUnitVariance)
{
    Rng rng(1);
    Tensor in(4, 3, 5, 5);
    in.fillGaussian(rng, 2.0f, 3.0f);
    BatchNormLayer bn(3);
    Tensor out = bn.forward(in, BatchNormLayer::Mode::Batch);
    for (int c = 0; c < 3; ++c) {
        double m = 0.0, v = 0.0;
        const double n_elems = 4.0 * 25.0;
        for (int n = 0; n < 4; ++n)
            for (int y = 0; y < 5; ++y)
                for (int x = 0; x < 5; ++x)
                    m += out.get(n, c, y, x);
        m /= n_elems;
        for (int n = 0; n < 4; ++n)
            for (int y = 0; y < 5; ++y)
                for (int x = 0; x < 5; ++x) {
                    double d = out.get(n, c, y, x) - m;
                    v += d * d;
                }
        v /= n_elems;
        EXPECT_NEAR(m, 0.0, 1e-4);
        EXPECT_NEAR(v, 1.0, 1e-2);
    }
}

TEST(BatchNorm, GammaBetaScaleAndShift)
{
    Rng rng(2);
    Tensor in(2, 2, 3, 3);
    in.fillGaussian(rng);
    BatchNormLayer bn(2);
    bn.gamma().fill(2.0f);
    bn.beta().fill(-1.0f);
    Tensor out = bn.forward(in, BatchNormLayer::Mode::Batch);
    // Mean of out should be beta, std should be ~gamma.
    double m = out.sum() / double(out.numel());
    EXPECT_NEAR(m, -1.0, 1e-4);
}

TEST(BatchNorm, RunningStatsConvergeToDataStats)
{
    Rng rng(3);
    BatchNormLayer bn(1, 1e-5f, 0.2f);
    for (int it = 0; it < 60; ++it) {
        Tensor in(8, 1, 4, 4);
        in.fillGaussian(rng, 5.0f, 2.0f);
        bn.forward(in, BatchNormLayer::Mode::Batch);
    }
    EXPECT_NEAR(bn.runningMean().get(0, 0, 0, 0), 5.0, 0.3);
    EXPECT_NEAR(bn.runningVar().get(0, 0, 0, 0), 4.0, 0.8);
}

TEST(BatchNorm, FrozenModeUsesRunningStats)
{
    Rng rng(4);
    BatchNormLayer bn(1);
    // Prime the running stats.
    for (int it = 0; it < 30; ++it) {
        Tensor in(8, 1, 4, 4);
        in.fillGaussian(rng, 3.0f, 1.5f);
        bn.forward(in, BatchNormLayer::Mode::Batch);
    }
    // A single constant sample in frozen mode is mapped by the fixed
    // affine transform — no dependence on the sample itself.
    Tensor probe(1, 1, 4, 4, 3.0f);
    Tensor out = bn.forward(probe, BatchNormLayer::Mode::Frozen);
    float expect =
        (3.0f - bn.runningMean().get(0, 0, 0, 0)) /
        std::sqrt(bn.runningVar().get(0, 0, 0, 0) + 1e-5f);
    EXPECT_NEAR(out.get(0, 0, 2, 2), expect, 1e-4);
}

class BnGradCheck
    : public ::testing::TestWithParam<BatchNormLayer::Mode>
{
};

TEST_P(BnGradCheck, NumericalGradientsMatch)
{
    const auto mode = GetParam();
    Rng rng(5);
    Tensor in(3, 2, 3, 3);
    in.fillGaussian(rng);
    BatchNormLayer bn(2);
    bn.gamma().fillUniform(rng, 0.5f, 1.5f);
    bn.beta().fillUniform(rng, -0.5f, 0.5f);
    if (mode == BatchNormLayer::Mode::Frozen) {
        // Prime non-trivial running stats.
        Tensor warm(6, 2, 3, 3);
        warm.fillGaussian(rng, 1.0f, 2.0f);
        bn.forward(warm, BatchNormLayer::Mode::Batch);
    }
    Tensor out = bn.forward(in, mode);
    Tensor mask(out.shape());
    mask.fillUniform(rng);
    Tensor din = bn.backward(mask);
    Tensor dgamma = bn.gradGamma();
    Tensor dbeta = bn.gradBeta();

    const float eps = 1e-3f;
    Rng pick(6);
    for (int trial = 0; trial < 12; ++trial) {
        int n = pick.uniformInt(0, 2), c = pick.uniformInt(0, 1);
        int y = pick.uniformInt(0, 2), x = pick.uniformInt(0, 2);
        Tensor ip = in, im = in;
        ip.at(n, c, y, x) += eps;
        im.at(n, c, y, x) -= eps;
        double fp = dot(bn.forward(ip, mode), mask);
        double fm = dot(bn.forward(im, mode), mask);
        EXPECT_NEAR((fp - fm) / (2 * eps), din.get(n, c, y, x), 2e-2)
            << "din at " << n << c << y << x;
    }
    for (int c = 0; c < 2; ++c) {
        float orig = bn.gamma().get(0, c, 0, 0);
        bn.gamma().at(0, c, 0, 0) = orig + eps;
        double fp = dot(bn.forward(in, mode), mask);
        bn.gamma().at(0, c, 0, 0) = orig - eps;
        double fm = dot(bn.forward(in, mode), mask);
        bn.gamma().at(0, c, 0, 0) = orig;
        EXPECT_NEAR((fp - fm) / (2 * eps), dgamma.get(0, c, 0, 0),
                    2e-2);

        orig = bn.beta().get(0, c, 0, 0);
        bn.beta().at(0, c, 0, 0) = orig + eps;
        fp = dot(bn.forward(in, mode), mask);
        bn.beta().at(0, c, 0, 0) = orig - eps;
        fm = dot(bn.forward(in, mode), mask);
        bn.beta().at(0, c, 0, 0) = orig;
        EXPECT_NEAR((fp - fm) / (2 * eps), dbeta.get(0, c, 0, 0),
                    2e-2);
    }
}

INSTANTIATE_TEST_SUITE_P(BothModes, BnGradCheck,
                         ::testing::Values(BatchNormLayer::Mode::Batch,
                                           BatchNormLayer::Mode::Frozen),
                         [](const auto &param_info) {
                             return param_info.param ==
                                            BatchNormLayer::Mode::Batch
                                        ? std::string("Batch")
                                        : std::string("Frozen");
                         });

TEST(BatchNorm, BatchModeCouplesSamplesFrozenModeDoesNot)
{
    // THE deferred-synchronization interaction: in Batch mode a
    // sample's output depends on the other samples in the batch, so
    // per-sample processing cannot reproduce the mini-batch result;
    // Frozen mode restores independence.
    Rng rng(7);
    Tensor batch(4, 1, 3, 3);
    batch.fillGaussian(rng);

    for (auto mode : {BatchNormLayer::Mode::Batch,
                      BatchNormLayer::Mode::Frozen}) {
        BatchNormLayer bn_batchwise(1);
        BatchNormLayer bn_samplewise(1);
        // Prime both with identical running stats.
        Tensor warm(8, 1, 3, 3);
        warm.fillGaussian(rng, 0.5f, 1.2f);
        bn_batchwise.forward(warm, BatchNormLayer::Mode::Batch);
        bn_samplewise.forward(warm, BatchNormLayer::Mode::Batch);

        Tensor whole = bn_batchwise.forward(batch, mode);
        float max_diff = 0.0f;
        for (int n = 0; n < 4; ++n) {
            Tensor one(1, 1, 3, 3);
            for (int y = 0; y < 3; ++y)
                for (int x = 0; x < 3; ++x)
                    one.ref(0, 0, y, x) = batch.get(n, 0, y, x);
            Tensor out = bn_samplewise.forward(one, mode);
            for (int y = 0; y < 3; ++y)
                for (int x = 0; x < 3; ++x)
                    max_diff = std::max(
                        max_diff, std::abs(out.get(0, 0, y, x) -
                                           whole.get(n, 0, y, x)));
        }
        if (mode == BatchNormLayer::Mode::Batch) {
            EXPECT_GT(max_diff, 0.05f)
                << "batch stats should couple samples";
        } else {
            EXPECT_LT(max_diff, 1e-5f)
                << "frozen stats must be per-sample independent";
        }
    }
}

TEST(BatchNorm, ApplyUpdateMovesParameters)
{
    Rng rng(8);
    Tensor in(2, 2, 3, 3);
    in.fillGaussian(rng);
    BatchNormLayer bn(2);
    bn.forward(in, BatchNormLayer::Mode::Batch);
    // A constant upstream gradient gives dgamma = sum(xhat) = 0 by
    // construction; use a random one.
    Tensor mask(Shape4(2, 2, 3, 3));
    mask.fillUniform(rng);
    bn.backward(mask);
    nn::Sgd opt(0.1f);
    Tensor g_before = bn.gamma();
    bn.applyUpdate(opt);
    EXPECT_GT(tensor::maxAbsDiff(g_before, bn.gamma()), 0.0f);
    EXPECT_FLOAT_EQ(bn.gradGamma().absMax(), 0.0f);
}

TEST(BatchNorm, RejectsMismatchedShapes)
{
    BatchNormLayer bn(3);
    EXPECT_THROW(bn.forward(Tensor(1, 2, 3, 3),
                            BatchNormLayer::Mode::Batch),
                 util::PanicError);
    BatchNormLayer fresh(2);
    EXPECT_THROW(fresh.backward(Tensor(1, 2, 3, 3)),
                 util::PanicError);
}

} // namespace
