/**
 * @file
 * Consistent-hash ring over fleet shards.
 *
 * Each shard contributes `vnodes` points to a 64-bit ring, at
 * FNV-1a-64("<address>#<vnode-index>") — the same hash family as the
 * serving content key, so no new primitives. A key is owned by the
 * shard of the first ring point at or clockwise after
 * FNV-1a-64(key); its replicas are the next rf-1 *distinct* shards
 * further clockwise. Properties the fleet relies on:
 *
 *  - Determinism: every client and shard computes identical placement
 *    from the shared Topology — there is no placement metadata
 *    service, the math *is* the metadata.
 *  - Stability: removing one shard remaps only the keys it owned
 *    (onto their clockwise successors); the other shards' keys do
 *    not move. That is what makes a rolling restart cheap.
 *  - Replica walk: replicas(key, rf) is the failover order — a
 *    router that cannot reach the primary tries the same list the
 *    replication writes targeted, so a warm copy is always next in
 *    line.
 */

#ifndef GANACC_FLEET_RING_HH
#define GANACC_FLEET_RING_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fleet/topology.hh"

namespace ganacc {
namespace fleet {

/** The placement function of a fleet (immutable once built). */
class Ring
{
  public:
    /** Build from an ordered shard list. */
    Ring(const std::vector<std::string> &shards, int vnodes);

    explicit Ring(const Topology &topo)
        : Ring(topo.shards, topo.vnodes)
    {
    }

    int shardCount() const { return shardCount_; }

    /** The shard index owning `key` (its primary). */
    int primary(const std::string &key) const;

    /**
     * The `rf` distinct shards holding `key`, primary first, in
     * clockwise ring order (the replication targets and the failover
     * order). rf is clamped to the shard count.
     */
    std::vector<int> replicas(const std::string &key, int rf) const;

    /** The ring points (hash, shard), sorted — exposed for tests. */
    const std::vector<std::pair<std::uint64_t, int>> &
    points() const
    {
        return points_;
    }

  private:
    int shardCount_;
    std::vector<std::pair<std::uint64_t, int>> points_;
};

} // namespace fleet
} // namespace ganacc

#endif // GANACC_FLEET_RING_HH
