/**
 * @file
 * Activation functions and their derivatives.
 *
 * DCGAN uses LeakyReLU(0.2) in the discriminator, ReLU in the
 * generator's hidden layers and Tanh on the generator output
 * (Radford et al., ICLR'16). The backward-error pass multiplies the
 * incoming error element-wise by the activation derivative (the
 * "∘ σ'" term of eq. 3).
 */

#ifndef GANACC_NN_ACTIVATIONS_HH
#define GANACC_NN_ACTIVATIONS_HH

#include <string>

#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/** Supported activation kinds. */
enum class Activation
{
    None,      ///< identity (used on the critic's scalar output)
    ReLU,      ///< max(0, x)
    LeakyReLU, ///< x>0 ? x : 0.2*x
    Tanh,      ///< tanh(x)
};

/** Human-readable activation name. */
std::string activationName(Activation a);

/** Apply the activation element-wise, returning a new tensor. */
tensor::Tensor activationForward(const tensor::Tensor &pre, Activation a);

/**
 * Element-wise derivative evaluated at the *pre-activation* values,
 * multiplied into the incoming error:
 * returns dpre(i) = dout(i) * sigma'(pre(i)).
 */
tensor::Tensor activationBackward(const tensor::Tensor &dout,
                                  const tensor::Tensor &pre, Activation a);

/** Negative slope used by LeakyReLU. */
inline constexpr float kLeakySlope = 0.2f;

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_ACTIVATIONS_HH
