/**
 * @file
 * Energy ablation: convert every design's cycle/access statistics
 * into joules per training iteration (Horowitz-ballpark 16-bit
 * coefficients), ranking the designs the way Fig. 16's access
 * argument implies, and cross-checking the board-power figure the
 * Fig. 19 comparison assumes.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sched/energy.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;

    bench::banner("Energy per training iteration (model-derived)",
                  "access counts dominate energy: the zero-free "
                  "combination is the most efficient design, and its "
                  "implied power is consistent with the ~22 W board "
                  "assumption of Fig. 19");

    sched::EnergyCoefficients c;
    std::cout << "\nCoefficients (pJ): MAC " << c.macPj << ", register "
              << c.registerPj << ", SRAM " << c.sramPj << ", DRAM "
              << c.dramPj << ", idle " << c.idlePj << "\n";

    const Design designs[] = {
        Design::unique(ArchKind::OST, 1680),
        Design::unique(ArchKind::ZFOST, 1680),
        Design::combo(ArchKind::NLR, ArchKind::OST, 1680),
        Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680),
    };

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name << " (uJ per iteration)\n";
        util::Table t({"design", "compute", "on-chip", "DRAM", "idle",
                       "total", "implied W @deferred rate"});
        for (const Design &d : designs) {
            auto e = sched::iterationEnergy(d, m, c);
            double rate =
                200e6 / double(sched::iterationCycles(
                            d, m, sched::SyncPolicy::Deferred));
            t.addRow(d.name(), e.computePj / 1e6, e.onChipPj / 1e6,
                     e.dramPj / 1e6, e.idlePj / 1e6,
                     e.totalPj() / 1e6,
                     sched::impliedWatts(e, rate));
        }
        t.print(std::cout);
    }
    std::cout << "\n(Implied watts cover the PE array and memory "
                 "traffic only; static, clocking and I/O overheads "
                 "take a real board to the ~20 W class.)\n";
    return 0;
}
