/**
 * @file
 * Tests for activations, optimizers, losses and trainable layers.
 */

#include <gtest/gtest.h>

#include "nn/activations.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using nn::Activation;
using nn::Conv2dGeom;
using tensor::Shape4;
using tensor::Tensor;
using util::PanicError;
using util::Rng;

double
dot(const Tensor &a, const Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i)
        s += double(a.data()[i]) * b.data()[i];
    return s;
}

// ---------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------

TEST(Activations, ForwardValues)
{
    Tensor x(1, 1, 1, 4);
    x.at(0, 0, 0, 0) = -2.0f;
    x.at(0, 0, 0, 1) = -0.5f;
    x.at(0, 0, 0, 2) = 0.0f;
    x.at(0, 0, 0, 3) = 3.0f;

    Tensor relu = nn::activationForward(x, Activation::ReLU);
    EXPECT_FLOAT_EQ(relu.get(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(relu.get(0, 0, 0, 3), 3.0f);

    Tensor lrelu = nn::activationForward(x, Activation::LeakyReLU);
    EXPECT_FLOAT_EQ(lrelu.get(0, 0, 0, 0), -0.4f);
    EXPECT_FLOAT_EQ(lrelu.get(0, 0, 0, 3), 3.0f);

    Tensor tanh = nn::activationForward(x, Activation::Tanh);
    EXPECT_NEAR(tanh.get(0, 0, 0, 3), std::tanh(3.0f), 1e-6);

    Tensor none = nn::activationForward(x, Activation::None);
    EXPECT_FLOAT_EQ(none.get(0, 0, 0, 1), -0.5f);
}

class ActivationGradTest : public ::testing::TestWithParam<Activation>
{
};

TEST_P(ActivationGradTest, NumericalDerivativeMatches)
{
    Activation a = GetParam();
    Rng rng(61);
    Tensor pre(1, 1, 3, 3);
    pre.fillUniform(rng, -2.0f, 2.0f);
    Tensor mask(pre.shape());
    mask.fillUniform(rng);
    Tensor analytic = nn::activationBackward(mask, pre, a);
    const float eps = 1e-3f;
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x) {
            Tensor p = pre, m = pre;
            p.at(0, 0, y, x) += eps;
            m.at(0, 0, y, x) -= eps;
            double fp = dot(nn::activationForward(p, a), mask);
            double fm = dot(nn::activationForward(m, a), mask);
            EXPECT_NEAR((fp - fm) / (2 * eps), analytic.get(0, 0, y, x),
                        1e-2);
        }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivationGradTest,
                         ::testing::Values(Activation::None,
                                           Activation::ReLU,
                                           Activation::LeakyReLU,
                                           Activation::Tanh));

// ---------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------

TEST(Loss, CriticLossIsNegativeWassersteinGap)
{
    double loss = nn::wassersteinCriticLoss({2.0, 4.0}, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(loss, -2.0);
}

TEST(Loss, GeneratorLossIsNegativeMeanScore)
{
    EXPECT_DOUBLE_EQ(nn::wassersteinGeneratorLoss({1.0, 3.0}), -2.0);
}

TEST(Loss, PerSampleErrorsAreConstants)
{
    // Eq. (6): the error is +-1/m regardless of other samples — the
    // fact that enables deferred synchronization.
    EXPECT_DOUBLE_EQ(nn::criticOutputErrorReal(4), -0.25);
    EXPECT_DOUBLE_EQ(nn::criticOutputErrorFake(4), 0.25);
    EXPECT_DOUBLE_EQ(nn::generatorOutputError(4), -0.25);
}

TEST(Loss, ErrorsAreExactGradientOfLoss)
{
    // d(critic loss)/d D(x_i) computed numerically.
    std::vector<double> real{1.0, -2.0, 0.5};
    std::vector<double> fake{0.3, 0.7, -1.1};
    const double eps = 1e-6;
    for (std::size_t i = 0; i < real.size(); ++i) {
        auto rp = real, rm = real;
        rp[i] += eps;
        rm[i] -= eps;
        double g = (nn::wassersteinCriticLoss(rp, fake) -
                    nn::wassersteinCriticLoss(rm, fake)) /
                   (2 * eps);
        EXPECT_NEAR(g, nn::criticOutputErrorReal(3), 1e-6);
    }
    for (std::size_t i = 0; i < fake.size(); ++i) {
        auto fp = fake, fm = fake;
        fp[i] += eps;
        fm[i] -= eps;
        double g = (nn::wassersteinCriticLoss(real, fp) -
                    nn::wassersteinCriticLoss(real, fm)) /
                   (2 * eps);
        EXPECT_NEAR(g, nn::criticOutputErrorFake(3), 1e-6);
    }
}

// ---------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------

TEST(Optimizer, SgdStepsAgainstGradient)
{
    Tensor p(1, 1, 1, 2, 1.0f);
    Tensor g(1, 1, 1, 2, 0.5f);
    nn::Sgd opt(0.1f);
    opt.step(1, p, g);
    EXPECT_FLOAT_EQ(p.get(0, 0, 0, 0), 0.95f);
}

TEST(Optimizer, RmsPropNormalizesStepSize)
{
    // With a constant gradient, RMSProp's effective step approaches
    // lr / sqrt(1) regardless of gradient magnitude.
    Tensor p_small(1, 1, 1, 1, 0.0f), p_big(1, 1, 1, 1, 0.0f);
    Tensor g_small(1, 1, 1, 1, 0.01f), g_big(1, 1, 1, 1, 100.0f);
    nn::RmsProp opt(0.1f);
    for (int i = 0; i < 200; ++i) {
        opt.step(1, p_small, g_small);
        opt.step(2, p_big, g_big);
    }
    // Both should have moved a comparable distance despite the 1e4x
    // gradient-scale difference.
    double ratio = p_big.get(0, 0, 0, 0) / p_small.get(0, 0, 0, 0);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Optimizer, RmsPropKeepsPerParamState)
{
    Tensor p1(1, 1, 1, 1, 0.0f), p2(1, 1, 1, 1, 0.0f);
    Tensor g1(1, 1, 1, 1, 1.0f), g2(1, 1, 1, 1, 1e-3f);
    nn::RmsProp opt(0.1f);
    opt.step(1, p1, g1);
    opt.step(2, p2, g2);
    // First steps are lr/sqrt((1-decay)) * sign-ish for both — state
    // must not leak between parameter ids.
    EXPECT_NEAR(p1.get(0, 0, 0, 0), p2.get(0, 0, 0, 0), 1e-3);
}

TEST(Optimizer, AdamTakesBiasCorrectedFirstStep)
{
    // With bias correction, the first Adam step is ~lr in the
    // gradient's direction regardless of gradient magnitude.
    Tensor p1(1, 1, 1, 1, 0.0f), p2(1, 1, 1, 1, 0.0f);
    Tensor g1(1, 1, 1, 1, 10.0f), g2(1, 1, 1, 1, 1e-3f);
    nn::Adam opt(0.01f);
    opt.step(1, p1, g1);
    opt.step(2, p2, g2);
    EXPECT_NEAR(p1.get(0, 0, 0, 0), -0.01f, 1e-4);
    EXPECT_NEAR(p2.get(0, 0, 0, 0), -0.01f, 1e-4);
}

TEST(Optimizer, AdamConvergesOnAQuadratic)
{
    // Minimize (x - 3)^2: gradient 2(x-3).
    Tensor x(1, 1, 1, 1, 0.0f);
    nn::Adam opt(0.1f);
    for (int i = 0; i < 300; ++i) {
        Tensor g(1, 1, 1, 1, 2.0f * (x.get(0, 0, 0, 0) - 3.0f));
        opt.step(1, x, g);
    }
    EXPECT_NEAR(x.get(0, 0, 0, 0), 3.0f, 0.05f);
}

TEST(Optimizer, AdamStatePerParamId)
{
    Tensor pa(1, 1, 1, 1, 0.0f), pb(1, 1, 1, 1, 0.0f);
    Tensor g(1, 1, 1, 1, 1.0f);
    nn::Adam opt(0.01f);
    for (int i = 0; i < 5; ++i)
        opt.step(1, pa, g);
    opt.step(2, pb, g);
    // Fresh state: pb's single step equals the bias-corrected first
    // step, not pa's warmed-up trajectory.
    EXPECT_NEAR(pb.get(0, 0, 0, 0), -0.01f, 1e-4);
    EXPECT_LT(pa.get(0, 0, 0, 0), pb.get(0, 0, 0, 0));
}

TEST(Optimizer, ClipWeightsBoundsEveryElement)
{
    Rng rng(71);
    Tensor t(1, 2, 4, 4);
    t.fillUniform(rng, -3.0f, 3.0f);
    nn::clipWeights(t, 0.01f);
    EXPECT_LE(t.absMax(), 0.01f);
}

// ---------------------------------------------------------------------
// Layers
// ---------------------------------------------------------------------

TEST(ConvLayer, ForwardShapeAndBackwardBeforeForwardPanics)
{
    nn::ConvLayer layer(3, 8, Conv2dGeom{5, 2, 2, 0},
                        Activation::LeakyReLU);
    Rng rng(73);
    layer.initWeights(rng);
    EXPECT_THROW(layer.backward(Tensor(1, 8, 8, 8)), PanicError);
    Tensor in(1, 3, 16, 16);
    in.fillUniform(rng);
    Tensor out = layer.forward(in);
    EXPECT_EQ(out.shape(), Shape4(1, 8, 8, 8));
    EXPECT_EQ(layer.outDim(16), 8);
}

TEST(ConvLayer, EndToEndGradientCheck)
{
    Rng rng(79);
    nn::ConvLayer layer(2, 3, Conv2dGeom{3, 2, 1, 0},
                        Activation::LeakyReLU);
    layer.initWeights(rng);
    Tensor in(1, 2, 6, 6);
    in.fillUniform(rng);
    Tensor out = layer.forward(in);
    Tensor mask(out.shape());
    mask.fillUniform(rng);
    Tensor din = layer.backward(mask);
    const Tensor dw = layer.gradAccum();

    const float eps = 1e-3f;
    Rng pick(17);
    for (int trial = 0; trial < 15; ++trial) {
        int of = pick.uniformInt(0, 2), c = pick.uniformInt(0, 1);
        int ky = pick.uniformInt(0, 2), kx = pick.uniformInt(0, 2);
        float orig = layer.weights().get(of, c, ky, kx);
        layer.weights().at(of, c, ky, kx) = orig + eps;
        double fp = dot(layer.forward(in), mask);
        layer.weights().at(of, c, ky, kx) = orig - eps;
        double fm = dot(layer.forward(in), mask);
        layer.weights().at(of, c, ky, kx) = orig;
        EXPECT_NEAR((fp - fm) / (2 * eps), dw.get(of, c, ky, kx), 2e-2);

        int y = pick.uniformInt(0, 5), x = pick.uniformInt(0, 5);
        Tensor ip = in, im = in;
        ip.at(0, c, y, x) += eps;
        im.at(0, c, y, x) -= eps;
        fp = dot(layer.forward(ip), mask);
        fm = dot(layer.forward(im), mask);
        EXPECT_NEAR((fp - fm) / (2 * eps), din.get(0, c, y, x), 2e-2);
    }
}

TEST(TransposedConvLayer, EndToEndGradientCheck)
{
    Rng rng(83);
    nn::TransposedConvLayer layer(3, 2, Conv2dGeom{4, 2, 1, 0},
                                  Activation::Tanh);
    layer.initWeights(rng);
    Tensor in(1, 3, 4, 4);
    in.fillUniform(rng);
    Tensor out = layer.forward(in);
    EXPECT_EQ(out.shape(), Shape4(1, 2, 8, 8));
    Tensor mask(out.shape());
    mask.fillUniform(rng);
    Tensor din = layer.backward(mask);
    const Tensor dw = layer.gradAccum();

    const float eps = 1e-3f;
    Rng pick(19);
    for (int trial = 0; trial < 15; ++trial) {
        int c = pick.uniformInt(0, 2), of = pick.uniformInt(0, 1);
        int ky = pick.uniformInt(0, 3), kx = pick.uniformInt(0, 3);
        float orig = layer.weights().get(c, of, ky, kx);
        layer.weights().at(c, of, ky, kx) = orig + eps;
        double fp = dot(layer.forward(in), mask);
        layer.weights().at(c, of, ky, kx) = orig - eps;
        double fm = dot(layer.forward(in), mask);
        layer.weights().at(c, of, ky, kx) = orig;
        EXPECT_NEAR((fp - fm) / (2 * eps), dw.get(c, of, ky, kx), 2e-2);

        int y = pick.uniformInt(0, 3), x = pick.uniformInt(0, 3);
        Tensor ip = in, im = in;
        ip.at(0, c, y, x) += eps;
        im.at(0, c, y, x) -= eps;
        fp = dot(layer.forward(ip), mask);
        fm = dot(layer.forward(im), mask);
        EXPECT_NEAR((fp - fm) / (2 * eps), din.get(0, c, y, x), 2e-2);
    }
}

TEST(ConvLayer, GradientAccumulatesAcrossBackwardCalls)
{
    Rng rng(89);
    nn::ConvLayer layer(1, 2, Conv2dGeom{3, 1, 1, 0}, Activation::None);
    layer.initWeights(rng);
    Tensor in(1, 1, 5, 5);
    in.fillUniform(rng);
    Tensor mask(1, 2, 5, 5);
    mask.fillUniform(rng);

    layer.forward(in);
    layer.backward(mask);
    Tensor once = layer.gradAccum();
    layer.forward(in);
    layer.backward(mask);
    EXPECT_EQ(layer.gradSamples(), 2);
    Tensor twice = layer.gradAccum();
    Tensor expected = once;
    expected.scale(2.0f);
    EXPECT_TRUE(tensor::approxEqual(twice, expected, 1e-4f));
    layer.zeroGrad();
    EXPECT_EQ(layer.gradSamples(), 0);
    EXPECT_FLOAT_EQ(layer.gradAccum().absMax(), 0.0f);
}

TEST(ConvLayer, ApplyUpdateChangesWeightsAndClearsGrads)
{
    Rng rng(97);
    nn::ConvLayer layer(1, 1, Conv2dGeom{3, 1, 1, 0}, Activation::None);
    layer.initWeights(rng);
    Tensor in(1, 1, 4, 4);
    in.fillUniform(rng);
    layer.forward(in);
    layer.backward(Tensor(1, 1, 4, 4, 1.0f));
    Tensor before = layer.weights();
    nn::Sgd opt(0.1f);
    layer.applyUpdate(opt);
    EXPECT_GT(tensor::maxAbsDiff(before, layer.weights()), 0.0f);
    EXPECT_EQ(layer.gradSamples(), 0);
    // A second applyUpdate with no gradient is a bug.
    EXPECT_THROW(layer.applyUpdate(opt), PanicError);
}

TEST(ConvLayer, DescribeMentionsGeometry)
{
    nn::ConvLayer layer(3, 64, Conv2dGeom{5, 2, 2, 0},
                        Activation::LeakyReLU);
    std::string d = layer.describe();
    EXPECT_NE(d.find("S-CONV"), std::string::npos);
    EXPECT_NE(d.find("3->64"), std::string::npos);
    EXPECT_NE(d.find("k5"), std::string::npos);
}

} // namespace
