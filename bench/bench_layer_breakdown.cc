/**
 * @file
 * Per-layer anatomy of the accelerator's work: for each network,
 * every (phase, layer) job's cycles, utilization and access counts on
 * the bank that owns it — the table an architect reads to find which
 * layer binds and why. Shows the characteristic GAN shape: the first
 * discriminator layer is access-heavy but MAC-light, the middle
 * layers dominate cycles, the tiny head underutilizes everything.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Per-layer breakdown on the ZFOST-ZFWST design",
                  "middle layers dominate cycles; the scalar head "
                  "underutilizes the array; W-CONV layers ride the "
                  "ZFWST bank");

    for (const auto &m : gan::allModels()) {
        std::cout << "\n===== " << m.name << " =====\n";
        for (sim::Phase p : sim::allPhases()) {
            auto fam = sim::familyOf(p);
            core::BankRole role =
                (fam == sim::PhaseFamily::Dw ||
                 fam == sim::PhaseFamily::Gw)
                    ? core::BankRole::W
                    : core::BankRole::ST;
            core::ArchKind kind = role == core::BankRole::W
                                      ? core::ArchKind::ZFWST
                                      : core::ArchKind::ZFOST;
            int pes = role == core::BankRole::W ? 480 : 1200;
            auto arch = core::makeArch(
                kind, core::paperUnroll(kind, role, fam, pes));
            auto jobs = sim::phaseJobs(m, p);

            std::cout << "\n" << sim::phaseName(p) << " on "
                      << core::archKindName(kind) << " (" << pes
                      << " PEs):\n";
            util::Table t({"job", "cycles", "util %", "eff MMACs",
                           "accesses (k)", "cyc share %"});
            std::uint64_t total = 0;
            std::vector<sim::RunStats> stats;
            for (const auto &j : jobs) {
                stats.push_back(arch->run(j));
                total += stats.back().cycles;
            }
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const auto &st = stats[i];
                t.addRow(jobs[i].label, st.cycles,
                         100.0 * st.utilization(),
                         double(st.effectiveMacs) / 1e6,
                         double(st.totalAccesses()) / 1e3,
                         100.0 * double(st.cycles) / double(total));
            }
            t.print(std::cout);
        }
    }
    return 0;
}
