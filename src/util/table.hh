/**
 * @file
 * Aligned plain-text table printer used by the bench harnesses so every
 * reproduced table/figure prints in a consistent, diffable format.
 */

#ifndef GANACC_UTIL_TABLE_HH
#define GANACC_UTIL_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace ganacc {
namespace util {

/** Collects rows of cells and prints them with aligned columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header)) {}

    /** Append a row; cells are converted with operator<<. */
    template <typename... Cells>
    void
    addRow(const Cells &...cells)
    {
        std::vector<std::string> row;
        (row.push_back(toCell(cells)), ...);
        rows_.push_back(std::move(row));
    }

    /** Render with a separator line under the header. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> widths(header_.size(), 0);
        for (std::size_t c = 0; c < header_.size(); ++c)
            widths[c] = header_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        printRow(os, header_, widths);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
        for (const auto &row : rows_)
            printRow(os, row, widths);
    }

  private:
    template <typename T>
    static std::string
    toCell(const T &v)
    {
        std::ostringstream os;
        if constexpr (std::is_floating_point_v<T>)
            os << std::fixed << std::setprecision(3) << v;
        else
            os << v;
        return os.str();
    }

    static void
    printRow(std::ostream &os, const std::vector<std::string> &row,
             const std::vector<std::size_t> &widths)
    {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << std::left << std::setw(int(widths[c]) + 2) << row[c];
        os << "\n";
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_TABLE_HH
