/**
 * @file
 * GAN network topologies evaluated by the paper: DCGAN (Fig. 1),
 * MNIST-GAN and cGAN (Table IV). Each model is described as its
 * discriminator's S-CONV stack; the generator is derived as the
 * structural inverse (T-CONV stack), exactly as the paper states
 * ("Generator has an inverse architecture of Discriminator").
 */

#ifndef GANACC_GAN_MODELS_HH
#define GANACC_GAN_MODELS_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv_ref.hh"
#include "nn/layers.hh"
#include "tensor/shape.hh"

namespace ganacc {
namespace gan {

/** Static description of one convolutional layer in a GAN network. */
struct LayerSpec
{
    nn::ConvKind kind = nn::ConvKind::Strided;
    nn::Activation act = nn::Activation::LeakyReLU;
    /// Attach batch normalization between conv and activation (the
    /// DCGAN recipe; off for the paper's evaluation networks).
    bool batchNorm = false;
    int inChannels = 1;
    int outChannels = 1;
    int inH = 1;
    int inW = 1;
    nn::Conv2dGeom geom;

    /** Spatial output rows. */
    int outH() const;
    /** Spatial output columns. */
    int outW() const;

    /** Dense multiply-accumulate count of the forward pass. */
    std::size_t macs() const;

    /** Number of weights (outChannels*inChannels*k*k). */
    std::size_t numWeights() const;

    /** Output feature-map elements (outChannels*outH*outW). */
    std::size_t outputElems() const;

    std::string describe() const;
};

/** A full GAN: discriminator stack plus derived generator stack. */
struct GanModel
{
    std::string name;
    int latentDim = 100;          ///< generator input channels (z)
    std::vector<LayerSpec> disc;  ///< S-CONV layers, image -> scalar
    std::vector<LayerSpec> gen;   ///< T-CONV layers, z -> image

    /** Image shape consumed by the discriminator. */
    tensor::Shape4 imageShape() const;

    /** Per-sample intermediate-output elements of the discriminator
     *  (the d^l buffered for weight updating, Section III-A). */
    std::size_t discIntermediateElems() const;

    /** Same for the generator stack. */
    std::size_t genIntermediateElems() const;
};

/**
 * Build a model from a discriminator description.
 *
 * @param name       model name.
 * @param disc       discriminator S-CONV layers (including the scalar
 *                   head).
 * @param latent_dim generator input (noise) channels; the generator is
 *                   the layer-by-layer inverse of the discriminator
 *                   with its first layer fed latent_dim channels.
 */
GanModel makeModel(std::string name, std::vector<LayerSpec> disc,
                   int latent_dim);

/** DCGAN of Fig. 1: 3x64x64 images, 5x5 kernels, stride 2, 4 layers. */
GanModel makeDcgan();

/** MNIST-GAN of Table IV: 1x28x28, 5x5 kernels, 2 conv layers. */
GanModel makeMnistGan();

/** cGAN of Table IV: 3x64x64, 4x4 kernels, 4 conv layers. */
GanModel makeCgan();

/**
 * Build a model with an explicit generator stack (for encoder-decoder
 * generators that are not the discriminator's inverse). Chains are
 * validated; the generator's output must match the discriminator's
 * input.
 */
GanModel makeModelWithGenerator(std::string name,
                                std::vector<LayerSpec> disc,
                                std::vector<LayerSpec> gen);

/**
 * Context-Encoder-style conditional GAN (Pathak et al., the system
 * the paper's cGAN evaluation represents): the generator is an
 * encoder-decoder — an S-CONV stack down to a 512x4x4 bottleneck,
 * then a T-CONV stack back to the image — conditioned on the masked
 * input image rather than a noise vector. Exercises the mixed
 * strided/transposed generator paths of the phase mapping.
 */
GanModel makeContextEncoder();

/** All three evaluation networks, in paper order. */
std::vector<GanModel> allModels();

/** Instantiate a trainable layer from its spec (weights unset). */
std::unique_ptr<nn::ConvLayerBase> instantiateLayer(const LayerSpec &spec);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_MODELS_HH
