/**
 * @file
 * Fidelity ablation: the analytic two-bank timing model (Fig. 17's
 * rules) versus the event-driven job-DAG simulation with real
 * per-layer dependencies and a contended DRAM channel. Quantifies
 * how much of the ideal ST/W overlap the dependency structure
 * permits, and reports the Data/Error buffer high-water marks the
 * schedule actually needs (validating the Fig. 14 plan).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "mem/onchip_buffer.hh"
#include "sched/design.hh"
#include "sched/event_sim.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;
    using sched::UpdateKind;

    bench::banner("Ablation — analytic vs event-driven timing",
                  "the deferred overlap max(ST, W) is achievable "
                  "within a few percent once per-sample loops "
                  "pipeline");

    Design d = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    mem::OffChipConfig offchip;

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name << "\n";
        util::Table t({"update", "analytic sync", "analytic deferred",
                       "event 1 sample", "event steady (8)",
                       "overlap achieved %", "ST busy", "W busy",
                       "DRAM busy"});
        for (UpdateKind k :
             {UpdateKind::Discriminator, UpdateKind::Generator}) {
            auto analytic = k == UpdateKind::Discriminator
                                ? sched::discriminatorUpdateTiming(d, m)
                                : sched::generatorUpdateTiming(d, m);
            auto dag = sched::buildUpdateDag(d, m, k);
            auto t1 = sched::simulateEvents(dag, 1, offchip);
            auto t8 = sched::simulateEvents(dag, 8, offchip);
            std::uint64_t steady = t8.makespan / 8;
            double overlap =
                100.0 *
                (double(analytic.syncCycles) - double(steady)) /
                (double(analytic.syncCycles) -
                 double(analytic.deferredCycles));
            t.addRow(sched::updateKindName(k), analytic.syncCycles,
                     analytic.deferredCycles, t1.makespan, steady,
                     overlap, t8.stBusyFraction, t8.wBusyFraction,
                     t8.dramBusyFraction);
        }
        t.print(std::cout);

        // Buffer high-water marks vs the static plan.
        auto plan = mem::planBuffers(m, 30, 2);
        auto dag =
            sched::buildUpdateDag(d, m, UpdateKind::Discriminator);
        auto trace = sched::simulateEvents(dag, 4, offchip);
        std::cout << "Data buffer peak (4 samples in flight): "
                  << trace.peakDataBytes << " B vs planned "
                  << plan.dataBytes << " B/sample; Error peak: "
                  << trace.peakErrorBytes << " B vs planned "
                  << plan.errorBytes << " B/sample\n";
    }

    // Bandwidth sensitivity: when does the DRAM channel become the
    // bottleneck?
    std::cout << "\nDRAM bandwidth sensitivity (DCGAN, D update, 8 "
                 "samples):\n";
    util::Table b({"Gbps", "steady cycles/sample", "DRAM busy %"});
    gan::GanModel dcgan = gan::makeDcgan();
    auto dag =
        sched::buildUpdateDag(d, dcgan, UpdateKind::Discriminator);
    for (double gbps : {12.0, 24.0, 48.0, 96.0, 192.0, 384.0}) {
        mem::OffChipConfig cfg;
        cfg.bandwidthBitsPerSec = gbps * 1e9;
        auto tr = sched::simulateEvents(dag, 8, cfg);
        b.addRow(gbps, tr.makespan / 8, 100.0 * tr.dramBusyFraction);
    }
    b.print(std::cout);
    return 0;
}
