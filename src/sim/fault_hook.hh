/**
 * @file
 * The MAC-path fault-injection hook.
 *
 * Every dataflow's functional inner loop produces its products through
 * Architecture::macProduct(), which forwards to an installed
 * MacFaultHook (src/fault implements one). The hook sees the full
 * logical coordinate of each *physically scheduled* multiply — the
 * lattice point (of, c, oy, ox, ky, kx) plus the physical PE lane the
 * dataflow maps it to — so one hook covers NLR/WST/OST/ZFOST/ZFWST
 * (and CNV/RST) without per-dataflow fault logic.
 *
 * The masking contract: a dataflow calls the hook for every scheduled
 * MAC, including ineffectual ones (structural-zero or padding
 * operands) when visitIneffectual() asks for them — those slots are
 * physically multiplied by the baselines, so a stuck-at or transient
 * fault there corrupts the accumulator even though the fault-free
 * product is zero. Lattice points a schedule never issues (the
 * zero-free designs' skipped work, or RST's clock-gated slots, whose
 * multiplier outputs never reach an accumulator) are never presented
 * to the hook: a fault armed there is *masked*. With no hook
 * installed the product path is exactly `a * b` — bit-identical to
 * the pre-fault simulator, which tests/golden/runstats_table5.json
 * guards.
 */

#ifndef GANACC_SIM_FAULT_HOOK_HH
#define GANACC_SIM_FAULT_HOOK_HH

namespace ganacc {
namespace sim {

/** Logical and physical coordinates of one scheduled MAC. */
struct MacContext
{
    int lane = 0; ///< physical PE index in [0, numPes())
    int of = 0;   ///< output feature map
    int c = 0;    ///< input feature map
    int oy = 0;   ///< output row
    int ox = 0;   ///< output column
    int ky = 0;   ///< kernel row (streamed coordinates)
    int kx = 0;   ///< kernel column
};

/** Transforms scheduled products; installed via setFaultHook(). */
class MacFaultHook
{
  public:
    virtual ~MacFaultHook() = default;

    /**
     * One scheduled MAC. @return the (possibly corrupted) product;
     * the fault-free value is a * b. Called once per lattice point.
     */
    virtual float onMac(const MacContext &ctx, float a, float b) = 0;

    /**
     * True when the hook needs to observe ineffectual scheduled slots
     * (zero-operand multiplies the baselines still execute). The
     * dataflows only walk those in functional mode when this is set,
     * keeping the fault-free fast path untouched.
     */
    virtual bool visitIneffectual() const = 0;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_FAULT_HOOK_HH
