/**
 * @file
 * Energy-model tests: accounting identities, design rankings implied
 * by the access counts, and plausibility of the implied power.
 */

#include <gtest/gtest.h>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sched/energy.hh"
#include "sim/rst.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using sched::Design;
using sched::EnergyBreakdown;
using sched::EnergyCoefficients;

TEST(Energy, RunEnergyAccountingIdentity)
{
    sim::RunStats st;
    st.cycles = 100;
    st.nPes = 10;
    st.effectiveMacs = 600;
    st.ineffectualMacs = 200;
    st.idlePeSlots = 200;
    st.weightLoads = 50;
    st.inputLoads = 30;
    st.outputReads = 10;
    st.outputWrites = 10;
    EnergyCoefficients c;
    EnergyBreakdown e = sched::runEnergy(st, c);
    EXPECT_DOUBLE_EQ(e.computePj, 800 * (c.macPj + c.registerPj));
    EXPECT_DOUBLE_EQ(e.onChipPj, 100 * c.sramPj);
    EXPECT_DOUBLE_EQ(e.idlePj, 200 * c.idlePj);
    EXPECT_DOUBLE_EQ(e.totalPj(),
                     e.computePj + e.onChipPj + e.idlePj + e.dramPj);
}

TEST(Energy, GatedSlotsCostIdleNotMacEnergy)
{
    sim::RunStats st;
    st.cycles = 10;
    st.nPes = 10;
    st.effectiveMacs = 40;
    st.ineffectualMacs = 60;
    st.idlePeSlots = 0;
    EnergyCoefficients c;
    EnergyBreakdown hot = sched::runEnergy(st, c, 0);
    EnergyBreakdown gated = sched::runEnergy(st, c, 60);
    EXPECT_LT(gated.totalPj(), hot.totalPj());
    EXPECT_DOUBLE_EQ(gated.computePj, 40 * (c.macPj + c.registerPj));
    // Cannot gate more than the ineffectual work.
    EXPECT_THROW(sched::runEnergy(st, c, 61), util::PanicError);
}

TEST(Energy, ZeroFreeComboIsTheMostEfficientDesign)
{
    // The Fig. 16 argument in joules: ZFOST-ZFWST spends the least
    // per iteration on every network.
    for (const auto &m : gan::allModels()) {
        double zz = sched::iterationEnergy(
                        Design::combo(ArchKind::ZFOST,
                                      ArchKind::ZFWST, 1680),
                        m)
                        .totalPj();
        double no = sched::iterationEnergy(
                        Design::combo(ArchKind::NLR, ArchKind::OST,
                                      1680),
                        m)
                        .totalPj();
        double ost = sched::iterationEnergy(
                         Design::unique(ArchKind::OST, 1680), m)
                         .totalPj();
        EXPECT_LT(zz, no) << m.name;
        EXPECT_LT(zz, ost) << m.name;
    }
}

TEST(Energy, NlrPaysForItsStreamingAccesses)
{
    // NLR matches the zero-free designs in cycles on the G phases but
    // must pay heavily in on-chip access energy.
    gan::GanModel m = gan::makeDcgan();
    auto no = sched::iterationEnergy(
        Design::combo(ArchKind::NLR, ArchKind::OST, 1680), m);
    auto zz = sched::iterationEnergy(
        Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680), m);
    EXPECT_GT(no.onChipPj, 3.0 * zz.onChipPj);
}

TEST(Energy, ImpliedPowerIsInTheFpgaClass)
{
    // The dynamic power implied by the model at the achieved
    // throughput must sit in single-digit-to-tens watts — consistent
    // with the 22 W board figure (which adds static/IO overheads),
    // nowhere near the CPU/GPU class.
    gan::GanModel m = gan::makeDcgan();
    Design d = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    auto e = sched::iterationEnergy(d, m);
    double rate = 200e6 / double(sched::iterationCycles(
                              d, m, sched::SyncPolicy::Deferred));
    double watts = sched::impliedWatts(e, rate);
    EXPECT_GT(watts, 0.5);
    EXPECT_LT(watts, 25.0);
}

TEST(Energy, DramDominatesWhenTrafficIsHeavy)
{
    // The weight-gradient streams make DRAM a first-order term for
    // the weight-heavy networks.
    gan::GanModel m = gan::makeDcgan();
    auto e = sched::iterationEnergy(
        Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680), m);
    EXPECT_GT(e.dramPj, 0.2 * e.totalPj());
}

TEST(Energy, BreakdownAccumulates)
{
    EnergyBreakdown a{1.0, 2.0, 3.0, 4.0};
    EnergyBreakdown b{10.0, 20.0, 30.0, 40.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.totalPj(), 110.0);
}

} // namespace
