/**
 * @file
 * Wasserstein loss implementations.
 */

#include "nn/loss.hh"

#include "util/logging.hh"

namespace ganacc {
namespace nn {

double
wassersteinCriticLoss(const std::vector<double> &real_scores,
                      const std::vector<double> &fake_scores)
{
    GANACC_ASSERT(!real_scores.empty() &&
                      real_scores.size() == fake_scores.size(),
                  "critic loss needs equal, non-empty batches");
    double acc = 0.0;
    for (std::size_t i = 0; i < real_scores.size(); ++i)
        acc += real_scores[i] - fake_scores[i];
    return -acc / double(real_scores.size());
}

double
wassersteinGeneratorLoss(const std::vector<double> &fake_scores)
{
    GANACC_ASSERT(!fake_scores.empty(), "generator loss needs samples");
    double acc = 0.0;
    for (double s : fake_scores)
        acc += s;
    return -acc / double(fake_scores.size());
}

double
criticOutputErrorReal(int batch_size)
{
    GANACC_ASSERT(batch_size > 0, "batch size must be positive");
    return -1.0 / double(batch_size);
}

double
criticOutputErrorFake(int batch_size)
{
    GANACC_ASSERT(batch_size > 0, "batch size must be positive");
    return 1.0 / double(batch_size);
}

double
generatorOutputError(int batch_size)
{
    GANACC_ASSERT(batch_size > 0, "batch size must be positive");
    return -1.0 / double(batch_size);
}

} // namespace nn
} // namespace ganacc
