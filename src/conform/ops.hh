/**
 * @file
 * The operation grammar of the serve/store conformance harness.
 *
 * A conformance run is a sequence of *operations*: wire-visible
 * requests (simulation requests, duplicate bursts that exercise the
 * single-flight layer, deliberately malformed frames, telemetry
 * probes) interleaved with out-of-band perturbations (memory-tier
 * eviction, store-entry eviction/corruption, planting stale-version
 * entries, arming filesystem faults, daemon restart). The harness
 * applies the same sequence to a live daemon and to the in-process
 * reference model (conform/reference.hh) and diffs every observable.
 *
 * Operations are self-contained values: a perturbation op carries the
 * full (arch, unroll, spec) triple it targets rather than an index
 * into earlier ops, so delta-debug shrinking (conform/shrink.hh) can
 * drop any subset of a failing sequence without renumbering anything,
 * and a dumped trace replays byte-identically from the file alone.
 *
 * The JSONL codec here is the trace format of
 * `ganacc-conform --dump-trace` / `--replay`: one op per line,
 * canonical encoding (encode(decode(encode(op))) == encode(op)).
 */

#ifndef GANACC_CONFORM_OPS_HH
#define GANACC_CONFORM_OPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/unrolling.hh"
#include "fault/fs_faults.hh"
#include "sim/conv_spec.hh"
#include "sim/arch.hh"

namespace ganacc {
namespace conform {

/** Every operation the harness can apply. */
enum class OpKind
{
    SimRequest,   ///< one {"spec":…} request over the wire
    NetRequest,   ///< one {"model":…,"family":…} request
    DupBurst,     ///< K identical spec requests pipelined at once
    Malformed,    ///< one raw (usually broken) frame, sent verbatim
    StatsProbe,   ///< one {"stats":true} telemetry probe
    MetricsProbe, ///< one {"metrics":true} Prometheus scrape probe
    TraceDrain,   ///< one {"trace-drain":true} span-batch probe
    EvictMemory,  ///< clear the in-process CycleCache memory tier
    EvictEntry,   ///< delete the store entry of a triple
    CorruptEntry, ///< overwrite the entry file with damaged bytes
    PlantStale,   ///< write a valid entry with a wrong version stamp
    FsFault,      ///< arm fault::FsFaultPlan budgets on the store
    Restart,      ///< stop-drain the daemon and start a fresh one
};

std::string opKindName(OpKind k);

/** How CorruptEntry damages the entry file. */
enum class CorruptMode
{
    Garbage,  ///< overwrite with non-JSON bytes
    Truncate, ///< keep only the first half of the entry (torn write)
    ZeroByte, ///< truncate to an empty file
};

std::string corruptModeName(CorruptMode m);

/** One operation. Which fields are meaningful depends on `kind`:
 *  the (arch, unroll, spec) triple for SimRequest / DupBurst /
 *  EvictEntry / CorruptEntry / PlantStale; (arch, unroll, model,
 *  family) for NetRequest; `raw` for Malformed; `count` for DupBurst;
 *  `corrupt` for CorruptEntry; `faults` for FsFault; `id` is the wire
 *  id of the first request the op sends (request-like ops only). */
struct Op
{
    OpKind kind = OpKind::SimRequest;
    std::uint64_t id = 0;

    core::ArchKind arch = core::ArchKind::NLR;
    sim::Unroll unroll;
    sim::ConvSpec spec;

    int count = 0;             ///< DupBurst: burst size (>= 2)
    std::string model;         ///< NetRequest
    std::string family;        ///< NetRequest
    std::string raw;           ///< Malformed: the frame, verbatim
    CorruptMode corrupt = CorruptMode::Garbage;
    fault::FsFaultPlan faults; ///< FsFault

    /** True for ops that put at least one line on the wire. */
    bool sendsRequests() const;
};

/** Canonical one-line JSONL encoding (no trailing newline). */
std::string encodeOp(const Op &op);

/** Parse one trace line; throws util::FatalError on malformed input. */
Op decodeOp(const std::string &line);

/** Encode a whole sequence, one op per line, trailing newline each. */
std::string encodeTrace(const std::vector<Op> &seq);

/** Parse a whole trace (empty lines ignored). */
std::vector<Op> decodeTrace(const std::string &text);

/** Generator knobs. */
struct GenOptions
{
    std::size_t ops = 200; ///< sequence length (patterns may add +2)
    bool fsFaults = true;  ///< emit FsFault ops
    bool nets = true;      ///< emit NetRequest ops
    bool restarts = true;  ///< emit Restart ops
    /// Emit EvictEntry / CorruptEntry / PlantStale ops. Supported in
    /// fleet runs too: each perturbation addresses the one file in
    /// the key's primary store, which the fleet model mirrors.
    bool storeOps = true;
    int burstMax = 10;     ///< DupBurst size upper bound
};

/**
 * The seeded sequence generator. Deterministic: the same (seed,
 * options) always yields the same sequence, which is what makes
 * `ganacc-conform --seed S` bit-reproducible. Draws legal specs from
 * the same three GAN convolution patterns as the differential fuzzer,
 * reuses earlier triples often enough to exercise every cache tier,
 * and follows each corruption/planting with an eviction plus a
 * re-request of the same triple so the damage is actually observed.
 */
std::vector<Op> generateSequence(std::uint64_t seed,
                                 const GenOptions &opt);

/** One named malformed frame with its exact expected decode error. */
struct MalformedFrame
{
    std::string name;  ///< stable test-case name
    std::string line;  ///< the broken frame, sent verbatim
    std::string error; ///< exact expected "error" field text
};

/**
 * The table of deterministic malformed frames: truncated JSON, not
 * JSON at all, an oversized garbage line, unknown protocol version,
 * unknown architecture, a stats probe carrying a payload, a request
 * carrying both or neither payload. Shared between the generator
 * (which also mutates random valid frames) and the table-driven
 * negative-path protocol test, so the wire contract for every broken
 * frame is pinned in exactly one place.
 */
const std::vector<MalformedFrame> &malformedFrames();

} // namespace conform
} // namespace ganacc

#endif // GANACC_CONFORM_OPS_HH
