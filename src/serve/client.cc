/**
 * @file
 * Client implementation.
 */

#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace ganacc {
namespace serve {

Client::~Client()
{
    close();
}

void
Client::connect(const std::string &socket_path)
{
    close();
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path)
        util::fatal("socket path too long: ", socket_path);
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        util::fatal("socket(AF_UNIX): ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd);
        util::fatal("connect(", socket_path, "): ",
                    std::strerror(err),
                    " (is ganacc-served running?)");
    }
    fd_ = fd;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

void
Client::sendLine(const std::string &line)
{
    GANACC_ASSERT(fd_ >= 0, "client not connected");
    std::string wire = line;
    wire += '\n';
    std::size_t off = 0;
    while (off < wire.size()) {
        ssize_t n =
            ::write(fd_, wire.data() + off, wire.size() - off);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal (e.g. SIGUSR1
                      // metrics dump) — not an error, retry
        if (n <= 0)
            util::fatal("client write: ", std::strerror(errno));
        off += std::size_t(n);
    }
}

void
Client::sendRequest(const Request &req)
{
    sendLine(encodeRequest(req));
}

std::string
Client::recvLine()
{
    GANACC_ASSERT(fd_ >= 0, "client not connected");
    while (true) {
        auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR)
            continue; // interrupted, not closed — retry
        if (n < 0)
            util::fatal("client read: ", std::strerror(errno));
        if (n == 0)
            util::fatal("client read: connection closed by daemon");
        buf_.append(chunk, std::size_t(n));
    }
}

Response
Client::recvResponse()
{
    return decodeResponse(recvLine());
}

Response
Client::roundTrip(const Request &req)
{
    sendRequest(req);
    return recvResponse();
}

std::vector<std::string>
replayLines(Client &client,
            const std::vector<std::string> &request_lines,
            std::size_t window)
{
    std::vector<std::string> responses;
    responses.reserve(request_lines.size());
    std::size_t sent = 0, received = 0;
    while (received < request_lines.size()) {
        while (sent < request_lines.size() &&
               sent - received < window) {
            client.sendLine(request_lines[sent]);
            ++sent;
        }
        responses.push_back(client.recvLine());
        ++received;
    }
    return responses;
}

} // namespace serve
} // namespace ganacc
