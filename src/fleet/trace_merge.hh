/**
 * @file
 * Cross-process trace stitching.
 *
 * Each process in a fleet buffers its own spans (obs::TraceSink in
 * live mode) and hands them out through trace-drain probes as
 * canonical span batches (serve::encodeSpanBatch). This module merges
 * those per-shard batches, plus the collecting process's own local
 * events (the router's fleet.request root spans), into one Chrome
 * trace_event JSON document Perfetto and chrome://tracing open
 * directly:
 *
 *  - the local (router) events get pid 0, each shard s gets
 *    pid s + 1, and a process_name metadata event labels every pid
 *    with its role and address,
 *  - cross-process parentage survives as-is: every span's args carry
 *    its {"trace","span","parent"} identity (obs::spanArgs), so a
 *    shard's serve.request span still names the router's root span
 *    as its parent after the merge — that is what the CI fleet-smoke
 *    parentage assertions walk.
 *
 * Timestamps are each process's own microseconds-since-enable clock;
 * the merge does not attempt cross-host clock alignment (spans nest
 * logically by parent id, not by timestamp overlap).
 */

#ifndef GANACC_FLEET_TRACE_MERGE_HH
#define GANACC_FLEET_TRACE_MERGE_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hh"

namespace ganacc {
namespace fleet {

/**
 * Merge per-shard span batches with the collector's local events
 * into one Chrome trace JSON document. `perShard` rows are
 * (address, span-batch JSON) as returned by Router::drainTracesAll();
 * rows with an empty batch (unreachable shards) still get their
 * process_name metadata so shard pids stay stable. Throws
 * util::FatalError on a malformed span batch.
 */
std::string mergeTraces(
    const std::vector<std::pair<std::string, std::string>> &perShard,
    const std::vector<obs::TraceEvent> &localEvents);

} // namespace fleet
} // namespace ganacc

#endif // GANACC_FLEET_TRACE_MERGE_HH
