/**
 * @file
 * Design-space exploration with the public API: sweep off-chip
 * bandwidth and PE budget, derive each point's unrolling (eqs. 7-8 or
 * the exhaustive solver), check it against the FPGA's resources, and
 * report the throughput/resource frontier — the workflow an architect
 * would actually use this library for. Every sweep below runs on the
 * parallel sweep engine (--jobs N, or the GANACC_JOBS environment
 * variable) with results in deterministic point order.
 */

#include <iostream>
#include <vector>

#include "core/accelerator.hh"
#include "core/cycle_cache.hh"
#include "core/dse.hh"
#include "core/resource_model.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "serve/result_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    const bool no_verify = args.getFlag(
        "no-verify",
        "skip the static verifier pre-filter on frontier sweeps");
    // A warm --cache-dir/GANACC_CACHE_DIR result store turns repeat
    // explorations into disk reads; the summary at the end shows
    // which tier served this run.
    serve::ScopedDiskCache disk_cache(args.getCacheDir());
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    gan::GanModel dcgan = gan::makeDcgan();

    // 1. Bandwidth sweep: eq. (7) couples DRAM bandwidth to the
    //    sustainable W-bank width, which sizes the whole design.
    std::cout << "Bandwidth-driven sizing (DCGAN, 200 MHz, " << jobs
              << " jobs):\n";
    util::Table bw({"DRAM Gbps", "W_Pof", "ST_Pof", "PEs", "GOPS",
                    "samples/s", "fits VCU9P"});
    const std::vector<double> gbps_points = {48.0, 96.0, 192.0, 384.0};
    struct BwRow
    {
        int wPof = 0, stPof = 0, pes = 0;
        core::AcceleratorReport rep;
    };
    auto bw_rows = util::parallelMap(
        gbps_points,
        [&](double gbps) {
            core::AcceleratorConfig cfg;
            cfg.offchip.bandwidthBitsPerSec = gbps * 1e9;
            core::GanAccelerator acc(cfg);
            return BwRow{acc.wPof(), acc.stPof(), acc.totalPes(),
                         acc.evaluate(dcgan)};
        },
        jobs);
    for (std::size_t i = 0; i < gbps_points.size(); ++i)
        bw.addRow(gbps_points[i], bw_rows[i].wPof, bw_rows[i].stPof,
                  bw_rows[i].pes, bw_rows[i].rep.gopsDeferred,
                  bw_rows[i].rep.samplesPerSecond,
                  bw_rows[i].rep.fitsDevice ? "yes" : "no");
    bw.print(std::cout);

    // 2. PE sweep at fixed bandwidth: where does the design stop
    //    scaling?
    std::cout << "\nPE scaling (ZFOST-ZFWST, deferred sync):\n";
    util::Table pe({"PEs", "iter cycles", "samples/s", "DSP", "LUTs",
                    "fits"});
    auto plan = mem::planBuffers(dcgan, 30, 2);
    const std::vector<int> pe_points = {256, 512, 1024, 1680, 2048,
                                        4096};
    struct PeRow
    {
        std::uint64_t cycles = 0;
        core::FpgaResources res;
    };
    auto pe_rows = util::parallelMap(
        pe_points,
        [&](int pes) {
            auto d = sched::Design::combo(core::ArchKind::ZFOST,
                                          core::ArchKind::ZFWST, pes);
            return PeRow{sched::iterationCycles(
                             d, dcgan, sched::SyncPolicy::Deferred),
                         core::estimateResources(pes, plan)};
        },
        jobs);
    for (std::size_t i = 0; i < pe_points.size(); ++i)
        pe.addRow(pe_points[i], pe_rows[i].cycles,
                  200e6 / double(pe_rows[i].cycles), pe_rows[i].res.dsp,
                  pe_rows[i].res.luts,
                  core::fits(pe_rows[i].res, core::vcu9pBudget())
                      ? "yes"
                      : "no");
    pe.print(std::cout);

    // 3. The full (W_Pof, ST_Pof) frontier through the parallel sweep
    //    engine — the optimizer's own view of the space.
    std::cout << "\nFrontier sweep (sweepFrontierParallel, "
              << jobs << " jobs):\n";
    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 45;
    cons.verify = !no_verify;
    auto pts = core::sweepFrontierParallel(cons, dcgan, jobs);
    auto best = core::bestFeasible(pts);
    if (best)
        std::cout << "  " << pts.size() << " points evaluated ("
                  << core::verifierRejectedCount(pts)
                  << " rejected by the verifier, "
                  << core::scheduleRejectedCount(pts)
                  << " of those by the schedule analyzer"
                  << (cons.verify ? "" : ", pre-filter off")
                  << "); best feasible: W_Pof=" << best->wPof
                  << ", ST_Pof=" << best->stPof << " (" << best->totalPes
                  << " PEs, " << best->samplesPerSecond
                  << " samples/s)\n";

    // 4. Let the solver re-derive the ST-bank unrolling for each
    //    network — Table V, but computed rather than copied.
    std::cout << "\nSolver-derived ZFOST unrollings (1200 PEs, "
                 "T-CONV family):\n";
    util::Table sv({"network", "Po", "Pof", "cycles"});
    const auto models = gan::allModels();
    auto choices = util::parallelMap(
        models,
        [&](const gan::GanModel &m) {
            auto probe = sim::familyJobs(m, sim::PhaseFamily::G);
            return core::solveUnrolling(core::ArchKind::ZFOST, 1200,
                                        probe, 8);
        },
        jobs);
    for (std::size_t i = 0; i < models.size(); ++i)
        sv.addRow(models[i].name,
                  std::to_string(choices[i].unroll.pOy) + "x" +
                      std::to_string(choices[i].unroll.pOx),
                  choices[i].unroll.pOf, choices[i].cycles);
    sv.print(std::cout);

    std::cout << "\n[" << core::CycleCache::instance().summary();
    if (disk_cache.attached())
        std::cout << "; " << disk_cache.store()->summary();
    std::cout << "]\n";
    return 0;
}
