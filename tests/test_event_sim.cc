/**
 * @file
 * Tests for the event-driven accelerator simulation: DAG structure,
 * scheduling invariants, agreement with the analytic bank model, and
 * buffer high-water marks versus the Fig. 14 plan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "mem/onchip_buffer.hh"
#include "sched/design.hh"
#include "sched/event_sim.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using sched::Design;
using sched::Resource;
using sched::UpdateKind;

Design
paperDesign()
{
    return Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
}

TEST(EventSim, DagHasExpectedJobCounts)
{
    gan::GanModel m = gan::makeDcgan(); // 5 disc / 5 gen layers
    auto d_dag = sched::buildUpdateDag(paperDesign(), m,
                                       UpdateKind::Discriminator);
    // G-fwd 5 + D-fwd 2x5 + D-bwd 2x4 + Dw 2x5 = 33 jobs.
    EXPECT_EQ(d_dag.jobs.size(), 33u);
    auto g_dag =
        sched::buildUpdateDag(paperDesign(), m, UpdateKind::Generator);
    // G-fwd 5 + D-fwd 5 + D-bwd 4 + G-bwd 4 + Gw 5 = 23 jobs.
    EXPECT_EQ(g_dag.jobs.size(), 23u);
    // Every W-CONV job moves gradient traffic; forward jobs with
    // fresh weights move weight traffic.
    for (const auto &j : d_dag.jobs)
        if (j.resource == Resource::WBank) {
            EXPECT_GT(j.dramBytes, 0u) << j.label;
        }
}

TEST(EventSim, DepsAreTopologicalAndSpansRespectThem)
{
    gan::GanModel m = gan::makeMnistGan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Discriminator);
    for (std::size_t i = 0; i < dag.jobs.size(); ++i)
        for (auto d : dag.jobs[i].deps)
            EXPECT_LT(d, i) << dag.jobs[i].label;

    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 3, offchip);
    ASSERT_EQ(trace.spans.size(), 3 * dag.jobs.size());
    for (std::size_t s = 0; s < 3; ++s)
        for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
            const auto &span = trace.spans[s * dag.jobs.size() + i];
            EXPECT_LE(span.start, span.end);
            for (auto d : dag.jobs[i].deps)
                EXPECT_GE(span.start,
                          trace.spans[s * dag.jobs.size() + d].end);
        }
}

TEST(EventSim, NoResourceOverlap)
{
    gan::GanModel m = gan::makeMnistGan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Generator);
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 4, offchip);
    // Jobs on the same bank must not overlap in time.
    for (Resource r : {Resource::StBank, Resource::WBank}) {
        std::uint64_t last_end = 0;
        for (std::size_t i = 0; i < trace.spans.size(); ++i) {
            const auto &job = dag.jobs[i % dag.jobs.size()];
            if (job.resource != r)
                continue;
            EXPECT_GE(trace.spans[i].start, last_end) << job.label;
            last_end = trace.spans[i].end;
        }
    }
}

TEST(EventSim, MakespanBoundedByAnalyticModel)
{
    // The event simulation can never beat the analytic lower bound
    // max(ST, W) per sample, and must stay within the serial upper
    // bound ST + W (it schedules the same work).
    for (const auto &m : gan::allModels()) {
        Design d = paperDesign();
        auto t = sched::discriminatorUpdateTiming(d, m);
        std::uint64_t per_sample = sched::eventCyclesPerSample(
            d, m, UpdateKind::Discriminator, 8);
        EXPECT_GE(per_sample + per_sample / 10,
                  t.bank.overlapped())
            << m.name;
        EXPECT_LE(per_sample, t.bank.serial() + t.bank.serial() / 10)
            << m.name;
    }
}

TEST(EventSim, MoreSamplesAmortizePipelineFill)
{
    gan::GanModel m = gan::makeMnistGan();
    Design d = paperDesign();
    auto dag =
        sched::buildUpdateDag(d, m, UpdateKind::Discriminator);
    mem::OffChipConfig offchip;
    auto t1 = sched::simulateEvents(dag, 1, offchip);
    auto t8 = sched::simulateEvents(dag, 8, offchip);
    // Per-sample cost shrinks as the per-sample loops overlap.
    EXPECT_LT(t8.makespan / 8, t1.makespan);
    // And busy fractions rise.
    EXPECT_GE(t8.stBusyFraction + 1e-9, t1.stBusyFraction);
}

TEST(EventSim, BusyFractionsAreSane)
{
    gan::GanModel m = gan::makeDcgan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Discriminator);
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 8, offchip);
    EXPECT_GT(trace.stBusyFraction, 0.5);
    EXPECT_LE(trace.stBusyFraction, 1.0 + 1e-9);
    EXPECT_GT(trace.wBusyFraction, 0.2);
    EXPECT_LE(trace.wBusyFraction, 1.0 + 1e-9);
    EXPECT_LE(trace.dramBusyFraction, 1.0 + 1e-9);
}

TEST(EventSim, BufferHighWaterWithinPlannedCapacity)
{
    // The Data/Error buffers sized by mem::planBuffers must cover the
    // worst-case lifetimes the event simulation observes.
    for (const auto &m : gan::allModels()) {
        auto plan = mem::planBuffers(m, 30, 2);
        mem::OffChipConfig offchip;
        for (UpdateKind k :
             {UpdateKind::Discriminator, UpdateKind::Generator}) {
            auto dag = sched::buildUpdateDag(paperDesign(), m, k);
            auto trace = sched::simulateEvents(dag, 4, offchip);
            EXPECT_LE(trace.peakDataBytes, plan.dataBytes * 4)
                << m.name << " " << sched::updateKindName(k);
            EXPECT_GT(trace.peakDataBytes, 0u);
            EXPECT_GT(trace.peakErrorBytes, 0u);
        }
    }
}

TEST(EventSim, StarvedBandwidthStretchesTheSchedule)
{
    gan::GanModel m = gan::makeDcgan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Discriminator);
    mem::OffChipConfig fast;
    mem::OffChipConfig slow;
    slow.bandwidthBitsPerSec = 4e9; // 2% of the paper's DDR4
    auto t_fast = sched::simulateEvents(dag, 4, fast);
    auto t_slow = sched::simulateEvents(dag, 4, slow);
    EXPECT_GT(t_slow.makespan, t_fast.makespan);
    EXPECT_GT(t_slow.dramBusyFraction, t_fast.dramBusyFraction);
}

TEST(EventSim, EachWeightFetchedFromDramExactlyOncePerPass)
{
    // Section V-B3: "for each weight, only one off-chip data access
    // is demanded". In the D-update DAG the ST-bank traffic must be
    // exactly one fetch of the generator weights (G-fwd) plus one of
    // the discriminator weights (D-fwd real); the fake forward and
    // the backward passes reuse the Weight buffer.
    gan::GanModel m = gan::makeDcgan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Discriminator);
    std::uint64_t st_bytes = 0;
    for (const auto &j : dag.jobs)
        if (j.resource == Resource::StBank)
            st_bytes += j.dramBytes;
    std::uint64_t weights = 0;
    for (const auto &l : m.disc)
        weights += l.numWeights();
    for (const auto &l : m.gen)
        weights += l.numWeights();
    EXPECT_EQ(st_bytes, weights * 2); // 16-bit words
    // And the W bank moves exactly the read+write gradient stream
    // for the discriminator, twice (real + fake).
    std::uint64_t w_bytes = 0;
    for (const auto &j : dag.jobs)
        if (j.resource == Resource::WBank)
            w_bytes += j.dramBytes;
    std::uint64_t disc_weights = 0;
    for (const auto &l : m.disc)
        disc_weights += l.numWeights();
    EXPECT_EQ(w_bytes, 2 * (2 * disc_weights * 2));
}

TEST(EventSim, GanttRendersAllRowsAndMarkers)
{
    gan::GanModel m = gan::makeMnistGan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Discriminator);
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 4, offchip);
    std::string g = sched::renderGantt(dag, trace, 4, 80);
    EXPECT_NE(g.find("ST bank"), std::string::npos);
    EXPECT_NE(g.find("W  bank"), std::string::npos);
    EXPECT_NE(g.find("DRAM dW"), std::string::npos);
    // Four sample-completion markers on the ruler.
    int markers = 0;
    for (char c : g.substr(g.find("samples")))
        markers += c == '|';
    EXPECT_GE(markers, 2); // adjacent samples may share a bucket
    EXPECT_LE(markers, 4);
    // Both banks show busy buckets.
    EXPECT_NE(g.find('#'), std::string::npos);
    EXPECT_THROW(sched::renderGantt(dag, trace, 4, 3),
                 util::PanicError);
}

TEST(EventSim, ChromeTraceIsWellFormedJson)
{
    gan::GanModel m = gan::makeMnistGan();
    auto dag = sched::buildUpdateDag(paperDesign(), m,
                                     UpdateKind::Generator);
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 2, offchip);
    std::ostringstream os;
    sched::writeChromeTrace(dag, trace, 2, os);
    std::string json = os.str();
    // Structural sanity: balanced braces/brackets, the expected
    // fields, one complete event per job span.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("G-fwd L0"), std::string::npos);
    std::size_t events = 0, pos = 0;
    while ((pos = json.find("\"name\"", pos)) != std::string::npos) {
        ++events;
        pos += 6;
    }
    EXPECT_GE(events, 2 * dag.jobs.size());
    // Sample count mismatch is caught.
    EXPECT_THROW(sched::writeChromeTrace(dag, trace, 3, os),
                 util::PanicError);
}

TEST(EventSim, MixedGeneratorModelSchedulesCleanly)
{
    // The Context-Encoder's mixed strided/transposed generator flows
    // through the same DAG builder; per-layer cycles come from the
    // generalized phase mapping.
    gan::GanModel ce = gan::makeContextEncoder();
    for (UpdateKind k :
         {UpdateKind::Discriminator, UpdateKind::Generator}) {
        auto dag = sched::buildUpdateDag(paperDesign(), ce, k);
        mem::OffChipConfig offchip;
        auto trace = sched::simulateEvents(dag, 4, offchip);
        EXPECT_GT(trace.makespan, 0u);
        EXPECT_GT(trace.stBusyFraction, 0.3);
        EXPECT_GT(trace.wBusyFraction, 0.2);
    }
    // 8 generator layers: G-update = 8 gf + 5 df + 4 db + 7 gb + 8 gw.
    auto g_dag =
        sched::buildUpdateDag(paperDesign(), ce, UpdateKind::Generator);
    EXPECT_EQ(g_dag.jobs.size(), 8u + 5 + 4 + 7 + 8);
}

TEST(EventSim, ChromeTraceEscapesHostileJobLabels)
{
    // A label with quotes, backslashes and control characters must
    // not leak into the JSON unescaped (chrome://tracing rejects the
    // whole file otherwise).
    sched::UpdateDag dag;
    dag.jobs.push_back({"evil \"label\"\\ with\nnewline\tand \x01",
                        Resource::StBank, 10, 0, {}});
    dag.jobs.push_back({"Dw \"real\" L0", Resource::WBank, 5, 64,
                        std::vector<std::size_t>{0}});
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 1, offchip);
    std::ostringstream os;
    sched::writeChromeTrace(dag, trace, 1, os);
    std::string json = os.str();
    // The escaped forms are present...
    EXPECT_NE(json.find("evil \\\"label\\\"\\\\ with\\nnewline"),
              std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
    // ...and no raw control characters survive anywhere.
    for (char c : json)
        EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 ||
                    c == '\n')
            << "raw control char in JSON output";
    // Quote count stays even (every string literal closes).
    EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(EventSim, GanttRendersStubOnEmptyTrace)
{
    // Empty DAG: zero makespan must render a stub, not divide by
    // zero.
    sched::UpdateDag empty;
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(empty, 1, offchip);
    EXPECT_EQ(trace.makespan, 0u);
    std::string g = sched::renderGantt(empty, trace, 1, 40);
    EXPECT_NE(g.find("ST bank"), std::string::npos);
    EXPECT_NE(g.find("W  bank"), std::string::npos);
    EXPECT_NE(g.find("DRAM dW"), std::string::npos);
    EXPECT_NE(g.find("empty trace"), std::string::npos);
    // Zero-compute jobs also yield a zero makespan.
    sched::UpdateDag zero;
    zero.jobs.push_back({"noop", Resource::StBank, 0, 0, {}});
    auto ztrace = sched::simulateEvents(zero, 1, offchip);
    EXPECT_EQ(ztrace.makespan, 0u);
    EXPECT_NE(sched::renderGantt(zero, ztrace, 1, 40)
                  .find("empty trace"),
              std::string::npos);
    // Width narrower than the minimum still panics loudly.
    EXPECT_THROW(sched::renderGantt(empty, trace, 1, 3),
                 util::PanicError);
}

TEST(EventSim, GanttHandlesWidthWiderThanMakespan)
{
    // width > makespan drives per_col below one; bucket indices must
    // stay clamped and the ruler must not underflow on end == 0.
    sched::UpdateDag dag;
    dag.jobs.push_back({"tiny", Resource::StBank, 3, 0, {}});
    mem::OffChipConfig offchip;
    auto trace = sched::simulateEvents(dag, 1, offchip);
    ASSERT_EQ(trace.makespan, 3u);
    std::string g = sched::renderGantt(dag, trace, 1, 120);
    // Four rows, each 120 columns wide after its 8-char prefix.
    std::istringstream is(g);
    std::string line;
    int rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        EXPECT_GE(line.size(), std::size_t(8 + 120)) << line;
    }
    EXPECT_EQ(rows, 4);
    EXPECT_NE(g.find('|'), std::string::npos);
}

TEST(EventSim, RejectsUniqueDesigns)
{
    gan::GanModel m = gan::makeMnistGan();
    EXPECT_THROW(sched::buildUpdateDag(
                     Design::unique(ArchKind::ZFOST, 1680), m,
                     UpdateKind::Discriminator),
                 util::PanicError);
}

} // namespace
