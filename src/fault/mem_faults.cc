/**
 * @file
 * Storage-fault model implementation.
 */

#include "fault/mem_faults.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/fixed_point.hh"
#include "util/logging.hh"

namespace ganacc {
namespace fault {

std::uint64_t
sampleBinomial(util::Rng &rng, std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    // Exact for small n; the regimes below only matter for the huge
    // access counts, where the corrections are invisible.
    if (n <= 4096) {
        std::uint64_t k = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            if (rng.bernoulli(p))
                ++k;
        return k;
    }
    const double lambda = double(n) * p;
    if (lambda < 64.0) {
        // Knuth's Poisson inversion: faithful for the rare-flip regime
        // (the realistic one for soft errors).
        const double limit = std::exp(-lambda);
        double prod = rng.uniform();
        std::uint64_t k = 0;
        while (prod > limit) {
            prod *= rng.uniform();
            ++k;
        }
        return std::min(k, n);
    }
    // Normal approximation with continuity correction.
    const double sigma = std::sqrt(lambda * (1.0 - p));
    const double draw = rng.gaussian(lambda, sigma) + 0.5;
    if (draw <= 0.0)
        return 0;
    if (draw >= double(n))
        return n;
    return std::uint64_t(draw);
}

FlipCounts
drawFlips(const sim::RunStats &stats, double prob_per_access,
          util::Rng &rng)
{
    FlipCounts f;
    f.weightFlips = sampleBinomial(rng, stats.weightLoads,
                                   prob_per_access);
    f.inputFlips = sampleBinomial(rng, stats.inputLoads,
                                  prob_per_access);
    f.outputFlips = sampleBinomial(
        rng, stats.outputReads + stats.outputWrites, prob_per_access);
    return f;
}

std::uint64_t
applyBitFlips(tensor::Tensor &t, std::uint64_t flips, int bits,
              util::Rng &rng)
{
    GANACC_ASSERT(bits >= 1 && bits <= 16,
                  "bit flip width must be in [1, 16]");
    if (t.numel() == 0 || flips == 0)
        return 0;
    std::uniform_int_distribution<std::size_t> pick(0, t.numel() - 1);
    for (std::uint64_t i = 0; i < flips; ++i) {
        float &v = t.data()[pick(rng.engine())];
        std::uint16_t raw = std::uint16_t(
            util::AccelFixed::fromDouble(double(v)).raw());
        std::uint16_t flipped = 0;
        for (int b = 0; b < bits; ++b) {
            std::uint16_t bit;
            do {
                bit = std::uint16_t(1u << rng.uniformInt(0, 15));
            } while ((flipped & bit) != 0);
            flipped = std::uint16_t(flipped | bit);
        }
        raw = std::uint16_t(raw ^ flipped);
        v = float(
            util::AccelFixed::fromRaw(std::int16_t(raw)).toDouble());
    }
    return flips;
}

double
rmse(const tensor::Tensor &a, const tensor::Tensor &b)
{
    GANACC_ASSERT(a.shape() == b.shape(), "rmse shape mismatch ",
                  a.shape().str(), " vs ", b.shape().str());
    if (a.numel() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        const double d = double(a.data()[i]) - double(b.data()[i]);
        acc += d * d;
    }
    return std::sqrt(acc / double(a.numel()));
}

SaturationStress
stressSaturation(tensor::Tensor &t, int frac_bits)
{
    GANACC_ASSERT(frac_bits >= 1 && frac_bits <= 15,
                  "saturation stress fracBits must be in [1, 15]");
    SaturationStress out;
    out.total = t.numel();
    const double scale = double(std::int32_t(1) << frac_bits);
    const double lo = double(std::numeric_limits<std::int16_t>::min());
    const double hi = double(std::numeric_limits<std::int16_t>::max());
    double acc = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
        const double v = double(t.data()[i]);
        double r = std::nearbyint(v * scale);
        if (r < lo || r > hi) {
            ++out.saturated;
            r = std::clamp(r, lo, hi);
        }
        const double q = r / scale;
        const double d = q - v;
        acc += d * d;
        t.data()[i] = float(q);
    }
    if (out.total > 0)
        out.rmseVsFloat = std::sqrt(acc / double(out.total));
    return out;
}

} // namespace fault
} // namespace ganacc
