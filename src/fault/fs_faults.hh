/**
 * @file
 * Fallible-filesystem shim for the persistent result store.
 *
 * The MAC-path injector (fault/injector.hh) perturbs the *datapath*;
 * this module perturbs the *storage path*: the conformance harness
 * (src/conform/) arms a budget of filesystem failures and the result
 * store consumes them at its read/write seams, so "the disk returned
 * EIO", "the write never landed" and "the writer died mid-file" are
 * reproducible operations in a test sequence instead of flaky
 * hardware events.
 *
 * Three failure shapes, each a counted budget:
 *  - *failReads*: the next N entry loads act as if the file were
 *    unreadable (the store records a plain miss and re-simulates);
 *  - *failWrites*: the next N write-throughs are dropped before the
 *    tmp file is created (the entry simply never lands);
 *  - *tornWrites*: the next N writes truncate the body mid-object
 *    and still rename into place — the torn entry a pre-atomic
 *    writer crash would have left, which the store's quarantine path
 *    must absorb on the next load.
 *
 * The budgets are process-wide atomics consumed first-come. A
 * single-threaded (lockstep) driver therefore knows exactly which
 * store operation each fault lands on, which is what lets the
 * conformance reference model predict the observable outcome.
 * Disarmed (all budgets zero, the default) the seams cost one relaxed
 * atomic load each.
 */

#ifndef GANACC_FAULT_FS_FAULTS_HH
#define GANACC_FAULT_FS_FAULTS_HH

#include <cstdint>

namespace ganacc {
namespace fault {

/** A budget of storage faults to arm (counts add to any armed). */
struct FsFaultPlan
{
    std::uint32_t failReads = 0;  ///< loads that act unreadable
    std::uint32_t failWrites = 0; ///< writes dropped entirely
    std::uint32_t tornWrites = 0; ///< writes truncated mid-object

    bool
    any() const
    {
        return failReads || failWrites || tornWrites;
    }
};

/** Add `plan`'s budgets to the armed process-wide budgets. */
void armFsFaults(const FsFaultPlan &plan);

/** Drop every armed budget (end of a harness run). */
void clearFsFaults();

/** The budgets still armed (not yet consumed). */
FsFaultPlan armedFsFaults();

/** Faults consumed so far in this process (monotonic). */
FsFaultPlan firedFsFaults();

/**
 * Consumption seams, called by serve::ResultStore. Each returns true
 * — and decrements the corresponding budget — when a fault should
 * fire on this operation; false (the common case) costs one relaxed
 * atomic load.
 */
bool consumeReadFault();
bool consumeWriteFault();
bool consumeTornWrite();

} // namespace fault
} // namespace ganacc

#endif // GANACC_FAULT_FS_FAULTS_HH
