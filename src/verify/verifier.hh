/**
 * @file
 * Verifier front door: the composed check pipelines behind
 * `ganacc-lint` and the DSE frontier pre-filter.
 */

#ifndef GANACC_VERIFY_VERIFIER_HH
#define GANACC_VERIFY_VERIFIER_HH

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "verify/diagnostics.hh"
#include "verify/legality.hh"
#include "verify/range_analysis.hh"

namespace ganacc {
namespace verify {

/** What verifyModel() runs and with which parameters. */
struct VerifyOptions
{
    RangeOptions range;
    bool checkRanges = true;
    bool checkBuffers = true;
    int wPof = 0;         ///< ∇W channel width; 0 derives eq. (7)
    int bytesPerElem = 2; ///< Fixed16
    int bram36Budget = 0; ///< 0 means the XCVU9P budget
};

/**
 * The network-level pipeline: structural legality (shapes, chaining,
 * every phase's streamed job), then — only on a legal graph —
 * fixed-point range analysis and buffer capacity/working-set checks.
 */
Report verifyModel(const gan::GanModel &model,
                   const VerifyOptions &opts = {});

/**
 * The schedule-level pipeline: model legality first, then the
 * unrolling checked against every phase job of the model on the given
 * dataflow (GA-UNROLL-*).
 */
Report verifySchedule(const gan::GanModel &model, core::ArchKind kind,
                      const sim::Unroll &unroll);

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_VERIFIER_HH
