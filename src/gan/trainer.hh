/**
 * @file
 * GAN training loops implementing both algorithms the paper contrasts:
 *
 *  - Synchronized (Fig. 2): a whole mini-batch flows forward through
 *    the discriminator before any backward work starts, forcing all
 *    2m intermediate activation sets to stay buffered.
 *  - Deferred synchronization (Fig. 8, Section IV-A): because the
 *    Wasserstein loss averages linearly, each sample's output-layer
 *    error is a constant (eq. 6), so every sample runs its backward
 *    pass immediately after its forward pass and only the per-sample
 *    gradient contributions are accumulated.
 *
 * Both must produce the same mini-batch gradient — that equivalence is
 * asserted by the test suite.
 */

#ifndef GANACC_GAN_TRAINER_HH
#define GANACC_GAN_TRAINER_HH

#include <memory>

#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace gan {

/** Which of the two training algorithms to run. */
enum class SyncMode
{
    Synchronized, ///< original mini-batch algorithm (Fig. 2)
    Deferred,     ///< deferred synchronization (Fig. 8)
};

/** Losses observed during one iteration. */
struct IterationLosses
{
    double discLoss = 0.0;
    double genLoss = 0.0;
};

/** Orchestrates generator/discriminator updates. */
class Trainer
{
  public:
    /**
     * @param model topology to instantiate.
     * @param seed  RNG seed for weight init (deterministic).
     * @param mode  which training algorithm to execute.
     * @param clip  WGAN critic clip bound (0 disables clipping).
     */
    Trainer(const GanModel &model, std::uint64_t seed, SyncMode mode,
            float clip = 0.01f);

    /**
     * Accumulate the discriminator's mini-batch gradient (eq. 1) for
     * the given real images and generator noise. Does not update
     * weights. @return the critic loss.
     */
    double accumulateDiscriminatorGradients(const tensor::Tensor &real,
                                            const tensor::Tensor &noise);

    /**
     * Accumulate the generator's mini-batch gradient (eq. 2). The
     * discriminator only relays error (no D weight gradients), per
     * Fig. 8(b). @return the generator loss.
     */
    double accumulateGeneratorGradients(const tensor::Tensor &noise);

    /** Apply and clear the discriminator gradient; clips if enabled. */
    void applyDiscriminatorUpdate(nn::Optimizer &opt);

    /** Apply and clear the generator gradient. */
    void applyGeneratorUpdate(nn::Optimizer &opt);

    /**
     * One full training iteration (n_critic discriminator updates
     * followed by one generator update), as in WGAN.
     */
    IterationLosses trainIteration(const tensor::Tensor &real,
                                   nn::Optimizer &d_opt,
                                   nn::Optimizer &g_opt, util::Rng &rng,
                                   int n_critic = 1);

    /** Draw a (m, latentDim, 1, 1) noise tensor. */
    tensor::Tensor sampleNoise(int m, util::Rng &rng) const;

    /** Generate images from noise (no caching side effects kept). */
    tensor::Tensor generate(const tensor::Tensor &noise);

    /**
     * Visit every trainable convolution-weight tensor of both
     * networks (generator first, then discriminator, each in layer
     * order). The stable order lets callers pair tensors across two
     * same-topology trainers — the fault campaign corrupts weights
     * through this, and the determinism tests hash them.
     */
    template <typename Fn>
    void
    forEachParameterTensor(Fn &&fn)
    {
        for (auto &layer : gen_->layers())
            fn(layer->weights());
        for (auto &layer : disc_->layers())
            fn(layer->weights());
    }

    Network &generator() { return *gen_; }
    Network &discriminator() { return *disc_; }
    const GanModel &model() const { return model_; }
    SyncMode mode() const { return mode_; }

  private:
    double discGradientsSynchronized(const tensor::Tensor &real,
                                     const tensor::Tensor &noise);
    double discGradientsDeferred(const tensor::Tensor &real,
                                 const tensor::Tensor &noise);
    double genGradientsSynchronized(const tensor::Tensor &noise);
    double genGradientsDeferred(const tensor::Tensor &noise);

    GanModel model_;
    SyncMode mode_;
    float clip_;
    std::unique_ptr<Network> gen_;
    std::unique_ptr<Network> disc_;
};

/** Copy one sample of a batch into a batch-of-one tensor. */
tensor::Tensor extractSample(const tensor::Tensor &batch, int index);

/** Concatenate two batches along the batch axis. */
tensor::Tensor concatBatch(const tensor::Tensor &a, const tensor::Tensor &b);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_TRAINER_HH
