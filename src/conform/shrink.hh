/**
 * @file
 * Delta-debugging shrinker for failing conformance sequences.
 *
 * Given a sequence that produced divergences, find a (locally)
 * minimal subsequence that still diverges, by classic ddmin: try
 * dropping chunks of geometrically shrinking size, keeping any drop
 * that preserves the failure. Operations are self-contained (every
 * perturbation op carries its full triple inline), so any subsequence
 * is a valid sequence and the minimized trace replays standalone.
 */

#ifndef GANACC_CONFORM_SHRINK_HH
#define GANACC_CONFORM_SHRINK_HH

#include <cstddef>
#include <vector>

#include "conform/harness.hh"
#include "conform/ops.hh"

namespace ganacc {
namespace conform {

/** The outcome of a shrink. */
struct ShrinkResult
{
    std::vector<Op> ops; ///< minimal failing subsequence
    std::size_t runs = 0; ///< conformance runs spent shrinking
};

/**
 * Minimize `seq` (which must diverge under `opt`) while it keeps
 * diverging, spending at most `maxRuns` conformance runs. Returns the
 * smallest failing subsequence found; if `seq` unexpectedly passes,
 * returns it unchanged with runs == 1.
 */
ShrinkResult shrinkSequence(const std::vector<Op> &seq,
                            const RunOptions &opt,
                            std::size_t maxRuns = 200);

} // namespace conform
} // namespace ganacc

#endif // GANACC_CONFORM_SHRINK_HH
