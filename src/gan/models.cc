/**
 * @file
 * GAN topology construction.
 */

#include "gan/models.hh"

#include <sstream>

#include "util/logging.hh"

namespace ganacc {
namespace gan {

using nn::Activation;
using nn::Conv2dGeom;
using nn::ConvKind;
using tensor::Shape4;

int
LayerSpec::outH() const
{
    if (kind == ConvKind::Strided)
        return tensor::convOutDim(inH, geom.kernel, geom.stride, geom.pad);
    return tensor::tconvOutDim(inH, geom.kernel, geom.stride, geom.pad,
                               geom.outPad);
}

int
LayerSpec::outW() const
{
    if (kind == ConvKind::Strided)
        return tensor::convOutDim(inW, geom.kernel, geom.stride, geom.pad);
    return tensor::tconvOutDim(inW, geom.kernel, geom.stride, geom.pad,
                               geom.outPad);
}

std::size_t
LayerSpec::macs() const
{
    // Dense MAC count: every output neuron accumulates
    // inChannels * k * k products.
    return std::size_t(outChannels) * outH() * outW() * inChannels *
           geom.kernel * geom.kernel;
}

std::size_t
LayerSpec::numWeights() const
{
    return std::size_t(outChannels) * inChannels * geom.kernel *
           geom.kernel;
}

std::size_t
LayerSpec::outputElems() const
{
    return std::size_t(outChannels) * outH() * outW();
}

std::string
LayerSpec::describe() const
{
    std::ostringstream os;
    os << (kind == ConvKind::Strided ? "S-CONV" : "T-CONV") << " "
       << inChannels << "x" << inH << "x" << inW << " -> " << outChannels
       << "x" << outH() << "x" << outW() << " (k" << geom.kernel << " s"
       << geom.stride << " p" << geom.pad;
    if (geom.outPad)
        os << " op" << geom.outPad;
    os << ")";
    return os.str();
}

Shape4
GanModel::imageShape() const
{
    GANACC_ASSERT(!disc.empty(), "model has no discriminator layers");
    return Shape4(1, disc.front().inChannels, disc.front().inH,
                  disc.front().inW);
}

std::size_t
GanModel::discIntermediateElems() const
{
    std::size_t total = 0;
    for (const auto &l : disc)
        total += l.outputElems();
    return total;
}

std::size_t
GanModel::genIntermediateElems() const
{
    std::size_t total = 0;
    for (const auto &l : gen)
        total += l.outputElems();
    return total;
}

namespace {

/**
 * Derive the generator as the inverse of the discriminator stack:
 * reverse the layers, swap channel/spatial roles, and pick the T-CONV
 * output padding that makes each inverse layer land exactly on the
 * forward layer's input size.
 */
std::vector<LayerSpec>
invertDiscriminator(const std::vector<LayerSpec> &disc, int latent_dim)
{
    std::vector<LayerSpec> gen;
    for (auto it = disc.rbegin(); it != disc.rend(); ++it) {
        const LayerSpec &d = *it;
        LayerSpec g;
        g.kind = ConvKind::Transposed;
        g.inChannels = d.outChannels;
        g.outChannels = d.inChannels;
        g.inH = d.outH();
        g.inW = d.outW();
        g.geom = d.geom;
        // Solve for output padding so the T-CONV exactly inverts the
        // S-CONV's spatial mapping.
        int natural = (g.inH - 1) * g.geom.stride - 2 * g.geom.pad +
                      g.geom.kernel;
        g.geom.outPad = d.inH - natural;
        GANACC_ASSERT(g.geom.outPad >= 0 && g.geom.outPad < g.geom.stride,
                      "discriminator layer not invertible: ",
                      d.describe());
        // Hidden layers use ReLU; the image-producing layer uses Tanh.
        g.act = (std::next(it) == disc.rend()) ? Activation::Tanh
                                               : Activation::ReLU;
        gen.push_back(g);
    }
    // The first generator layer consumes the latent vector rather than
    // the discriminator head's scalar.
    GANACC_ASSERT(!gen.empty(), "empty generator");
    gen.front().inChannels = latent_dim;
    return gen;
}

LayerSpec
sconvLayer(int in_c, int out_c, int in_h, int in_w, int k, int s, int p,
           Activation act)
{
    LayerSpec l;
    l.kind = ConvKind::Strided;
    l.act = act;
    l.inChannels = in_c;
    l.outChannels = out_c;
    l.inH = in_h;
    l.inW = in_w;
    l.geom = Conv2dGeom{k, s, p, 0};
    return l;
}

} // namespace

namespace {

void
checkChain(const std::vector<LayerSpec> &layers, const std::string &name,
           const char *which)
{
    for (std::size_t i = 1; i < layers.size(); ++i) {
        GANACC_ASSERT(layers[i].inChannels ==
                              layers[i - 1].outChannels &&
                          layers[i].inH == layers[i - 1].outH() &&
                          layers[i].inW == layers[i - 1].outW(),
                      which, " layers of ", name,
                      " do not chain at layer ", i);
    }
}

} // namespace

GanModel
makeModel(std::string name, std::vector<LayerSpec> disc, int latent_dim)
{
    GanModel m;
    m.name = std::move(name);
    m.latentDim = latent_dim;
    m.gen = invertDiscriminator(disc, latent_dim);
    m.disc = std::move(disc);
    checkChain(m.disc, m.name, "discriminator");
    return m;
}

GanModel
makeModelWithGenerator(std::string name, std::vector<LayerSpec> disc,
                       std::vector<LayerSpec> gen)
{
    GanModel m;
    m.name = std::move(name);
    m.disc = std::move(disc);
    m.gen = std::move(gen);
    GANACC_ASSERT(!m.disc.empty() && !m.gen.empty(),
                  "model needs both networks");
    m.latentDim = m.gen.front().inChannels;
    checkChain(m.disc, m.name, "discriminator");
    checkChain(m.gen, m.name, "generator");
    GANACC_ASSERT(m.gen.back().outChannels ==
                          m.disc.front().inChannels &&
                      m.gen.back().outH() == m.disc.front().inH &&
                      m.gen.back().outW() == m.disc.front().inW,
                  "generator of ", m.name,
                  " does not produce the discriminator's input");
    return m;
}

GanModel
makeDcgan()
{
    std::vector<LayerSpec> disc;
    disc.push_back(
        sconvLayer(3, 64, 64, 64, 5, 2, 2, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(64, 128, 32, 32, 5, 2, 2, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(128, 256, 16, 16, 5, 2, 2, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(256, 512, 8, 8, 5, 2, 2, Activation::LeakyReLU));
    // Scalar critic head: 4x4 valid conv to 1x1x1.
    disc.push_back(sconvLayer(512, 1, 4, 4, 4, 1, 0, Activation::None));
    return makeModel("DCGAN", std::move(disc), 100);
}

GanModel
makeMnistGan()
{
    std::vector<LayerSpec> disc;
    disc.push_back(
        sconvLayer(1, 64, 28, 28, 5, 2, 2, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(64, 128, 14, 14, 5, 2, 2, Activation::LeakyReLU));
    disc.push_back(sconvLayer(128, 1, 7, 7, 7, 1, 0, Activation::None));
    return makeModel("MNIST-GAN", std::move(disc), 100);
}

GanModel
makeCgan()
{
    std::vector<LayerSpec> disc;
    disc.push_back(
        sconvLayer(3, 64, 64, 64, 4, 2, 1, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(64, 128, 32, 32, 4, 2, 1, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(128, 256, 16, 16, 4, 2, 1, Activation::LeakyReLU));
    disc.push_back(
        sconvLayer(256, 512, 8, 8, 4, 2, 1, Activation::LeakyReLU));
    disc.push_back(sconvLayer(512, 1, 4, 4, 4, 1, 0, Activation::None));
    return makeModel("cGAN", std::move(disc), 100);
}

GanModel
makeContextEncoder()
{
    // Discriminator: the Table IV cGAN critic.
    GanModel cgan = makeCgan();

    // Generator: encoder (S-CONV, LeakyReLU) to a 512x4x4 bottleneck,
    // decoder (T-CONV, ReLU / Tanh on the image) back to 3x64x64.
    std::vector<LayerSpec> gen;
    auto enc = [&](int in_c, int out_c, int in_hw) {
        LayerSpec l;
        l.kind = ConvKind::Strided;
        l.act = Activation::LeakyReLU;
        l.inChannels = in_c;
        l.outChannels = out_c;
        l.inH = l.inW = in_hw;
        l.geom = Conv2dGeom{4, 2, 1, 0};
        gen.push_back(l);
    };
    enc(3, 64, 64);
    enc(64, 128, 32);
    enc(128, 256, 16);
    enc(256, 512, 8);
    auto dec = [&](int in_c, int out_c, int in_hw, Activation act) {
        LayerSpec l;
        l.kind = ConvKind::Transposed;
        l.act = act;
        l.inChannels = in_c;
        l.outChannels = out_c;
        l.inH = l.inW = in_hw;
        l.geom = Conv2dGeom{4, 2, 1, 0};
        gen.push_back(l);
    };
    dec(512, 256, 4, Activation::ReLU);
    dec(256, 128, 8, Activation::ReLU);
    dec(128, 64, 16, Activation::ReLU);
    dec(64, 3, 32, Activation::Tanh);
    return makeModelWithGenerator("ContextEncoder",
                                  std::move(cgan.disc),
                                  std::move(gen));
}

std::vector<GanModel>
allModels()
{
    return {makeMnistGan(), makeDcgan(), makeCgan()};
}

std::unique_ptr<nn::ConvLayerBase>
instantiateLayer(const LayerSpec &spec)
{
    std::unique_ptr<nn::ConvLayerBase> layer;
    if (spec.kind == ConvKind::Strided)
        layer = std::make_unique<nn::ConvLayer>(
            spec.inChannels, spec.outChannels, spec.geom, spec.act);
    else
        layer = std::make_unique<nn::TransposedConvLayer>(
            spec.inChannels, spec.outChannels, spec.geom, spec.act);
    if (spec.batchNorm)
        layer->enableBatchNorm();
    return layer;
}

} // namespace gan
} // namespace ganacc
