/**
 * @file
 * Context-Encoder extension study: the paper evaluates the cGAN
 * discriminator of Context Encoders (Table IV); this bench adds the
 * system's actual encoder-decoder *generator* and asks how the
 * accelerator handles a mixed strided/transposed stack — both W-CONV
 * forms live in the same Gw phase, and the per-phase balance shifts.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sim/phase.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;

    bench::banner("Context-Encoder (encoder-decoder generator)",
                  "the mixed generator runs both W-CONV forms; the "
                  "zero-free design handles it unchanged");

    gan::GanModel ce = gan::makeContextEncoder();
    gan::GanModel cgan = gan::makeCgan();
    Design d = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);

    std::cout << "\nPer-phase effective work (GMACs/sample):\n";
    util::Table t({"phase", "cGAN (inverse gen)",
                   "ContextEncoder (enc-dec gen)"});
    for (sim::Phase p : sim::allPhases()) {
        auto g1 = sim::totalEffectiveMacs(sim::phaseJobs(cgan, p));
        auto g2 = sim::totalEffectiveMacs(sim::phaseJobs(ce, p));
        t.addRow(sim::phaseName(p), double(g1) / 1e9,
                 double(g2) / 1e9);
    }
    t.print(std::cout);

    std::cout << "\nEnd-to-end on the 1680-PE ZFOST-ZFWST design:\n";
    util::Table e({"model", "iter cycles (deferred)", "samples/s",
                   "sync/deferred"});
    for (const auto &m : {cgan, ce}) {
        auto def =
            sched::iterationCycles(d, m, sched::SyncPolicy::Deferred);
        auto sync = sched::iterationCycles(
            d, m, sched::SyncPolicy::Synchronized);
        e.addRow(m.name, def, 200e6 / double(def),
                 double(sync) / double(def));
    }
    e.print(std::cout);

    std::cout << "\nThe generator's Gw phase now mixes the "
                 "dilated-kernel (encoder) and stuffed-input "
                 "(decoder) W-CONV forms; ZFWST's zero-free "
                 "scheduling covers both, so deferred "
                 "synchronization keeps its benefit on the richer "
                 "topology.\n";
    return 0;
}
