/**
 * @file
 * Unrolling strategy implementation.
 */

#include "core/unrolling.hh"

#include <algorithm>
#include <cctype>

#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "sim/nlr.hh"
#include "sim/ost.hh"
#include "sim/wst.hh"
#include "util/logging.hh"

namespace ganacc {
namespace core {

using sim::Architecture;
using sim::ConvSpec;
using sim::PhaseFamily;
using sim::Unroll;

std::vector<ArchKind>
allArchKinds()
{
    return {ArchKind::NLR, ArchKind::WST, ArchKind::OST, ArchKind::ZFOST,
            ArchKind::ZFWST};
}

std::string
archKindName(ArchKind k)
{
    switch (k) {
      case ArchKind::NLR:
        return "NLR";
      case ArchKind::WST:
        return "WST";
      case ArchKind::OST:
        return "OST";
      case ArchKind::ZFOST:
        return "ZFOST";
      case ArchKind::ZFWST:
        return "ZFWST";
    }
    util::panic("unknown arch kind");
}

std::optional<ArchKind>
archKindFromName(const std::string &name)
{
    std::string up;
    up.reserve(name.size());
    for (char c : name)
        up += char(std::toupper(static_cast<unsigned char>(c)));
    for (ArchKind k : allArchKinds())
        if (archKindName(k) == up)
            return k;
    return std::nullopt;
}

std::unique_ptr<Architecture>
makeArch(ArchKind kind, Unroll unroll)
{
    switch (kind) {
      case ArchKind::NLR:
        return std::make_unique<sim::Nlr>(unroll);
      case ArchKind::WST:
        return std::make_unique<sim::Wst>(unroll);
      case ArchKind::OST:
        return std::make_unique<sim::Ost>(unroll);
      case ArchKind::ZFOST:
        return std::make_unique<Zfost>(unroll);
      case ArchKind::ZFWST:
        return std::make_unique<Zfwst>(unroll);
    }
    util::panic("unknown arch kind");
}

namespace {

/** Per-channel PE count of an unrolling shape for a given kind. */
int
shapePes(ArchKind kind, const Unroll &u)
{
    switch (kind) {
      case ArchKind::NLR:
        return u.pIf;
      case ArchKind::WST:
      case ArchKind::ZFWST:
        return u.pKx * u.pKy;
      case ArchKind::OST:
      case ArchKind::ZFOST:
        return u.pOx * u.pOy;
    }
    util::panic("unknown arch kind");
}

} // namespace

Unroll
paperUnroll(ArchKind kind, BankRole role, PhaseFamily family,
            int pe_budget)
{
    GANACC_ASSERT(pe_budget >= 1, "PE budget must be positive");
    Unroll u;
    switch (kind) {
      case ArchKind::NLR:
        u.pIf = 16;
        break;
      case ArchKind::WST:
        if (role == BankRole::ST) {
            u.pKx = u.pKy = 5;
        } else {
            u.pKx = u.pKy = 4;
        }
        break;
      case ArchKind::OST:
        if (role == BankRole::ST) {
            u.pOx = u.pOy = 4;
        } else {
            u.pOx = u.pOy = 5;
        }
        break;
      case ArchKind::ZFOST:
        if (role == BankRole::ST) {
            u.pOx = u.pOy = 4;
        } else if (family == PhaseFamily::Gw) {
            // Gw output tiles are the parity classes of the kernel
            // patch (3x3 for a 5x5 kernel).
            u.pOx = u.pOy = 3;
        } else {
            u.pOx = u.pOy = 5;
        }
        break;
      case ArchKind::ZFWST:
        if (role == BankRole::W) {
            u.pKx = u.pKy = 4;
        } else if (family == PhaseFamily::G) {
            // T-CONV parity classes need at most ceil(5/2)^2 = 3x3
            // resident weights.
            u.pKx = u.pKy = 3;
        } else {
            u.pKx = u.pKy = 5;
        }
        break;
    }
    int per_channel = shapePes(kind, u);
    u.pOf = std::max(1, pe_budget / per_channel);
    return u;
}

UnrollChoice
solveUnrolling(ArchKind kind, int pe_budget,
               const std::vector<ConvSpec> &jobs, int max_side)
{
    GANACC_ASSERT(!jobs.empty(), "solver needs at least one probe job");
    std::vector<Unroll> candidates;
    auto add = [&](Unroll u) {
        int per_channel = shapePes(kind, u);
        if (per_channel > pe_budget)
            return;
        u.pOf = std::max(1, pe_budget / per_channel);
        candidates.push_back(u);
    };

    switch (kind) {
      case ArchKind::NLR:
        for (int p : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
            Unroll u;
            u.pIf = p;
            add(u);
        }
        break;
      case ArchKind::WST:
      case ArchKind::ZFWST:
        for (int ky = 1; ky <= max_side; ++ky)
            for (int kx = 1; kx <= max_side; ++kx) {
                Unroll u;
                u.pKy = ky;
                u.pKx = kx;
                add(u);
            }
        break;
      case ArchKind::OST:
      case ArchKind::ZFOST:
        for (int oy = 1; oy <= max_side; ++oy)
            for (int ox = 1; ox <= max_side; ++ox) {
                Unroll u;
                u.pOy = oy;
                u.pOx = ox;
                add(u);
            }
        break;
    }

    UnrollChoice best;
    bool have = false;
    for (const Unroll &u : candidates) {
        auto arch = makeArch(kind, u);
        std::uint64_t cycles = 0, accesses = 0;
        for (const ConvSpec &job : jobs) {
            sim::RunStats st = arch->run(job);
            cycles += st.cycles;
            accesses += st.totalAccesses();
        }
        bool better = !have || cycles < best.cycles ||
                      (cycles == best.cycles &&
                       accesses < best.accesses);
        if (better) {
            best.unroll = u;
            best.cycles = cycles;
            best.accesses = accesses;
            best.pes = arch->numPes();
            have = true;
        }
    }
    GANACC_ASSERT(have, "no feasible unrolling under budget ", pe_budget);
    return best;
}

} // namespace core
} // namespace ganacc
