/**
 * @file
 * Dataflow ablations beyond the paper's five architectures:
 *
 *  1. RST (Eyeriss-style row stationary, Section VII's qualitative
 *     comparison made quantitative): zero *gating* saves energy but
 *     no cycles, so the zero-inserted phases stay slow.
 *  2. ZFOST-raster: ZFOST with the Fig. 12(a) weight reordering
 *     turned off — identical cycles, but strided convolutions lose
 *     the register-array reuse, isolating what the reorder buys.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "core/zfost.hh"
#include "gan/models.hh"
#include "sim/cnv.hh"
#include "sim/nlr.hh"
#include "sim/phase.hh"
#include "sim/rst.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Ablation — RST baseline and ZFOST weight reorder",
                  "gating != skipping; the reorder buys buffer "
                  "traffic, not cycles");

    // 1. RST and the vanilla (non-skipping) NLR vs the paper's
    // architectures, DCGAN, all families. NLR-vanilla shows how much
    // the evaluation's zero-skipping grant was worth to the baseline.
    gan::GanModel m = gan::makeDcgan();
    std::cout << "\nRST (zero-gating) and NLR-vanilla vs OST/ZFOST "
                 "(speedup vs improved NLR, DCGAN):\n";
    util::Table t({"phase", "NLR", "NLR-vanilla", "OST", "RST",
                   "ZFOST", "RST gated slots %"});
    for (auto f : {sim::PhaseFamily::D, sim::PhaseFamily::G,
                   sim::PhaseFamily::Dw, sim::PhaseFamily::Gw}) {
        core::BankRole role =
            (f == sim::PhaseFamily::D || f == sim::PhaseFamily::G)
                ? core::BankRole::ST
                : core::BankRole::W;
        int pes = role == core::BankRole::ST ? 1200 : 480;
        auto jobs = sim::familyJobs(m, f);
        auto run_kind = [&](core::ArchKind kind) {
            auto arch = core::makeArch(
                kind, core::paperUnroll(kind, role, f, pes));
            std::uint64_t c = 0;
            for (const auto &j : jobs)
                c += arch->run(j).cycles;
            return c;
        };
        std::uint64_t nlr = run_kind(core::ArchKind::NLR);
        std::uint64_t ost = run_kind(core::ArchKind::OST);
        std::uint64_t zfost = run_kind(core::ArchKind::ZFOST);
        sim::Nlr vanilla(
            core::paperUnroll(core::ArchKind::NLR, role, f, pes),
            sim::Nlr::ZeroPolicy::Execute);
        std::uint64_t van_cycles = 0;
        for (const auto &j : jobs)
            van_cycles += vanilla.run(j).cycles;
        sim::Rst rst(sim::Unroll{.pOf = pes / 16, .pKy = 4, .pOy = 4});
        std::uint64_t rst_cycles = 0;
        sim::RunStats rst_sum;
        for (const auto &j : jobs) {
            auto st = rst.run(j);
            rst_cycles += st.cycles;
            rst_sum += st;
        }
        t.addRow(sim::phaseFamilyName(f), 1.0,
                 double(nlr) / double(van_cycles),
                 double(nlr) / double(ost),
                 double(nlr) / double(rst_cycles),
                 double(nlr) / double(zfost),
                 100.0 * double(rst_sum.ineffectualMacs) /
                     double(rst_sum.totalSlots()));
    }
    t.print(std::cout);

    // 2. ZFOST weight-order ablation on the S-CONV phases.
    std::cout << "\nZFOST weight-feed order (D family, all models):\n";
    util::Table o({"model", "cycles (both)", "input loads reordered",
                   "input loads raster", "traffic saved"});
    for (const auto &model : gan::allModels()) {
        auto jobs = sim::familyJobs(model, sim::PhaseFamily::D);
        sim::Unroll u = core::paperUnroll(
            core::ArchKind::ZFOST, core::BankRole::ST,
            sim::PhaseFamily::D, 1200);
        core::Zfost reordered(u);
        core::Zfost raster(u, core::Zfost::WeightOrder::Raster);
        sim::RunStats a, b;
        for (const auto &j : jobs) {
            a += reordered.run(j);
            b += raster.run(j);
        }
        o.addRow(model.name, a.cycles, a.inputLoads, b.inputLoads,
                 double(b.inputLoads) / double(a.inputLoads));
    }
    o.print(std::cout);

    // 3. Dynamic (Cnvlutin-style) vs structural (ZFOST) zero
    // skipping on one T-CONV job, across post-ReLU data sparsity.
    // Structural skipping is sparsity-blind; dynamic skipping keeps
    // improving — but cannot touch zero-inserted kernels (Dw).
    std::cout << "\nDynamic vs structural skipping (MNIST-GAN G-fwd "
                 "L1, cycles):\n";
    gan::GanModel mn = gan::makeMnistGan();
    auto job = sim::phaseJobs(mn, sim::Phase::GenForward)[1];
    util::Rng rng(42);
    util::Table c({"dense-value sparsity", "CNV cycles",
                   "ZFOST cycles", "CNV/ZFOST"});
    sim::Unroll u_st = core::paperUnroll(
        core::ArchKind::ZFOST, core::BankRole::ST, sim::PhaseFamily::G,
        1200);
    core::Zfost zf(u_st);
    sim::Cnv cnv(sim::Unroll{.pIf = 16, .pOf = 75});
    for (double sparsity : {0.0, 0.3, 0.6, 0.9}) {
        tensor::Tensor in = sim::makeStreamedInput(job, rng);
        tensor::Tensor w = sim::makeStreamedKernel(job, rng);
        util::Rng kill(7);
        for (std::size_t i = 0; i < in.numel(); ++i)
            if (in.data()[i] != 0.0f && kill.bernoulli(sparsity))
                in.data()[i] = 0.0f;
        tensor::Tensor out = sim::makeOutputTensor(job);
        auto st_cnv = cnv.run(job, &in, &w, &out);
        out.fill(0.0f);
        auto st_zf = zf.run(job, &in, &w, &out);
        c.addRow(sparsity, st_cnv.cycles, st_zf.cycles,
                 double(st_cnv.cycles) / double(st_zf.cycles));
    }
    c.print(std::cout);
    std::cout << "\n(ZFOST is sparsity-blind by design — structural "
                 "skipping needs no value inspection hardware; CNV "
                 "rides dynamic sparsity but needs encoded streams "
                 "and cannot skip zero-inserted *kernels*.)\n";
    return 0;
}
