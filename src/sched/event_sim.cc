/**
 * @file
 * Event-driven accelerator simulation implementation.
 */

#include "sched/event_sim.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "obs/trace.hh"
#include "sim/phase.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sched {

using core::BankRole;
using gan::GanModel;
using sim::Phase;

namespace {

/** Per-layer cycle counts of one phase on the design's owning bank. */
std::vector<std::uint64_t>
perLayerCycles(const Design &design, const GanModel &model, Phase p)
{
    BankRole role =
        (sim::familyOf(p) == sim::PhaseFamily::Dw ||
         sim::familyOf(p) == sim::PhaseFamily::Gw)
            ? BankRole::W
            : BankRole::ST;
    core::ArchKind kind =
        role == BankRole::W ? design.wKind() : design.stKind();
    int pes = role == BankRole::W ? design.wPes() : design.stPes();
    sim::Unroll u =
        core::paperUnroll(kind, role, sim::familyOf(p), pes);
    std::vector<std::uint64_t> cycles;
    for (const auto &job : sim::phaseJobs(model, p))
        cycles.push_back(core::cachedRun(kind, u, job).cycles);
    return cycles;
}

/** Weight bytes of a layer (fetched from DRAM once, Section V-B3). */
std::uint64_t
weightBytes(const gan::LayerSpec &l, int bpe)
{
    return l.numWeights() * std::uint64_t(bpe);
}

/** ∇W stream bytes: one read + one write per gradient element. */
std::uint64_t
gradStreamBytes(const gan::LayerSpec &l, int bpe)
{
    return 2 * l.numWeights() * std::uint64_t(bpe);
}

} // namespace

UpdateDag
buildUpdateDag(const Design &design, const GanModel &model,
               UpdateKind kind, int bytes_per_elem)
{
    GANACC_ASSERT(design.isCombo(),
                  "the event simulation models the two-bank design");
    const int bpe = bytes_per_elem;
    const std::size_t L = model.disc.size();
    const std::size_t Lg = model.gen.size();
    GANACC_ASSERT(L >= 2 && Lg >= 2, "networks too shallow");

    auto gf_cycles = perLayerCycles(design, model, Phase::GenForward);
    auto df_cycles = perLayerCycles(design, model, Phase::DiscForward);
    auto db_cycles = perLayerCycles(design, model, Phase::DiscBackward);
    auto dw_cycles = perLayerCycles(design, model, Phase::DiscWeight);

    UpdateDag dag;
    auto add = [&](std::string label, Resource r, std::uint64_t cycles,
                   std::uint64_t dram,
                   std::vector<std::size_t> deps) -> std::size_t {
        dag.jobs.push_back(
            {std::move(label), r, cycles, dram, std::move(deps)});
        return dag.jobs.size() - 1;
    };
    auto elem_bytes = [&](const gan::LayerSpec &l) {
        return l.outputElems() * std::uint64_t(bpe);
    };

    // Generator forward chain (shared by both update kinds).
    std::vector<std::size_t> gf(Lg);
    for (std::size_t j = 0; j < Lg; ++j)
        gf[j] = add("G-fwd L" + std::to_string(j), Resource::StBank,
                    gf_cycles[j], weightBytes(model.gen[j], bpe),
                    j ? std::vector<std::size_t>{gf[j - 1]}
                      : std::vector<std::size_t>{});

    if (kind == UpdateKind::Discriminator) {
        // Real and fake forward chains through D.
        std::vector<std::size_t> dfr(L), dff(L);
        for (std::size_t i = 0; i < L; ++i) {
            dfr[i] = add("D-fwd(real) L" + std::to_string(i),
                         Resource::StBank, df_cycles[i],
                         weightBytes(model.disc[i], bpe),
                         i ? std::vector<std::size_t>{dfr[i - 1]}
                           : std::vector<std::size_t>{});
        }
        for (std::size_t i = 0; i < L; ++i) {
            std::vector<std::size_t> deps =
                i ? std::vector<std::size_t>{dff[i - 1]}
                  : std::vector<std::size_t>{gf[Lg - 1]};
            dff[i] = add("D-fwd(fake) L" + std::to_string(i),
                         Resource::StBank, df_cycles[i], 0,
                         std::move(deps));
        }
        // Backward-error chains (deferred sync: each starts right
        // after its own sample's forward; db job k handles layer
        // L-1-k and produces delta_{L-2-k}).
        std::vector<std::size_t> dbr(L - 1), dbf(L - 1);
        for (std::size_t k = 0; k + 1 < L; ++k) {
            dbr[k] = add("D-bwd(real) L" + std::to_string(L - 1 - k),
                         Resource::StBank, db_cycles[k], 0,
                         k ? std::vector<std::size_t>{dbr[k - 1]}
                           : std::vector<std::size_t>{dfr[L - 1]});
            dbf[k] = add("D-bwd(fake) L" + std::to_string(L - 1 - k),
                         Resource::StBank, db_cycles[k], 0,
                         k ? std::vector<std::size_t>{dbf[k - 1]}
                           : std::vector<std::size_t>{dff[L - 1]});
        }
        // Weight-gradient jobs: Dw layer i needs d_{i-1} (forward
        // data) and delta_i (from the loss for the top layer,
        // otherwise from the backward job of layer i+1).
        auto delta_producer = [&](const std::vector<std::size_t> &df_c,
                                  const std::vector<std::size_t> &db_c,
                                  std::size_t i) {
            return i == L - 1 ? df_c[L - 1] : db_c[L - 2 - i];
        };
        for (int pass = 0; pass < 2; ++pass) {
            const auto &df_c = pass == 0 ? dfr : dff;
            const auto &db_c = pass == 0 ? dbr : dbf;
            const char *tag = pass == 0 ? "real" : "fake";
            for (std::size_t i = 0; i < L; ++i) {
                std::vector<std::size_t> deps{
                    delta_producer(df_c, db_c, i)};
                if (i > 0)
                    deps.push_back(df_c[i - 1]);
                std::size_t dw = add(
                    "Dw(" + std::string(tag) + ") L" +
                        std::to_string(i),
                    Resource::WBank, dw_cycles[i],
                    gradStreamBytes(model.disc[i], bpe),
                    std::move(deps));
                // Buffer lifetimes: forward data d_{i-1} (held in the
                // Data buffer) and delta_i (Error buffer) both live
                // until this consumer retires.
                if (i > 0)
                    dag.claims.push_back(
                        {df_c[i - 1], dw,
                         elem_bytes(model.disc[i - 1]), "data"});
                dag.claims.push_back({delta_producer(df_c, db_c, i),
                                      dw,
                                      i == L - 1
                                          ? elem_bytes(model.disc[L - 1])
                                          : std::uint64_t(
                                                model.disc[i]
                                                    .outputElems()) *
                                                bpe,
                                      "error"});
            }
        }
        return dag;
    }

    // Generator update (Fig. 8(b)).
    auto gb_cycles = perLayerCycles(design, model, Phase::GenBackward);
    auto gw_cycles = perLayerCycles(design, model, Phase::GenWeight);

    std::vector<std::size_t> df(L);
    for (std::size_t i = 0; i < L; ++i)
        df[i] = add("D-fwd L" + std::to_string(i), Resource::StBank,
                    df_cycles[i], weightBytes(model.disc[i], bpe),
                    i ? std::vector<std::size_t>{df[i - 1]}
                      : std::vector<std::size_t>{gf[Lg - 1]});
    std::vector<std::size_t> db(L - 1);
    for (std::size_t k = 0; k + 1 < L; ++k)
        db[k] = add("D-bwd L" + std::to_string(L - 1 - k),
                    Resource::StBank, db_cycles[k], 0,
                    k ? std::vector<std::size_t>{db[k - 1]}
                      : std::vector<std::size_t>{df[L - 1]});
    // Error back through G: gb job k2 handles gen layer Lg-1-k2 and
    // produces the error at gen layer Lg-2-k2's output.
    std::vector<std::size_t> gb(Lg - 1);
    for (std::size_t k = 0; k + 1 < Lg; ++k)
        gb[k] = add("G-bwd L" + std::to_string(Lg - 1 - k),
                    Resource::StBank, gb_cycles[k], 0,
                    k ? std::vector<std::size_t>{gb[k - 1]}
                      : std::vector<std::size_t>{db[L - 2]});
    auto gdelta_producer = [&](std::size_t j) {
        return j == Lg - 1 ? db[L - 2] : gb[Lg - 2 - j];
    };
    for (std::size_t j = 0; j < Lg; ++j) {
        std::vector<std::size_t> deps{gdelta_producer(j)};
        if (j > 0)
            deps.push_back(gf[j - 1]);
        std::size_t gw =
            add("Gw L" + std::to_string(j), Resource::WBank,
                gw_cycles[j], gradStreamBytes(model.gen[j], bpe),
                std::move(deps));
        if (j > 0)
            dag.claims.push_back({gf[j - 1], gw,
                                  elem_bytes(model.gen[j - 1]),
                                  "data"});
        dag.claims.push_back({gdelta_producer(j), gw,
                              elem_bytes(model.gen[j]), "error"});
    }
    return dag;
}

EventRunStats
simulateEvents(const UpdateDag &dag, int samples,
               const mem::OffChipConfig &offchip)
{
    GANACC_ASSERT(samples >= 1, "need at least one sample");
    const std::size_t per_sample = dag.jobs.size();

    // Replicate the DAG across independent samples (the deferred
    // per-sample loops of Fig. 8); job indices stay topological.
    std::vector<Job> jobs;
    jobs.reserve(per_sample * samples);
    for (int s = 0; s < samples; ++s)
        for (const Job &j : dag.jobs) {
            Job copy = j;
            for (auto &d : copy.deps)
                d += std::size_t(s) * per_sample;
            jobs.push_back(std::move(copy));
        }

    const double cycles_per_byte =
        8.0 * offchip.frequencyHz / offchip.bandwidthBitsPerSec;

    EventRunStats trace;
    trace.spans.resize(jobs.size());
    std::uint64_t st_avail = 0, w_avail = 0, dram_avail = 0;
    std::uint64_t st_busy = 0, w_busy = 0, dram_busy = 0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &j = jobs[i];
        std::uint64_t ready = 0;
        for (std::size_t d : j.deps) {
            GANACC_ASSERT(d < i, "job DAG is not topological");
            ready = std::max(ready, trace.spans[d].end);
        }
        std::uint64_t &bank =
            j.resource == Resource::StBank ? st_avail : w_avail;
        std::uint64_t dram_cycles = std::uint64_t(
            std::ceil(double(j.dramBytes) * cycles_per_byte));
        std::uint64_t start = std::max(ready, bank);
        // DRAM policy mirrors the paper's Section V-C analysis: the
        // ∇W read+write streams of the W bank are the latency-bound
        // traffic and serialize against each other on the channel;
        // weight fetches for the ST bank are prefetchable (the Weight
        // buffer decouples them), so they charge bandwidth and can
        // stretch their own job, but do not queue behind gradient
        // streams.
        const bool serialized =
            dram_cycles > 0 && j.resource == Resource::WBank;
        if (serialized)
            start = std::max(start, dram_avail);
        // The DRAM stream overlaps compute; the job retires when the
        // slower of the two finishes.
        std::uint64_t end =
            start + std::max(j.computeCycles, dram_cycles);
        trace.spans[i] = {i, start, end};
        bank = end;
        if (serialized) {
            dram_avail = start + dram_cycles;
            trace.dramSpans.push_back({i, start, dram_avail});
        }
        dram_busy += dram_cycles;
        if (j.resource == Resource::StBank)
            st_busy += j.computeCycles;
        else
            w_busy += j.computeCycles;
        trace.makespan = std::max(trace.makespan, end);
    }

    if (trace.makespan > 0) {
        trace.stBusyFraction = double(st_busy) / double(trace.makespan);
        trace.wBusyFraction = double(w_busy) / double(trace.makespan);
        trace.dramBusyFraction =
            double(dram_busy) / double(trace.makespan);
    }

    // Buffer high-water marks by sweep line over the claim lifetimes.
    for (const char *name : {"data", "error"}) {
        std::vector<std::pair<std::uint64_t, std::int64_t>> events;
        for (int s = 0; s < samples; ++s) {
            std::size_t off = std::size_t(s) * per_sample;
            for (const BufferClaim &c : dag.claims) {
                if (c.buffer != name)
                    continue;
                events.emplace_back(
                    trace.spans[c.producer + off].end,
                    std::int64_t(c.bytes));
                events.emplace_back(trace.spans[c.consumer + off].end,
                                    -std::int64_t(c.bytes));
            }
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // frees first
                  });
        std::int64_t live = 0, peak = 0;
        for (const auto &[t, d] : events) {
            live += d;
            peak = std::max(peak, live);
        }
        if (std::string(name) == "data")
            trace.peakDataBytes = std::uint64_t(peak);
        else
            trace.peakErrorBytes = std::uint64_t(peak);
    }
    return trace;
}

std::uint64_t
eventCyclesPerSample(const Design &design, const GanModel &model,
                     UpdateKind kind, int samples)
{
    UpdateDag dag = buildUpdateDag(design, model, kind);
    mem::OffChipConfig offchip;
    EventRunStats trace = simulateEvents(dag, samples, offchip);
    // Ceiling division: flooring would understate steady-state cycles
    // whenever the makespan is not an exact multiple of the batch (a
    // throughput claim must round against itself).
    const std::uint64_t n = std::uint64_t(samples);
    return (trace.makespan + n - 1) / n;
}

void
writeChromeTrace(const UpdateDag &dag, const EventRunStats &trace,
                 int samples, std::ostream &os)
{
    const std::size_t per_sample = dag.jobs.size();
    GANACC_ASSERT(trace.spans.size() ==
                      per_sample * std::size_t(samples),
                  "trace does not match the DAG/sample count");
    // Build the event list and hand it to the shared obs emitter —
    // the one JSON-escaping/formatting path every trace goes through.
    // Timestamps are cycles, so the output is fully deterministic
    // (the golden trace test byte-compares it).
    std::vector<obs::TraceEvent> events;
    events.reserve(trace.spans.size() + trace.dramSpans.size());
    auto emit = [&](const std::string &name, int tid, std::uint64_t s,
                    std::uint64_t e, int sample) {
        if (e <= s)
            return;
        obs::TraceEvent ev;
        ev.name = name;
        ev.ph = 'X';
        ev.pid = 0;
        ev.tid = tid;
        ev.ts = s;
        ev.dur = e - s;
        ev.args = "{\"sample\":" + std::to_string(sample) + "}";
        events.push_back(std::move(ev));
    };
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
        const Job &j = dag.jobs[i % per_sample];
        emit(j.label, j.resource == Resource::StBank ? 0 : 1,
             trace.spans[i].start, trace.spans[i].end,
             int(i / per_sample));
    }
    for (const Span &s : trace.dramSpans)
        emit("dW stream", 2, s.start, s.end,
             int(s.job / per_sample));
    obs::writeChromeTraceJson(
        os, events,
        {{"tool", "ganacc event_sim"},
         {"lanes", "0=ST bank, 1=W bank, 2=DRAM"}},
        "ns");
}

std::string
renderGantt(const UpdateDag &dag, const EventRunStats &trace, int samples,
            int width)
{
    GANACC_ASSERT(width >= 10, "gantt too narrow");
    // Degenerate trace (empty DAG or zero-sample run): render a stub
    // instead of dividing by a zero makespan.
    if (trace.makespan == 0) {
        std::string idle(std::size_t(width), '.');
        return "ST bank " + idle + "\nW  bank " + idle +
               "\nDRAM dW " + idle + "\nsamples " +
               std::string(std::size_t(width), ' ') +
               "  (empty trace)\n";
    }
    const double per_col = double(trace.makespan) / width;
    const std::size_t per_sample = dag.jobs.size();

    // Busy cycles per bucket per row.
    std::vector<std::vector<double>> busy(3,
                                          std::vector<double>(width));
    auto charge = [&](int row, std::uint64_t s, std::uint64_t e) {
        if (e <= s)
            return;
        // Clamp both bucket indices: with width > makespan, per_col
        // drops below 1 and the float division can land on `width`.
        int c0 = std::clamp(int(double(s) / per_col), 0, width - 1);
        int c1 = std::clamp(int(double(e - 1) / per_col), c0,
                            width - 1);
        for (int c = c0; c <= c1; ++c) {
            double lo = std::max(double(s), c * per_col);
            double hi = std::min(double(e), (c + 1) * per_col);
            busy[std::size_t(row)][std::size_t(c)] +=
                std::max(0.0, hi - lo);
        }
    };
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
        const Job &j = dag.jobs[i % per_sample];
        charge(j.resource == Resource::StBank ? 0 : 1,
               trace.spans[i].start, trace.spans[i].end);
    }
    for (const Span &s : trace.dramSpans)
        charge(2, s.start, s.end);

    auto row = [&](int r) {
        std::string line;
        for (int c = 0; c < width; ++c) {
            double f = busy[std::size_t(r)][std::size_t(c)] / per_col;
            line += f > 0.66 ? '#' : f > 0.05 ? '-' : '.';
        }
        return line;
    };
    // Ruler with per-sample completion markers (the end of each
    // sample's last job).
    std::string ruler(std::size_t(width), ' ');
    for (int s = 0; s < samples; ++s) {
        std::uint64_t end = 0;
        for (std::size_t i = 0; i < per_sample; ++i)
            end = std::max(
                end,
                trace.spans[std::size_t(s) * per_sample + i].end);
        if (end == 0)
            continue; // all-zero-length sample: no marker, no underflow
        int c = std::clamp(int(double(end - 1) / per_col), 0,
                           width - 1);
        ruler[std::size_t(c)] = '|';
    }
    std::string out;
    out += "ST bank " + row(0) + "\n";
    out += "W  bank " + row(1) + "\n";
    out += "DRAM dW " + row(2) + "\n";
    out += "samples " + ruler + "\n";
    return out;
}

} // namespace sched
} // namespace ganacc
