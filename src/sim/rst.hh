/**
 * @file
 * RST — an Eyeriss-style Row-Stationary architecture, added as an
 * extension baseline beyond the paper's three (Section VII discusses
 * Eyeriss qualitatively: it "can gate zero input neuron computations
 * to further save power" but "could not handle the zero-inserting in
 * the kernel for W-CONV").
 *
 * A P_ky x P_oy grid of PEs per channel: PE(ky, oy) runs the 1-D
 * convolution of kernel row ky against the input row feeding output
 * row oy; partial sums accumulate down each column, input rows are
 * reused along the diagonals. Zero operands are *clock-gated* — the
 * energy is saved (no buffer access) but the cycle is still spent,
 * so zero-inserted maps do not get faster, only cooler. That is the
 * contrast with ZFOST/ZFWST's address-generation skipping.
 */

#ifndef GANACC_SIM_RST_HH
#define GANACC_SIM_RST_HH

#include "sim/arch.hh"

namespace ganacc {
namespace sim {

/** Row-stationary (Eyeriss-style) array with zero gating. */
class Rst : public Architecture
{
  public:
    explicit Rst(Unroll unroll) : Architecture("RST", unroll) {}

    int
    numPes() const override
    {
        return unroll_.pKy * unroll_.pOy * unroll_.pOf;
    }

  protected:
    /** Gated slots (energy saved while the cycle elapsed) are
     *  reported in RunStats::gatedSlots; run() stays reentrant — no
     *  state survives on the architecture object. */
    RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                   const tensor::Tensor *w,
                   tensor::Tensor *out) const override;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_RST_HH
