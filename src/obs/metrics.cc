/**
 * @file
 * Metric-registry implementation.
 */

#include "obs/metrics.hh"

#include <sstream>

#include "util/logging.hh"

namespace ganacc {
namespace obs {

void
HistogramSnapshot::merge(const HistogramSnapshot &o)
{
    if (buckets.empty())
        buckets.resize(o.buckets.size(), 0);
    GANACC_ASSERT(buckets.size() == o.buckets.size(),
                  "merging histograms with different bucket layouts");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    if (!o.exemplars.empty()) {
        if (exemplars.empty())
            exemplars.resize(buckets.size());
        for (std::size_t i = 0;
             i < exemplars.size() && i < o.exemplars.size(); ++i)
            if (exemplars[i].traceId.empty())
                exemplars[i] = o.exemplars[i];
    }
}

int
Histogram::bucketIndex(std::uint64_t v)
{
    for (int i = 0; i < kFiniteBuckets; ++i)
        if (v <= bucketBound(i))
            return i;
    return kFiniteBuckets; // +Inf
}

void
Histogram::exemplar(std::uint64_t v, const std::string &traceId)
{
    if (traceId.empty())
        return;
    std::lock_guard<std::mutex> lk(exemplars_m_);
    if (exemplars_.empty())
        exemplars_.resize(kBuckets);
    Exemplar &slot = exemplars_[std::size_t(bucketIndex(v))];
    slot.value = v;
    slot.traceId = traceId;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.buckets.resize(kBuckets);
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t b =
            buckets_[std::size_t(i)].load(std::memory_order_relaxed);
        s.buckets[std::size_t(i)] = b;
        s.count += b;
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(exemplars_m_);
        s.exemplars = exemplars_;
    }
    return s;
}

void
Snapshot::histogram(const std::string &name, const HistogramSnapshot &h)
{
    histograms_[name].merge(h);
}

Registry &
Registry::instance()
{
    // Leaked: metrics may be bumped from static destructors and
    // worker threads that outlive main()'s locals.
    static Registry *r = new Registry;
    return *r;
}

Counter &
Registry::counter(const std::string &name, const std::string &help_text)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        if (!help_text.empty())
            help_.emplace(metricBaseName(name), help_text);
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help_text)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        if (!help_text.empty())
            help_.emplace(metricBaseName(name), help_text);
    }
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help_text)
{
    std::lock_guard<std::mutex> lk(m_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
        if (!help_text.empty())
            help_.emplace(metricBaseName(name), help_text);
    }
    return *slot;
}

int
Registry::addCollector(Collector fn)
{
    GANACC_ASSERT(fn != nullptr, "null collector registered");
    std::lock_guard<std::mutex> lk(m_);
    const int token = nextCollector_++;
    collectors_.emplace(token, std::move(fn));
    return token;
}

void
Registry::removeCollector(int token)
{
    std::lock_guard<std::mutex> lk(m_);
    collectors_.erase(token);
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lk(m_);
    Snapshot s;
    for (const auto &[name, c] : counters_)
        s.counter(name, c->value());
    for (const auto &[name, g] : gauges_)
        s.gauge(name, g->value());
    for (const auto &[name, h] : histograms_)
        s.histogram(name, h->snapshot());
    for (const auto &[token, fn] : collectors_)
        fn(s);
    return s;
}

std::string
Registry::help(const std::string &baseName) const
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = help_.find(baseName);
    return it == help_.end() ? std::string() : it->second;
}

std::string
metricBaseName(const std::string &name)
{
    const auto brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

namespace {

/** Emit the # HELP/# TYPE header once per base name. */
void
emitHeader(std::ostringstream &os, std::string &last_base,
           const std::string &name, const char *type)
{
    const std::string base = metricBaseName(name);
    if (base == last_base)
        return;
    last_base = base;
    const std::string help = Registry::instance().help(base);
    if (!help.empty())
        os << "# HELP " << base << ' ' << help << '\n';
    os << "# TYPE " << base << ' ' << type << '\n';
}

/** Splice an extra label into a (possibly already labelled) name. */
std::string
withLabel(const std::string &name, const std::string &label)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos)
        return name + '{' + label + '}';
    std::string out = name;
    out.insert(name.size() - 1, ',' + label);
    return out;
}

} // namespace

std::string
renderPrometheus(const Snapshot &snap)
{
    std::ostringstream os;
    std::string last_base;
    for (const auto &[name, v] : snap.counters()) {
        emitHeader(os, last_base, name, "counter");
        os << name << ' ' << v << '\n';
    }
    for (const auto &[name, v] : snap.gauges()) {
        emitHeader(os, last_base, name, "gauge");
        os << name << ' ' << v << '\n';
    }
    for (const auto &[name, h] : snap.histograms()) {
        emitHeader(os, last_base, name, "histogram");
        const std::string base = metricBaseName(name);
        const std::string labels = name.substr(base.size());
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            cum += h.buckets[i];
            const std::string le =
                i + 1 == h.buckets.size()
                    ? std::string("+Inf")
                    : std::to_string(Histogram::bucketBound(int(i)));
            os << withLabel(base + "_bucket" + labels,
                            "le=\"" + le + "\"")
               << ' ' << cum;
            // OpenMetrics-style exemplar: links this bucket to one
            // concrete distributed trace. Only rendered when a
            // sampled trace actually landed here, so histograms
            // without exemplars dump byte-identically to before.
            if (i < h.exemplars.size() &&
                !h.exemplars[i].traceId.empty())
                os << " # {trace_id=\"" << h.exemplars[i].traceId
                   << "\"} " << h.exemplars[i].value;
            os << '\n';
        }
        os << base << "_sum" << labels << ' ' << h.sum << '\n';
        os << base << "_count" << labels << ' ' << h.count << '\n';
    }
    return os.str();
}

} // namespace obs
} // namespace ganacc
