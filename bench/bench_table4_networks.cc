/**
 * @file
 * Table IV reproduction: the layer parameters of the evaluated GAN
 * discriminators (MNIST-GAN and cGAN in the paper's table, plus the
 * DCGAN of Fig. 1), with per-layer work and footprint columns.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "gan/models.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Table IV — parameters of GANs",
                  "MNIST-GAN: 1x28x28 -> 64x14x14 -> 128x7x7 (5x5, s2); "
                  "cGAN: 3x64x64 -> ... -> 512x4x4 (4x4, s2)");

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (discriminator; generator is the inverse, "
                     "latent dim "
                  << m.latentDim << ")\n";
        util::Table t({"layer", "input", "kernel", "stride", "output",
                       "MACs", "weights"});
        for (std::size_t i = 0; i < m.disc.size(); ++i) {
            const auto &l = m.disc[i];
            std::string label = "L";
            label += std::to_string(i);
            t.addRow(label,
                     std::to_string(l.inChannels) + "x" +
                         std::to_string(l.inH) + "x" +
                         std::to_string(l.inW),
                     std::to_string(l.geom.kernel) + "x" +
                         std::to_string(l.geom.kernel),
                     std::to_string(l.geom.stride) + "x" +
                         std::to_string(l.geom.stride),
                     std::to_string(l.outChannels) + "x" +
                         std::to_string(l.outH()) + "x" +
                         std::to_string(l.outW()),
                     l.macs(), l.numWeights());
        }
        t.print(std::cout);
    }
    return 0;
}
