/**
 * @file
 * Activation implementations.
 */

#include "nn/activations.hh"

#include <cmath>

#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Tensor;

std::string
activationName(Activation a)
{
    switch (a) {
      case Activation::None:
        return "none";
      case Activation::ReLU:
        return "relu";
      case Activation::LeakyReLU:
        return "leaky_relu";
      case Activation::Tanh:
        return "tanh";
    }
    util::panic("unknown activation");
}

Tensor
activationForward(const Tensor &pre, Activation a)
{
    Tensor out(pre.shape());
    const float *src = pre.data();
    float *dst = out.data();
    for (std::size_t i = 0; i < pre.numel(); ++i) {
        float x = src[i];
        switch (a) {
          case Activation::None:
            dst[i] = x;
            break;
          case Activation::ReLU:
            dst[i] = x > 0.0f ? x : 0.0f;
            break;
          case Activation::LeakyReLU:
            dst[i] = x > 0.0f ? x : kLeakySlope * x;
            break;
          case Activation::Tanh:
            dst[i] = std::tanh(x);
            break;
        }
    }
    return out;
}

Tensor
activationBackward(const Tensor &dout, const Tensor &pre, Activation a)
{
    GANACC_ASSERT(dout.shape() == pre.shape(),
                  "activation backward shape mismatch");
    Tensor dpre(pre.shape());
    const float *g = dout.data();
    const float *x = pre.data();
    float *dst = dpre.data();
    for (std::size_t i = 0; i < pre.numel(); ++i) {
        float d;
        switch (a) {
          case Activation::None:
            d = 1.0f;
            break;
          case Activation::ReLU:
            d = x[i] > 0.0f ? 1.0f : 0.0f;
            break;
          case Activation::LeakyReLU:
            d = x[i] > 0.0f ? 1.0f : kLeakySlope;
            break;
          case Activation::Tanh: {
            float t = std::tanh(x[i]);
            d = 1.0f - t * t;
            break;
          }
          default:
            util::panic("unknown activation");
        }
        dst[i] = g[i] * d;
    }
    return dpre;
}

} // namespace nn
} // namespace ganacc
