/**
 * @file
 * CNV — a Cnvlutin-style dynamically zero-skipping architecture
 * (Section VII: "Instead of powering off the zero neuron
 * computations, Cnvlutin directly skips over the zero inputs").
 *
 * Like NLR, P_if input lanes feed per-filter adder trees across P_of
 * output channels — but each lane consumes an *encoded* stream of its
 * non-zero activations, so zeros cost nothing. Skipping is by value
 * inspection, which (a) also harvests dynamic ReLU sparsity that the
 * structural designs cannot see, but (b) suffers lane imbalance: all
 * lanes of a window resynchronize at output boundaries, so the
 * slowest lane paces the rest. And, like every P_if-parallel design,
 * the adder tree is dead weight on four-dimension W-CONV outputs.
 *
 * Because skipping is data-dependent, this model is functional-only:
 * run() requires real operands.
 */

#ifndef GANACC_SIM_CNV_HH
#define GANACC_SIM_CNV_HH

#include "sim/arch.hh"

namespace ganacc {
namespace sim {

/** Dynamically zero-skipping (value-inspecting) array. */
class Cnv : public Architecture
{
  public:
    explicit Cnv(Unroll unroll) : Architecture("CNV", unroll) {}

    int
    numPes() const override
    {
        return unroll_.pIf * unroll_.pOf;
    }

  protected:
    RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                   const tensor::Tensor *w,
                   tensor::Tensor *out) const override;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_CNV_HH
