/**
 * @file
 * Unit tests for the util substrate: logging, RNG, fixed point, table.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ganacc::util;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config value ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, MessagesCarryFormattedContent)
{
    try {
        fatal("expected ", 3, " got ", 4);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: expected 3 got 4");
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(GANACC_ASSERT(1 + 1 == 2, "math"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(GANACC_ASSERT(false, "should fire"), PanicError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(99);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Fixed16, RoundTripSmallValues)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 3.125, -7.875}) {
        auto f = AccelFixed::fromDouble(v);
        EXPECT_DOUBLE_EQ(f.toDouble(), v) << "value " << v;
    }
}

TEST(Fixed16, QuantizationErrorBounded)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-100.0, 100.0);
        auto f = AccelFixed::fromDouble(v);
        EXPECT_LE(std::fabs(f.toDouble() - v), AccelFixed::epsilon());
    }
}

TEST(Fixed16, SaturatesInsteadOfWrapping)
{
    auto big = AccelFixed::fromDouble(1e6);
    EXPECT_NEAR(big.toDouble(), 127.996, 0.01);
    auto neg = AccelFixed::fromDouble(-1e6);
    EXPECT_NEAR(neg.toDouble(), -128.0, 0.01);
    // Addition saturates too.
    auto sum = big + big;
    EXPECT_NEAR(sum.toDouble(), 127.996, 0.01);
}

TEST(Fixed16, MultiplicationMatchesDouble)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double a = rng.uniform(-8.0, 8.0);
        double b = rng.uniform(-8.0, 8.0);
        auto fa = AccelFixed::fromDouble(a);
        auto fb = AccelFixed::fromDouble(b);
        double prod = (fa * fb).toDouble();
        // Error: operand quantization plus one rounding step.
        EXPECT_NEAR(prod, fa.toDouble() * fb.toDouble(),
                    AccelFixed::epsilon());
    }
}

TEST(Fixed16, RawAccessorsConsistent)
{
    auto f = AccelFixed::fromRaw(256);
    EXPECT_DOUBLE_EQ(f.toDouble(), 1.0);
    EXPECT_EQ(f.raw(), 256);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow("x", 1);
    t.addRow("longer", 23.5);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("23.5"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

} // namespace
