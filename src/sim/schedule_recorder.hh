/**
 * @file
 * Per-cycle schedule recorder hook.
 *
 * The third null-by-default observation hook on Architecture (after
 * the PR 3 MacFaultHook and the PR 5 obs::Probe): when armed, every
 * cycle walk narrates its concrete schedule — cycle boundaries, PE-lane
 * bookings, per-cycle buffer-port traffic, and register/partial-sum
 * accumulation windows — to the recorder. The static schedule analyzer
 * (verify/schedule_analysis) predicts the same relation symbolically
 * without walking; the differential fuzz keeps the two bit-identical.
 *
 * Attribution convention: events attach to the most recently begun
 * cycle; events reported before a job's first cycle (e.g. a resident
 * weight-tile load at a pass boundary) attach to the first cycle.
 *
 * When no recorder is installed the walks pay one pointer test per
 * call site and behave bit-identically to an uninstrumented walk.
 * Recorders are not shared between concurrently running jobs: arm one
 * architecture instance per thread.
 */

#ifndef GANACC_SIM_SCHEDULE_RECORDER_HH
#define GANACC_SIM_SCHEDULE_RECORDER_HH

#include <cstdint>

#include "sim/conv_spec.hh"

namespace ganacc {
namespace sim {

/** The buffer port classes a cycle walk drives. */
enum class SchedPort
{
    Weight,      ///< weight buffer reads into the array
    Input,       ///< input/activation reads into the array
    OutputRead,  ///< partial-sum reads (read-modify-write accumulate)
    OutputWrite, ///< partial-sum / result writes
};

/** How an accumulation window treats reads and drains. */
enum class WindowKind
{
    /** Register tile cleared at window begin; reads never hazard, every
     *  written cell must be drained before the window closes (OST /
     *  ZFOST output-stationary register arrays). */
    RegisterTile,
    /** Partial-sum buffer that is NOT zero-initialized: a read of a
     *  never-written cell is a RAW hazard, and every written cell must
     *  be drained (ZFWST ping-pong partial-result buffer). */
    AccumBuffer,
    /** Zero-initialized buffer whose writes are themselves the result
     *  export: reads never hazard and no drain is required (NLR / WST /
     *  CNV / RST global partial sums). */
    WriteThrough,
};

/**
 * Observer for one job's concrete schedule. All callbacks run on the
 * walking thread, between onJobBegin and onJobEnd.
 */
class ScheduleRecorder
{
  public:
    virtual ~ScheduleRecorder() = default;

    virtual void onJobBegin(int n_pes, const ConvSpec &spec) = 0;

    /** A new scheduled cycle begins. */
    virtual void onCycle() = 0;

    /** `count` PE lanes [base, base+count) are booked this cycle. The
     *  lane index is the MacContext slot index of the dataflow. */
    virtual void onLanes(int base, int count) = 0;

    /** `words` operand words move through `port` this cycle. */
    virtual void onPort(SchedPort port, std::uint64_t words) = 0;

    /** Open an accumulation window of `cells` register/buffer cells.
     *  Windows never nest within one job. */
    virtual void onWindowBegin(std::uint64_t cells, WindowKind kind) = 0;

    /** Cells [base, base+count) of the open window are written. */
    virtual void onCellWrite(std::uint64_t base, std::uint64_t count) = 0;

    /** Cells [base, base+count) of the open window are read back. */
    virtual void onCellRead(std::uint64_t base, std::uint64_t count) = 0;

    /** Cells [base, base+count) are drained out of the array/buffer. */
    virtual void onDrain(std::uint64_t base, std::uint64_t count) = 0;

    virtual void onWindowEnd() = 0;

    virtual void onJobEnd() = 0;
};

/** The shared output-cell linearization the walks report windows in:
 *  f fastest within a pOf tile, then ox, oy, and (four-dimension
 *  outputs only) the input map. */
inline std::uint64_t
schedCellIndex(const ConvSpec &spec, int of0, int c, int oy, int ox)
{
    const std::uint64_t plane =
        (std::uint64_t(oy) * std::uint64_t(spec.ow) + std::uint64_t(ox)) *
            std::uint64_t(spec.nof) +
        std::uint64_t(of0);
    if (!spec.fourDimOutput)
        return plane;
    return std::uint64_t(c) * std::uint64_t(spec.oh) *
               std::uint64_t(spec.ow) * std::uint64_t(spec.nof) +
           plane;
}

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_SCHEDULE_RECORDER_HH
