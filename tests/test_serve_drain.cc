/**
 * @file
 * Drain-under-load: a socket daemon hit by N pipelining clients takes
 * SIGTERM mid-burst and must still answer every request accepted on a
 * live connection, then leave the result store consistent.
 *
 * The daemon's contract (serve/daemon.hh) is: the signal handler only
 * sets the stop flag; the server stops accepting, serves every live
 * connection until its client closes, then drains the engine. So a
 * client that connected before the signal sees all of its pipelined
 * bursts answered — none dropped, none reordered — no matter when the
 * signal lands relative to its writes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <thread>
#include <vector>

#include "conform/ops.hh"
#include "conform/reference.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "serve/result_store.hh"
#include "sim/stats_diff.hh"

using namespace ganacc;
namespace fs = std::filesystem;

namespace {

/** The request mix: a few distinct triples shared by every client so
 *  the burst exercises dedupe and every cache tier under load. */
std::vector<serve::Request>
sharedTriples()
{
    conform::GenOptions gopt;
    gopt.ops = 60;
    gopt.fsFaults = false;
    gopt.restarts = false;
    gopt.nets = false;
    std::vector<serve::Request> triples;
    for (const conform::Op &op : conform::generateSequence(3, gopt)) {
        if (op.kind != conform::OpKind::SimRequest)
            continue;
        serve::Request req;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.spec = op.spec;
        req.hasSpec = true;
        triples.push_back(req);
        if (triples.size() == 6)
            break;
    }
    EXPECT_EQ(6u, triples.size());
    return triples;
}

} // namespace

TEST(ServeDrain, SigtermMidBurstAnswersEveryAcceptedRequest)
{
    const std::string scratch =
        (fs::temp_directory_path() /
     ("ganacc-drain-" + std::to_string(::getpid())))
            .string();
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    const std::string socket = scratch + "/sock";
    const std::string storeDir = scratch + "/store";

    serve::EngineOptions eo;
    eo.cacheDir = storeDir;
    eo.deterministic = true;
    serve::Engine engine(eo);

    std::atomic<bool> stop{false};
    serve::installStopHandlers(stop);
    serve::ServeTotals totals;
    std::thread server([&] {
        totals = serve::runSocketServer(socket, engine, stop);
    });

    const std::vector<serve::Request> triples = sharedTriples();
    constexpr int kClients = 4;
    constexpr int kBursts = 20;
    constexpr int kWindow = 12;

    // Connect every client before the signal: these connections are
    // the "accepted" population the contract covers.
    std::vector<std::unique_ptr<serve::Client>> clients;
    for (int cl = 0; cl < kClients; ++cl) {
        clients.push_back(std::make_unique<serve::Client>());
        for (int attempt = 0;; ++attempt) {
            try {
                clients.back()->connect(socket);
                break;
            } catch (const std::exception &) {
                ASSERT_LT(attempt, 2500) << "daemon never came up";
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
    }

    std::atomic<int> answered{0};
    std::atomic<int> wrong{0};
    std::vector<std::thread> threads;
    for (int cl = 0; cl < kClients; ++cl) {
        threads.emplace_back([&, cl] {
            serve::Client &client = *clients[std::size_t(cl)];
            std::uint64_t next = std::uint64_t(cl) * 1000000 + 1;
            for (int burst = 0; burst < kBursts; ++burst) {
                std::vector<serve::Request> sent;
                for (int i = 0; i < kWindow; ++i) {
                    serve::Request req =
                        triples[std::size_t(burst + i) %
                                triples.size()];
                    req.id = next++;
                    client.sendRequest(req);
                    sent.push_back(req);
                }
                for (const serve::Request &req : sent) {
                    const serve::Response rsp =
                        client.recvResponse();
                    ++answered;
                    if (rsp.id != req.id || !rsp.ok ||
                        !sim::statsEqual(
                            rsp.stats,
                            conform::ReferenceModel::directStats(
                                req.kind, req.unroll, req.spec)))
                        ++wrong;
                }
            }
            client.close();
        });
    }

    // Land the signal while the bursts are in full flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(0, std::raise(SIGTERM));

    for (std::thread &t : threads)
        t.join();
    server.join();

    // Every pipelined request of every accepted connection answered,
    // correctly, despite the mid-burst SIGTERM.
    EXPECT_EQ(kClients * kBursts * kWindow, answered.load());
    EXPECT_EQ(0, wrong.load());
    EXPECT_EQ(totals.lines, totals.responses);
    EXPECT_EQ(std::uint64_t(kClients * kBursts * kWindow),
              totals.lines);
    // A post-signal connection must be refused: the daemon stopped
    // accepting the moment the flag was seen, and the socket file is
    // gone once it returned.
    EXPECT_FALSE(fs::exists(socket));

    // Store consistency after drain: every triple the burst touched
    // has a parseable current-version entry with the exact reference
    // stats (load through a fresh store session).
    serve::ResultStore store(storeDir);
    for (const serve::Request &req : triples) {
        const auto loaded =
            store.load(req.kind, req.unroll, req.spec);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_TRUE(sim::statsEqual(
            *loaded, conform::ReferenceModel::directStats(
                         req.kind, req.unroll, req.spec)));
    }
    const serve::StoreCounters sc = store.counters();
    EXPECT_EQ(0u, sc.staleMisses);
    EXPECT_EQ(0u, sc.corruptMisses);
    fs::remove_all(scratch);
}
