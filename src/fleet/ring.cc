/**
 * @file
 * Consistent-hash ring implementation.
 */

#include "fleet/ring.hh"

#include <algorithm>

#include "serve/protocol.hh"
#include "util/logging.hh"

namespace ganacc {
namespace fleet {

Ring::Ring(const std::vector<std::string> &shards, int vnodes)
    : shardCount_(int(shards.size()))
{
    if (shards.empty())
        util::fatal("ring needs at least one shard");
    if (vnodes < 1)
        util::fatal("ring: vnodes must be positive");
    points_.reserve(shards.size() * std::size_t(vnodes));
    for (std::size_t s = 0; s < shards.size(); ++s)
        for (int v = 0; v < vnodes; ++v)
            points_.emplace_back(
                serve::fnv1a64(shards[s] + "#" + std::to_string(v)),
                int(s));
    // Sort by hash; break the (astronomically unlikely) hash tie by
    // shard index so placement stays deterministic regardless of the
    // construction order above.
    std::sort(points_.begin(), points_.end());
}

int
Ring::primary(const std::string &key) const
{
    const std::uint64_t h = serve::fnv1a64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(h, 0),
        [](const std::pair<std::uint64_t, int> &a,
           const std::pair<std::uint64_t, int> &b) {
            return a.first < b.first;
        });
    if (it == points_.end())
        it = points_.begin(); // wrap: clockwise past the top
    return it->second;
}

std::vector<int>
Ring::replicas(const std::string &key, int rf) const
{
    if (rf > shardCount_)
        rf = shardCount_;
    if (rf < 1)
        rf = 1;
    const std::uint64_t h = serve::fnv1a64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(h, 0),
        [](const std::pair<std::uint64_t, int> &a,
           const std::pair<std::uint64_t, int> &b) {
            return a.first < b.first;
        });
    std::vector<int> out;
    out.reserve(std::size_t(rf));
    for (std::size_t step = 0;
         step < points_.size() && int(out.size()) < rf; ++step) {
        if (it == points_.end())
            it = points_.begin();
        const int shard = it->second;
        if (std::find(out.begin(), out.end(), shard) == out.end())
            out.push_back(shard);
        ++it;
    }
    return out;
}

} // namespace fleet
} // namespace ganacc
