/**
 * @file
 * Table V reproduction: the unrolling strategy of every architecture
 * on both PE banks. Prints the paper's published entries next to the
 * choices of the exhaustive solver (which minimizes simulated cycles
 * over the evaluation networks' jobs), confirming the published
 * configurations are (near-)optimal under the model.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;

std::string
unrollStr(core::ArchKind kind, const sim::Unroll &u)
{
    switch (kind) {
      case core::ArchKind::NLR:
        return "Pif=" + std::to_string(u.pIf) +
               ",Pof=" + std::to_string(u.pOf);
      case core::ArchKind::WST:
      case core::ArchKind::ZFWST:
        return "Pk=" + std::to_string(u.pKy) + "x" +
               std::to_string(u.pKx) + ",Pof=" + std::to_string(u.pOf);
      case core::ArchKind::OST:
      case core::ArchKind::ZFOST:
        return "Po=" + std::to_string(u.pOy) + "x" +
               std::to_string(u.pOx) + ",Pof=" + std::to_string(u.pOf);
    }
    return "?";
}

} // namespace

int
main()
{
    using namespace ganacc;
    bench::banner("Table V — unrolling strategy",
                  "ST-ARCH (1200 PEs) e.g. OST Po=4x4 Pof=75; "
                  "W-ARCH (480 PEs) e.g. ZFWST Pk=4x4 Pof=30");

    // Probe jobs: the DCGAN families (the network Table V was sized
    // for; 5x5 kernels).
    gan::GanModel dcgan = gan::makeDcgan();

    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };

    for (const Row &row : rows) {
        auto jobs = sim::familyJobs(dcgan, row.family);
        std::cout << "\nPhase family " << sim::phaseFamilyName(row.family)
                  << " on the "
                  << (row.role == core::BankRole::ST ? "ST" : "W")
                  << " bank (" << row.pes << " PEs):\n";
        util::Table t({"arch", "paper unrolling", "paper cycles",
                       "solver unrolling", "solver cycles", "solver PEs"});
        for (core::ArchKind kind : core::allArchKinds()) {
            auto paper =
                core::paperUnroll(kind, row.role, row.family, row.pes);
            auto paper_arch = core::makeArch(kind, paper);
            std::uint64_t paper_cycles = 0;
            for (const auto &j : jobs)
                paper_cycles += paper_arch->run(j).cycles;
            auto solved =
                core::solveUnrolling(kind, row.pes, jobs, 8);
            t.addRow(core::archKindName(kind), unrollStr(kind, paper),
                     paper_cycles, unrollStr(kind, solved.unroll),
                     solved.cycles, solved.pes);
        }
        t.print(std::cout);
    }
    std::cout << "\n(Solver may shave cycles with workload-specific "
                 "shapes; the published entries must be within a few "
                 "percent.)\n";
    return 0;
}
