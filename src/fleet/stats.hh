/**
 * @file
 * Fleet-level telemetry aggregation.
 *
 * Every shard answers a stats probe with its own registry snapshot
 * (serve::Engine::telemetryJson(): counters, gauges, histograms).
 * This module merges N such snapshots into one fleet view: counters
 * and gauges sum, histograms merge element-wise (same power-of-2
 * bucket layout on every shard, so bucket i + bucket i is exact).
 * The merge is pure integer arithmetic — no averaging, no doubles —
 * which is what lets a ctest pin it.
 */

#ifndef GANACC_FLEET_STATS_HH
#define GANACC_FLEET_STATS_HH

#include <string>
#include <vector>

namespace ganacc {
namespace fleet {

/**
 * Merge per-shard telemetry snapshots (canonical JSON object text as
 * produced by the stats probe) into one aggregate snapshot of the
 * same shape. Metric names are the union across shards; a name
 * missing on some shard contributes zero. Snapshots that are empty
 * strings (unreachable shards) are skipped. Throws util::FatalError
 * on malformed input or mismatched histogram bucket layouts.
 */
std::string mergeTelemetry(const std::vector<std::string> &snapshots);

/**
 * The ganacc-client --stats --fleet report: one JSON object with the
 * shard count, a derived fleet-wide latency summary (request count,
 * total microseconds, and the smallest le bucket bounds covering
 * p50/p99 of the merged ganacc_serve_latency_us histogram — le
 * values are strings so "+Inf" is uniform, "0" when empty), a
 * per-shard array of (address, telemetry) rows — unreachable shards
 * carry "telemetry":null — and the aggregate merge of the reachable
 * ones:
 *
 *   {"fleet":{"shards":3,"reachable":3},
 *    "latency":{"count":12,"sumUs":8192,"p50Le":"512","p99Le":"4096"},
 *    "perShard":[{"shard":0,"address":"...","telemetry":{...}},...],
 *    "aggregate":{...}}
 */
std::string fleetStatsReport(
    const std::vector<std::pair<std::string, std::string>> &perShard);

} // namespace fleet
} // namespace ganacc

#endif // GANACC_FLEET_STATS_HH
