/**
 * @file
 * Convolution layer implementations.
 */

#include "nn/layers.hh"

#include <cmath>
#include <sstream>

#include "tensor/shape.hh"
#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Shape4;
using tensor::Tensor;

ConvLayerBase::ConvLayerBase(int in_channels, int out_channels,
                             Conv2dGeom geom, Activation act,
                             Shape4 weight_shape)
    : inChannels_(in_channels), outChannels_(out_channels), geom_(geom),
      act_(act), weights_(weight_shape, 0.0f),
      gradAccum_(weight_shape, 0.0f)
{
    GANACC_ASSERT(in_channels > 0 && out_channels > 0,
                  "channel counts must be positive");
}

Tensor
ConvLayerBase::forward(const Tensor &in)
{
    GANACC_ASSERT(in.shape().d1 == inChannels_, "layer expects ",
                  inChannels_, " input channels, got ", in.shape().d1);
    cachedInput_ = in;
    Tensor conv_out = doForward(in);
    // DCGAN ordering: convolution -> (batch norm) -> activation.
    cachedPre_ = bn_ ? bn_->forward(conv_out, bnMode_)
                     : std::move(conv_out);
    haveCache_ = true;
    return activationForward(cachedPre_, act_);
}

Tensor
ConvLayerBase::backward(const Tensor &dout)
{
    GANACC_ASSERT(haveCache_, "backward() before forward()");
    GANACC_ASSERT(dout.shape() == cachedPre_.shape(),
                  "backward error shape ", dout.shape().str(),
                  " != forward output shape ", cachedPre_.shape().str());
    Tensor derr = activationBackward(dout, cachedPre_, act_);
    if (bn_)
        derr = bn_->backward(derr);
    gradAccum_.add(doBackwardWeights(cachedInput_, derr));
    gradSamples_ += dout.shape().d0;
    return doBackwardData(derr, cachedInput_.shape().d2,
                          cachedInput_.shape().d3);
}

void
ConvLayerBase::enableBatchNorm()
{
    GANACC_ASSERT(!bn_, "batch norm already attached");
    bn_ = std::make_unique<BatchNormLayer>(outChannels_);
}

void
ConvLayerBase::zeroGrad()
{
    gradAccum_.fill(0.0f);
    gradSamples_ = 0;
    if (bn_)
        bn_->zeroGrad();
}

ConvLayerBase::GradSnapshot
ConvLayerBase::snapshotGrads() const
{
    GradSnapshot snap;
    snap.weights = gradAccum_;
    snap.samples = gradSamples_;
    if (bn_) {
        snap.hasBn = true;
        snap.bnGamma = bn_->gradGamma();
        snap.bnBeta = bn_->gradBeta();
    }
    return snap;
}

void
ConvLayerBase::restoreGrads(const GradSnapshot &snap)
{
    GANACC_ASSERT(snap.weights.shape() == gradAccum_.shape(),
                  "restoreGrads shape mismatch");
    GANACC_ASSERT(snap.hasBn == (bn_ != nullptr),
                  "restoreGrads BN presence mismatch");
    gradAccum_ = snap.weights;
    gradSamples_ = snap.samples;
    if (bn_)
        bn_->restoreGrads(snap.bnGamma, snap.bnBeta);
}

void
ConvLayerBase::applyUpdate(Optimizer &opt)
{
    GANACC_ASSERT(gradSamples_ > 0, "applyUpdate with no gradient");
    opt.step(reinterpret_cast<std::uintptr_t>(this), weights_,
             gradAccum_);
    if (bn_)
        bn_->applyUpdate(opt);
    zeroGrad();
}

void
ConvLayerBase::initWeights(util::Rng &rng)
{
    float fan_in =
        float(inChannels_) * float(geom_.kernel) * float(geom_.kernel);
    float stddev = std::sqrt(2.0f / fan_in);
    weights_.fillGaussian(rng, 0.0f, stddev);
}

std::string
ConvLayerBase::describe() const
{
    std::ostringstream os;
    os << (kind() == ConvKind::Strided ? "S-CONV" : "T-CONV") << " "
       << inChannels_ << "->" << outChannels_ << " k" << geom_.kernel
       << " s" << geom_.stride << " p" << geom_.pad << " "
       << activationName(act_);
    return os.str();
}

ConvLayer::ConvLayer(int in_channels, int out_channels, Conv2dGeom geom,
                     Activation act)
    : ConvLayerBase(in_channels, out_channels, geom, act,
                    Shape4(out_channels, in_channels, geom.kernel,
                           geom.kernel))
{
}

int
ConvLayer::outDim(int in_dim) const
{
    return tensor::convOutDim(in_dim, geom_.kernel, geom_.stride,
                              geom_.pad);
}

Tensor
ConvLayer::doForward(const Tensor &in) const
{
    return sconvForward(in, weights_, geom_);
}

Tensor
ConvLayer::doBackwardData(const Tensor &derr, int in_h, int in_w) const
{
    return sconvBackwardData(derr, weights_, geom_, in_h, in_w);
}

Tensor
ConvLayer::doBackwardWeights(const Tensor &in, const Tensor &derr) const
{
    return sconvBackwardWeights(in, derr, geom_, geom_.kernel,
                                geom_.kernel);
}

TransposedConvLayer::TransposedConvLayer(int in_channels, int out_channels,
                                         Conv2dGeom geom, Activation act)
    : ConvLayerBase(in_channels, out_channels, geom, act,
                    Shape4(in_channels, out_channels, geom.kernel,
                           geom.kernel))
{
}

int
TransposedConvLayer::outDim(int in_dim) const
{
    return tensor::tconvOutDim(in_dim, geom_.kernel, geom_.stride,
                               geom_.pad, geom_.outPad);
}

Tensor
TransposedConvLayer::doForward(const Tensor &in) const
{
    return tconvForward(in, weights_, geom_);
}

Tensor
TransposedConvLayer::doBackwardData(const Tensor &derr, int in_h,
                                    int in_w) const
{
    return tconvBackwardData(derr, weights_, geom_, in_h, in_w);
}

Tensor
TransposedConvLayer::doBackwardWeights(const Tensor &in,
                                       const Tensor &derr) const
{
    return tconvBackwardWeights(in, derr, geom_, geom_.kernel,
                                geom_.kernel);
}

} // namespace nn
} // namespace ganacc
