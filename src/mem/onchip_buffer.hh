/**
 * @file
 * On-chip buffer models: the four buffer kinds of the accelerator
 * organization in Fig. 14 (In&Out ping-pong pair, Data, Error, ∇W
 * ping-pong, Weight), with access counting and capacity checks
 * against the FPGA's Block RAM.
 */

#ifndef GANACC_MEM_ONCHIP_BUFFER_HH
#define GANACC_MEM_ONCHIP_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gan/models.hh"
#include "mem/access_tap.hh"

namespace ganacc {
namespace mem {

/** One banked on-chip SRAM with access counters. */
class OnChipBuffer
{
  public:
    OnChipBuffer(std::string name, std::uint64_t capacity_bytes)
        : name_(std::move(name)), capacity_(capacity_bytes) {}

    const std::string &name() const { return name_; }
    std::uint64_t capacityBytes() const { return capacity_; }

    /** Record reads/writes (bytes); throws on overflowing occupancy
     *  when used with occupy/release. */
    void
    read(std::uint64_t bytes)
    {
        bytesRead_ += bytes;
        if (tap_)
            tap_->onAccess(bytes, false);
    }

    void
    write(std::uint64_t bytes)
    {
        bytesWritten_ += bytes;
        if (tap_)
            tap_->onAccess(bytes, true);
    }

    /** Attach an access observer (nullptr detaches). Non-owning. */
    void setAccessTap(AccessTap *tap) { tap_ = tap; }

    /** Claim space (a tensor made resident). */
    void occupy(std::uint64_t bytes);

    /** Release previously claimed space. */
    void release(std::uint64_t bytes);

    std::uint64_t occupiedBytes() const { return occupied_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t peakOccupied() const { return peak_; }

    void
    resetCounters()
    {
        bytesRead_ = bytesWritten_ = 0;
    }

  private:
    std::string name_;
    std::uint64_t capacity_;
    std::uint64_t occupied_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    AccessTap *tap_ = nullptr;
};

/** A ping-pong pair: compute reads one half while the other fills. */
class PingPongBuffer
{
  public:
    PingPongBuffer(const std::string &name, std::uint64_t half_bytes)
        : halves_{OnChipBuffer(name + "[0]", half_bytes),
                  OnChipBuffer(name + "[1]", half_bytes)}
    {
    }

    OnChipBuffer &active() { return halves_[activeIdx_]; }
    OnChipBuffer &shadow() { return halves_[1 - activeIdx_]; }

    /** Swap roles — the layer-boundary switch of Section V-B1. */
    void
    swap()
    {
        activeIdx_ = 1 - activeIdx_;
        ++swapCount_;
    }

    int swapCount() const { return swapCount_; }

    std::uint64_t
    totalCapacityBytes() const
    {
        return halves_[0].capacityBytes() + halves_[1].capacityBytes();
    }

  private:
    OnChipBuffer halves_[2];
    int activeIdx_ = 0;
    int swapCount_ = 0;
};

/** Sizes of every Fig. 14 buffer for a model (bytes). */
struct BufferPlan
{
    std::uint64_t inOutBytes = 0;   ///< 2x (ping-pong), per half
    std::uint64_t dataBytes = 0;    ///< per-sample forward data d^l
    std::uint64_t errorBytes = 0;   ///< per-sample backward errors
    std::uint64_t weightBytes = 0;  ///< largest layer's kernels
    std::uint64_t gradWBytes = 0;   ///< ∇W partials, per half (x2)

    /** Everything summed (ping-pongs counted twice). */
    std::uint64_t totalBytes() const;

    /** 36 Kb Block RAMs needed (4.5 KB each, ceil per buffer). */
    int bram36Count() const;
};

/**
 * Size the buffers for one model per Section V-B:
 *  - In&Out halves hold the largest layer output of either network.
 *  - Data/Error hold one sample's full intermediate set (deferred
 *    synchronization makes that sufficient) plus the input image.
 *  - Weight holds the largest layer's kernel set so each weight is
 *    fetched from DRAM exactly once.
 *  - ∇W halves hold the partial-gradient working set of a W_Pof-wide
 *    ZFWST bank on the largest layer.
 */
BufferPlan planBuffers(const gan::GanModel &model, int w_pof,
                       int bytes_per_elem = 2);

/** True when the plan fits the given Block-RAM budget. */
bool fitsBram(const BufferPlan &plan, int bram36_budget);

} // namespace mem
} // namespace ganacc

#endif // GANACC_MEM_ONCHIP_BUFFER_HH
