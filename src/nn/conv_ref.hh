/**
 * @file
 * Reference (golden-model) implementations of the three GAN
 * convolution variants from Table I of the paper:
 *
 *  - S-CONV: strided convolution (discriminator forward, generator
 *    backward-error).
 *  - T-CONV: transposed convolution with zero-inserted inputs
 *    (generator forward, discriminator backward-error).
 *  - W-CONV: the weight-gradient convolution with four-dimension
 *    output and no cross-channel accumulation (Fig. 3); zero-inserted
 *    kernel for the discriminator update and zero-inserted input for
 *    the generator update.
 *
 * These are written as direct nested loops with no cleverness; every
 * microarchitecture simulator must reproduce their outputs exactly.
 *
 * Tensor conventions:
 *  - data:    (N, C, H, W)
 *  - S-CONV weights: (OF, IF, KH, KW)
 *  - T-CONV weights: (IF, OF, KH, KW)   (input-major, like the adjoint)
 */

#ifndef GANACC_NN_CONV_REF_HH
#define GANACC_NN_CONV_REF_HH

#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/** Static geometry of one 2-D convolution. */
struct Conv2dGeom
{
    int kernel = 3;
    int stride = 1;
    int pad = 0;
    /// Extra bottom-right zeros in T-CONV outputs (ignored by S-CONV).
    int outPad = 0;

    bool operator==(const Conv2dGeom &) const = default;
};

/**
 * Strided convolution (S-CONV).
 *
 * out(n,of,oy,ox) = sum_{if,ky,kx}
 *     in(n,if,oy*s+ky-p, ox*s+kx-p) * w(of,if,ky,kx)
 */
tensor::Tensor sconvForward(const tensor::Tensor &in,
                            const tensor::Tensor &w,
                            const Conv2dGeom &g);

/**
 * Data gradient of sconvForward: the adjoint map, itself a T-CONV.
 * Returns d(in) with the given spatial size (needed because strided
 * convs are not always exactly invertible in size).
 */
tensor::Tensor sconvBackwardData(const tensor::Tensor &dout,
                                 const tensor::Tensor &w,
                                 const Conv2dGeom &g, int in_h, int in_w);

/**
 * Weight gradient of sconvForward (W-CONV, discriminator form).
 *
 * dW(of,if,ky,kx) = sum_{n,oy,ox}
 *     dout(n,of,oy,ox) * in(n,if,oy*s+ky-p, ox*s+kx-p)
 *
 * For a single sample this *is* the four-dimension-output convolution
 * of Fig. 3 where the (stride-dilated) error map acts as the kernel.
 */
tensor::Tensor sconvBackwardWeights(const tensor::Tensor &in,
                                    const tensor::Tensor &dout,
                                    const Conv2dGeom &g, int kh, int kw);

/**
 * Transposed convolution (T-CONV), direct gather form.
 *
 * out(n,of,y,x) = sum_{if,ky,kx : (y+p-ky)%s==0, (x+p-kx)%s==0}
 *     in(n,if,(y+p-ky)/s,(x+p-kx)/s) * w(if,of,ky,kx)
 */
tensor::Tensor tconvForward(const tensor::Tensor &in,
                            const tensor::Tensor &w,
                            const Conv2dGeom &g);

/**
 * T-CONV computed the way the accelerator sees it: zero-insert the
 * input (stride-1 zeros), pad by (kernel-1-pad), then run a stride-1
 * S-CONV with the spatially flipped, axis-swapped kernel. Must equal
 * tconvForward — this equivalence is what lets the hardware treat
 * T-CONV as a convolution over a zero-stuffed map.
 */
tensor::Tensor tconvForwardViaZeroInsert(const tensor::Tensor &in,
                                         const tensor::Tensor &w,
                                         const Conv2dGeom &g);

/**
 * Data gradient of tconvForward: the adjoint, which is an S-CONV of
 * the output-side gradient.
 */
tensor::Tensor tconvBackwardData(const tensor::Tensor &dout,
                                 const tensor::Tensor &w,
                                 const Conv2dGeom &g, int in_h, int in_w);

/**
 * Weight gradient of tconvForward (W-CONV, generator form): the
 * zero-inserted input maps convolved with the error map, no
 * cross-channel accumulation. Returns (IF, OF, KH, KW).
 */
tensor::Tensor tconvBackwardWeights(const tensor::Tensor &in,
                                    const tensor::Tensor &dout,
                                    const Conv2dGeom &g, int kh, int kw);

/**
 * W-CONV discriminator form computed as the paper describes it
 * (Fig. 6(c)): stride-1 correlation of the padded input with the
 * *zero-inserted* (stride-dilated) error map acting as kernel, cropped
 * to the true kernel extent. Must equal sconvBackwardWeights.
 */
tensor::Tensor wconvViaDilatedKernel(const tensor::Tensor &in,
                                     const tensor::Tensor &dout,
                                     const Conv2dGeom &g, int kh, int kw);

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_CONV_REF_HH
