/**
 * @file
 * Operation grammar implementation: codec, generator, malformed table.
 */

#include "conform/ops.hh"

#include <utility>

#include "serve/protocol.hh"
#include "sim/json.hh"
#include "tensor/shape.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ganacc {
namespace conform {

namespace {

const std::pair<OpKind, const char *> kOpNames[] = {
    {OpKind::SimRequest, "request"},
    {OpKind::NetRequest, "net"},
    {OpKind::DupBurst, "burst"},
    {OpKind::Malformed, "malformed"},
    {OpKind::StatsProbe, "probe"},
    {OpKind::MetricsProbe, "metrics"},
    {OpKind::TraceDrain, "trace-drain"},
    {OpKind::EvictMemory, "evict-mem"},
    {OpKind::EvictEntry, "evict-entry"},
    {OpKind::CorruptEntry, "corrupt-entry"},
    {OpKind::PlantStale, "plant-stale"},
    {OpKind::FsFault, "fs-fault"},
    {OpKind::Restart, "restart"},
};

const std::pair<CorruptMode, const char *> kCorruptNames[] = {
    {CorruptMode::Garbage, "garbage"},
    {CorruptMode::Truncate, "truncate"},
    {CorruptMode::ZeroByte, "zero"},
};

OpKind
opKindFromName(const std::string &name)
{
    for (const auto &[k, n] : kOpNames)
        if (name == n)
            return k;
    util::fatal("conform trace: unknown op \"", name, "\"");
}

CorruptMode
corruptModeFromName(const std::string &name)
{
    for (const auto &[m, n] : kCorruptNames)
        if (name == n)
            return m;
    util::fatal("conform trace: unknown corrupt mode \"", name, "\"");
}

/** Does this op's encoding carry the (arch, unroll, spec) triple? */
bool
carriesTriple(OpKind k)
{
    switch (k) {
      case OpKind::SimRequest:
      case OpKind::DupBurst:
      case OpKind::EvictEntry:
      case OpKind::CorruptEntry:
      case OpKind::PlantStale:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
opKindName(OpKind k)
{
    for (const auto &[kk, n] : kOpNames)
        if (kk == k)
            return n;
    return "?";
}

std::string
corruptModeName(CorruptMode m)
{
    for (const auto &[mm, n] : kCorruptNames)
        if (mm == m)
            return n;
    return "?";
}

bool
Op::sendsRequests() const
{
    switch (kind) {
      case OpKind::SimRequest:
      case OpKind::NetRequest:
      case OpKind::DupBurst:
      case OpKind::Malformed:
      case OpKind::StatsProbe:
      case OpKind::MetricsProbe:
      case OpKind::TraceDrain:
        return true;
      default:
        return false;
    }
}

std::string
encodeOp(const Op &op)
{
    using util::json::Object;
    using util::json::Value;
    Object o;
    o.set("op", Value(opKindName(op.kind)));
    if (op.sendsRequests() && op.kind != OpKind::Malformed)
        o.set("id", Value(op.id));
    if (carriesTriple(op.kind) || op.kind == OpKind::NetRequest) {
        o.set("arch", Value(core::archKindName(op.arch)));
        o.set("unroll", util::json::parse(sim::toJson(op.unroll)));
    }
    if (carriesTriple(op.kind))
        o.set("spec", util::json::parse(sim::toJson(op.spec)));
    switch (op.kind) {
      case OpKind::NetRequest:
        o.set("model", Value(op.model));
        o.set("family", Value(op.family));
        break;
      case OpKind::DupBurst:
        o.set("count", Value(op.count));
        break;
      case OpKind::Malformed:
        o.set("raw", Value(op.raw));
        break;
      case OpKind::CorruptEntry:
        o.set("mode", Value(corruptModeName(op.corrupt)));
        break;
      case OpKind::FsFault:
        o.set("failReads", Value(std::uint64_t(op.faults.failReads)));
        o.set("failWrites",
              Value(std::uint64_t(op.faults.failWrites)));
        o.set("tornWrites",
              Value(std::uint64_t(op.faults.tornWrites)));
        break;
      default:
        break;
    }
    return Value(std::move(o)).dump();
}

Op
decodeOp(const std::string &line)
{
    const util::json::Value doc = util::json::parse(line);
    const util::json::Object &o = doc.asObject();
    Op op;
    op.kind = opKindFromName(o.at("op").asString());
    if (o.contains("id"))
        op.id = o.at("id").asUint64();
    if (o.contains("arch")) {
        const std::string arch = o.at("arch").asString();
        auto kind = core::archKindFromName(arch);
        if (!kind)
            util::fatal("conform trace: unknown architecture \"", arch,
                        "\"");
        op.arch = *kind;
    }
    if (o.contains("unroll"))
        op.unroll = sim::unrollFromJson(o.at("unroll"));
    if (o.contains("spec"))
        op.spec = sim::convSpecFromJson(o.at("spec"));
    if (o.contains("model"))
        op.model = o.at("model").asString();
    if (o.contains("family"))
        op.family = o.at("family").asString();
    if (o.contains("count"))
        op.count = o.at("count").asInt();
    if (o.contains("raw"))
        op.raw = o.at("raw").asString();
    if (o.contains("mode"))
        op.corrupt = corruptModeFromName(o.at("mode").asString());
    if (o.contains("failReads"))
        op.faults.failReads =
            std::uint32_t(o.at("failReads").asUint64());
    if (o.contains("failWrites"))
        op.faults.failWrites =
            std::uint32_t(o.at("failWrites").asUint64());
    if (o.contains("tornWrites"))
        op.faults.tornWrites =
            std::uint32_t(o.at("tornWrites").asUint64());
    return op;
}

std::string
encodeTrace(const std::vector<Op> &seq)
{
    std::string out;
    for (const Op &op : seq) {
        out += encodeOp(op);
        out += '\n';
    }
    return out;
}

std::vector<Op>
decodeTrace(const std::string &text)
{
    std::vector<Op> seq;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (!line.empty())
            seq.push_back(decodeOp(line));
    }
    return seq;
}

namespace {

using util::Rng;

/** Random *legal* spec over the three GAN convolution patterns (the
 *  same families tests/test_serve_service.cc fuzzes with). */
sim::ConvSpec
randomSpec(Rng &rng)
{
    sim::ConvSpec s;
    s.label = "conform";
    s.nif = rng.uniformInt(1, 4);
    s.nof = rng.uniformInt(1, 4);
    const int kind = rng.uniformInt(0, 2);
    if (kind == 0) { // dense strided S-CONV
        s.ih = s.iw = rng.uniformInt(5, 16);
        s.kh = s.kw = rng.uniformInt(1, 5);
        s.stride = rng.uniformInt(1, 3);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    } else if (kind == 1) { // zero-stuffed T-CONV
        const int dense = rng.uniformInt(2, 7);
        const int z = rng.uniformInt(2, 3);
        const int extra = rng.uniformInt(0, z - 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        if (s.ih + 2 * s.pad < s.kh) // convOutDim panics on this
            return randomSpec(rng);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
    } else { // dilated-kernel W-CONV (4-D output)
        s.ih = s.iw = rng.uniformInt(7, 16);
        const int err = rng.uniformInt(2, 5);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 2);
        s.fourDimOutput = true;
        const int natural = s.ih + 2 * s.pad - s.kh + 1;
        if (natural < 1)
            return randomSpec(rng);
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 6));
    }
    if (s.oh < 1 || s.ow < 1)
        return randomSpec(rng);
    return s;
}

sim::Unroll
smallUnroll(Rng &rng)
{
    sim::Unroll u;
    u.pIf = rng.uniformInt(1, 3);
    u.pOf = rng.uniformInt(1, 4);
    u.pKx = rng.uniformInt(1, 4);
    u.pKy = rng.uniformInt(1, 4);
    u.pOx = rng.uniformInt(1, 4);
    u.pOy = rng.uniformInt(1, 4);
    return u;
}

core::ArchKind
randomKind(Rng &rng)
{
    const auto kinds = core::allArchKinds();
    return kinds[std::size_t(
        rng.uniformInt(0, int(kinds.size()) - 1))];
}

/** A fresh or reused (arch, unroll, spec) triple. The pool keeps the
 *  triples already in play so later ops hit warm tiers and target
 *  entries that actually exist. */
struct TriplePool
{
    std::vector<Op> triples; ///< kind/arch/unroll/spec fields only

    Op
    pick(Rng &rng, bool preferReuse)
    {
        if (!triples.empty() &&
            (preferReuse ? rng.uniformInt(0, 99) < 60
                         : rng.uniformInt(0, 99) < 25)) {
            return triples[std::size_t(
                rng.uniformInt(0, int(triples.size()) - 1))];
        }
        Op t;
        t.arch = randomKind(rng);
        t.unroll = smallUnroll(rng);
        t.spec = randomSpec(rng);
        triples.push_back(t);
        return t;
    }

    bool
    any() const
    {
        return !triples.empty();
    }

    Op
    existing(Rng &rng)
    {
        return triples[std::size_t(
            rng.uniformInt(0, int(triples.size()) - 1))];
    }
};

/** A randomly broken frame: either a fixed table case or a mutation
 *  of a valid request (truncation, byte flip, payload confusion). */
std::string
randomMalformedLine(Rng &rng, std::uint64_t id, TriplePool &pool)
{
    const int pick = rng.uniformInt(0, 9);
    if (pick < 4) {
        const auto &table = malformedFrames();
        return table[std::size_t(
                         rng.uniformInt(0, int(table.size()) - 1))]
            .line;
    }
    // Mutate a valid frame.
    serve::Request req;
    req.id = id;
    const Op t = pool.pick(rng, true);
    req.kind = t.arch;
    req.unroll = t.unroll;
    req.spec = t.spec;
    req.hasSpec = true;
    std::string line = serve::encodeRequest(req);
    switch (pick) {
      case 4: // truncate mid-object
        line.resize(std::size_t(
            rng.uniformInt(1, int(line.size()) - 1)));
        break;
      case 5: { // flip one structural byte to whitespace
        const std::size_t at = std::size_t(
            rng.uniformInt(0, int(line.size()) - 1));
        line[at] = ' ';
        break;
      }
      case 6: // wrong version
        line.replace(line.find("\"v\":1"), 5, "\"v\":9");
        break;
      case 7: // unknown architecture
        line.replace(line.find("\"arch\":\""), 8,
                     "\"arch\":\"Q");
        break;
      case 8: // semantic error: unknown model (decodes fine)
        return "{\"v\":1,\"id\":" + std::to_string(id) +
               ",\"arch\":\"NLR\",\"unroll\":" +
               sim::toJson(t.unroll) +
               ",\"model\":\"no-such-model\",\"family\":\"D\"}";
      default: // semantic error: unknown family (decodes fine)
        return "{\"v\":1,\"id\":" + std::to_string(id) +
               ",\"arch\":\"NLR\",\"unroll\":" +
               sim::toJson(t.unroll) +
               ",\"model\":\"mnist-gan\",\"family\":\"Q\"}";
    }
    return line;
}

} // namespace

std::vector<Op>
generateSequence(std::uint64_t seed, const GenOptions &opt)
{
    Rng rng(seed);
    TriplePool pool;
    std::vector<Op> seq;
    std::uint64_t nextId = 1;

    auto request = [&](const Op &t) {
        Op op;
        op.kind = OpKind::SimRequest;
        op.id = nextId++;
        op.arch = t.arch;
        op.unroll = t.unroll;
        op.spec = t.spec;
        seq.push_back(op);
    };

    while (seq.size() < opt.ops) {
        const int roll = rng.uniformInt(0, 99);
        if (roll < 42) { // plain simulation request
            request(pool.pick(rng, true));
        } else if (roll < 50) { // single-flight burst
            Op op;
            const Op t = pool.pick(rng, true);
            op.kind = OpKind::DupBurst;
            op.id = nextId;
            op.arch = t.arch;
            op.unroll = t.unroll;
            op.spec = t.spec;
            op.count = rng.uniformInt(2, opt.burstMax);
            nextId += std::uint64_t(op.count);
            seq.push_back(op);
        } else if (roll < 58) { // malformed frame
            Op op;
            op.kind = OpKind::Malformed;
            op.raw = randomMalformedLine(rng, nextId++, pool);
            seq.push_back(op);
        } else if (roll < 65) { // observability probes
            // The 7-point probe share splits across the three probe
            // forms so every run exercises the scrape and drain
            // paths, not just the JSON snapshot.
            Op op;
            op.kind = roll < 61   ? OpKind::StatsProbe
                      : roll < 63 ? OpKind::MetricsProbe
                                  : OpKind::TraceDrain;
            op.id = nextId++;
            seq.push_back(op);
        } else if (roll < 72) { // evict the memory tier
            Op op;
            op.kind = OpKind::EvictMemory;
            seq.push_back(op);
        } else if (roll < 78) { // evict one store entry
            if (!pool.any() || !opt.storeOps)
                continue;
            Op op;
            const Op t = pool.existing(rng);
            op.kind = OpKind::EvictEntry;
            op.arch = t.arch;
            op.unroll = t.unroll;
            op.spec = t.spec;
            seq.push_back(op);
        } else if (roll < 86) { // corrupt, then observe the damage
            if (!pool.any() || !opt.storeOps)
                continue;
            Op op;
            const Op t = pool.existing(rng);
            op.kind = OpKind::CorruptEntry;
            op.arch = t.arch;
            op.unroll = t.unroll;
            op.spec = t.spec;
            op.corrupt = CorruptMode(rng.uniformInt(0, 2));
            seq.push_back(op);
            Op evict;
            evict.kind = OpKind::EvictMemory;
            seq.push_back(evict);
            request(t);
        } else if (roll < 91) { // plant stale, then observe
            if (!pool.any() || !opt.storeOps)
                continue;
            Op op;
            const Op t = pool.existing(rng);
            op.kind = OpKind::PlantStale;
            op.arch = t.arch;
            op.unroll = t.unroll;
            op.spec = t.spec;
            seq.push_back(op);
            Op evict;
            evict.kind = OpKind::EvictMemory;
            seq.push_back(evict);
            request(t);
        } else if (roll < 95) { // arm filesystem faults
            if (!opt.fsFaults)
                continue;
            Op op;
            op.kind = OpKind::FsFault;
            op.faults.failReads =
                std::uint32_t(rng.uniformInt(0, 2));
            op.faults.failWrites =
                std::uint32_t(rng.uniformInt(0, 1));
            op.faults.tornWrites =
                std::uint32_t(rng.uniformInt(0, 1));
            if (!op.faults.any())
                op.faults.failReads = 1;
            seq.push_back(op);
        } else if (roll < 99) { // whole-network request
            if (!opt.nets)
                continue;
            Op op;
            op.kind = OpKind::NetRequest;
            op.id = nextId++;
            op.arch = randomKind(rng);
            op.unroll = smallUnroll(rng);
            op.model = "mnist-gan";
            const char *fams[] = {"D", "G", "Dw", "Gw"};
            op.family = fams[rng.uniformInt(0, 3)];
            seq.push_back(op);
        } else { // daemon restart (drain + fresh process state)
            if (!opt.restarts)
                continue;
            Op op;
            op.kind = OpKind::Restart;
            seq.push_back(op);
        }
    }
    return seq;
}

const std::vector<MalformedFrame> &
malformedFrames()
{
    static const std::vector<MalformedFrame> table = [] {
        std::vector<MalformedFrame> t;
        t.push_back({"truncated_json",
                     "{\"v\":1,\"id\":31,\"arch\":\"NLR\"",
                     "fatal: json: expected '}' at byte 27"});
        t.push_back({"not_json",
                     "simulate all the things \"id\":32 please",
                     "fatal: json: expected a value at byte 0"});
        t.push_back({"oversized_line",
                     "{\"v\":1,\"id\":33,\"pad\":\"" +
                         std::string(8192, 'x') + "\"",
                     "fatal: json: expected '}' at byte 8215"});
        t.push_back({"bad_version",
                     "{\"v\":99,\"id\":34,\"stats\":true}",
                     "fatal: unsupported protocol version 99 (this "
                     "daemon speaks v1)"});
        t.push_back(
            {"unknown_arch",
             "{\"v\":1,\"id\":35,\"arch\":\"TPU\",\"unroll\":{"
             "\"pIf\":1,\"pOf\":1,\"pKx\":1,\"pKy\":1,\"pOx\":1,"
             "\"pOy\":1},\"model\":\"dcgan\",\"family\":\"D\"}",
             "fatal: unknown architecture \"TPU\" (NLR, WST, OST, "
             "ZFOST, ZFWST)"});
        t.push_back({"probe_with_payload",
                     "{\"v\":1,\"id\":36,\"stats\":true,\"model\":"
                     "\"dcgan\"}",
                     "fatal: a stats probe carries no simulation "
                     "payload"});
        t.push_back({"stats_not_true",
                     "{\"v\":1,\"id\":37,\"stats\":false}",
                     "fatal: \"stats\" must be true when present"});
        t.push_back(
            {"neither_payload",
             "{\"v\":1,\"id\":38,\"arch\":\"NLR\",\"unroll\":{"
             "\"pIf\":1,\"pOf\":1,\"pKx\":1,\"pKy\":1,\"pOx\":1,"
             "\"pOy\":1}}",
             "fatal: request must carry exactly one of \"spec\" or "
             "\"model\"+\"family\""});
        t.push_back({"missing_id",
                     "{\"v\":1,\"stats\":true}",
                     "fatal: json: missing key \"id\""});
        t.push_back({"fleet_with_payload",
                     "{\"v\":1,\"id\":40,\"fleet\":true,\"model\":"
                     "\"dcgan\"}",
                     "fatal: a fleet probe carries no simulation "
                     "payload"});
        t.push_back({"fleet_not_true",
                     "{\"v\":1,\"id\":41,\"fleet\":false}",
                     "fatal: \"fleet\" must be true when present"});
        t.push_back({"put_mixed_payload",
                     "{\"v\":1,\"id\":42,\"put\":true,\"stats\":"
                     "true}",
                     "fatal: a put carries exactly arch, unroll, "
                     "spec, result and sim"});
        t.push_back({"put_not_true",
                     "{\"v\":1,\"id\":43,\"put\":false}",
                     "fatal: \"put\" must be true when present"});
        t.push_back({"metrics_with_payload",
                     "{\"v\":1,\"id\":44,\"metrics\":true,\"model\":"
                     "\"dcgan\"}",
                     "fatal: a metrics probe carries no simulation "
                     "payload"});
        t.push_back({"metrics_not_true",
                     "{\"v\":1,\"id\":45,\"metrics\":false}",
                     "fatal: \"metrics\" must be true when present"});
        t.push_back({"trace_drain_with_payload",
                     "{\"v\":1,\"id\":46,\"trace-drain\":true,"
                     "\"arch\":\"NLR\"}",
                     "fatal: a trace-drain probe carries no "
                     "simulation payload"});
        t.push_back({"trace_drain_not_true",
                     "{\"v\":1,\"id\":47,\"trace-drain\":false}",
                     "fatal: \"trace-drain\" must be true when "
                     "present"});
        return t;
    }();
    return table;
}

} // namespace conform
} // namespace ganacc
