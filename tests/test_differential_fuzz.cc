/**
 * @file
 * Differential fuzzing of the five dataflows: ~200 random ConvSpecs —
 * screened for legality by the static verifier, spanning all three
 * GAN convolution patterns (dense strided, zero-stuffed, dilated
 * kernel) — run through NLR, WST, OST, ZFOST and ZFWST and compared
 * element-wise against the golden convolution. Every run must also
 * obey the PE-slot conservation invariant, report identical counters
 * in timing-only mode, and be bit-reproducible when repeated.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "sim/arch.hh"
#include "sim/closed_form.hh"
#include "sim/conv_spec.hh"
#include "sim/nlr.hh"
#include "sim/ost.hh"
#include "sim/phase.hh"
#include "sim/wst.hh"
#include "stats_helpers.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "verify/diagnostics.hh"
#include "verify/legality.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using core::Zfwst;
using sim::Architecture;
using sim::ConvSpec;
using sim::Nlr;
using sim::Ost;
using sim::RunStats;
using sim::Unroll;
using sim::Wst;
using tensor::approxEqual;
using tensor::maxAbsDiff;
using tensor::Tensor;
using util::Rng;

std::vector<std::unique_ptr<Architecture>>
fuzzArchs(Rng &rng)
{
    // Random small unrollings: the dataflows must agree with the
    // golden model for *any* legal array shape, not just the defaults.
    std::vector<std::unique_ptr<Architecture>> v;
    v.push_back(std::make_unique<Nlr>(Unroll{
        .pIf = rng.uniformInt(1, 3), .pOf = rng.uniformInt(1, 4)}));
    v.push_back(std::make_unique<Wst>(Unroll{
        .pOf = rng.uniformInt(1, 3), .pKx = rng.uniformInt(2, 4),
        .pKy = rng.uniformInt(2, 4)}));
    v.push_back(std::make_unique<Ost>(Unroll{
        .pOf = rng.uniformInt(1, 3), .pOx = rng.uniformInt(2, 4),
        .pOy = rng.uniformInt(2, 4)}));
    v.push_back(std::make_unique<Zfost>(Unroll{
        .pOf = rng.uniformInt(1, 3), .pOx = rng.uniformInt(2, 4),
        .pOy = rng.uniformInt(2, 4)}));
    v.push_back(std::make_unique<Zfwst>(Unroll{
        .pOf = rng.uniformInt(1, 3), .pKx = rng.uniformInt(2, 4),
        .pKy = rng.uniformInt(2, 4)}));
    return v;
}

/** Draw one random job over the three GAN convolution patterns. */
ConvSpec
randomSpec(Rng &rng)
{
    ConvSpec s;
    s.label = "fuzz";
    s.nif = rng.uniformInt(1, 4);
    s.nof = rng.uniformInt(1, 4);
    const int kind = rng.uniformInt(0, 2);
    if (kind == 0) { // dense strided S-CONV
        s.ih = s.iw = rng.uniformInt(5, 16);
        s.kh = s.kw = rng.uniformInt(1, 5);
        s.stride = rng.uniformInt(1, 3);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    } else if (kind == 1) { // zero-stuffed T-CONV
        const int dense = rng.uniformInt(2, 7);
        const int z = rng.uniformInt(2, 3);
        const int extra = rng.uniformInt(0, z - 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        if (s.ih + 2 * s.pad < s.kh) // kernel overhangs padded input
            return randomSpec(rng);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
    } else { // dilated-kernel W-CONV (4-D output)
        s.ih = s.iw = rng.uniformInt(7, 16);
        const int err = rng.uniformInt(2, 5);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 2);
        s.fourDimOutput = true;
        const int natural = s.ih + 2 * s.pad - s.kh + 1;
        if (natural < 1)
            return randomSpec(rng); // degenerate draw, redo
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 6));
    }
    if (s.oh < 1 || s.ow < 1)
        return randomSpec(rng);
    return s;
}

/** Ten random jobs per shard; 20 shards = 200 fuzzed specs. */
class DifferentialFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialFuzz, AllDataflowsMatchGoldenModel)
{
    Rng rng(0xF0520000ULL + std::uint64_t(GetParam()));
    for (int i = 0; i < 10; ++i) {
        const ConvSpec s = randomSpec(rng);

        // Only legal specs are worth fuzzing; the generator is built
        // to produce them, and the verifier is the arbiter of "legal".
        verify::Report report;
        verify::checkConvSpec(s, report);
        ASSERT_TRUE(report.ok()) << s.describe();

        Tensor in = sim::makeStreamedInput(s, rng);
        Tensor w = sim::makeStreamedKernel(s, rng);
        const Tensor golden = sim::genericConvRef(s, in, w);

        for (const auto &arch : fuzzArchs(rng)) {
            Tensor out = sim::makeOutputTensor(s);
            const RunStats st = arch->run(s, &in, &w, &out);
            EXPECT_TRUE(approxEqual(golden, out, 1e-3f))
                << arch->name() << " diverges from the golden model on "
                << s.describe()
                << " maxdiff=" << maxAbsDiff(golden, out);
            tests::expectSlotConservation(st, arch->name());
            EXPECT_EQ(st.effectiveMacs, s.effectiveMacs())
                << arch->name() << " on " << s.describe();

            // Re-running the same job must be bit-identical, and the
            // timing-only walk must agree on every counter.
            Tensor out2 = sim::makeOutputTensor(s);
            const RunStats st2 = arch->run(s, &in, &w, &out2);
            EXPECT_EQ(0, std::memcmp(out.data(), out2.data(),
                                     out.numel() * sizeof(float)))
                << arch->name() << " is not deterministic on "
                << s.describe();
            tests::expectStatsEqual(st, st2, arch->name());
            tests::expectStatsEqual(st, arch->run(s),
                                    arch->name() + " timing-only");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialFuzz,
                         ::testing::Range(0, 20));

/**
 * Fast-vs-walk parity: the closed-form engine must be bit-identical
 * to the cycle walk on every RunStats counter. The corpus leans on
 * the cases most likely to diverge — zero-insert-heavy T-CONV
 * (z up to 4, wide kernels) and degenerate unrollings (factor equal
 * to its loop bound, factor 1) — and includes the ablation
 * configurations (NLR-vanilla, ZFOST-raster) the static-bounds
 * checker never covered.
 */

/** Like randomSpec, but biased toward zero-insert-heavy T-CONV. */
ConvSpec
randomParitySpec(Rng &rng)
{
    if (rng.uniformInt(0, 2) != 0) // 2/3 zero-insert-heavy T-CONV
    {
        ConvSpec s;
        s.label = "fuzz-heavy";
        s.nif = rng.uniformInt(1, 4);
        s.nof = rng.uniformInt(1, 4);
        const int dense = rng.uniformInt(2, 6);
        const int z = rng.uniformInt(3, 4); // heavier than the
                                            // functional corpus
        const int extra = rng.uniformInt(0, z - 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(3, 7);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        if (s.ih + 2 * s.pad < s.kh) // kernel overhangs padded input
            return randomParitySpec(rng);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
        if (s.oh < 1 || s.ow < 1)
            return randomParitySpec(rng);
        return s;
    }
    return randomSpec(rng);
}

/** Architectures with degenerate and ablation configurations: every
 *  factor hits its loop bound or 1 somewhere in the rotation. */
std::vector<std::unique_ptr<Architecture>>
parityArchs(Rng &rng, const ConvSpec &s)
{
    std::vector<std::unique_ptr<Architecture>> v;
    // factor = bound: whole dimension unrolled, tile count 1.
    v.push_back(std::make_unique<Nlr>(
        Unroll{.pIf = s.nif, .pOf = s.nof}));
    v.push_back(std::make_unique<Wst>(
        Unroll{.pOf = 1, .pKx = s.kw, .pKy = s.kh}));
    v.push_back(std::make_unique<Ost>(
        Unroll{.pOf = rng.uniformInt(1, 3), .pOx = s.ow, .pOy = s.oh}));
    v.push_back(std::make_unique<Zfwst>(
        Unroll{.pOf = s.nof, .pKx = s.kw, .pKy = s.kh}));
    // factor = 1: fully serialized arrays.
    v.push_back(std::make_unique<Ost>(
        Unroll{.pOf = 1, .pOx = 1, .pOy = 1}));
    v.push_back(std::make_unique<Zfost>(
        Unroll{.pOf = 1, .pOx = 1, .pOy = 1}));
    v.push_back(std::make_unique<Zfwst>(
        Unroll{.pOf = 1, .pKx = 1, .pKy = 1}));
    // Ablations (no closed form existed before the fast path).
    v.push_back(std::make_unique<Nlr>(
        Unroll{.pIf = rng.uniformInt(1, 3),
               .pOf = rng.uniformInt(1, 4)},
        Nlr::ZeroPolicy::Execute));
    v.push_back(std::make_unique<Zfost>(
        Unroll{.pOf = rng.uniformInt(1, 3),
               .pOx = rng.uniformInt(2, 4),
               .pOy = rng.uniformInt(2, 4)},
        Zfost::WeightOrder::Raster));
    // Plus the random rotation the functional fuzz uses.
    for (auto &arch : fuzzArchs(rng))
        v.push_back(std::move(arch));
    return v;
}

/** Ten random jobs per shard; 20 shards = 200 fuzzed specs. */
class FastPathParity : public ::testing::TestWithParam<int>
{
};

TEST_P(FastPathParity, ClosedFormBitIdenticalToWalk)
{
    Rng rng(0xFA57000ULL + std::uint64_t(GetParam()));
    for (int i = 0; i < 10; ++i) {
        const ConvSpec s = randomParitySpec(rng);
        verify::Report report;
        verify::checkConvSpec(s, report);
        ASSERT_TRUE(report.ok()) << s.describe();

        for (const auto &arch : parityArchs(rng, s)) {
            RunStats walk, fast;
            {
                sim::ScopedSimEngine eng(sim::SimEngine::Walk);
                ASSERT_FALSE(sim::fastPathEnabled());
                walk = arch->run(s);
            }
            {
                sim::ScopedSimEngine eng(sim::SimEngine::Fast);
                ASSERT_TRUE(sim::fastPathEnabled());
                fast = arch->run(s);
            }
            tests::expectSlotConservation(walk, arch->name());
            tests::expectStatsEqual(
                walk, fast,
                arch->name() + " fast vs walk on " + s.describe());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastPathParity,
                         ::testing::Range(0, 20));

} // namespace
