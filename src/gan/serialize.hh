/**
 * @file
 * Binary checkpointing of networks and tensors.
 *
 * Format: a magic/version header, then one record per tensor (shape
 * as four 32-bit dims followed by raw little-endian float32 data).
 * Loading validates magic, version and every shape against the
 * in-memory network, so mismatched topologies fail loudly instead of
 * silently mis-assigning weights.
 */

#ifndef GANACC_GAN_SERIALIZE_HH
#define GANACC_GAN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "gan/network.hh"
#include "tensor/tensor.hh"

namespace ganacc {
namespace gan {

/** Write one tensor record to a stream. */
void writeTensor(std::ostream &os, const tensor::Tensor &t);

/** Read one tensor record; throws FatalError on malformed input. */
tensor::Tensor readTensor(std::istream &is);

/** Save every parameter of a network (conv weights, and BN
 *  gamma/beta/running stats where attached). */
void saveNetwork(const Network &net, const std::string &path);

/** Load parameters saved by saveNetwork into a structurally
 *  identical network; throws FatalError on any mismatch. */
void loadNetwork(Network &net, const std::string &path);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_SERIALIZE_HH
