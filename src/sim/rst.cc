/**
 * @file
 * Row-stationary cycle-level model.
 */

#include "sim/rst.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Tensor;

RunStats
Rst::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
           Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    ScheduleRecorder *const rec = schedRec();
    RunStats st;

    const int ktiles = (spec.kh + unroll_.pKy - 1) / unroll_.pKy;

    // Partial sums read-modify-write the zero-initialized output
    // buffer between channel passes: one job-wide window.
    if (rec)
        rec->onWindowBegin(std::uint64_t(spec.nof) * spec.oh * spec.ow *
                               (spec.fourDimOutput ? spec.nif : 1),
                           WindowKind::WriteThrough);

    for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
        const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
        for (int kt = 0; kt < ktiles; ++kt) {
            const int ky0 = kt * unroll_.pKy;
            const int ky_cnt = std::min(unroll_.pKy, spec.kh - ky0);
            for (int oy0 = 0; oy0 < spec.oh; oy0 += unroll_.pOy) {
                const int oy_cnt =
                    std::min(unroll_.pOy, spec.oh - oy0);
                const int grid = ky_cnt * oy_cnt;
                for (int c = 0; c < spec.nif; ++c) {
                    // Kernel rows load once per pass per channel.
                    st.weightLoads +=
                        std::uint64_t(ky_cnt) * spec.kw * of_cnt;
                    // Input rows enter the diagonals once per pass:
                    // the tile's footprint of distinct elements.
                    const int rows_touched =
                        (oy_cnt - 1) * spec.stride + ky_cnt;
                    const int cols_touched =
                        (spec.ow - 1) * spec.stride + spec.kw;
                    st.inputLoads +=
                        std::uint64_t(rows_touched) * cols_touched;
                    if (rec) {
                        rec->onPort(SchedPort::Weight,
                                    std::uint64_t(ky_cnt) * spec.kw *
                                        of_cnt);
                        rec->onPort(SchedPort::Input,
                                    std::uint64_t(rows_touched) *
                                        cols_touched);
                    }

                    for (int ox = 0; ox < spec.ow; ++ox) {
                        for (int kx = 0; kx < spec.kw; ++kx) {
                            // ---- one cycle: every PE of the grid
                            // advances its 1-D convolution ----
                            st.cycles += 1;
                            if (rec) {
                                rec->onCycle();
                                for (int dk = 0; dk < ky_cnt; ++dk)
                                    for (int dy = 0; dy < oy_cnt; ++dy)
                                        rec->onLanes(
                                            (dk * unroll_.pOy + dy) *
                                                unroll_.pOf,
                                            of_cnt);
                            }
                            int eff = 0;
                            for (int dk = 0; dk < ky_cnt; ++dk) {
                                int ky = ky0 + dk;
                                bool krow_zero =
                                    spec.kernelIsZero(ky, kx);
                                for (int dy = 0; dy < oy_cnt; ++dy) {
                                    int oy = oy0 + dy;
                                    int iy = oy * spec.stride + ky -
                                             spec.pad;
                                    int ix = ox * spec.stride + kx -
                                             spec.pad;
                                    bool in_ok =
                                        iy >= 0 && iy < spec.ih &&
                                        ix >= 0 && ix < spec.iw &&
                                        !spec.inputIsZero(iy, ix);
                                    if (in_ok && !krow_zero) {
                                        ++eff;
                                        // Gated slots never reach the
                                        // hook: clock gating keeps the
                                        // multiplier output from the
                                        // accumulator, so a fault there
                                        // is masked by construction.
                                        if (functional) {
                                            float v =
                                                in->get(0, c, iy, ix);
                                            for (int f = 0; f < of_cnt;
                                                 ++f) {
                                                int of = of0 + f;
                                                int wc =
                                                    spec.fourDimOutput
                                                        ? 0
                                                        : c;
                                                float ww = w->get(
                                                    of, wc, ky, kx);
                                                const MacContext ctx{
                                                    (dk * unroll_.pOy +
                                                     dy) *
                                                            unroll_.pOf +
                                                        f,
                                                    of, c, oy, ox, ky,
                                                    kx};
                                                float p = macProduct(
                                                    v, ww, ctx);
                                                if (spec.fourDimOutput)
                                                    out->ref(of, c, oy,
                                                             ox) += p;
                                                else
                                                    out->ref(0, of, oy,
                                                             ox) += p;
                                            }
                                        }
                                    }
                                }
                            }
                            // Gated slots: scheduled but zero-operand.
                            const std::uint64_t gated =
                                std::uint64_t(grid - eff) * of_cnt;
                            st.gatedSlots += gated;
                            st.effectiveMacs +=
                                std::uint64_t(eff) * of_cnt;
                            st.ineffectualMacs += gated;
                            st.idlePeSlots +=
                                std::uint64_t(n_pes) -
                                std::uint64_t(grid) * of_cnt;
                        }
                    }
                    // Partial sums spill per channel pass (psums
                    // accumulate down the columns, then read-modify-
                    // write the buffer between passes).
                    st.outputReads +=
                        std::uint64_t(oy_cnt) * spec.ow * of_cnt;
                    st.outputWrites +=
                        std::uint64_t(oy_cnt) * spec.ow * of_cnt;
                    if (rec) {
                        rec->onPort(SchedPort::OutputRead,
                                    std::uint64_t(oy_cnt) * spec.ow *
                                        of_cnt);
                        rec->onPort(SchedPort::OutputWrite,
                                    std::uint64_t(oy_cnt) * spec.ow *
                                        of_cnt);
                        for (int dy = 0; dy < oy_cnt; ++dy)
                            for (int ox = 0; ox < spec.ow; ++ox) {
                                const std::uint64_t cell =
                                    schedCellIndex(spec, of0, c,
                                                   oy0 + dy, ox);
                                rec->onCellRead(cell,
                                                std::uint64_t(of_cnt));
                                rec->onCellWrite(cell,
                                                 std::uint64_t(of_cnt));
                            }
                    }
                }
            }
        }
    }
    if (rec)
        rec->onWindowEnd();
    return st;
}

} // namespace sim
} // namespace ganacc
