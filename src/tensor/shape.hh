/**
 * @file
 * Shape algebra for the 4-D tensors used throughout ganacc.
 *
 * Convolution feature maps are indexed (channel, y, x) inside a
 * 4-D container whose leading axis is either the batch index (data
 * tensors) or the output-feature index (weight tensors). The same
 * Shape4 type also describes the four-dimension W-CONV outputs
 * (of, if, ky, kx) from Fig. 3 of the paper.
 */

#ifndef GANACC_TENSOR_SHAPE_HH
#define GANACC_TENSOR_SHAPE_HH

#include <array>
#include <cstddef>
#include <ostream>
#include <string>

#include "util/logging.hh"

namespace ganacc {
namespace tensor {

/** Dimensions of a rank-4 tensor; axes are (d0, d1, d2, d3). */
struct Shape4
{
    int d0 = 1; ///< batch or output-feature axis
    int d1 = 1; ///< channel or input-feature axis
    int d2 = 1; ///< rows (y)
    int d3 = 1; ///< columns (x)

    constexpr Shape4() = default;
    constexpr Shape4(int a, int b, int c, int d)
        : d0(a), d1(b), d2(c), d3(d) {}

    /** Total number of elements. */
    std::size_t
    numel() const
    {
        return std::size_t(d0) * d1 * d2 * d3;
    }

    /** Row-major linear offset of (i0, i1, i2, i3). */
    std::size_t
    offset(int i0, int i1, int i2, int i3) const
    {
        return ((std::size_t(i0) * d1 + i1) * d2 + i2) * d3 + i3;
    }

    bool operator==(const Shape4 &) const = default;

    std::string
    str() const
    {
        return std::to_string(d0) + "x" + std::to_string(d1) + "x" +
               std::to_string(d2) + "x" + std::to_string(d3);
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Shape4 &s)
{
    return os << s.str();
}

/**
 * Output spatial extent of a strided convolution:
 * floor((in + 2*pad - kernel) / stride) + 1.
 */
inline int
convOutDim(int in, int kernel, int stride, int pad)
{
    GANACC_ASSERT(in > 0 && kernel > 0 && stride > 0 && pad >= 0,
                  "conv dims must be positive: in=", in, " k=", kernel,
                  " s=", stride, " p=", pad);
    int span = in + 2 * pad - kernel;
    GANACC_ASSERT(span >= 0, "kernel larger than padded input");
    return span / stride + 1;
}

/**
 * Output spatial extent of a transposed convolution (the inverse map):
 * (in - 1) * stride - 2*pad + kernel + out_pad.
 *
 * out_pad adds extra zero rows/columns on the bottom-right of the
 * zero-inserted map, resolving the ambiguity of inverting a strided
 * convolution whose sliding window did not cover the last input rows
 * (e.g. 28 -> 14 with k=5, s=2, p=2 inverts to 14 only with out_pad=1).
 */
inline int
tconvOutDim(int in, int kernel, int stride, int pad, int out_pad = 0)
{
    GANACC_ASSERT(out_pad >= 0 && out_pad < stride,
                  "out_pad must be in [0, stride)");
    int out = (in - 1) * stride - 2 * pad + kernel + out_pad;
    GANACC_ASSERT(out > 0, "transposed conv produces empty output");
    return out;
}

} // namespace tensor
} // namespace ganacc

#endif // GANACC_TENSOR_SHAPE_HH
