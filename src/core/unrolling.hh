/**
 * @file
 * Unrolling strategies (Table V) and the strategy solver.
 *
 * The paper sizes two PE banks — ST-ARCH with 1200 PEs and W-ARCH
 * with 480 — and gives every architecture its best unrolling on each
 * bank so the Fig. 15 comparison is fair. This module encodes those
 * published configurations, scales them to arbitrary PE budgets for
 * the Fig. 18 sweep, and provides an exhaustive solver that rederives
 * Table V by minimizing simulated cycles.
 */

#ifndef GANACC_CORE_UNROLLING_HH
#define GANACC_CORE_UNROLLING_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "sim/phase.hh"

namespace ganacc {
namespace core {

/** The five evaluated microarchitectures. */
enum class ArchKind
{
    NLR,
    WST,
    OST,
    ZFOST,
    ZFWST,
};

/** All kinds in Table V order. */
std::vector<ArchKind> allArchKinds();

std::string archKindName(ArchKind k);

/** Inverse of archKindName (case-insensitive); nullopt if unknown. */
std::optional<ArchKind> archKindFromName(const std::string &name);

/** Which PE bank a comparison runs on. */
enum class BankRole
{
    ST, ///< the S-CONV/T-CONV bank (1200 PEs in the paper)
    W,  ///< the W-CONV bank (480 PEs)
};

/** Instantiate an architecture with a given unrolling. */
std::unique_ptr<sim::Architecture> makeArch(ArchKind kind,
                                            sim::Unroll unroll);

/**
 * The published Table V unrolling for (architecture, bank), scaled to
 * `pe_budget` PEs by adjusting the channel unrolling P_of while
 * keeping the per-channel shape. Some entries are phase-dependent
 * (ZFOST on W-CONV, ZFWST on ST phases); pass the family being run.
 */
sim::Unroll paperUnroll(ArchKind kind, BankRole role,
                        sim::PhaseFamily family, int pe_budget);

/** Result of the exhaustive strategy search. */
struct UnrollChoice
{
    sim::Unroll unroll;
    std::uint64_t cycles = 0;       ///< over the probe job set
    std::uint64_t accesses = 0;     ///< tie-breaker
    int pes = 0;                    ///< PEs actually used
};

/**
 * Exhaustively search per-channel shapes (kernel/output/input-map
 * unrollings up to `max_side`) under a PE budget, minimizing total
 * cycles over the probe jobs; ties break on on-chip accesses. This is
 * the procedure that regenerates Table V.
 */
UnrollChoice solveUnrolling(ArchKind kind, int pe_budget,
                            const std::vector<sim::ConvSpec> &jobs,
                            int max_side = 8);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_UNROLLING_HH
