/**
 * @file
 * Tests for the streamed convolution-job description, including
 * brute-force cross-checks of the closed-form occupancy counters that
 * the cycle-level models rely on.
 */

#include <gtest/gtest.h>

#include "sim/conv_spec.hh"
#include "sim/stats.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using sim::ConvSpec;
using sim::countNonzeroCoords;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

/** A stuffed T-CONV-style spec (stride-2 insertion, 4x4 dense core). */
ConvSpec
stuffedSpec()
{
    ConvSpec s;
    s.label = "stuffed";
    s.nif = 2;
    s.nof = 3;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 4;
    s.ih = s.iw = 8; // (4-1)*2+1 = 7, +1 trailing (output padding)
    s.kh = s.kw = 5;
    s.stride = 1;
    s.pad = 2;
    s.oh = s.ow = 8;
    return s;
}

/** A dilated-kernel W-CONV-style spec. */
ConvSpec
dilatedKernelSpec()
{
    ConvSpec s;
    s.label = "dilated";
    s.nif = 2;
    s.nof = 2;
    s.ih = s.iw = 8;
    s.kZeroStride = 2;
    s.kOrigH = s.kOrigW = 4;
    s.kh = s.kw = 7; // (4-1)*2+1
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 3;
    s.fourDimOutput = true;
    return s;
}

TEST(ConvSpec, InputZeroPatternMatchesStuffing)
{
    ConvSpec s = stuffedSpec();
    // Non-zero exactly at even coordinates whose dense index < 4.
    EXPECT_FALSE(s.inputIsZero(0, 0));
    EXPECT_TRUE(s.inputIsZero(1, 0));
    EXPECT_TRUE(s.inputIsZero(0, 3));
    EXPECT_FALSE(s.inputIsZero(6, 6));
    // Trailing (output-padding) row: coordinate 8 would be dense index
    // 4 which is beyond the original extent... row 7 is odd -> zero.
    EXPECT_TRUE(s.inputIsZero(7, 0));
}

TEST(ConvSpec, TrailingRowsBeyondOrigAreZero)
{
    ConvSpec s = stuffedSpec();
    s.ih = s.iw = 9;
    s.inOrigH = s.inOrigW = 4;
    // Coordinate 8 = dense index 4 >= orig 4 -> structural zero.
    EXPECT_TRUE(s.inputIsZero(8, 0));
}

TEST(ConvSpec, KernelZeroPatternMatchesDilation)
{
    ConvSpec s = dilatedKernelSpec();
    EXPECT_FALSE(s.kernelIsZero(0, 0));
    EXPECT_TRUE(s.kernelIsZero(1, 0));
    EXPECT_TRUE(s.kernelIsZero(0, 5));
    EXPECT_FALSE(s.kernelIsZero(6, 6));
}

TEST(ConvSpec, DenseSpecHasNoStructuralZeros)
{
    ConvSpec s;
    s.nif = s.nof = 1;
    s.ih = s.iw = 6;
    s.kh = s.kw = 3;
    s.oh = s.ow = 4;
    for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 6; ++x)
            EXPECT_FALSE(s.inputIsZero(y, x));
}

TEST(ConvSpec, MakeStreamedTensorsHonourZeroStructure)
{
    Rng rng(3);
    ConvSpec s = stuffedSpec();
    Tensor in = sim::makeStreamedInput(s, rng);
    EXPECT_EQ(in.shape(), Shape4(1, 2, 8, 8));
    for (int c = 0; c < 2; ++c)
        for (int y = 0; y < 8; ++y)
            for (int x = 0; x < 8; ++x)
                if (s.inputIsZero(y, x)) {
                    EXPECT_FLOAT_EQ(in.get(0, c, y, x), 0.0f);
                }

    ConvSpec d = dilatedKernelSpec();
    Tensor w = sim::makeStreamedKernel(d, rng);
    EXPECT_EQ(w.shape(), Shape4(2, 1, 7, 7)); // fourDim: one if plane
    for (int of = 0; of < 2; ++of)
        for (int ky = 0; ky < 7; ++ky)
            for (int kx = 0; kx < 7; ++kx)
                if (d.kernelIsZero(ky, kx)) {
                    EXPECT_FLOAT_EQ(w.get(of, 0, ky, kx), 0.0f);
                }
}

TEST(ConvSpec, CountNonzeroCoordsBruteForce)
{
    // Property check against explicit enumeration over random
    // parameter draws.
    Rng rng(11);
    for (int trial = 0; trial < 2000; ++trial) {
        int t0 = rng.uniformInt(0, 5);
        int len = rng.uniformInt(0, 8);
        int stride = rng.uniformInt(1, 4);
        int k = rng.uniformInt(-3, 6);
        int pad = rng.uniformInt(0, 3);
        int extent = rng.uniformInt(1, 16);
        int zs = rng.uniformInt(1, 3);
        int orig = rng.bernoulli(0.5) ? -1 : rng.uniformInt(1, 8);

        int expected = 0;
        for (int t = t0; t < t0 + len; ++t) {
            int c = t * stride + k - pad;
            if (c < 0 || c >= extent)
                continue;
            bool zero = false;
            if (zs > 1) {
                if (c % zs != 0)
                    zero = true;
                else if (orig >= 0 && c / zs >= orig)
                    zero = true;
            }
            if (!zero)
                ++expected;
        }
        EXPECT_EQ(countNonzeroCoords(t0, len, stride, k, pad, extent, zs,
                                     orig),
                  expected)
            << "t0=" << t0 << " len=" << len << " s=" << stride
            << " k=" << k << " p=" << pad << " e=" << extent
            << " zs=" << zs << " orig=" << orig;
    }
}

TEST(ConvSpec, EffectiveMacsBruteForce)
{
    // effectiveMacs() must equal counting every (output, kernel)
    // pair whose operands are structurally non-zero and in bounds.
    auto brute = [](const ConvSpec &s) {
        std::uint64_t n = 0;
        for (int oy = 0; oy < s.oh; ++oy)
            for (int ox = 0; ox < s.ow; ++ox)
                for (int ky = 0; ky < s.kh; ++ky)
                    for (int kx = 0; kx < s.kw; ++kx) {
                        if (s.kernelIsZero(ky, kx))
                            continue;
                        int iy = oy * s.stride + ky - s.pad;
                        int ix = ox * s.stride + kx - s.pad;
                        if (iy < 0 || iy >= s.ih || ix < 0 || ix >= s.iw)
                            continue;
                        if (s.inputIsZero(iy, ix))
                            continue;
                        ++n;
                    }
        return n * std::uint64_t(s.nof) * s.nif;
    };

    for (const ConvSpec &s : {stuffedSpec(), dilatedKernelSpec()})
        EXPECT_EQ(s.effectiveMacs(), brute(s)) << s.describe();

    // And a dense strided one.
    ConvSpec d;
    d.nif = 3;
    d.nof = 4;
    d.ih = d.iw = 9;
    d.kh = d.kw = 3;
    d.stride = 2;
    d.pad = 1;
    d.oh = d.ow = 5;
    EXPECT_EQ(d.effectiveMacs(), brute(d));
}

TEST(ConvSpec, GenericConvRefMatchesHandExample)
{
    // Stuffed 2x2 identity-ish check: stride-1 conv over a stuffed map
    // must only see the dense values.
    ConvSpec s;
    s.nif = 1;
    s.nof = 1;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 2;
    s.ih = s.iw = 3;
    s.kh = s.kw = 2;
    s.stride = 1;
    s.pad = 0;
    s.oh = s.ow = 2;
    Tensor in(1, 1, 3, 3, 0.0f);
    in.at(0, 0, 0, 0) = 1;
    in.at(0, 0, 0, 2) = 2;
    in.at(0, 0, 2, 0) = 3;
    in.at(0, 0, 2, 2) = 4;
    Tensor w(1, 1, 2, 2, 1.0f);
    Tensor out = sim::genericConvRef(s, in, w);
    // Each 2x2 window over the stuffed map contains exactly one dense
    // value.
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 1, 0), 3.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 1, 1), 4.0f);
}

TEST(ConvSpec, ValidateRejectsMalformedSpecs)
{
    ConvSpec s;
    s.nif = 0;
    EXPECT_THROW(s.validate(), util::PanicError);
    ConvSpec t;
    t.ih = t.iw = 4;
    t.oh = 50; // far beyond the input
    t.stride = 2;
    EXPECT_THROW(t.validate(), util::PanicError);
}

TEST(ConvSpec, DenseMacsFormula)
{
    ConvSpec s = stuffedSpec();
    EXPECT_EQ(s.denseMacs(),
              std::uint64_t(3) * 2 * 8 * 8 * 5 * 5);
}

TEST(ConvSpec, DescribeNamesTheZeroStructure)
{
    ConvSpec s = stuffedSpec();
    std::string d = s.describe();
    EXPECT_NE(d.find("(z2)"), std::string::npos);
    ConvSpec k = dilatedKernelSpec();
    std::string dk = k.describe();
    EXPECT_NE(dk.find("4D"), std::string::npos);
    EXPECT_NE(dk.find("k 7x7 (z2)"), std::string::npos);
}

TEST(ConvSpec, StatsStringContainsCounters)
{
    sim::RunStats st;
    st.cycles = 10;
    st.nPes = 4;
    st.effectiveMacs = 30;
    st.ineffectualMacs = 5;
    st.idlePeSlots = 5;
    std::string s = st.str();
    EXPECT_NE(s.find("cycles=10"), std::string::npos);
    EXPECT_NE(s.find("eff=30"), std::string::npos);
    EXPECT_NEAR(st.utilization(), 0.75, 1e-9);
}

} // namespace
