/**
 * @file
 * Off-chip memory (DDR4) bandwidth model and the unrolling-parallelism
 * derivations of Section V-C.
 *
 * The gradient stream of ZFWST is the design's dominant off-chip
 * traffic: each ∇W partial result needs one read and one write, so the
 * sustainable number of parallel ZFWST channels is bounded by eq. (7):
 *
 *   W_Pof = bandwidth / (2 * frequency * bits_per_data)
 *
 * and the ST-bank width follows from the 5:2 phase-count ratio of the
 * time-multiplexed schedule, eq. (8): ST_Pof = 2.5 * W_Pof.
 */

#ifndef GANACC_MEM_OFFCHIP_HH
#define GANACC_MEM_OFFCHIP_HH

#include <cstdint>

#include "mem/access_tap.hh"

namespace ganacc {
namespace mem {

/** Platform parameters of the paper's VCU118 deployment. */
struct OffChipConfig
{
    double bandwidthBitsPerSec = 192e9; ///< 192 Gbps DDR4
    double frequencyHz = 200e6;         ///< PE clock
    int bitsPerData = 16;               ///< fixed-point width
};

/** Eq. (7): ZFWST channel parallelism sustainable by the DRAM. */
int deriveWPof(const OffChipConfig &cfg);

/** Eq. (8): ZFOST channel parallelism for a balanced pipeline. */
int deriveStPof(int w_pof);

/**
 * Peak off-chip bandwidth demanded by a ZFWST bank of `w_pof`
 * channels whose smallest resident-kernel pass is min_kernel_elems
 * big: 2 * f * w_pof * bits / min_passes. Used to verify a design
 * point is feasible before simulating it.
 */
double zfwstBandwidthDemand(const OffChipConfig &cfg, int w_pof,
                            int kernel_elems, int resident_elems);

/**
 * Byte-accurate DRAM traffic meter with simple latency/bandwidth
 * accounting: transfers are accumulated and converted to seconds at
 * the configured bandwidth.
 */
class OffChipMemory
{
  public:
    explicit OffChipMemory(const OffChipConfig &cfg) : cfg_(cfg) {}

    void
    read(std::uint64_t bytes)
    {
        bytesRead_ += bytes;
        if (tap_)
            tap_->onAccess(bytes, false);
    }

    void
    write(std::uint64_t bytes)
    {
        bytesWritten_ += bytes;
        if (tap_)
            tap_->onAccess(bytes, true);
    }

    /** Attach an access observer (nullptr detaches). Non-owning. */
    void setAccessTap(AccessTap *tap) { tap_ = tap; }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** Seconds the accumulated traffic occupies the channel. */
    double
    transferSeconds() const
    {
        return double(bytesRead_ + bytesWritten_) * 8.0 /
               cfg_.bandwidthBitsPerSec;
    }

    /** Cycles (at the PE clock) the traffic occupies the channel. */
    std::uint64_t
    transferCycles() const
    {
        return std::uint64_t(transferSeconds() * cfg_.frequencyHz);
    }

    void
    reset()
    {
        bytesRead_ = bytesWritten_ = 0;
    }

    const OffChipConfig &config() const { return cfg_; }

  private:
    OffChipConfig cfg_;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    AccessTap *tap_ = nullptr;
};

} // namespace mem
} // namespace ganacc

#endif // GANACC_MEM_OFFCHIP_HH
