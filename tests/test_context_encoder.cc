/**
 * @file
 * Context-Encoder (encoder-decoder generator) tests: topology, mixed
 * strided/transposed phase mapping, and a full-chain functional pass
 * through the microarchitecture models using the kind-generic
 * streaming dispatch.
 */

#include <gtest/gtest.h>

#include "core/unrolling.hh"
#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/conv_ref.hh"
#include "sched/design.hh"
#include "sim/phase.hh"
#include "sim/streaming.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using sim::Phase;
using tensor::approxEqual;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

TEST(ContextEncoder, TopologyIsEncoderDecoder)
{
    gan::GanModel m = gan::makeContextEncoder();
    ASSERT_EQ(m.gen.size(), 8u);
    // First half strided (encoder), second half transposed (decoder).
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(m.gen[i].kind, nn::ConvKind::Strided) << i;
    for (std::size_t i = 4; i < 8; ++i)
        EXPECT_EQ(m.gen[i].kind, nn::ConvKind::Transposed) << i;
    // Bottleneck at 512x4x4; image in = image out = 3x64x64.
    EXPECT_EQ(m.gen[3].outChannels, 512);
    EXPECT_EQ(m.gen[3].outH(), 4);
    EXPECT_EQ(m.gen.front().inChannels, 3);
    EXPECT_EQ(m.gen.front().inH, 64);
    EXPECT_EQ(m.gen.back().outChannels, 3);
    EXPECT_EQ(m.gen.back().outH(), 64);
    // Conditioned on an image, not a noise vector.
    EXPECT_EQ(m.latentDim, 3);
}

TEST(ContextEncoder, MixedPhaseJobsValidateAndMatchKinds)
{
    gan::GanModel m = gan::makeContextEncoder();
    auto fwd = sim::phaseJobs(m, Phase::GenForward);
    ASSERT_EQ(fwd.size(), 8u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(fwd[i].inZeroStride, 1) << i; // encoder: dense
        EXPECT_EQ(fwd[i].stride, 2);
    }
    for (std::size_t i = 4; i < 8; ++i) {
        EXPECT_EQ(fwd[i].inZeroStride, 2) << i; // decoder: stuffed
        EXPECT_EQ(fwd[i].stride, 1);
    }
    auto gw = sim::phaseJobs(m, Phase::GenWeight);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_GT(gw[i].kZeroStride, 1) << "encoder Dw-form " << i;
    for (std::size_t i = 4; i < 8; ++i)
        EXPECT_GT(gw[i].inZeroStride, 1) << "decoder Gw-form " << i;
    for (Phase p : sim::allPhases())
        for (const auto &j : sim::phaseJobs(m, p))
            EXPECT_NO_THROW(j.validate()) << j.describe();
}

TEST(ContextEncoder, NetworkMapsMaskedImageToImage)
{
    gan::GanModel m = gan::makeContextEncoder();
    Rng rng(1);
    gan::Network gen(m.gen, rng);
    Tensor masked(2, 3, 64, 64);
    masked.fillUniform(rng);
    Tensor out = gen.forward(masked);
    EXPECT_EQ(out.shape(), Shape4(2, 3, 64, 64));
    EXPECT_LE(out.absMax(), 1.0f); // tanh output
}

TEST(ContextEncoder, MixedChainThroughAcceleratorMatchesReference)
{
    // A trimmed encoder-decoder (one strided + one transposed layer)
    // run job-by-job through ZFOST/ZFWST with the generic dispatch.
    std::vector<gan::LayerSpec> gen;
    gan::LayerSpec e;
    e.kind = nn::ConvKind::Strided;
    e.act = nn::Activation::LeakyReLU;
    e.inChannels = 2;
    e.outChannels = 6;
    e.inH = e.inW = 8;
    e.geom = nn::Conv2dGeom{4, 2, 1, 0};
    gen.push_back(e);
    gan::LayerSpec d;
    d.kind = nn::ConvKind::Transposed;
    d.act = nn::Activation::Tanh;
    d.inChannels = 6;
    d.outChannels = 2;
    d.inH = d.inW = 4;
    d.geom = nn::Conv2dGeom{4, 2, 1, 0};
    gen.push_back(d);
    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec h;
    h.kind = nn::ConvKind::Strided;
    h.act = nn::Activation::None;
    h.inChannels = 2;
    h.outChannels = 1;
    h.inH = h.inW = 8;
    h.geom = nn::Conv2dGeom{8, 1, 0, 0};
    disc.push_back(h);
    gan::GanModel m = gan::makeModelWithGenerator("mini-ce", disc, gen);

    Rng rng(2);
    gan::Network net(m.gen, rng);
    Tensor x(1, 2, 8, 8);
    x.fillUniform(rng);

    // Reference via the trainer's own forward/backward.
    Tensor ref_out = net.forward(x);
    Tensor derr(ref_out.shape());
    derr.fillUniform(rng);
    net.backward(derr);

    // Accelerator chain with kind-generic streaming.
    core::Zfost zfost(sim::Unroll{.pOf = 4, .pOx = 2, .pOy = 2});
    core::Zfwst zfwst(sim::Unroll{.pOf = 3, .pKx = 2, .pKy = 2});
    auto fwd_jobs = sim::phaseJobs(m, Phase::GenForward);
    auto gw_jobs = sim::phaseJobs(m, Phase::GenWeight);

    std::vector<Tensor> dd(3), pre(2);
    dd[0] = x;
    for (std::size_t l = 0; l < 2; ++l) {
        auto ops = sim::streamForward(m.gen[l], dd[l],
                                      net.layers()[l]->weights());
        pre[l] = sim::makeOutputTensor(fwd_jobs[l]);
        zfost.run(fwd_jobs[l], &ops.input, &ops.kernel, &pre[l]);
        dd[l + 1] = nn::activationForward(pre[l], m.gen[l].act);
    }
    EXPECT_TRUE(approxEqual(ref_out, dd[2], 1e-3f));

    // Backward: error through the decoder layer, then both weight
    // gradients, compared against the trainer's accumulators.
    Tensor dpre1 = nn::activationBackward(derr, pre[1], m.gen[1].act);
    auto bwd_jobs = sim::phaseJobs(m, Phase::GenBackward);
    auto ops_b = sim::streamBackwardData(m.gen[1], dpre1,
                                         net.layers()[1]->weights());
    Tensor dd0 = sim::makeOutputTensor(bwd_jobs[0]);
    zfost.run(bwd_jobs[0], &ops_b.input, &ops_b.kernel, &dd0);
    Tensor dpre0 = nn::activationBackward(dd0, pre[0], m.gen[0].act);

    const Tensor dpres[2] = {dpre0, dpre1};
    for (std::size_t l = 0; l < 2; ++l) {
        auto ops = sim::streamWeightGrad(m.gen[l], dd[l], dpres[l]);
        Tensor raw = sim::makeOutputTensor(gw_jobs[l]);
        zfwst.run(gw_jobs[l], &ops.input, &ops.kernel, &raw);
        Tensor got = sim::finishWeightGrad(m.gen[l], raw);
        EXPECT_TRUE(approxEqual(net.layers()[l]->gradAccum(), got,
                                1e-3f))
            << "mixed-chain weight gradient, layer " << l;
    }
}

TEST(ContextEncoder, AcceleratorTimingRuns)
{
    gan::GanModel m = gan::makeContextEncoder();
    auto d = sched::Design::combo(core::ArchKind::ZFOST,
                                  core::ArchKind::ZFWST, 1680);
    auto cycles =
        sched::iterationCycles(d, m, sched::SyncPolicy::Deferred);
    EXPECT_GT(cycles, 0u);
    // The encoder-decoder generator roughly doubles the generator
    // work relative to plain cGAN.
    auto cgan_cycles = sched::iterationCycles(
        d, gan::makeCgan(), sched::SyncPolicy::Deferred);
    EXPECT_GT(cycles, cgan_cycles);
}

TEST(ContextEncoder, EveryArchRunsEveryPhaseWithInvariants)
{
    // The mixed model through the full architecture sweep: same
    // useful work everywhere, conservation asserted inside run().
    gan::GanModel m = gan::makeContextEncoder();
    for (Phase p : sim::allPhases()) {
        auto fam = sim::familyOf(p);
        core::BankRole role = (fam == sim::PhaseFamily::Dw ||
                               fam == sim::PhaseFamily::Gw)
                                  ? core::BankRole::W
                                  : core::BankRole::ST;
        int pes = role == core::BankRole::ST ? 1200 : 480;
        auto jobs = sim::phaseJobs(m, p);
        std::uint64_t expected = sim::totalEffectiveMacs(jobs);
        for (core::ArchKind kind : core::allArchKinds()) {
            auto arch = core::makeArch(
                kind, core::paperUnroll(kind, role, fam, pes));
            sim::RunStats sum;
            for (const auto &j : jobs)
                sum += arch->run(j);
            EXPECT_EQ(sum.effectiveMacs, expected)
                << core::archKindName(kind) << " "
                << sim::phaseName(p);
        }
    }
}

TEST(ContextEncoder, RejectsMismatchedGeneratorOutput)
{
    gan::GanModel cgan = gan::makeCgan();
    std::vector<gan::LayerSpec> bad_gen = {cgan.disc[0]}; // 64->32
    EXPECT_THROW(gan::makeModelWithGenerator("bad", cgan.disc,
                                             bad_gen),
                 util::PanicError);
}

} // namespace
