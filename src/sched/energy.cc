/**
 * @file
 * Energy accounting implementation.
 */

#include "sched/energy.hh"

#include <utility>
#include <vector>

#include "core/unrolling.hh"
#include "sim/phase.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sched {

using core::BankRole;
using gan::GanModel;
using sim::Phase;

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    computePj += o.computePj;
    onChipPj += o.onChipPj;
    dramPj += o.dramPj;
    idlePj += o.idlePj;
    return *this;
}

EnergyBreakdown
runEnergy(const sim::RunStats &stats, const EnergyCoefficients &c,
          std::uint64_t gated_slots)
{
    GANACC_ASSERT(gated_slots <= stats.ineffectualMacs,
                  "more gated slots than ineffectual slots");
    EnergyBreakdown e;
    const std::uint64_t executed =
        stats.effectiveMacs + stats.ineffectualMacs - gated_slots;
    e.computePj = double(executed) * (c.macPj + c.registerPj);
    e.onChipPj = double(stats.totalAccesses()) * c.sramPj;
    e.idlePj =
        double(stats.idlePeSlots + gated_slots) * c.idlePj;
    return e;
}

namespace {

/** On-chip stats of one phase pass on its bank (Table V unrolling). */
sim::RunStats
bankPhaseStats(const Design &design, const GanModel &model, Phase p)
{
    auto fam = sim::familyOf(p);
    BankRole role = (fam == sim::PhaseFamily::Dw ||
                     fam == sim::PhaseFamily::Gw)
                        ? BankRole::W
                        : BankRole::ST;
    core::ArchKind kind =
        role == BankRole::W ? design.wKind() : design.stKind();
    int pes = role == BankRole::W ? design.wPes() : design.stPes();
    auto arch =
        core::makeArch(kind, core::paperUnroll(kind, role, fam, pes));
    sim::RunStats total;
    for (const auto &job : sim::phaseJobs(model, p))
        total += arch->run(job);
    return total;
}

/** Off-chip 16-bit words moved by one pass of a phase. */
std::uint64_t
phaseDramWords(const GanModel &model, Phase p)
{
    auto weights_of = [](const std::vector<gan::LayerSpec> &layers) {
        std::uint64_t w = 0;
        for (const auto &l : layers)
            w += l.numWeights();
        return w;
    };
    switch (p) {
      case Phase::GenForward:
      case Phase::GenBackward:
        return weights_of(model.gen); // single fetch per pass
      case Phase::DiscForward:
      case Phase::DiscBackward:
        return weights_of(model.disc);
      case Phase::DiscWeight:
        return 2 * weights_of(model.disc); // ∇W read + write stream
      case Phase::GenWeight:
        return 2 * weights_of(model.gen);
    }
    util::panic("unknown phase");
}

} // namespace

EnergyBreakdown
iterationEnergy(const Design &design, const GanModel &model,
                const EnergyCoefficients &c)
{
    // Phase multiplicities of one iteration (Fig. 8: D update then G
    // update).
    const std::pair<Phase, int> passes[] = {
        {Phase::GenForward, 2},  {Phase::DiscForward, 3},
        {Phase::DiscBackward, 3}, {Phase::GenBackward, 1},
        {Phase::DiscWeight, 2},  {Phase::GenWeight, 1},
    };
    EnergyBreakdown total;
    for (auto [phase, count] : passes) {
        sim::RunStats st = bankPhaseStats(design, model, phase);
        EnergyBreakdown e = runEnergy(st, c);
        e.dramPj = double(phaseDramWords(model, phase)) * c.dramPj;
        for (int i = 0; i < count; ++i)
            total += e;
    }
    return total;
}

double
impliedWatts(const EnergyBreakdown &e, double iterations_per_sec)
{
    GANACC_ASSERT(iterations_per_sec > 0, "need a positive rate");
    return e.totalPj() * 1e-12 * iterations_per_sec;
}

} // namespace sched
} // namespace ganacc
