/**
 * @file
 * Operand-streaming implementation.
 */

#include "sim/streaming.hh"

#include "nn/zero_insert.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sim {

using gan::LayerSpec;
using tensor::Shape4;
using tensor::Tensor;

namespace {

/** Trailing-zero rows a layer's inverse map needs (its outPad, or
 *  the mismatch between natural and actual output for backward). */
int
extraRowsFor(int dense, int out, int kernel, int stride, int pad)
{
    int natural = (dense - 1) * stride + kernel - 2 * pad;
    int extra = out - natural;
    GANACC_ASSERT(extra >= 0 && extra < stride,
                  "inconsistent stuffing geometry");
    return extra;
}

/** Spread an error map into per-output-channel kernel planes of the
 *  (nof, 1, kh, kw) streamed-kernel layout. */
Tensor
asKernelPlanes(const Tensor &map)
{
    const Shape4 &s = map.shape();
    GANACC_ASSERT(s.d0 == 1, "kernel planes expect a single sample");
    Tensor w(Shape4(s.d1, 1, s.d2, s.d3));
    for (int of = 0; of < s.d1; ++of)
        for (int y = 0; y < s.d2; ++y)
            for (int x = 0; x < s.d3; ++x)
                w.ref(of, 0, y, x) = map.get(0, of, y, x);
    return w;
}

} // namespace

StreamedOperands
streamDiscForward(const LayerSpec &layer, const Tensor &dense_in,
                  const Tensor &weights)
{
    GANACC_ASSERT(dense_in.shape() == Shape4(1, layer.inChannels,
                                             layer.inH, layer.inW),
                  "D-fwd input shape mismatch");
    return {dense_in, weights};
}

StreamedOperands
streamGenForward(const LayerSpec &layer, const Tensor &dense_in,
                 const Tensor &weights)
{
    GANACC_ASSERT(weights.shape() ==
                      Shape4(layer.inChannels, layer.outChannels,
                             layer.geom.kernel, layer.geom.kernel),
                  "G-fwd weights must be (IF, OF, k, k)");
    Tensor stuffed = nn::zeroInsertSpatial(dense_in, layer.geom.stride,
                                           layer.geom.outPad);
    Tensor streamed_w =
        nn::flipKernelSpatial(nn::swapLeadingAxes(weights));
    return {std::move(stuffed), std::move(streamed_w)};
}

StreamedOperands
streamDiscBackward(const LayerSpec &layer, const Tensor &derr_out,
                   const Tensor &weights)
{
    GANACC_ASSERT(derr_out.shape() ==
                      Shape4(1, layer.outChannels, layer.outH(),
                             layer.outW()),
                  "D-bwd error shape mismatch");
    int extra = extraRowsFor(layer.outH(), layer.inH,
                             layer.geom.kernel, layer.geom.stride,
                             layer.geom.pad);
    Tensor stuffed =
        nn::zeroInsertSpatial(derr_out, layer.geom.stride, extra);
    Tensor streamed_w =
        nn::flipKernelSpatial(nn::swapLeadingAxes(weights));
    return {std::move(stuffed), std::move(streamed_w)};
}

StreamedOperands
streamGenBackward(const LayerSpec &layer, const Tensor &derr_out,
                  const Tensor &weights)
{
    GANACC_ASSERT(derr_out.shape() ==
                      Shape4(1, layer.outChannels, layer.outH(),
                             layer.outW()),
                  "G-bwd error shape mismatch");
    GANACC_ASSERT(weights.shape().d0 == layer.inChannels,
                  "G-bwd weights must be (IF, OF, k, k)");
    // The adjoint of the T-CONV is a plain strided convolution of the
    // output-side error; the (IF, OF) kernel layout is exactly the
    // (nof, nif) the job wants.
    return {derr_out, weights};
}

StreamedOperands
streamDiscWeight(const LayerSpec &layer, const Tensor &dense_in,
                 const Tensor &derr_out)
{
    Tensor dil = nn::zeroInsertSpatial(derr_out, layer.geom.stride);
    return {dense_in, asKernelPlanes(dil)};
}

StreamedOperands
streamGenWeight(const LayerSpec &layer, const Tensor &dense_in,
                const Tensor &derr_out)
{
    int extra = extraRowsFor(layer.inH, layer.outH(),
                             layer.geom.kernel, layer.geom.stride,
                             layer.geom.pad);
    Tensor stuffed = nn::zeroInsertSpatial(dense_in, layer.geom.stride,
                                           extra);
    return {std::move(stuffed), asKernelPlanes(derr_out)};
}

Tensor
unflipGenWeightGrad(const Tensor &raw)
{
    // raw is (OF, IF, k, k) w.r.t. the flipped kernel; the layer's
    // gradient is (IF, OF, k, k) w.r.t. the original.
    return nn::swapLeadingAxes(nn::flipKernelSpatial(raw));
}

StreamedOperands
streamForward(const LayerSpec &layer, const Tensor &dense_in,
              const Tensor &weights)
{
    return layer.kind == nn::ConvKind::Strided
               ? streamDiscForward(layer, dense_in, weights)
               : streamGenForward(layer, dense_in, weights);
}

StreamedOperands
streamBackwardData(const LayerSpec &layer, const Tensor &derr_out,
                   const Tensor &weights)
{
    return layer.kind == nn::ConvKind::Strided
               ? streamDiscBackward(layer, derr_out, weights)
               : streamGenBackward(layer, derr_out, weights);
}

StreamedOperands
streamWeightGrad(const LayerSpec &layer, const Tensor &dense_in,
                 const Tensor &derr_out)
{
    return layer.kind == nn::ConvKind::Strided
               ? streamDiscWeight(layer, dense_in, derr_out)
               : streamGenWeight(layer, dense_in, derr_out);
}

Tensor
finishWeightGrad(const LayerSpec &layer, const Tensor &raw)
{
    return layer.kind == nn::ConvKind::Strided
               ? raw
               : unflipGenWeightGrad(raw);
}

} // namespace sim
} // namespace ganacc
