/**
 * @file
 * Telemetry lifecycle: one switch that arms the trace sink, the
 * structured event log, the cycle-walk probe and the metrics dump.
 *
 * Configuration comes from the environment (GANACC_TRACE,
 * GANACC_EVENTS, GANACC_METRICS) or the --trace flag (see
 * util::ArgParser::getTracePath); with none of them set every hook in
 * the codebase is a no-op and all outputs are bit-identical to a
 * build without telemetry (asserted by tests/test_obs.cc).
 *
 * Shutdown is explicit (shutdownTelemetry(), called by the bench
 * CacheScope and the daemon) so files land deterministically before
 * process teardown; an atexit flush in the trace sink is the backstop
 * for tools that exit early.
 */

#ifndef GANACC_OBS_TELEMETRY_HH
#define GANACC_OBS_TELEMETRY_HH

#include <cstdint>
#include <string>

namespace ganacc {
namespace obs {

/** Where each telemetry stream goes ("" = stream off). */
struct TelemetryConfig
{
    std::string tracePath;   ///< Chrome trace of spans (GANACC_TRACE)
    std::string eventsPath;  ///< JSONL event log (GANACC_EVENTS)
    std::string metricsPath; ///< Prometheus dump at shutdown
                             ///  (GANACC_METRICS)

    /// Buffer spans for live trace-drain probes even with no trace
    /// file configured (the daemon/router side of distributed
    /// tracing; see docs/observability.md "Distributed tracing").
    bool traceLive = false;

    /// Head-sampling rate for request traces, [0, 1]
    /// (GANACC_TRACE_SAMPLE; default keep everything).
    double traceSampleRate = 1.0;

    /// Tail-keep threshold: requests at or above this end-to-end
    /// latency keep their spans even when head sampling dropped the
    /// trace (GANACC_TRACE_TAIL_US; 0 = off).
    std::uint64_t traceTailUs = 0;

    bool
    any() const
    {
        return !tracePath.empty() || !eventsPath.empty() ||
               !metricsPath.empty() || traceLive;
    }
};

/** The three environment knobs, unset ones left empty. */
TelemetryConfig configFromEnv();

/** True between enableTelemetry() and shutdownTelemetry(). */
bool telemetryEnabled();

/**
 * Arm every telemetry stream named in `cfg`: the span trace sink,
 * the JSONL event log, the registry-filling cycle-walk probe (any
 * stream arms it — the counters feed both the metrics dump and the
 * daemon's stats probe). No-op when cfg.any() is false.
 */
void enableTelemetry(const TelemetryConfig &cfg);

/**
 * Flush and disarm: write the Chrome trace, dump the registry to the
 * metrics path, close the event log, uninstall the probe.
 * Idempotent; a no-op when telemetry was never enabled.
 */
void shutdownTelemetry();

/** The JSONL structured event log (leaked singleton). */
class EventLog
{
  public:
    static EventLog &instance();

    bool enabled() const;

    /**
     * Append one event line: {"ev":"<type>","ts":<us>,<fields>}.
     * `fields` is raw JSON object *content* (canonical encodings from
     * sim/json are pasted verbatim), e.g. "\"arch\":\"ZFOST\"".
     * Dropped when the log is closed.
     */
    void log(const std::string &type, const std::string &fields);

  private:
    EventLog() = default;

    friend void enableTelemetry(const TelemetryConfig &);
    friend void shutdownTelemetry();
    void open(const std::string &path);
    void close();
};

/**
 * Install the SIGUSR1 handler: each signal requests one Prometheus
 * dump of the registry to `path`, serviced at the next
 * serviceMetricsDump() call (the daemon polls it in its accept loop —
 * dumping from the handler itself would be async-signal-unsafe).
 */
void installMetricsDumpSignal(const std::string &path);

/** Write the pending dump, if one was requested. Returns whether a
 *  dump was written. */
bool serviceMetricsDump();

} // namespace obs
} // namespace ganacc

#endif // GANACC_OBS_TELEMETRY_HH
