/**
 * @file
 * On-chip buffer implementation.
 */

#include "mem/onchip_buffer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ganacc {
namespace mem {

void
OnChipBuffer::occupy(std::uint64_t bytes)
{
    GANACC_ASSERT(occupied_ + bytes <= capacity_, name_,
                  ": occupancy overflow (", occupied_, " + ", bytes,
                  " > ", capacity_, ")");
    occupied_ += bytes;
    peak_ = std::max(peak_, occupied_);
}

void
OnChipBuffer::release(std::uint64_t bytes)
{
    GANACC_ASSERT(bytes <= occupied_, name_,
                  ": releasing more than occupied");
    occupied_ -= bytes;
}

std::uint64_t
BufferPlan::totalBytes() const
{
    return 2 * inOutBytes + dataBytes + errorBytes + weightBytes +
           2 * gradWBytes;
}

namespace {

constexpr std::uint64_t kBram36Bytes = 4608; // 36 Kb

int
bramsFor(std::uint64_t bytes)
{
    return int((bytes + kBram36Bytes - 1) / kBram36Bytes);
}

} // namespace

int
BufferPlan::bram36Count() const
{
    // Each physical buffer rounds up separately (banks cannot share a
    // BRAM primitive).
    return 2 * bramsFor(inOutBytes) + bramsFor(dataBytes) +
           bramsFor(errorBytes) + bramsFor(weightBytes) +
           2 * bramsFor(gradWBytes);
}

BufferPlan
planBuffers(const gan::GanModel &model, int w_pof, int bytes_per_elem)
{
    GANACC_ASSERT(w_pof >= 1 && bytes_per_elem >= 1,
                  "bad buffer-plan parameters");
    BufferPlan plan;

    std::uint64_t max_output = 0;
    std::uint64_t max_weights = 0;
    std::uint64_t max_partial = 0;
    auto scan = [&](const std::vector<gan::LayerSpec> &layers) {
        for (const auto &l : layers) {
            max_output = std::max<std::uint64_t>(max_output,
                                                 l.outputElems());
            max_weights = std::max<std::uint64_t>(max_weights,
                                                  l.numWeights());
            // ZFWST partial working set: W_Pof channels x the per-
            // channel gradient patch x the input maps accumulating.
            std::uint64_t partial =
                std::uint64_t(w_pof) * l.inChannels * l.geom.kernel *
                l.geom.kernel;
            max_partial = std::max(max_partial, partial);
        }
    };
    scan(model.disc);
    scan(model.gen);

    const std::uint64_t bpe = std::uint64_t(bytes_per_elem);
    plan.inOutBytes = max_output * bpe;
    std::uint64_t image =
        std::uint64_t(model.disc.front().inChannels) *
        model.disc.front().inH * model.disc.front().inW;
    std::uint64_t sample_set =
        std::max(model.discIntermediateElems(),
                 model.genIntermediateElems()) +
        image;
    plan.dataBytes = sample_set * bpe;
    plan.errorBytes = sample_set * bpe;
    plan.weightBytes = max_weights * bpe;
    plan.gradWBytes = max_partial * bpe;
    return plan;
}

bool
fitsBram(const BufferPlan &plan, int bram36_budget)
{
    return plan.bram36Count() <= bram36_budget;
}

} // namespace mem
} // namespace ganacc
