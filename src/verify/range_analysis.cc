/**
 * @file
 * Fixed-point range analysis implementation.
 */

#include "verify/range_analysis.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/activations.hh"

namespace ganacc {
namespace verify {

using gan::GanModel;
using gan::LayerSpec;

namespace {

/** Maximum taps any single output accumulates from one input map. */
int
tapsPerOutput(const LayerSpec &l)
{
    if (l.kind == nn::ConvKind::Strided)
        return l.geom.kernel * l.geom.kernel;
    // T-CONV: the zero-stuffed input hits at most ceil(k/s) kernel
    // positions per axis for any output.
    int per_axis =
        (l.geom.kernel + l.geom.stride - 1) / l.geom.stride;
    return per_axis * per_axis;
}

/** Taps of the *backward* (error) convolution of a layer. */
int
tapsPerOutputBackward(const LayerSpec &l)
{
    // Backward of S-CONV is a T-CONV with the same stride; backward of
    // T-CONV is a plain S-CONV.
    if (l.kind == nn::ConvKind::Strided) {
        int per_axis =
            (l.geom.kernel + l.geom.stride - 1) / l.geom.stride;
        return per_axis * per_axis;
    }
    return l.geom.kernel * l.geom.kernel;
}

/** The initializer's weight standard deviation (Kaiming). */
double
weightSigma(const LayerSpec &l)
{
    double fan_in =
        double(l.inChannels) * l.geom.kernel * l.geom.kernel;
    return std::sqrt(2.0 / fan_in);
}

/** RMS shrink factor of an activation applied to a ~symmetric input. */
double
activationRmsFactor(nn::Activation act)
{
    switch (act) {
      case nn::Activation::ReLU:
        return std::sqrt(0.5); // half the power survives
      case nn::Activation::LeakyReLU: {
        double s = double(nn::kLeakySlope);
        return std::sqrt((1.0 + s * s) / 2.0);
      }
      default:
        return 1.0;
    }
}

/** RMS factor of an activation's derivative gating the backward pass. */
double
activationDerivFactor(nn::Activation act)
{
    switch (act) {
      case nn::Activation::ReLU:
        return std::sqrt(0.5);
      case nn::Activation::LeakyReLU: {
        double s = double(nn::kLeakySlope);
        return std::sqrt((1.0 + s * s) / 2.0);
      }
      default:
        return 1.0; // tanh' <= 1: keep the conservative bound
    }
}

/** One magnitude value flowing through the graph. */
struct Mag
{
    double rms = 0.0;
    double peak = 0.0;
};

class Analyzer
{
  public:
    Analyzer(const GanModel &model, const RangeOptions &opts,
             Report &report)
        : model_(model), opts_(opts), report_(report)
    {
        max_rep_ = double((1 << 15) - 1) /
                   double(std::int64_t(1) << opts.fracBits);
    }

    RangeAnalysis run();

  private:
    bool interval() const
    {
        return opts_.weights == RangeOptions::WeightModel::FixedBound;
    }

    std::string where(const char *which, std::size_t i,
                      const char *stage) const
    {
        std::ostringstream os;
        os << model_.name << " " << which << " L" << i << " " << stage;
        return os.str();
    }

    /** Magnitude of a sum of `taps` products of weight x value. */
    Mag accumulate(const LayerSpec &l, int channels, int taps,
                   const Mag &in) const
    {
        Mag out;
        if (interval()) {
            double gain = double(channels) * taps * opts_.weightBound;
            out.peak = gain * in.peak;
            out.rms = out.peak;
        } else {
            double gain =
                std::sqrt(double(channels) * taps) * weightSigma(l);
            out.rms = gain * in.rms;
            out.peak = opts_.sigmaK * out.rms;
        }
        return out;
    }

    Mag applyActivation(const LayerSpec &l, Mag m) const
    {
        if (l.batchNorm) {
            // Normalized to unit variance; peaks follow the sigma rule
            // again (interval mode cannot bound BN output, keep peak).
            m.rms = 1.0;
            if (!interval())
                m.peak = opts_.sigmaK;
            return m;
        }
        m.rms *= activationRmsFactor(l.act);
        if (l.act == nn::Activation::Tanh) {
            m.rms = std::min(m.rms, 1.0);
            m.peak = std::min(m.peak, 1.0);
        }
        return m;
    }

    void record(std::vector<RangeEstimate> &dst, const std::string &loc,
                const Mag &m)
    {
        dst.push_back({loc, m.rms, m.peak});
        result_.worstPeak = std::max(result_.worstPeak, m.peak);
    }

    /** Report saturation once per chain (`first` flips to false). */
    void checkSaturation(const std::string &loc, const Mag &m,
                         const char *code, bool &first)
    {
        if (m.peak <= max_rep_ || !first)
            return;
        first = false;
        std::ostringstream os;
        int bits = requiredIntBits(m.peak);
        os << (interval() ? "worst-case magnitude "
                          : "estimated peak magnitude ")
           << m.peak << " exceeds Q" << (15 - opts_.fracBits) << "."
           << opts_.fracBits << " max " << max_rep_ << "; needs ";
        if (bits < 0)
            os << "more than 16 bits";
        else
            os << "Q" << bits << "." << (15 - bits);
        report_.error(code, loc, os.str());
    }

    /** Forward pass over one stack; returns per-layer input
     *  activation magnitudes (index i = input of layer i). */
    std::vector<Mag> forward(const std::vector<LayerSpec> &layers,
                             const char *which);

    /** Backward pass; returns per-layer error-at-output magnitudes
     *  (after the activation derivative) and the error magnitude at
     *  the stack's input. */
    std::vector<Mag> backward(const std::vector<LayerSpec> &layers,
                              const char *which, Mag err_out,
                              Mag &err_in);

    void gradients(const std::vector<LayerSpec> &layers,
                   const char *which, const std::vector<Mag> &acts_in,
                   const std::vector<Mag> &errs_out);

    const GanModel &model_;
    const RangeOptions &opts_;
    Report &report_;
    RangeAnalysis result_;
    double max_rep_ = 0.0;
};

std::vector<Mag>
Analyzer::forward(const std::vector<LayerSpec> &layers, const char *which)
{
    std::vector<Mag> acts_in;
    Mag act{opts_.inputAmp,
            interval() ? opts_.inputAmp : opts_.sigmaK * opts_.inputAmp};
    bool first = true;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &l = layers[i];
        acts_in.push_back(act);
        Mag pre =
            accumulate(l, l.inChannels, tapsPerOutput(l), act);
        std::string loc = where(which, i, "fwd");
        record(result_.activations, loc, pre);
        checkSaturation(loc, pre, codes::kRangeSaturate, first);
        act = applyActivation(l, pre);
    }
    return acts_in;
}

std::vector<Mag>
Analyzer::backward(const std::vector<LayerSpec> &layers, const char *which,
                   Mag err_out, Mag &err_in)
{
    std::vector<Mag> errs_out(layers.size());
    bool first = true;
    for (std::size_t n = layers.size(); n-- > 0;) {
        const LayerSpec &l = layers[n];
        // Through the activation derivative to the pre-activation
        // error, ...
        double d = activationDerivFactor(l.act);
        Mag pre_err{err_out.rms * d, err_out.peak * d};
        errs_out[n] = pre_err;
        // ... then through the transposed weights to the layer input.
        Mag next = accumulate(l, l.outChannels, tapsPerOutputBackward(l),
                              pre_err);
        std::string loc = where(which, n, "bwd");
        record(result_.errors, loc, next);
        checkSaturation(loc, next, codes::kRangeSaturate, first);
        err_out = next;
    }
    err_in = err_out;
    return errs_out;
}

void
Analyzer::gradients(const std::vector<LayerSpec> &layers, const char *which,
                    const std::vector<Mag> &acts_in,
                    const std::vector<Mag> &errs_out)
{
    bool first = true;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &l = layers[i];
        double positions = double(l.outH()) * l.outW();
        Mag g;
        if (interval()) {
            g.peak = acts_in[i].peak * errs_out[i].peak * positions;
            g.rms = g.peak;
        } else {
            g.rms = acts_in[i].rms * errs_out[i].rms *
                    std::sqrt(positions);
            g.peak = opts_.sigmaK * g.rms;
        }
        std::string loc = where(which, i, "gradW");
        record(result_.gradients, loc, g);
        checkSaturation(loc, g, codes::kRangeGradient, first);
    }
}

RangeAnalysis
Analyzer::run()
{
    result_.maxRepresentable = max_rep_;

    std::vector<Mag> disc_acts = forward(model_.disc, "disc");
    std::vector<Mag> gen_acts = forward(model_.gen, "gen");

    Mag head_err{opts_.errorAmp,
                 interval() ? opts_.errorAmp
                            : opts_.sigmaK * opts_.errorAmp};
    Mag image_err;
    std::vector<Mag> disc_errs =
        backward(model_.disc, "disc", head_err, image_err);
    // The generator trains through the whole discriminator: its output
    // error is the error at the discriminator's input.
    Mag latent_err;
    std::vector<Mag> gen_errs =
        backward(model_.gen, "gen", image_err, latent_err);

    gradients(model_.disc, "disc", disc_acts, disc_errs);
    gradients(model_.gen, "gen", gen_acts, gen_errs);

    if (interval()) {
        std::ostringstream os;
        os << "worst-case interval bound over all accumulators is "
           << result_.worstPeak << " (|w| <= " << opts_.weightBound
           << "); ";
        int bits = requiredIntBits(result_.worstPeak);
        if (bits < 0)
            os << "no 16-bit format provably avoids saturation";
        else
            os << "Q" << bits << "." << (15 - bits)
               << " provably avoids saturation";
        report_.note(codes::kRangeWorstCase, model_.name, os.str());
    }
    return result_;
}

} // namespace

int
requiredIntBits(double peak)
{
    for (int m = 0; m <= 15; ++m) {
        double max_rep =
            double((1 << 15) - 1) / double(std::int64_t(1) << (15 - m));
        if (peak <= max_rep)
            return m;
    }
    return -1;
}

RangeAnalysis
analyzeRanges(const GanModel &model, const RangeOptions &opts,
              Report &report)
{
    Analyzer a(model, opts, report);
    return a.run();
}

} // namespace verify
} // namespace ganacc
