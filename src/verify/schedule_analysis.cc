/**
 * @file
 * Static schedule-hazard analysis + dynamic shadow checker.
 *
 * Layout: the ShadowRecorder (a sim::ScheduleRecorder reconstructing
 * the concrete ScheduleRelation from a recorder-armed walk, with port
 * totals routed through mem::OnChipBuffer + mem::AccessTap), then the
 * per-dataflow symbolic relations, then the public checks.
 *
 * The symbolic derivations mirror sim/closed_form: totals are taken
 * from the proven closed forms, while the per-cycle *peaks* and the
 * accumulation-window population are derived here from the loop-nest
 * structure. Peak arguments rely on two facts about every paper
 * schedule: (1) maximal tiles exist — the first tile of each loop axis
 * has the full min(factor, bound) extent, and the loop nests are full
 * cross products, so maximal extents co-occur in some cycle; (2) pass-
 * boundary traffic (resident weight-tile loads, register drains)
 * attaches to a cycle that carries no other traffic on the same port,
 * because passes are at least one cycle long and the per-cycle port
 * sets are disjoint from the boundary port sets.
 */

#include "verify/schedule_analysis.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "mem/access_tap.hh"
#include "mem/onchip_buffer.hh"
#include "obs/metrics.hh"
#include "sim/closed_form.hh"
#include "sim/cnv.hh"
#include "sim/rst.hh"
#include "sim/schedule_recorder.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ganacc {
namespace verify {

using core::ArchKind;
using sim::ConvSpec;
using sim::RunStats;
using sim::Unroll;

namespace {

using u64 = std::uint64_t;

u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

u64
umin(int factor, int bound)
{
    return u64(std::min(factor, bound));
}

/** Location string for diagnostics. */
std::string
jobWhere(const std::string &arch, const ConvSpec &spec)
{
    return arch + " " + (spec.label.empty() ? spec.describe() : spec.label);
}

// ---------------------------------------------------------------------
// The shadow recorder.
// ---------------------------------------------------------------------

/** Counts the words an OnChipBuffer moved, through the tap path. */
class CountingTap final : public mem::AccessTap
{
  public:
    void
    onAccess(std::uint64_t bytes, bool is_write) override
    {
        (is_write ? written_ : read_) += bytes;
    }

    u64 readWords() const { return read_; }
    u64 writtenWords() const { return written_; }

  private:
    u64 read_ = 0;
    u64 written_ = 0;
};

/**
 * Reconstructs the concrete ScheduleRelation from recorder callbacks.
 * Port totals are deliberately not summed here: every onPort event is
 * replayed through an OnChipBuffer with an AccessTap armed, and the
 * relation reads the totals back from the taps — if any buffer access
 * path stopped firing its tap, the shadow totals would collapse and
 * the differential against the static model would catch it.
 */
class ShadowRecorder final : public sim::ScheduleRecorder
{
  public:
    ShadowRecorder()
        : weight_buf_("sched.weight",
                      std::numeric_limits<std::uint64_t>::max()),
          input_buf_("sched.input",
                     std::numeric_limits<std::uint64_t>::max()),
          output_buf_("sched.output",
                      std::numeric_limits<std::uint64_t>::max())
    {
        weight_buf_.setAccessTap(&weight_tap_);
        input_buf_.setAccessTap(&input_tap_);
        output_buf_.setAccessTap(&output_tap_);
    }

    void
    onJobBegin(int n_pes, const ConvSpec &) override
    {
        rel_ = ScheduleRelation{};
        n_pes_ = n_pes < 0 ? 0 : u64(n_pes);
        lane_stamp_.assign(std::size_t(n_pes_), 0);
        cycle_id_ = 0;
        cycle_open_ = false;
        cur_slots_ = 0;
        std::fill(std::begin(cur_port_), std::end(cur_port_), u64(0));
        cycle_writes_.clear();
        window_open_ = false;
    }

    void
    onCycle() override
    {
        finalizeCycle();
        cycle_open_ = true;
        ++cycle_id_;
        rel_.cycles += 1;
    }

    void
    onLanes(int base, int count) override
    {
        for (int lane = base; lane < base + count; ++lane) {
            if (lane < 0 || u64(lane) >= n_pes_) {
                rel_.slotConflicts += 1; // booked a nonexistent PE
                continue;
            }
            u64 &stamp = lane_stamp_[std::size_t(lane)];
            if (stamp == cycle_id_ && cycle_id_ != 0) {
                rel_.slotConflicts += 1; // double-booked this cycle
                continue;
            }
            stamp = cycle_id_;
            cur_slots_ += 1;
            rel_.scheduledSlots += 1;
        }
    }

    void
    onPort(sim::SchedPort port, u64 words) override
    {
        cur_port_[portIdx(port)] += words;
        // Route the traffic through the mem layer so the totals come
        // back via the AccessTap path.
        switch (port) {
          case sim::SchedPort::Weight:
            weight_buf_.read(words);
            break;
          case sim::SchedPort::Input:
            input_buf_.read(words);
            break;
          case sim::SchedPort::OutputRead:
            output_buf_.read(words);
            break;
          case sim::SchedPort::OutputWrite:
            output_buf_.write(words);
            break;
        }
    }

    void
    onWindowBegin(u64 cells, sim::WindowKind kind) override
    {
        GANACC_ASSERT(!window_open_,
                      "schedule windows must not nest within a job");
        window_open_ = true;
        window_kind_ = kind;
        window_cells_ = cells;
        if (kind != sim::WindowKind::WriteThrough)
            window_flags_.assign(std::size_t(cells), 0);
        cycle_writes_.clear();
        rel_.windows += 1;
    }

    void
    onCellWrite(u64 base, u64 count) override
    {
        const auto [b, c] = clampToWindow(base, count);
        // Same-cycle overlap with an earlier write is a WAW hazard.
        for (const auto &[eb, ec] : cycle_writes_) {
            const u64 lo = std::max(b, eb);
            const u64 hi = std::min(b + c, eb + ec);
            if (hi > lo)
                rel_.wawHazards += hi - lo;
        }
        if (c > 0)
            cycle_writes_.emplace_back(b, c);
        if (window_open_ && window_kind_ != sim::WindowKind::WriteThrough)
            for (u64 i = b; i < b + c; ++i)
                window_flags_[std::size_t(i)] |= kWritten;
    }

    void
    onCellRead(u64 base, u64 count) override
    {
        const auto [b, c] = clampToWindow(base, count);
        // Only non-zero-initialized buffers can read stale state.
        if (window_open_ && window_kind_ == sim::WindowKind::AccumBuffer)
            for (u64 i = b; i < b + c; ++i)
                if (!(window_flags_[std::size_t(i)] & kWritten))
                    rel_.rawHazards += 1;
    }

    void
    onDrain(u64 base, u64 count) override
    {
        const auto [b, c] = clampToWindow(base, count);
        rel_.cellsDrained += count;
        if (window_open_ && window_kind_ != sim::WindowKind::WriteThrough)
            for (u64 i = b; i < b + c; ++i)
                window_flags_[std::size_t(i)] |= kDrained;
    }

    void
    onWindowEnd() override
    {
        GANACC_ASSERT(window_open_, "window end without a begin");
        if (window_kind_ != sim::WindowKind::WriteThrough)
            for (std::uint8_t f : window_flags_)
                if ((f & kWritten) && !(f & kDrained))
                    rel_.undrainedWrites += 1;
        window_open_ = false;
        window_flags_.clear();
    }

    void
    onJobEnd() override
    {
        finalizeCycle();
    }

    /** The reconstructed relation (valid after onJobEnd). */
    ScheduleRelation
    relation() const
    {
        ScheduleRelation r = rel_;
        r.totalWeightLoads = weight_tap_.readWords();
        r.totalInputLoads = input_tap_.readWords();
        r.totalOutputReads = output_tap_.readWords();
        r.totalOutputWrites = output_tap_.writtenWords();
        return r;
    }

  private:
    static constexpr std::uint8_t kWritten = 1;
    static constexpr std::uint8_t kDrained = 2;

    static std::size_t
    portIdx(sim::SchedPort p)
    {
        return std::size_t(p);
    }

    /** Clamp a cell range to the open window, counting the cells that
     *  fall outside (or arrive with no window open) as OOB. */
    std::pair<u64, u64>
    clampToWindow(u64 base, u64 count)
    {
        if (!window_open_) {
            rel_.oobAccesses += count;
            return {0, 0};
        }
        if (base >= window_cells_) {
            rel_.oobAccesses += count;
            return {0, 0};
        }
        if (base + count > window_cells_) {
            rel_.oobAccesses += base + count - window_cells_;
            count = window_cells_ - base;
        }
        return {base, count};
    }

    void
    finalizeCycle()
    {
        if (!cycle_open_)
            return;
        rel_.peakSlots = std::max(rel_.peakSlots, cur_slots_);
        rel_.peakWeightLoads =
            std::max(rel_.peakWeightLoads,
                     cur_port_[portIdx(sim::SchedPort::Weight)]);
        rel_.peakInputLoads =
            std::max(rel_.peakInputLoads,
                     cur_port_[portIdx(sim::SchedPort::Input)]);
        rel_.peakOutputReads =
            std::max(rel_.peakOutputReads,
                     cur_port_[portIdx(sim::SchedPort::OutputRead)]);
        rel_.peakOutputWrites =
            std::max(rel_.peakOutputWrites,
                     cur_port_[portIdx(sim::SchedPort::OutputWrite)]);
        cycle_open_ = false;
        cur_slots_ = 0;
        std::fill(std::begin(cur_port_), std::end(cur_port_), u64(0));
        cycle_writes_.clear();
    }

    ScheduleRelation rel_;
    u64 n_pes_ = 0;
    std::vector<u64> lane_stamp_; ///< cycle id of each lane's booking
    u64 cycle_id_ = 0;
    bool cycle_open_ = false;
    u64 cur_slots_ = 0;
    u64 cur_port_[4] = {0, 0, 0, 0};
    std::vector<std::pair<u64, u64>> cycle_writes_;

    bool window_open_ = false;
    sim::WindowKind window_kind_ = sim::WindowKind::WriteThrough;
    u64 window_cells_ = 0;
    std::vector<std::uint8_t> window_flags_;

    mem::OnChipBuffer weight_buf_;
    mem::OnChipBuffer input_buf_;
    mem::OnChipBuffer output_buf_;
    CountingTap weight_tap_;
    CountingTap input_tap_;
    CountingTap output_tap_;
};

// ---------------------------------------------------------------------
// Symbolic relations.
// ---------------------------------------------------------------------

/** Copy the proven closed-form totals into a relation. */
ScheduleRelation
fromClosedForm(const RunStats &st)
{
    ScheduleRelation r;
    r.cycles = st.cycles;
    r.scheduledSlots = st.effectiveMacs + st.ineffectualMacs;
    r.totalWeightLoads = st.weightLoads;
    r.totalInputLoads = st.inputLoads;
    r.totalOutputReads = st.outputReads;
    r.totalOutputWrites = st.outputWrites;
    return r;
}

ScheduleRelation
nlrSchedule(const Unroll &u, const ConvSpec &s, bool zero_skip)
{
    ScheduleRelation r =
        fromClosedForm(sim::nlrClosedForm(u, s, zero_skip));
    r.windows = 1; // one job-wide write-through window
    if (r.cycles == 0)
        return r; // every position skipped: nothing ever scheduled
    const u64 of_max = umin(u.pOf, s.nof);
    if (!s.fourDimOutput) {
        const u64 if_max = umin(u.pIf, s.nif);
        r.peakSlots = if_max * of_max;
        r.peakWeightLoads = if_max * of_max;
        r.peakInputLoads = if_max;
    } else {
        // Input maps stream sequentially; the adder tree carries one.
        r.peakSlots = of_max;
        r.peakWeightLoads = of_max;
        r.peakInputLoads = 1;
    }
    r.peakOutputReads = of_max;
    r.peakOutputWrites = of_max;
    return r;
}

/** Max over (kernel tile, streamed position) of valid in-tile kernel
 *  coordinates on one WST axis — the peak row (or column) fan-out of a
 *  broadcast cycle. */
u64
wstMaxAxisFanout(const ConvSpec &s, int k_extent, int pk, int in_extent,
                 int out_extent)
{
    u64 best = 0;
    for (int k0 = 0; k0 < k_extent; k0 += pk) {
        const int k_cnt = std::min(pk, k_extent - k0);
        for (int i = 0; i < in_extent; ++i) {
            u64 cnt = 0;
            for (int k = k0; k < k0 + k_cnt; ++k) {
                const int n = i - k + s.pad;
                if (n < 0 || n % s.stride != 0 ||
                    n / s.stride >= out_extent)
                    continue;
                ++cnt;
            }
            best = std::max(best, cnt);
        }
    }
    return best;
}

ScheduleRelation
wstSchedule(const Unroll &u, const ConvSpec &s)
{
    ScheduleRelation r = fromClosedForm(sim::wstClosedForm(u, s));
    r.windows = 1;
    // WST always cycles: every pass streams the full input plane.
    const u64 of_max = umin(u.pOf, s.nof);
    r.peakInputLoads = 1;
    // A resident tile load lands alone on a cycle's weight port —
    // except when every pass is a single cycle (nif = ih = iw = 1):
    // the first cycle then carries both the first pass's pended load
    // and the second pass's boundary load.
    r.peakWeightLoads = umin(u.pKy, s.kh) * umin(u.pKx, s.kw) * of_max;
    if (s.nif == 1 && s.ih == 1 && s.iw == 1) {
        u64 second = 0;
        if (s.kw > u.pKx)
            second = umin(u.pKy, s.kh) *
                     u64(std::min(u.pKx, s.kw - u.pKx)) * of_max;
        else if (s.kh > u.pKy)
            second = u64(std::min(u.pKy, s.kh - u.pKy)) *
                     umin(u.pKx, s.kw) * of_max;
        else if (s.nof > u.pOf)
            second = umin(u.pKy, s.kh) * umin(u.pKx, s.kw) *
                     u64(std::min(u.pOf, s.nof - u.pOf));
        r.peakWeightLoads += second;
    }
    const u64 rows = wstMaxAxisFanout(s, s.kh, u.pKy, s.ih, s.oh);
    const u64 cols = wstMaxAxisFanout(s, s.kw, u.pKx, s.iw, s.ow);
    r.peakSlots = rows * cols * of_max;
    // Every contribution read-modify-writes a distinct partial sum.
    r.peakOutputReads = r.peakSlots;
    r.peakOutputWrites = r.peakSlots;
    return r;
}

ScheduleRelation
ostSchedule(const Unroll &u, const ConvSpec &s)
{
    ScheduleRelation r = fromClosedForm(sim::ostClosedForm(u, s));
    const u64 of_max = umin(u.pOf, s.nof);
    const u64 tile_max = umin(u.pOy, s.oh) * umin(u.pOx, s.ow);
    const u64 per_tile_windows = s.fourDimOutput ? u64(s.nif) : 1;
    r.windows = ceilDiv(u64(s.nof), u64(u.pOf)) *
                ceilDiv(u64(s.oh), u64(u.pOy)) *
                ceilDiv(u64(s.ow), u64(u.pOx)) * per_tile_windows;
    // Each window's single drain covers the whole tile exactly once,
    // so drains and output writes coincide.
    r.cellsDrained = r.totalOutputWrites;
    r.peakSlots = tile_max * of_max;
    r.peakWeightLoads = of_max;
    r.peakInputLoads = tile_max;
    r.peakOutputReads = 0; // registers accumulate; nothing reads back
    r.peakOutputWrites = tile_max * of_max;
    return r;
}

/** Kernel coordinates of one axis a ZFOST/ZFWST parity class streams:
 *  not structural zeros and parity-compatible with the stuffing. */
u64
classAxisCount(const ConvSpec &s, int k_extent, bool row, int c, int z)
{
    u64 cnt = 0;
    for (int k = 0; k < k_extent; ++k) {
        if (row ? s.kernelRowZero(k) : s.kernelColZero(k))
            continue;
        if (z > 1 && (c + k - s.pad) % z != 0)
            continue;
        ++cnt;
    }
    return cnt;
}

ScheduleRelation
zfostSchedule(const Unroll &u, const ConvSpec &s, bool reordered_feed)
{
    ScheduleRelation r =
        fromClosedForm(sim::zfostClosedForm(u, s, reordered_feed));
    const int z = s.inZeroStride;
    const u64 of_max = umin(u.pOf, s.nof);
    bool any_class = false;
    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            if (classAxisCount(s, s.kh, true, cy, z) == 0 ||
                classAxisCount(s, s.kw, false, cx, z) == 0)
                continue; // class streams nothing: no cycles, no tiles
            any_class = true;
            const int n_y = (s.oh - cy + z - 1) / z;
            const int n_x = (s.ow - cx + z - 1) / z;
            const u64 tile_max = umin(u.pOy, n_y) * umin(u.pOx, n_x);
            r.windows += ceilDiv(u64(s.nof), u64(u.pOf)) *
                         ceilDiv(u64(n_y), u64(u.pOy)) *
                         ceilDiv(u64(n_x), u64(u.pOx)) *
                         (s.fourDimOutput ? u64(s.nif) : 1);
            r.peakSlots = std::max(r.peakSlots, tile_max * of_max);
            r.peakInputLoads = std::max(r.peakInputLoads, tile_max);
            r.peakOutputWrites =
                std::max(r.peakOutputWrites, tile_max * of_max);
        }
    }
    if (any_class)
        r.peakWeightLoads = of_max;
    r.peakOutputReads = 0;
    r.cellsDrained = r.totalOutputWrites;
    return r;
}

ScheduleRelation
zfwstSchedule(const Unroll &u, const ConvSpec &s)
{
    ScheduleRelation r = fromClosedForm(sim::zfwstClosedForm(u, s));
    const int z = s.inZeroStride;
    const u64 cap = u64(u.pKx) * u64(u.pKy);
    const u64 of_max = umin(u.pOf, s.nof);
    bool any_class = false;
    bool any_accum = false;
    // First two resident-load words of the walk's pass sequence, for
    // the single-cycle-first-pass coalescing case (see below).
    u64 first_n_eff = 0, first_positions = 0, second_load = 0;
    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            const u64 n_eff = classAxisCount(s, s.kh, true, cy, z) *
                              classAxisCount(s, s.kw, false, cx, z);
            if (n_eff == 0)
                continue;
            const int n_y = (s.oh - cy + z - 1) / z;
            const int n_x = (s.ow - cx + z - 1) / z;
            const u64 e_max = std::min(cap, n_eff);
            const u64 n_chunks = ceilDiv(n_eff, cap);
            if (!any_class) {
                first_n_eff = n_eff;
                first_positions = u64(n_y) * u64(n_x);
                // The second pass of the walk: the next chunk of this
                // class, else this class again on the next of-tile,
                // else the next class's first chunk (found below).
                if (n_chunks > 1)
                    second_load =
                        std::min(cap, n_eff - cap) * of_max;
                else if (s.nof > u.pOf)
                    second_load =
                        e_max * u64(std::min(u.pOf, s.nof - u.pOf));
            } else if (second_load == 0) {
                second_load = e_max * of_max;
            }
            any_class = true;
            if (n_chunks > 1 || (!s.fourDimOutput && s.nif > 1))
                any_accum = true;
            r.windows += ceilDiv(u64(s.nof), u64(u.pOf));
            // The final pass's writes drain every window cell once.
            r.cellsDrained += u64(n_y) * u64(n_x) * u64(s.nof) *
                              (s.fourDimOutput ? u64(s.nif) : 1);
            r.peakSlots = std::max(r.peakSlots, e_max * of_max);
            r.peakWeightLoads =
                std::max(r.peakWeightLoads, e_max * of_max);
            r.peakInputLoads = std::max(r.peakInputLoads, e_max);
        }
    }
    // When the first pass is a single cycle (one channel, one output
    // position), the pended first load and the second pass's boundary
    // load coalesce onto the job's first cycle.
    if (any_class && s.nif == 1 && first_positions == 1)
        r.peakWeightLoads =
            std::max(r.peakWeightLoads,
                     std::min(cap, first_n_eff) * of_max + second_load);
    if (any_class) {
        r.peakOutputWrites = of_max;
        if (any_accum)
            r.peakOutputReads = of_max;
    }
    return r;
}

/** The largest accumulation window (cells) the schedule opens — the
 *  working set the register array / partial-sum buffer must hold. */
u64
staticMaxWindowCells(ArchKind kind, const Unroll &u, const ConvSpec &s)
{
    const u64 of_max = umin(u.pOf, s.nof);
    const u64 job_cells = u64(s.nof) * u64(s.oh) * u64(s.ow) *
                          (s.fourDimOutput ? u64(s.nif) : 1);
    switch (kind) {
      case ArchKind::NLR:
      case ArchKind::WST:
        return job_cells;
      case ArchKind::OST:
        return umin(u.pOy, s.oh) * umin(u.pOx, s.ow) * of_max;
      case ArchKind::ZFOST: {
        const int z = s.inZeroStride;
        u64 best = 0;
        for (int cy = 0; cy < z && cy < s.oh; ++cy)
            for (int cx = 0; cx < z && cx < s.ow; ++cx) {
                if (classAxisCount(s, s.kh, true, cy, z) == 0 ||
                    classAxisCount(s, s.kw, false, cx, z) == 0)
                    continue;
                const int n_y = (s.oh - cy + z - 1) / z;
                const int n_x = (s.ow - cx + z - 1) / z;
                best = std::max(best, umin(u.pOy, n_y) *
                                          umin(u.pOx, n_x) * of_max);
            }
        return best;
      }
      case ArchKind::ZFWST: {
        const int z = s.inZeroStride;
        u64 best = 0;
        for (int cy = 0; cy < z && cy < s.oh; ++cy)
            for (int cx = 0; cx < z && cx < s.ow; ++cx) {
                if (classAxisCount(s, s.kh, true, cy, z) *
                        classAxisCount(s, s.kw, false, cx, z) ==
                    0)
                    continue;
                const u64 n_y = u64((s.oh - cy + z - 1) / z);
                const u64 n_x = u64((s.ow - cx + z - 1) / z);
                best = std::max(
                    best, n_y * n_x * of_max *
                              (s.fourDimOutput ? u64(s.nif) : 1));
            }
        return best;
      }
    }
    util::panic("unknown arch kind");
}

/** The register-array / buffer capacity (cells) available to hold the
 *  largest window of this dataflow. */
u64
windowCapacityCells(ArchKind kind, const Unroll &u, const ConvSpec &s)
{
    const u64 job_cells = u64(s.nof) * u64(s.oh) * u64(s.ow) *
                          (s.fourDimOutput ? u64(s.nif) : 1);
    switch (kind) {
      case ArchKind::NLR:
      case ArchKind::WST:
      case ArchKind::ZFWST:
        // Partial sums live in the planned output working set.
        return job_cells;
      case ArchKind::OST:
      case ArchKind::ZFOST:
        // The output-stationary register array itself.
        return u64(u.pOy) * u64(u.pOx) * u64(u.pOf);
    }
    util::panic("unknown arch kind");
}

/** Append hazard findings for any non-zero hazard counter. Returns
 *  true when the relation is hazard-free. */
bool
reportHazards(const ScheduleRelation &r, const std::string &where,
              Report &report)
{
    if (r.slotConflicts > 0)
        report.error(codes::kSchedSlot, where,
                     std::to_string(r.slotConflicts) +
                         " PE-slot double-bookings in the schedule");
    if (r.wawHazards > 0)
        report.error(codes::kSchedWaw, where,
                     std::to_string(r.wawHazards) +
                         " same-cycle WAW cell writes in an "
                         "accumulation window");
    if (r.rawHazards > 0)
        report.error(codes::kSchedRaw, where,
                     std::to_string(r.rawHazards) +
                         " reads of partial-sum cells before the "
                         "producing pass wrote them");
    if (r.oobAccesses > 0)
        report.error(codes::kSchedOob, where,
                     std::to_string(r.oobAccesses) +
                         " register/buffer accesses outside the "
                         "planned working set");
    if (r.undrainedWrites > 0)
        report.error(codes::kSchedDrain, where,
                     std::to_string(r.undrainedWrites) +
                         " window cells written but never drained");
    return r.hazardFree();
}

} // namespace

// ---------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------

bool
ScheduleRelation::hazardFree() const
{
    return slotConflicts == 0 && wawHazards == 0 && rawHazards == 0 &&
           oobAccesses == 0 && undrainedWrites == 0;
}

std::string
ScheduleRelation::str() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " slots=" << scheduledSlots
       << " peakSlots=" << peakSlots << " peakW=" << peakWeightLoads
       << " peakI=" << peakInputLoads << " peakOr=" << peakOutputReads
       << " peakOw=" << peakOutputWrites << " totW=" << totalWeightLoads
       << " totI=" << totalInputLoads << " totOr=" << totalOutputReads
       << " totOw=" << totalOutputWrites << " windows=" << windows
       << " drained=" << cellsDrained << " conflicts=" << slotConflicts
       << " waw=" << wawHazards << " raw=" << rawHazards
       << " oob=" << oobAccesses << " undrained=" << undrainedWrites;
    return os.str();
}

bool
scheduleModelSupported(core::ArchKind)
{
    return true; // all five paper dataflows are modeled
}

ScheduleRelation
staticNlrSchedule(const Unroll &unroll, const ConvSpec &spec,
                  bool zero_skip)
{
    return nlrSchedule(unroll, spec, zero_skip);
}

ScheduleRelation
staticZfostSchedule(const Unroll &unroll, const ConvSpec &spec,
                    bool reordered_feed)
{
    return zfostSchedule(unroll, spec, reordered_feed);
}

ScheduleRelation
staticScheduleRelation(ArchKind kind, const Unroll &unroll,
                       const ConvSpec &spec)
{
    switch (kind) {
      case ArchKind::NLR:
        return nlrSchedule(unroll, spec, /*zero_skip=*/true);
      case ArchKind::WST:
        return wstSchedule(unroll, spec);
      case ArchKind::OST:
        return ostSchedule(unroll, spec);
      case ArchKind::ZFOST:
        return zfostSchedule(unroll, spec, /*reordered_feed=*/true);
      case ArchKind::ZFWST:
        return zfwstSchedule(unroll, spec);
    }
    util::panic("unknown arch kind");
}

ScheduleRelation
recordedScheduleRelation(sim::Architecture &arch, const ConvSpec &spec,
                         bool functional, sim::RunStats *stats_out)
{
    ShadowRecorder rec;
    arch.setScheduleRecorder(&rec);
    RunStats st;
    if (functional) {
        util::Rng rng(0x5c4ed41ULL);
        tensor::Tensor in = sim::makeStreamedInput(spec, rng);
        tensor::Tensor w = sim::makeStreamedKernel(spec, rng);
        tensor::Tensor out = sim::makeOutputTensor(spec);
        st = arch.run(spec, &in, &w, &out);
    } else {
        st = arch.run(spec);
    }
    arch.setScheduleRecorder(nullptr);
    if (stats_out != nullptr)
        *stats_out = st;
    obs::Registry::instance()
        .counter("ganacc_sched_shadow_runs_total",
                 "recorder-armed shadow walks")
        .add(1);
    return rec.relation();
}

void
checkSchedule(ArchKind kind, const Unroll &unroll, const ConvSpec &spec,
              const PortBudget &budget, Report &report)
{
    const std::unique_ptr<sim::Architecture> arch =
        core::makeArch(kind, unroll);
    const u64 n_pes = u64(arch->numPes());
    const std::string where = jobWhere(arch->name(), spec);
    const ScheduleRelation r =
        staticScheduleRelation(kind, unroll, spec);

    // (a) PE-slot conflict-freedom: the peak booking fits the array
    // and the total booking fits the cycle budget.
    if (r.peakSlots > n_pes)
        report.error(codes::kSchedSlot, where,
                     "peak per-cycle PE booking " +
                         std::to_string(r.peakSlots) + " exceeds the " +
                         std::to_string(n_pes) + "-PE array");
    else if (r.cycles > 0 && r.scheduledSlots > r.cycles * n_pes)
        report.error(codes::kSchedSlot, where,
                     "scheduled slots " +
                         std::to_string(r.scheduledSlots) +
                         " exceed cycles*PEs " +
                         std::to_string(r.cycles * n_pes));

    // (b) register-array hazards: zero by derivation for the modeled
    // loop nests; any non-zero count is a broken schedule model.
    reportHazards(r, where, report);

    // (c) accesses in-bounds within the planned working set.
    const u64 want = staticMaxWindowCells(kind, unroll, spec);
    const u64 have = windowCapacityCells(kind, unroll, spec);
    if (want > have)
        report.error(codes::kSchedOob, where,
                     "largest accumulation window (" +
                         std::to_string(want) +
                         " cells) exceeds the planned working set (" +
                         std::to_string(have) + " cells)");

    // (d) per-cycle port pressure within the budget (default: the
    // array width — one word per lane per port). The weight port is
    // double-buffered: resident-weight dataflows (WST/ZFWST) prefetch
    // the next pass's tile while the current pass computes, so on a
    // single-cycle pass both tiles cross the port in one cycle and
    // the default headroom is twice the array.
    struct PortCheck
    {
        const char *name;
        u64 peak;
        u64 cap;
    };
    const PortCheck ports[] = {
        {"weight", r.peakWeightLoads,
         budget.weight != 0 ? budget.weight : 2 * n_pes},
        {"input", r.peakInputLoads,
         budget.input != 0 ? budget.input : n_pes},
        {"output-read", r.peakOutputReads,
         budget.output != 0 ? budget.output : n_pes},
        {"output-write", r.peakOutputWrites,
         budget.output != 0 ? budget.output : n_pes},
    };
    for (const PortCheck &p : ports)
        if (p.peak > p.cap)
            report.error(codes::kSchedPort, where,
                         std::string(p.name) + " port needs " +
                             std::to_string(p.peak) +
                             " words/cycle at its peak, budget is " +
                             std::to_string(p.cap));
}

void
checkSchedule(ArchKind kind, const Unroll &unroll,
              const std::vector<ConvSpec> &jobs,
              const PortBudget &budget, Report &report)
{
    for (const ConvSpec &job : jobs)
        checkSchedule(kind, unroll, job, budget, report);
}

bool
checkScheduleAgainstShadow(ArchKind kind, const Unroll &unroll,
                           const ConvSpec &spec, Report &report)
{
    const ScheduleRelation predicted =
        staticScheduleRelation(kind, unroll, spec);
    const std::unique_ptr<sim::Architecture> arch =
        core::makeArch(kind, unroll);
    const std::string where = jobWhere(arch->name(), spec);
    const ScheduleRelation recorded =
        recordedScheduleRelation(*arch, spec);
    bool ok = reportHazards(recorded, where, report);
    if (!(predicted == recorded)) {
        report.error(codes::kSchedDiverge, where,
                     "static schedule relation diverges from the "
                     "recorded walk: predicted {" +
                         predicted.str() + "} recorded {" +
                         recorded.str() + "}");
        ok = false;
    }
    return ok;
}

bool
checkBaselineSchedule(BaselineKind kind, const Unroll &unroll,
                      const ConvSpec &spec, Report &report)
{
    std::unique_ptr<sim::Architecture> arch;
    if (kind == BaselineKind::CNV)
        arch = std::make_unique<sim::Cnv>(unroll);
    else
        arch = std::make_unique<sim::Rst>(unroll);
    const std::string where = jobWhere(arch->name(), spec);
    report.note(codes::kSchedUnmodeled, where,
                baselineName(kind) +
                    " has no closed-form schedule model (" +
                    (kind == BaselineKind::CNV
                         ? "the schedule is value-dependent"
                         : "the walk is the only model") +
                    "); checked dynamically against the occupancy "
                    "envelope");
    RunStats st;
    const ScheduleRelation r = recordedScheduleRelation(
        *arch, spec, /*functional=*/kind == BaselineKind::CNV, &st);
    bool ok = reportHazards(r, where, report);
    const u64 n_pes = u64(arch->numPes());
    if (r.peakSlots > n_pes) {
        report.error(codes::kSchedSlot, where,
                     "recorded peak per-cycle booking " +
                         std::to_string(r.peakSlots) +
                         " exceeds the " + std::to_string(n_pes) +
                         "-PE array");
        ok = false;
    }
    if (r.cycles != st.cycles ||
        r.scheduledSlots != st.effectiveMacs + st.ineffectualMacs ||
        r.totalWeightLoads != st.weightLoads ||
        r.totalInputLoads != st.inputLoads ||
        r.totalOutputReads != st.outputReads ||
        r.totalOutputWrites != st.outputWrites) {
        report.error(codes::kSchedDiverge, where,
                     "recorded schedule relation disagrees with the "
                     "walk's RunStats: recorded {" +
                         r.str() + "} stats {" + st.str() + "}");
        ok = false;
    }
    return ok;
}

SchedulePrefilter::SchedulePrefilter(const gan::GanModel &model)
{
    for (sim::PhaseFamily f :
         {sim::PhaseFamily::D, sim::PhaseFamily::G, sim::PhaseFamily::Dw,
          sim::PhaseFamily::Gw})
        families_.push_back({f, sim::familyJobs(model, f)});
}

void
SchedulePrefilter::check(int w_pes, int st_pes, Report &report) const
{
    const PortBudget budget; // defaults: the array width
    for (const FamilyJobs &fam : families_) {
        checkSchedule(ArchKind::ZFOST,
                      core::paperUnroll(ArchKind::ZFOST,
                                        core::BankRole::ST, fam.family,
                                        st_pes),
                      fam.jobs, budget, report);
        checkSchedule(ArchKind::ZFWST,
                      core::paperUnroll(ArchKind::ZFWST,
                                        core::BankRole::W, fam.family,
                                        w_pes),
                      fam.jobs, budget, report);
    }
}

} // namespace verify
} // namespace ganacc
