/**
 * @file
 * Tests of the conformance harness itself (src/conform/): trace codec
 * round-trips, generator determinism, clean conformance on both
 * transports with fault injection armed, the malformed-frame table
 * pinned against the live decoder and a live pipe daemon, and the
 * harness self-test — a deliberately injected store bug must be
 * caught and delta-debug shrunk to a tiny replayable trace.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "conform/harness.hh"
#include "conform/ops.hh"
#include "conform/shrink.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "util/logging.hh"

using namespace ganacc;

namespace {

std::vector<conform::Op>
sampleSequence(std::uint64_t seed, std::size_t ops)
{
    conform::GenOptions opt;
    opt.ops = ops;
    return conform::generateSequence(seed, opt);
}

} // namespace

TEST(ConformOps, CodecRoundTripsEveryGeneratedOp)
{
    for (std::uint64_t seed : {1u, 7u, 42u}) {
        const auto seq = sampleSequence(seed, 300);
        for (const conform::Op &op : seq) {
            const std::string line = conform::encodeOp(op);
            const conform::Op back = conform::decodeOp(line);
            EXPECT_EQ(line, conform::encodeOp(back)) << line;
        }
        const std::string trace = conform::encodeTrace(seq);
        EXPECT_EQ(trace,
                  conform::encodeTrace(conform::decodeTrace(trace)));
    }
}

TEST(ConformOps, GeneratorIsDeterministicPerSeed)
{
    const auto a = sampleSequence(42, 400);
    const auto b = sampleSequence(42, 400);
    EXPECT_EQ(conform::encodeTrace(a), conform::encodeTrace(b));
    const auto c = sampleSequence(43, 400);
    EXPECT_NE(conform::encodeTrace(a), conform::encodeTrace(c));
}

TEST(ConformOps, GeneratorCoversTheGrammar)
{
    const auto seq = sampleSequence(9, 600);
    std::size_t kinds[16] = {};
    for (const conform::Op &op : seq)
        ++kinds[std::size_t(op.kind)];
    for (auto k :
         {conform::OpKind::SimRequest, conform::OpKind::NetRequest,
          conform::OpKind::DupBurst, conform::OpKind::Malformed,
          conform::OpKind::StatsProbe, conform::OpKind::EvictMemory,
          conform::OpKind::EvictEntry, conform::OpKind::CorruptEntry,
          conform::OpKind::PlantStale, conform::OpKind::FsFault,
          conform::OpKind::Restart})
        EXPECT_GT(kinds[std::size_t(k)], 0u)
            << conform::opKindName(k);
}

/** Satellite: the malformed-frame table's expected error strings are
 *  exactly what the live decoder produces. */
TEST(ConformMalformed, TableMatchesLiveDecoder)
{
    for (const conform::MalformedFrame &f :
         conform::malformedFrames()) {
        SCOPED_TRACE(f.name);
        try {
            (void)serve::decodeRequest(f.line);
            FAIL() << "decoded without error: " << f.line;
        } catch (const util::FatalError &e) {
            EXPECT_EQ(f.error, std::string(e.what()));
        }
    }
}

/** Satellite: every malformed frame yields exactly one ok:false
 *  response carrying the pinned error text, and the connection
 *  survives — a valid request after the whole table still answers. */
TEST(ConformMalformed, PipeDaemonSurvivesEveryFrame)
{
    const auto &table = conform::malformedFrames();
    std::ostringstream reqs;
    for (const conform::MalformedFrame &f : table)
        reqs << f.line << "\n";
    serve::Request valid;
    valid.id = 777;
    valid.statsProbe = true;
    reqs << serve::encodeRequest(valid) << "\n";

    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    serve::Engine engine(eo);
    std::istringstream in(reqs.str());
    std::ostringstream out;
    const serve::ServeTotals totals =
        serve::runPipeServer(in, out, engine);
    engine.drain();
    EXPECT_EQ(totals.lines, table.size() + 1);
    EXPECT_EQ(totals.responses, table.size() + 1);

    std::istringstream rsps(out.str());
    std::string line;
    for (const conform::MalformedFrame &f : table) {
        SCOPED_TRACE(f.name);
        ASSERT_TRUE(std::getline(rsps, line));
        const serve::Response rsp = serve::decodeResponse(line);
        EXPECT_FALSE(rsp.ok);
        EXPECT_EQ(f.error, rsp.error);
    }
    ASSERT_TRUE(std::getline(rsps, line));
    const serve::Response last = serve::decodeResponse(line);
    EXPECT_TRUE(last.ok);
    EXPECT_EQ(777u, last.id);
}

namespace {

conform::RunOptions
testRunOptions(conform::SutMode mode, const char *tag)
{
    conform::RunOptions opt;
    opt.mode = mode;
    opt.scratchDir =
        conform::defaultScratchDir() + "-t" + tag + "-" +
        conform::sutModeName(mode);
    return opt;
}

} // namespace

TEST(ConformHarness, UnixDaemonConformsWithFaultsArmed)
{
    const auto seq = sampleSequence(5, 250);
    const conform::Report rep = conform::runConformance(
        seq, testRunOptions(conform::SutMode::Unix, "clean"));
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(seq.size(), rep.opsApplied);
}

TEST(ConformHarness, PipeDaemonConformsWithFaultsArmed)
{
    const auto seq = sampleSequence(5, 250);
    const conform::Report rep = conform::runConformance(
        seq, testRunOptions(conform::SutMode::Pipe, "clean"));
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(seq.size(), rep.opsApplied);
}

TEST(ConformHarness, TcpDaemonConformsWithFaultsArmed)
{
    const auto seq = sampleSequence(5, 250);
    const conform::Report rep = conform::runConformance(
        seq, testRunOptions(conform::SutMode::Tcp, "clean"));
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(seq.size(), rep.opsApplied);
}

/** A 2-shard TCP fleet behind fleet::Router must conform to the
 *  sharded reference model: ring placement, RF=2 replication and
 *  per-shard stores all predicted op for op. Filesystem-fault ops are
 *  process-global, so the fleet generator profile drops them. */
TEST(ConformHarness, TwoShardFleetConforms)
{
    conform::GenOptions gopt;
    gopt.ops = 250;
    gopt.fsFaults = false;
    const auto seq = conform::generateSequence(13, gopt);

    conform::RunOptions opt;
    opt.shards = 2;
    opt.scratchDir = conform::defaultScratchDir() + "-tfleet2";
    const conform::Report rep = conform::runConformance(seq, opt);
    EXPECT_TRUE(rep.clean()) << rep.text();
    EXPECT_EQ(seq.size(), rep.opsApplied);
}

/** The fleet harness self-test: the same injected store bug the
 *  single-daemon runs catch must also be caught through the router —
 *  sharding must not blunt the differential check. */
TEST(ConformHarness, FleetCatchesInjectedStaleVersionBug)
{
    conform::GenOptions gopt;
    gopt.ops = 500;
    gopt.fsFaults = false;
    const auto seq = conform::generateSequence(7, gopt);

    conform::RunOptions opt;
    opt.shards = 2;
    opt.scratchDir = conform::defaultScratchDir() + "-tfleetbug";
    opt.bug = serve::StoreBug::SkipStaleCheck;
    const conform::Report rep = conform::runConformance(seq, opt);
    ASSERT_FALSE(rep.clean())
        << "injected stale-version bug went undetected in the fleet";
}

TEST(ConformHarness, ReportsAreDeterministic)
{
    const auto seq = sampleSequence(11, 150);
    const auto opt = testRunOptions(conform::SutMode::Pipe, "det");
    const conform::Report a = conform::runConformance(seq, opt);
    const conform::Report b = conform::runConformance(seq, opt);
    EXPECT_EQ(a.text(), b.text());
    EXPECT_EQ(a.linesSent, b.linesSent);
}

/** The harness self-test: a store that skips stale-version
 *  invalidation must be caught, and the failing sequence must shrink
 *  to a handful of ops whose trace replays the failure — and passes
 *  once the bug is off. */
TEST(ConformHarness, CatchesAndShrinksInjectedStaleVersionBug)
{
    const auto seq = sampleSequence(7, 500);
    auto opt = testRunOptions(conform::SutMode::Unix, "bug");
    opt.bug = serve::StoreBug::SkipStaleCheck;

    const conform::Report rep = conform::runConformance(seq, opt);
    ASSERT_FALSE(rep.clean())
        << "injected stale-version bug went undetected";

    const conform::ShrinkResult sr =
        conform::shrinkSequence(seq, opt);
    EXPECT_LE(sr.ops.size(), 20u) << "shrink stalled at "
                                  << sr.ops.size() << " ops";
    EXPECT_FALSE(conform::runConformance(sr.ops, opt).clean());

    // The minimized trace is self-contained: decode it back and it
    // still reproduces; with the bug off the same trace is clean.
    const auto replayed =
        conform::decodeTrace(conform::encodeTrace(sr.ops));
    EXPECT_FALSE(conform::runConformance(replayed, opt).clean());
    opt.bug = serve::StoreBug::None;
    const conform::Report clean =
        conform::runConformance(replayed, opt);
    EXPECT_TRUE(clean.clean()) << clean.text();
}

TEST(ConformHarness, CatchesInjectedSkipQuarantineBug)
{
    const auto seq = sampleSequence(7, 500);
    auto opt = testRunOptions(conform::SutMode::Pipe, "qbug");
    opt.bug = serve::StoreBug::SkipQuarantine;
    const conform::Report rep = conform::runConformance(seq, opt);
    ASSERT_FALSE(rep.clean())
        << "injected skip-quarantine bug went undetected";
}
