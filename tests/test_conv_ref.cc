/**
 * @file
 * Golden-model convolution tests: the algebraic identities the
 * accelerator design rests on.
 *
 *  - T-CONV computed via zero-insertion equals the direct gather form
 *    (this equivalence is why the hardware can treat transposed
 *    convolution as a convolution over a zero-stuffed map).
 *  - S-CONV and T-CONV are exact adjoints (<Conv x, y> = <x, ConvT y>),
 *    which is what makes the backward-error pass of one network the
 *    same convolution family as the forward pass of the other.
 *  - W-CONV computed as "dilated error slides over the input"
 *    (Fig. 6(c)) equals the direct weight-gradient sum.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "nn/conv_ref.hh"
#include "nn/zero_insert.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using nn::Conv2dGeom;
using tensor::approxEqual;
using tensor::maxAbsDiff;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

/** Inner product of two same-shape tensors. */
double
dot(const Tensor &a, const Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i)
        s += double(a.data()[i]) * b.data()[i];
    return s;
}

// ---------------------------------------------------------------------
// Zero-insertion helpers
// ---------------------------------------------------------------------

TEST(ZeroInsert, Stride2InsertsBetweenElements)
{
    Tensor in(1, 1, 2, 2);
    in.at(0, 0, 0, 0) = 1;
    in.at(0, 0, 0, 1) = 2;
    in.at(0, 0, 1, 0) = 3;
    in.at(0, 0, 1, 1) = 4;
    Tensor out = nn::zeroInsertSpatial(in, 2);
    EXPECT_EQ(out.shape(), Shape4(1, 1, 3, 3));
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 0), 1);
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 2), 2);
    EXPECT_FLOAT_EQ(out.get(0, 0, 2, 0), 3);
    EXPECT_FLOAT_EQ(out.get(0, 0, 2, 2), 4);
    EXPECT_FLOAT_EQ(out.get(0, 0, 1, 1), 0);
    EXPECT_EQ(out.countZeros(), 5u);
}

TEST(ZeroInsert, ExtraTrailingZeros)
{
    Tensor in(1, 1, 2, 2, 1.0f);
    Tensor out = nn::zeroInsertSpatial(in, 2, 1);
    EXPECT_EQ(out.shape(), Shape4(1, 1, 4, 4));
    for (int x = 0; x < 4; ++x)
        EXPECT_FLOAT_EQ(out.get(0, 0, 3, x), 0.0f);
}

TEST(ZeroInsert, Stride1IsIdentity)
{
    Rng rng(3);
    Tensor in(1, 2, 3, 3);
    in.fillUniform(rng);
    EXPECT_EQ(maxAbsDiff(nn::zeroInsertSpatial(in, 1), in), 0.0f);
}

TEST(ZeroInsert, ZeroFractionMatchesPaperClaim)
{
    // "These inserted zeros account for about 64%... of total
    // multiplications in G" — the stuffed 32x32 -> 63x63 map is ~74%
    // zeros; across DCGAN's generator maps the fraction is 64-75%.
    double f = nn::zeroInsertZeroFraction(32, 32, 2);
    EXPECT_NEAR(f, 0.742, 0.01);
    double f4 = nn::zeroInsertZeroFraction(4, 4, 2);
    EXPECT_NEAR(f4, 0.673, 0.01);
}

TEST(ZeroInsert, PadSurroundsWithZeros)
{
    Tensor in(1, 1, 2, 2, 5.0f);
    Tensor out = nn::padSpatial(in, 2);
    EXPECT_EQ(out.shape(), Shape4(1, 1, 6, 6));
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.get(0, 0, 2, 2), 5.0f);
}

TEST(ZeroInsert, FlipKernelIs180Rotation)
{
    Tensor w(1, 1, 2, 3);
    float v = 0;
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 3; ++x)
            w.at(0, 0, y, x) = v++;
    Tensor f = nn::flipKernelSpatial(w);
    EXPECT_FLOAT_EQ(f.get(0, 0, 0, 0), w.get(0, 0, 1, 2));
    EXPECT_FLOAT_EQ(f.get(0, 0, 1, 2), w.get(0, 0, 0, 0));
    // Double flip is identity.
    EXPECT_EQ(maxAbsDiff(nn::flipKernelSpatial(f), w), 0.0f);
}

TEST(ZeroInsert, SwapLeadingAxesTransposesChannels)
{
    Rng rng(4);
    Tensor w(3, 5, 2, 2);
    w.fillUniform(rng);
    Tensor s = nn::swapLeadingAxes(w);
    EXPECT_EQ(s.shape(), Shape4(5, 3, 2, 2));
    EXPECT_FLOAT_EQ(s.get(4, 2, 1, 0), w.get(2, 4, 1, 0));
}

// ---------------------------------------------------------------------
// S-CONV basics
// ---------------------------------------------------------------------

TEST(SConv, HandComputedExample)
{
    // 1x1x3x3 input, 1x1x2x2 kernel, stride 1, no pad.
    Tensor in(1, 1, 3, 3);
    float v = 1;
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            in.at(0, 0, y, x) = v++;
    Tensor w(1, 1, 2, 2, 1.0f);
    Tensor out = nn::sconvForward(in, w, {2, 1, 0, 0});
    EXPECT_EQ(out.shape(), Shape4(1, 1, 2, 2));
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_FLOAT_EQ(out.get(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(SConv, StrideSkipsPositions)
{
    Tensor in(1, 1, 4, 4, 1.0f);
    Tensor w(1, 1, 2, 2, 1.0f);
    Tensor out = nn::sconvForward(in, w, {2, 2, 0, 0});
    EXPECT_EQ(out.shape(), Shape4(1, 1, 2, 2));
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x)
            EXPECT_FLOAT_EQ(out.get(0, 0, y, x), 4.0f);
}

TEST(SConv, PaddingContributesZero)
{
    Tensor in(1, 1, 2, 2, 1.0f);
    Tensor w(1, 1, 3, 3, 1.0f);
    Tensor out = nn::sconvForward(in, w, {3, 1, 1, 0});
    EXPECT_EQ(out.shape(), Shape4(1, 1, 2, 2));
    // Corner output sees only the 2x2 real values.
    EXPECT_FLOAT_EQ(out.get(0, 0, 0, 0), 4.0f);
}

TEST(SConv, MultiChannelAccumulates)
{
    Rng rng(9);
    Tensor in(1, 3, 4, 4);
    in.fillUniform(rng);
    Tensor w(2, 3, 3, 3);
    w.fillUniform(rng);
    Tensor out = nn::sconvForward(in, w, {3, 1, 1, 0});
    // Sum of per-channel convolutions equals the multi-channel conv.
    Tensor acc(1, 2, 4, 4, 0.0f);
    for (int c = 0; c < 3; ++c) {
        Tensor in_c(1, 1, 4, 4);
        Tensor w_c(2, 1, 3, 3);
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x)
                in_c.at(0, 0, y, x) = in.get(0, c, y, x);
        for (int of = 0; of < 2; ++of)
            for (int y = 0; y < 3; ++y)
                for (int x = 0; x < 3; ++x)
                    w_c.at(of, 0, y, x) = w.get(of, c, y, x);
        acc.add(nn::sconvForward(in_c, w_c, {3, 1, 1, 0}));
    }
    EXPECT_TRUE(approxEqual(out, acc, 1e-4f));
}

// ---------------------------------------------------------------------
// T-CONV identities
// ---------------------------------------------------------------------

class TconvGeomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>>
{
};

TEST_P(TconvGeomTest, ZeroInsertPathEqualsGatherPath)
{
    auto [in_dim, k, s, p, op] = GetParam();
    Rng rng(17);
    Tensor in(1, 3, in_dim, in_dim);
    in.fillUniform(rng);
    Tensor w(3, 2, k, k);
    w.fillUniform(rng);
    Conv2dGeom g{k, s, p, op};
    Tensor direct = nn::tconvForward(in, w, g);
    Tensor stuffed = nn::tconvForwardViaZeroInsert(in, w, g);
    EXPECT_TRUE(approxEqual(direct, stuffed, 1e-4f))
        << "in=" << in_dim << " k=" << k << " s=" << s << " p=" << p
        << " op=" << op << " diff=" << maxAbsDiff(direct, stuffed);
}

TEST_P(TconvGeomTest, TconvIsAdjointOfSconv)
{
    auto [out_dim, k, s, p, op] = GetParam();
    // The S-CONV maps (big) -> (small); its adjoint maps back.
    int big = tensor::tconvOutDim(out_dim, k, s, p, op);
    Rng rng(23);
    Tensor x(1, 2, big, big);
    x.fillUniform(rng);
    Tensor y(1, 2, out_dim, out_dim);
    y.fillUniform(rng);
    // Weights: S-CONV layout (OF=2, IF=2, k, k); T-CONV uses the
    // swapped layout.
    Tensor w(2, 2, k, k);
    w.fillUniform(rng);
    Conv2dGeom g{k, s, p, op};
    Tensor conv_x = nn::sconvForward(x, w, g);
    ASSERT_EQ(conv_x.shape(), y.shape());
    Tensor tconv_y = nn::tconvForward(y, w, g);
    ASSERT_EQ(tconv_y.shape(), x.shape());
    // <Conv x, y> == <x, ConvT y>.
    EXPECT_NEAR(dot(conv_x, y), dot(x, tconv_y),
                1e-3 * (1.0 + std::fabs(dot(conv_x, y))));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TconvGeomTest,
    ::testing::Values(std::make_tuple(4, 5, 2, 2, 1),  // DCGAN layer
                      std::make_tuple(7, 5, 2, 2, 1),  // MNIST-GAN
                      std::make_tuple(4, 4, 2, 1, 0),  // cGAN layer
                      std::make_tuple(1, 4, 1, 0, 0),  // z-projection
                      std::make_tuple(3, 3, 2, 1, 1),
                      std::make_tuple(5, 3, 1, 1, 0),
                      std::make_tuple(2, 2, 2, 0, 0),
                      std::make_tuple(6, 3, 3, 0, 2)));

TEST(TConv, UpsamplesByStrideFactor)
{
    Rng rng(31);
    Tensor in(1, 4, 8, 8);
    in.fillUniform(rng);
    Tensor w(4, 2, 5, 5);
    w.fillUniform(rng);
    Tensor out = nn::tconvForward(in, w, {5, 2, 2, 1});
    EXPECT_EQ(out.shape(), Shape4(1, 2, 16, 16));
}

// ---------------------------------------------------------------------
// W-CONV identities
// ---------------------------------------------------------------------

class WconvGeomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(WconvGeomTest, DilatedKernelFormEqualsDirectGradient)
{
    auto [in_dim, k, s, p] = GetParam();
    Rng rng(37);
    Tensor in(2, 3, in_dim, in_dim);
    in.fillUniform(rng);
    Conv2dGeom g{k, s, p, 0};
    int out_dim = tensor::convOutDim(in_dim, k, s, p);
    Tensor dout(2, 4, out_dim, out_dim);
    dout.fillUniform(rng);
    Tensor direct = nn::sconvBackwardWeights(in, dout, g, k, k);
    Tensor dilated = nn::wconvViaDilatedKernel(in, dout, g, k, k);
    EXPECT_TRUE(approxEqual(direct, dilated, 1e-3f))
        << "diff=" << maxAbsDiff(direct, dilated);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WconvGeomTest,
    ::testing::Values(std::make_tuple(8, 5, 2, 2),
                      std::make_tuple(8, 4, 2, 1),
                      std::make_tuple(7, 3, 1, 1),
                      std::make_tuple(4, 4, 1, 0),
                      std::make_tuple(10, 3, 3, 0)));

TEST(WConv, FourDimOutputHasNoChannelAccumulation)
{
    // Each (of, if) plane of the gradient must match the single-
    // channel gradient computed in isolation.
    Rng rng(41);
    Tensor in(1, 2, 6, 6);
    in.fillUniform(rng);
    Conv2dGeom g{3, 1, 1, 0};
    Tensor dout(1, 3, 6, 6);
    dout.fillUniform(rng);
    Tensor dw = nn::sconvBackwardWeights(in, dout, g, 3, 3);
    EXPECT_EQ(dw.shape(), Shape4(3, 2, 3, 3));
    for (int of = 0; of < 3; ++of)
        for (int c = 0; c < 2; ++c) {
            Tensor in_c(1, 1, 6, 6), dout_f(1, 1, 6, 6);
            for (int y = 0; y < 6; ++y)
                for (int x = 0; x < 6; ++x) {
                    in_c.at(0, 0, y, x) = in.get(0, c, y, x);
                    dout_f.at(0, 0, y, x) = dout.get(0, of, y, x);
                }
            Tensor dw_1 = nn::sconvBackwardWeights(in_c, dout_f, g, 3, 3);
            for (int ky = 0; ky < 3; ++ky)
                for (int kx = 0; kx < 3; ++kx)
                    EXPECT_NEAR(dw.get(of, c, ky, kx),
                                dw_1.get(0, 0, ky, kx), 1e-4);
        }
}

// ---------------------------------------------------------------------
// Gradient checks by numerical differentiation
// ---------------------------------------------------------------------

/** Numerically differentiate sum(conv(in, w) * dout_mask) w.r.t. one
 *  element and compare with the analytic gradient. */
TEST(GradientCheck, SconvWeightsAndData)
{
    Rng rng(53);
    Conv2dGeom g{3, 2, 1, 0};
    Tensor in(1, 2, 5, 5), w(3, 2, 3, 3);
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor out = nn::sconvForward(in, w, g);
    Tensor mask(out.shape());
    mask.fillUniform(rng);

    Tensor dw = nn::sconvBackwardWeights(in, mask, g, 3, 3);
    Tensor din = nn::sconvBackwardData(mask, w, g, 5, 5);

    const float eps = 1e-3f;
    Rng pick(7);
    for (int trial = 0; trial < 20; ++trial) {
        // Weight gradient.
        int of = pick.uniformInt(0, 2), c = pick.uniformInt(0, 1);
        int ky = pick.uniformInt(0, 2), kx = pick.uniformInt(0, 2);
        Tensor wp = w;
        wp.at(of, c, ky, kx) += eps;
        Tensor wm = w;
        wm.at(of, c, ky, kx) -= eps;
        double fp = dot(nn::sconvForward(in, wp, g), mask);
        double fm = dot(nn::sconvForward(in, wm, g), mask);
        double numeric = (fp - fm) / (2 * eps);
        EXPECT_NEAR(numeric, dw.get(of, c, ky, kx), 2e-2)
            << "weight grad at " << of << c << ky << kx;

        // Data gradient.
        int y = pick.uniformInt(0, 4), x = pick.uniformInt(0, 4);
        Tensor ip = in;
        ip.at(0, c, y, x) += eps;
        Tensor im = in;
        im.at(0, c, y, x) -= eps;
        fp = dot(nn::sconvForward(ip, w, g), mask);
        fm = dot(nn::sconvForward(im, w, g), mask);
        numeric = (fp - fm) / (2 * eps);
        EXPECT_NEAR(numeric, din.get(0, c, y, x), 2e-2)
            << "data grad at " << c << y << x;
    }
}

TEST(GradientCheck, TconvWeightsAndData)
{
    Rng rng(59);
    Conv2dGeom g{4, 2, 1, 0};
    Tensor in(1, 3, 4, 4), w(3, 2, 4, 4);
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor out = nn::tconvForward(in, w, g);
    Tensor mask(out.shape());
    mask.fillUniform(rng);

    Tensor dw = nn::tconvBackwardWeights(in, mask, g, 4, 4);
    Tensor din = nn::tconvBackwardData(mask, w, g, 4, 4);

    const float eps = 1e-3f;
    Rng pick(13);
    for (int trial = 0; trial < 20; ++trial) {
        int c = pick.uniformInt(0, 2), of = pick.uniformInt(0, 1);
        int ky = pick.uniformInt(0, 3), kx = pick.uniformInt(0, 3);
        Tensor wp = w;
        wp.at(c, of, ky, kx) += eps;
        Tensor wm = w;
        wm.at(c, of, ky, kx) -= eps;
        double fp = dot(nn::tconvForward(in, wp, g), mask);
        double fm = dot(nn::tconvForward(in, wm, g), mask);
        double numeric = (fp - fm) / (2 * eps);
        EXPECT_NEAR(numeric, dw.get(c, of, ky, kx), 2e-2);

        int y = pick.uniformInt(0, 3), x = pick.uniformInt(0, 3);
        Tensor ip = in;
        ip.at(0, c, y, x) += eps;
        Tensor im = in;
        im.at(0, c, y, x) -= eps;
        fp = dot(nn::tconvForward(ip, w, g), mask);
        fm = dot(nn::tconvForward(im, w, g), mask);
        numeric = (fp - fm) / (2 * eps);
        EXPECT_NEAR(numeric, din.get(0, c, y, x), 2e-2);
    }
}

} // namespace
