/**
 * @file
 * Anchor translation unit for the tensor library.
 */

#include "tensor/tensor.hh"

namespace ganacc {
namespace tensor {

// Tensor is header-only for inlining in simulator hot loops.

} // namespace tensor
} // namespace ganacc
