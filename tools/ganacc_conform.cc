/**
 * @file
 * ganacc-conform — randomized serve/store conformance runner.
 *
 * Generates a seeded operation sequence (or replays a trace), applies
 * it to a live in-process daemon in Unix-socket, pipe and/or loopback
 * TCP mode while a single-threaded reference model predicts every
 * observable, and reports any divergence. Failing sequences are
 * delta-debug shrunk to a minimal repro and dumped as a replayable
 * JSONL trace. With --shards N (N >= 2) the daemon side is instead a
 * TCP fleet behind fleet::Router, and the reference side models the
 * ring placement and RF=2 replication per shard.
 *
 *   ganacc-conform --seed 42 --ops 5000 --mode all
 *   ganacc-conform --replay repro.jsonl --mode unix
 *   ganacc-conform --seed 9 --shards 2 --ops 2000
 *   ganacc-conform --seed 7 --inject-bug stale-version   # expect exit 1
 *
 * Exit codes: 0 = conformant, 1 = divergence found, 2 = usage error.
 * Output for a clean run is a pure function of (seed, flags), so CI
 * can diff two runs byte for byte (docs/conformance.md).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "conform/harness.hh"
#include "conform/ops.hh"
#include "conform/shrink.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        util::fatal("cannot open ", path);
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        util::fatal("cannot write ", path);
    os << bytes;
}

} // namespace

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const int seed =
        args.getInt("seed", 1, "sequence generator seed");
    const int ops = args.getInt(
        "ops", 500, "generated sequence length (ignored by --replay)");
    const std::string mode_name = args.getString(
        "mode", "both",
        "daemon transport: unix | pipe | tcp | both (unix+pipe) | "
        "all");
    const int shards = args.getInt(
        "shards", 1,
        "fleet width; >= 2 runs a TCP fleet behind fleet::Router "
        "(--mode is ignored, filesystem-fault ops are not generated)");
    const std::string replay = args.getString(
        "replay", "", "run this JSONL trace instead of generating");
    const std::string dump_trace = args.getString(
        "dump-trace", "", "write the sequence under test to FILE");
    const std::string repro = args.getString(
        "repro", "conform_repro.jsonl",
        "where to dump the minimized failing trace");
    const std::string bug_name = args.getString(
        "inject-bug", "",
        "arm a deliberate store bug (self-test): "
        "stale-version | skip-quarantine");
    const std::string scratch = args.getString(
        "scratch", conform::defaultScratchDir(),
        "scratch root for store + socket (wiped per run)");
    const bool no_shrink = args.getFlag(
        "no-shrink", "report the first failing sequence unminimized");
    const bool no_faults = args.getFlag(
        "no-faults", "generate no filesystem-fault ops");
    const bool no_restarts = args.getFlag(
        "no-restarts", "generate no daemon-restart ops");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    if (ops <= 0)
        util::fatal("--ops must be positive");
    if (shards < 1)
        util::fatal("--shards must be >= 1");
    std::vector<conform::SutMode> modes;
    if (mode_name == "unix")
        modes = {conform::SutMode::Unix};
    else if (mode_name == "pipe")
        modes = {conform::SutMode::Pipe};
    else if (mode_name == "tcp")
        modes = {conform::SutMode::Tcp};
    else if (mode_name == "both")
        modes = {conform::SutMode::Unix, conform::SutMode::Pipe};
    else if (mode_name == "all")
        modes = {conform::SutMode::Unix, conform::SutMode::Pipe,
                 conform::SutMode::Tcp};
    else
        util::fatal("--mode must be unix, pipe, tcp, both or all, "
                    "not \"",
                    mode_name, "\"");
    serve::StoreBug bug = serve::StoreBug::None;
    if (bug_name == "stale-version")
        bug = serve::StoreBug::SkipStaleCheck;
    else if (bug_name == "skip-quarantine")
        bug = serve::StoreBug::SkipQuarantine;
    else if (!bug_name.empty())
        util::fatal("--inject-bug must be stale-version or "
                    "skip-quarantine, not \"",
                    bug_name, "\"");

    std::vector<conform::Op> seq;
    if (!replay.empty()) {
        seq = conform::decodeTrace(slurp(replay));
        std::cout << "ganacc-conform: replaying " << seq.size()
                  << " ops\n";
    } else {
        conform::GenOptions gopt;
        gopt.ops = std::size_t(ops);
        // Fault budgets are process-global: which shard of a fleet
        // consumes them is scheduling, so the fleet model cannot
        // mirror them — generation drops FsFault ops there.
        gopt.fsFaults = !no_faults && shards == 1;
        gopt.restarts = !no_restarts;
        seq = conform::generateSequence(std::uint64_t(seed), gopt);
        std::cout << "ganacc-conform: seed " << seed << ", "
                  << seq.size() << " ops\n";
    }
    if (!dump_trace.empty())
        spit(dump_trace, conform::encodeTrace(seq));

    struct Run
    {
        std::string label;      ///< output + scratch suffix
        std::string replayHint; ///< flag that reproduces this SUT
        conform::RunOptions opt;
    };
    std::vector<Run> runs;
    if (shards > 1) {
        Run run;
        run.label = "fleet" + std::to_string(shards);
        run.replayHint = "--shards " + std::to_string(shards);
        run.opt.shards = shards;
        runs.push_back(std::move(run));
    } else {
        for (const conform::SutMode mode : modes) {
            Run run;
            run.label = conform::sutModeName(mode);
            run.replayHint = "--mode " + run.label;
            run.opt.mode = mode;
            runs.push_back(std::move(run));
        }
    }
    for (Run &run : runs) {
        conform::RunOptions &opt = run.opt;
        opt.scratchDir = scratch + "-" + run.label;
        opt.bug = bug;
        const conform::Report rep = conform::runConformance(seq, opt);
        std::cout << run.label << ": " << rep.opsApplied
                  << " ops applied, " << rep.linesSent
                  << " lines sent, " << rep.divergences.size()
                  << " divergences\n";
        if (rep.clean())
            continue;

        std::cout << rep.text() << "\n";
        std::vector<conform::Op> failing = seq;
        if (!no_shrink) {
            const conform::ShrinkResult sr =
                conform::shrinkSequence(seq, opt);
            failing = sr.ops;
            std::cout << "shrunk to " << failing.size() << " ops in "
                      << sr.runs << " runs:\n";
            const conform::Report min =
                conform::runConformance(failing, opt);
            std::cout << min.text() << "\n";
        }
        spit(repro, conform::encodeTrace(failing));
        std::cout << "repro trace: " << repro << " (replay with "
                  << "ganacc-conform --replay " << repro << " "
                  << run.replayHint << ")\n";
        std::cout << "ganacc-conform: FAIL\n";
        return 1;
    }
    std::cout << "ganacc-conform: PASS\n";
    return 0;
} catch (const ganacc::util::FatalError &e) {
    std::cerr << "ganacc-conform: " << e.what() << "\n";
    return 2;
}
