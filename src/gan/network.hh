/**
 * @file
 * A GAN sub-network (Generator or Discriminator) as a stack of
 * convolution layers, exposing the exact passes of Fig. 2:
 * forward, backward (error + weight gradients) and backward-error-only
 * (used when the discriminator merely relays error to the generator
 * during the generator update, step 8).
 */

#ifndef GANACC_GAN_NETWORK_HH
#define GANACC_GAN_NETWORK_HH

#include <memory>
#include <vector>

#include "gan/models.hh"
#include "nn/layers.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace gan {

/** Trainable layer stack built from LayerSpecs. */
class Network
{
  public:
    Network(const std::vector<LayerSpec> &specs, util::Rng &rng);

    /** Run all layers; caches per-layer state for backward. */
    tensor::Tensor forward(const tensor::Tensor &in);

    /**
     * Full backward pass: accumulates every layer's weight gradient
     * and returns the error at the network input.
     */
    tensor::Tensor backward(const tensor::Tensor &dout);

    /**
     * Backward-error-only pass (no weight gradients): the D-bar phase
     * of the generator update. Implemented by saving and restoring the
     * layers' gradient accumulators, so the arithmetic path is
     * identical to backward().
     */
    tensor::Tensor backwardError(const tensor::Tensor &dout);

    /** Zero all accumulated gradients. */
    void zeroGrads();

    /** Apply all accumulated gradients and clear them. */
    void applyUpdates(nn::Optimizer &opt);

    /** WGAN critic weight clipping on every layer. */
    void clipWeights(float c);

    /** Statistics source for every attached batch-norm layer: Batch
     *  couples samples, Frozen keeps them independent (what the
     *  deferred-synchronization hardware requires). */
    void setBnMode(nn::BatchNormLayer::Mode mode);

    std::vector<std::unique_ptr<nn::ConvLayerBase>> &layers()
    {
        return layers_;
    }

    const std::vector<std::unique_ptr<nn::ConvLayerBase>> &layers() const
    {
        return layers_;
    }

    /** Extract per-sample scalar scores from a (N,1,1,1) output. */
    static std::vector<double> scores(const tensor::Tensor &out);

  private:
    std::vector<std::unique_ptr<nn::ConvLayerBase>> layers_;
};

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_NETWORK_HH
