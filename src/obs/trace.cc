/**
 * @file
 * Chrome-trace writer and span-sink implementation.
 */

#include "obs/trace.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <unistd.h>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace obs {

namespace {

/** splitmix64: cheap, well-mixed 64-bit hash/PRNG step. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Process-unique id stream: seeded once per process from the clock
 *  and the pid so two shards started in the same microsecond still
 *  diverge, then stepped by a golden-ratio stride. Ids are only ever
 *  generated while tracing is armed, so this never perturbs the
 *  deterministic (telemetry-off) outputs. */
std::uint64_t
nextId()
{
    static std::atomic<std::uint64_t> state{
        std::uint64_t(std::chrono::steady_clock::now()
                          .time_since_epoch()
                          .count()) ^
        (std::uint64_t(::getpid()) << 32)};
    const std::uint64_t id =
        mix64(state.fetch_add(0x9e3779b97f4a7c15ULL,
                              std::memory_order_relaxed));
    return id == 0 ? 1 : id;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHex16(const std::string &text, std::size_t at)
{
    std::uint64_t v = 0;
    for (std::size_t i = at; i < at + 16; ++i) {
        const char c = text[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            util::fatal("trace context has a non-hex digit at offset ",
                        i, ": \"", text, "\"");
        v = (v << 4) | std::uint64_t(digit);
    }
    return v;
}

} // namespace

std::string
TraceContext::traceIdHex() const
{
    return hex16(traceHi) + hex16(traceLo);
}

std::string
TraceContext::spanIdHex() const
{
    return hex16(span);
}

std::string
encodeTraceContext(const TraceContext &ctx)
{
    return ctx.traceIdHex() + '-' + ctx.spanIdHex();
}

TraceContext
decodeTraceContext(const std::string &text)
{
    if (text.size() != 49 || text[32] != '-')
        util::fatal("trace context must be 32 hex digits, '-', 16 hex "
                    "digits, got \"",
                    text, "\"");
    TraceContext ctx;
    ctx.traceHi = parseHex16(text, 0);
    ctx.traceLo = parseHex16(text, 16);
    ctx.span = parseHex16(text, 33);
    if (!ctx.valid())
        util::fatal("trace context has an all-zero trace id");
    return ctx;
}

TraceContext
newTraceContext()
{
    TraceContext ctx;
    ctx.traceHi = nextId();
    ctx.traceLo = nextId();
    ctx.span = nextId();
    return ctx;
}

std::uint64_t
newSpanId()
{
    return nextId();
}

std::string
spanArgs(const TraceContext &ctx, std::uint64_t span,
         std::uint64_t parent, const std::string &extraFields)
{
    std::string out = "{\"trace\":\"" + ctx.traceIdHex() +
                      "\",\"span\":\"" + hex16(span) + "\"";
    if (parent != 0)
        out += ",\"parent\":\"" + hex16(parent) + "\"";
    if (!extraFields.empty())
        out += ',' + extraFields;
    out += '}';
    return out;
}

std::string
spanArgs(const std::string &traceIdHex, std::uint64_t span,
         std::uint64_t parent, const std::string &extraFields)
{
    std::string out = "{\"trace\":\"" + traceIdHex +
                      "\",\"span\":\"" + hex16(span) + "\"";
    if (parent != 0)
        out += ",\"parent\":\"" + hex16(parent) + "\"";
    if (!extraFields.empty())
        out += ',' + extraFields;
    out += '}';
    return out;
}

void
writeChromeTraceJson(
    std::ostream &os, const std::vector<TraceEvent> &events,
    const std::vector<std::pair<std::string, std::string>> &metadata,
    const std::string &displayTimeUnit)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << util::escapeJson(e.name) << "\"";
        if (!e.cat.empty())
            os << ",\"cat\":\"" << util::escapeJson(e.cat) << "\"";
        os << ",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
        if (e.ph == 'X')
            os << ",\"dur\":" << e.dur;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "\n],\n\"displayTimeUnit\":\""
       << util::escapeJson(displayTimeUnit) << "\",\n\"metadata\":{";
    bool mfirst = true;
    for (const auto &[key, value] : metadata) {
        if (!mfirst)
            os << ",";
        mfirst = false;
        os << "\"" << util::escapeJson(key) << "\":\""
           << util::escapeJson(value) << "\"";
    }
    os << "}}\n";
}

TraceSink &
TraceSink::instance()
{
    // Leaked: spans may close during static destruction.
    static TraceSink *sink = new TraceSink;
    return *sink;
}

namespace {

void
flushAtExit()
{
    TraceSink &sink = TraceSink::instance();
    if (sink.enabled())
        sink.flush();
}

} // namespace

void
TraceSink::enable(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        path_ = path;
        events_.clear();
        t0_ = std::chrono::steady_clock::now();
    }
    enabled_.store(true, std::memory_order_relaxed);
    // Last-resort flush for tools that exit without a telemetry
    // scope; registered once.
    static bool registered = (std::atexit(flushAtExit), true);
    (void)registered;
}

void
TraceSink::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
TraceSink::setSampling(double rate, std::uint64_t tailUs)
{
    if (rate < 0.0)
        rate = 0.0;
    if (rate > 1.0)
        rate = 1.0;
    samplePpm_.store(std::uint32_t(std::llround(rate * 1000000.0)),
                     std::memory_order_relaxed);
    tailUs_.store(tailUs, std::memory_order_relaxed);
}

bool
TraceSink::headSampled(const TraceContext &ctx) const
{
    const std::uint32_t ppm =
        samplePpm_.load(std::memory_order_relaxed);
    if (ppm >= 1000000)
        return true;
    if (ppm == 0)
        return false;
    // Hash the trace id, not the raw bits: sequentially generated ids
    // must not alias the sampling stride. Every process computes the
    // same verdict for the same trace id at the same rate.
    return mix64(ctx.traceHi ^ (ctx.traceLo * 0x9e3779b97f4a7c15ULL)) %
               1000000 <
           ppm;
}

bool
TraceSink::keep(const TraceContext &ctx,
                std::uint64_t latencyUs) const
{
    if (headSampled(ctx))
        return true;
    const std::uint64_t tail = tailUs_.load(std::memory_order_relaxed);
    return tail > 0 && latencyUs >= tail;
}

std::uint64_t
TraceSink::nowUs() const
{
    std::chrono::steady_clock::time_point t0;
    {
        std::lock_guard<std::mutex> lk(m_);
        t0 = t0_;
    }
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

int
TraceSink::threadLane()
{
    static std::atomic<int> next{0};
    thread_local int lane = next.fetch_add(1);
    return lane;
}

void
TraceSink::record(TraceEvent ev)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(m_);
    events_.push_back(std::move(ev));
}

void
TraceSink::recordBatch(std::vector<TraceEvent> events)
{
    if (!enabled() || events.empty())
        return;
    std::lock_guard<std::mutex> lk(m_);
    for (TraceEvent &ev : events)
        events_.push_back(std::move(ev));
}

std::vector<TraceEvent>
TraceSink::drain()
{
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lk(m_);
    out.swap(events_);
    return out;
}

std::size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return events_.size();
}

bool
TraceSink::flush()
{
    std::vector<TraceEvent> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lk(m_);
        path = path_;
        if (path.empty())
            return false; // live mode: drain() is the only reader
        events.swap(events_);
    }
    disable();
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        util::warn("cannot write trace to ", path);
        return false;
    }
    writeChromeTraceJson(os, events,
                         {{"tool", "ganacc telemetry"},
                          {"clock", "steady, us since enable"}},
                         "ms");
    return bool(os);
}

Span::Span(const char *name, const char *cat, std::string args)
    : armed_(TraceSink::instance().enabled()), name_(name), cat_(cat),
      args_(std::move(args))
{
    if (armed_)
        t0_ = TraceSink::instance().nowUs();
}

Span::~Span()
{
    if (!armed_)
        return;
    TraceSink &sink = TraceSink::instance();
    if (!sink.enabled())
        return; // sink shut down while the span was open
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ph = 'X';
    ev.pid = 0;
    ev.tid = TraceSink::threadLane();
    ev.ts = t0_;
    const std::uint64_t now = sink.nowUs();
    ev.dur = now >= t0_ ? now - t0_ : 0;
    ev.args = std::move(args_);
    sink.record(std::move(ev));
}

} // namespace obs
} // namespace ganacc
