/**
 * @file
 * Didactic dissection of one T-CONV layer on all five
 * microarchitectures: run the same streamed job functionally through
 * each dataflow, verify every output against the golden model, and
 * print where the cycles and buffer accesses go — a working tour of
 * the paper's Figs. 5-7 and 11-13.
 */

#include <iostream>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/conv_spec.hh"
#include "sim/phase.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;

    // The job: MNIST-GAN's generator layer 1 — a stride-2 T-CONV
    // whose zero-inserted input is 7x7 dense values inside a 15x15
    // stuffed map (Fig. 6(b)).
    gan::GanModel m = gan::makeMnistGan();
    auto jobs = sim::phaseJobs(m, sim::Phase::GenForward);
    const sim::ConvSpec &job = jobs[1];
    std::cout << "Job under the microscope:\n  " << job.describe()
              << "\n  dense MACs " << job.denseMacs()
              << ", effective " << job.effectiveMacs() << " ("
              << 100.0 * double(job.effectiveMacs()) /
                     double(job.denseMacs())
              << "% useful)\n\n";

    // Streamed operands exactly as the hardware would see them.
    util::Rng rng(99);
    tensor::Tensor in = sim::makeStreamedInput(job, rng);
    tensor::Tensor w = sim::makeStreamedKernel(job, rng);
    tensor::Tensor golden = sim::genericConvRef(job, in, w);
    std::cout << "Stuffed input map is "
              << 100.0 * double(in.countZeros()) / double(in.numel())
              << "% zeros.\n\n";

    util::Table t({"arch", "unrolling", "cycles", "util %",
                   "ineffectual %", "buffer accesses", "output ok"});
    for (core::ArchKind kind : core::allArchKinds()) {
        auto u = core::paperUnroll(kind, core::BankRole::ST,
                                   sim::PhaseFamily::G, 1200);
        auto arch = core::makeArch(kind, u);
        tensor::Tensor out = sim::makeOutputTensor(job);
        sim::RunStats st = arch->run(job, &in, &w, &out);
        bool ok = tensor::approxEqual(golden, out, 1e-3f);
        t.addRow(arch->name(), u.str(), st.cycles,
                 100.0 * st.utilization(),
                 100.0 * double(st.ineffectualMacs) /
                     double(st.totalSlots()),
                 st.totalAccesses(), ok ? "yes" : "NO");
    }
    t.print(std::cout);

    std::cout
        << "\nReading the table:\n"
        << "  * OST burns ~3/4 of its slots multiplying inserted "
           "zeros (Fig. 7(c)).\n"
        << "  * NLR skips them but streams every operand from the "
           "buffers each cycle.\n"
        << "  * ZFOST skips them AND keeps the register-array reuse "
           "(Fig. 12(b)).\n"
        << "  * Every architecture computes bit-identical useful "
           "work - the 'output ok' column is the functional "
           "cross-check against the golden model.\n";
    return 0;
}
