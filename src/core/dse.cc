/**
 * @file
 * Design-space exploration implementation.
 */

#include "core/dse.hh"

#include <algorithm>

#include "core/unrolling.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "verify/legality.hh"
#include "verify/schedule_analysis.hh"

namespace ganacc {
namespace core {

using gan::GanModel;

namespace {

/** Placeholder for a point the verifier refused to simulate. */
DsePoint
rejectedPoint(const DseConstraints &cons, int w_pof, int st_pof,
              const verify::Report &report)
{
    DsePoint p;
    p.wPof = w_pof;
    p.stPof = st_pof;
    p.totalPes = (w_pof + st_pof) * cons.pesPerChannel;
    p.verifierRejected = true;
    for (const verify::Diagnostic &d : report.diagnostics()) {
        if (d.severity != verify::Severity::Error)
            continue;
        p.verifierCode = d.code;
        p.verifierMessage = d.message;
        break;
    }
    p.scheduleRejected =
        p.verifierCode.compare(0, 9, "GA-SCHED-") == 0;
    return p;
}

/** Frontier-progress telemetry for one evaluated point. */
void
observePoint(const DsePoint &p)
{
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("ganacc_dse_points_total",
                "design points evaluated or rejected")
        .add(1);
    if (p.verifierRejected)
        reg.counter("ganacc_dse_rejected_total",
                    "points the static verifier refused to simulate")
            .add(1);
    if (p.scheduleRejected)
        reg.counter("ganacc_dse_sched_rejected_total",
                    "points the schedule-hazard analyzer rejected")
            .add(1);
    if (!p.verifierRejected && p.feasible())
        reg.counter("ganacc_dse_feasible_total",
                    "points inside every resource/bandwidth budget")
            .add(1);
    if (obs::EventLog::instance().enabled())
        obs::EventLog::instance().log(
            "dse.point",
            "\"wPof\":" + std::to_string(p.wPof) + ",\"stPof\":" +
                std::to_string(p.stPof) + ",\"rejected\":" +
                (p.verifierRejected ? "true" : "false") +
                ",\"feasible\":" + (p.feasible() ? "true" : "false"));
}

/** Pre-filter one point; true when it must be skipped. The schedule
 *  analyzer only runs once the structural checks pass — its loop-nest
 *  derivations share the walks' legality preconditions. */
bool
prefilter(const DseConstraints &cons, const verify::Report &model_report,
          const verify::SchedulePrefilter *sched, int w_pof, int st_pof,
          DsePoint &out)
{
    if (!cons.verify)
        return false;
    verify::Report pr;
    verify::checkDesignPoint(model_report, w_pof, st_pof,
                             cons.pesPerChannel, pr);
    if (pr.ok() && sched != nullptr)
        sched->check(w_pof * cons.pesPerChannel,
                     st_pof * cons.pesPerChannel, pr);
    if (pr.ok())
        return false;
    out = rejectedPoint(cons, w_pof, st_pof, pr);
    return true;
}

} // namespace

DsePoint
evaluatePoint(const DseConstraints &cons, const GanModel &model,
              int w_pof, int st_pof)
{
    GANACC_ASSERT(w_pof >= 1 && st_pof >= 1, "degenerate DSE point");
    DsePoint p;
    p.wPof = w_pof;
    p.stPof = st_pof;
    p.totalPes = (w_pof + st_pof) * cons.pesPerChannel;

    sched::Design design = sched::Design::comboWithSplit(
        ArchKind::ZFOST, ArchKind::ZFWST,
        st_pof * cons.pesPerChannel, w_pof * cons.pesPerChannel);
    p.iterationCycles = sched::iterationCycles(
        design, model, sched::SyncPolicy::Deferred);
    p.samplesPerSecond =
        cons.offchip.frequencyHz / double(p.iterationCycles);

    mem::BufferPlan plan =
        mem::planBuffers(model, w_pof, cons.offchip.bitsPerData / 8);
    p.resources = estimateResources(p.totalPes, plan);
    p.fitsDevice = fits(p.resources, cons.budget);

    // Worst-case ∇W stream: the smallest resident pass drives the
    // peak demand (Section V-C); with the kernel fully resident per
    // pass that is 2 * f * W_Pof * bits.
    double demand = 2.0 * cons.offchip.frequencyHz * w_pof *
                    cons.offchip.bitsPerData;
    p.bandwidthFeasible = demand <= cons.offchip.bandwidthBitsPerSec;
    return p;
}

std::vector<DsePoint>
sweepFrontier(const DseConstraints &cons, const GanModel &model)
{
    verify::Report model_report;
    if (cons.verify)
        verify::checkModel(model, model_report);
    // The phase job sets are sweep-invariant: build the schedule
    // pre-filter once and share it across every point.
    std::optional<verify::SchedulePrefilter> sched;
    if (cons.verify && model_report.ok())
        sched.emplace(model);
    obs::Span span("dse.sweep", "dse",
                   "{\"points\":" + std::to_string(cons.maxWPof) + "}");
    std::vector<DsePoint> pts;
    for (int w = 1; w <= cons.maxWPof; ++w) {
        int st = mem::deriveStPof(w);
        DsePoint rejected;
        pts.push_back(prefilter(cons, model_report,
                                sched ? &*sched : nullptr, w, st,
                                rejected)
                          ? rejected
                          : evaluatePoint(cons, model, w, st));
        observePoint(pts.back());
    }
    return pts;
}

std::vector<DsePoint>
sweepFrontierParallel(const DseConstraints &cons, const GanModel &model,
                      int jobs)
{
    GANACC_ASSERT(cons.maxWPof >= 1, "empty sweep range");
    // The network is validated once, not once per point; each worker
    // only runs the cheap per-point checks against the cached report.
    verify::Report model_report;
    if (cons.verify)
        verify::checkModel(model, model_report);
    // Shared read-only across workers: check() is const and pure.
    std::optional<verify::SchedulePrefilter> sched;
    if (cons.verify && model_report.ok())
        sched.emplace(model);
    obs::Span span("dse.sweep", "dse",
                   "{\"points\":" + std::to_string(cons.maxWPof) + "}");
    std::vector<DsePoint> pts(std::size_t(cons.maxWPof));
    util::parallelFor(pts.size(), jobs, [&](std::size_t i) {
        int w = int(i) + 1;
        int st = mem::deriveStPof(w);
        DsePoint rejected;
        pts[i] = prefilter(cons, model_report,
                           sched ? &*sched : nullptr, w, st, rejected)
                     ? rejected
                     : evaluatePoint(cons, model, w, st);
        observePoint(pts[i]);
    });
    return pts;
}

int
verifierRejectedCount(const std::vector<DsePoint> &pts)
{
    return int(std::count_if(
        pts.begin(), pts.end(),
        [](const DsePoint &p) { return p.verifierRejected; }));
}

int
scheduleRejectedCount(const std::vector<DsePoint> &pts)
{
    return int(std::count_if(
        pts.begin(), pts.end(),
        [](const DsePoint &p) { return p.scheduleRejected; }));
}

std::optional<DsePoint>
bestFeasible(const std::vector<DsePoint> &pts)
{
    std::optional<DsePoint> best;
    for (const DsePoint &p : pts) {
        if (!p.feasible())
            continue;
        if (!best || p.samplesPerSecond > best->samplesPerSecond)
            best = p;
    }
    return best;
}

} // namespace core
} // namespace ganacc
