/**
 * @file
 * Shared RunStats assertions for the dataflow tests.
 *
 * Every architecture test states the same two facts in its own words;
 * this header states them once:
 *
 *  - conservation: each PE slot of each cycle is classified exactly
 *    once as effective, ineffectual or idle (run() also asserts this
 *    internally, but the tests re-check the returned struct so a
 *    future accounting change cannot silently pass through a stale
 *    assert), and gated slots are a subset of the ineffectual ones;
 *  - exact equality: two runs that claim to be deterministic twins
 *    must agree on every counter, not just on cycles.
 */

#ifndef GANACC_TESTS_STATS_HELPERS_HH
#define GANACC_TESTS_STATS_HELPERS_HH

#include <gtest/gtest.h>

#include <string>

#include "sim/stats.hh"

namespace ganacc {
namespace tests {

/** Assert the PE-slot conservation invariant on one run's stats. */
inline void
expectSlotConservation(const sim::RunStats &st, const std::string &context)
{
    EXPECT_EQ(st.effectiveMacs + st.ineffectualMacs + st.idlePeSlots,
              st.totalSlots())
        << context << ": " << st.str();
    EXPECT_LE(st.gatedSlots, st.ineffectualMacs)
        << context << ": gated slots are a subset of ineffectual slots";
}

/** Assert two RunStats agree on every counter. */
inline void
expectStatsEqual(const sim::RunStats &a, const sim::RunStats &b,
                 const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.nPes, b.nPes) << context;
    EXPECT_EQ(a.effectiveMacs, b.effectiveMacs) << context;
    EXPECT_EQ(a.ineffectualMacs, b.ineffectualMacs) << context;
    EXPECT_EQ(a.idlePeSlots, b.idlePeSlots) << context;
    EXPECT_EQ(a.gatedSlots, b.gatedSlots) << context;
    EXPECT_EQ(a.weightLoads, b.weightLoads) << context;
    EXPECT_EQ(a.inputLoads, b.inputLoads) << context;
    EXPECT_EQ(a.outputReads, b.outputReads) << context;
    EXPECT_EQ(a.outputWrites, b.outputWrites) << context;
}

} // namespace tests
} // namespace ganacc

#endif // GANACC_TESTS_STATS_HELPERS_HH
