/**
 * @file
 * Synthetic dataset generators.
 *
 * The paper trains on MNIST and natural-image datasets we do not ship.
 * Accelerator throughput is data-independent, and the functional
 * training demos only need a learnable low-dimensional target
 * distribution, so we substitute deterministic procedural images
 * (documented in DESIGN.md): smooth blob/stripe patterns in [-1, 1]
 * with sample-to-sample variation drawn from a seeded RNG.
 */

#ifndef GANACC_GAN_DATA_HH
#define GANACC_GAN_DATA_HH

#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace gan {

/**
 * Digit-like images: a bright Gaussian blob whose position/scale vary
 * per sample, on a dark background. Shape (n, channels, h, w).
 */
tensor::Tensor makeBlobImages(int n, int channels, int h, int w,
                              util::Rng &rng);

/**
 * Texture-like images: oriented sinusoidal stripes with random phase
 * and frequency. Shape (n, channels, h, w).
 */
tensor::Tensor makeStripeImages(int n, int channels, int h, int w,
                                util::Rng &rng);

/** Mean pixel value per sample (cheap distribution statistic). */
double meanPixel(const tensor::Tensor &batch);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_DATA_HH
