/**
 * @file
 * Fleet-aware client: consistent-hash fan-out over N shards.
 *
 * The Router is the client side of the fleet contract. It owns one
 * serve::Client per shard and, per batch of request lines:
 *
 *  - routes every line to its primary shard (ring placement on the
 *    content key; network requests on their flight key; undecodable
 *    lines on their raw bytes — any shard answers those identically),
 *  - pipelines each shard's lines over that one connection in
 *    bounded windows, all shards concurrently,
 *  - retries `overloaded` responses with exponential backoff
 *    (admission control is advisory: the work is pure, so a retry is
 *    always safe),
 *  - fails over to the next replica when a shard is unreachable
 *    mid-stream — requests are idempotent, so resending a request
 *    the dying shard may have half-executed is safe, and RF=2
 *    replication means the replica usually has the result warm,
 *  - replicates: after a response computed fresh (cache "sim"), it
 *    pushes the finished stats to the key's other replicas with a
 *    `put` request — which doubles as read-repair, because a replica
 *    that lost its copy gets it back the next time the key misses
 *    anywhere and re-simulates,
 *  - traces: while the process's TraceSink is armed, every decoded
 *    non-probe line gains a fresh root trace context ("trace" field)
 *    and the router records a fleet.request root span per line;
 *    replication puts forward the same context so the replica's spans
 *    parent under the root. With tracing off, lines are forwarded
 *    byte-identically (the fleet goldens pin this).
 *
 * Responses come back in the original request order, byte-identical
 * to what the serving shard wrote (the router never rewrites a
 * response), so fleet-served replays diff cleanly against direct
 * simulation.
 */

#ifndef GANACC_FLEET_ROUTER_HH
#define GANACC_FLEET_ROUTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/ring.hh"
#include "fleet/topology.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"

namespace ganacc {
namespace fleet {

/** Router policy. */
struct RouterOptions
{
    Topology topology;
    serve::ConnectOptions connect; ///< per-shard connect policy
    int overloadRetries = 8;       ///< rounds before giving up a line
    int overloadBackoffMs = 2;     ///< first retry delay; doubles
    bool replicate = true;  ///< push fresh results to the replicas
    std::size_t window = 64; ///< per-connection pipeline depth
};

/**
 * The routing key of a decoded request: the content key for spec
 * requests and puts, the engine's flight key composition for network
 * requests, "" for probes (pinned to shard 0). Exposed so the
 * conformance reference model can mirror placement exactly.
 */
std::string routeKeyOf(const serve::Request &req);

/** A connected view of a whole fleet. */
class Router
{
  public:
    explicit Router(RouterOptions opt);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Learn the topology from any one live shard: connect, send a
     * {"fleet":true} probe, decode the shard map it answers.
     */
    static Topology bootstrap(const std::string &seedAddr,
                              const serve::ConnectOptions &opt =
                                  serve::ConnectOptions());

    const Topology &topology() const { return opt_.topology; }
    const Ring &ring() const { return ring_; }

    /**
     * Route, pipeline, retry, fail over and replicate one batch.
     * Returns the raw response lines in request order, one per input
     * line (a line with no reachable replica yields a local ok:false
     * response naming the outage).
     */
    std::vector<std::string>
    transactLines(const std::vector<std::string> &lines);

    /** Single-request convenience over transactLines(). */
    serve::Response call(const serve::Request &req);

    /**
     * One telemetry probe per shard; returns (address, telemetry
     * JSON) pairs for every shard that answered, in shard order.
     * Unreachable shards are skipped (their address maps to "").
     */
    std::vector<std::pair<std::string, std::string>> statsAll();

    /**
     * One metrics probe per shard: (address, Prometheus text) pairs
     * in shard order, "" for unreachable shards — the live scrape
     * path behind `ganacc-client --scrape --fleet`.
     */
    std::vector<std::pair<std::string, std::string>> scrapeAll();

    /**
     * One trace-drain probe per shard: (address, span-batch JSON)
     * pairs in shard order, "" for unreachable shards. Feed the rows
     * plus the router's own drained events to fleet::mergeTraces for
     * one cross-process Perfetto trace.
     */
    std::vector<std::pair<std::string, std::string>> drainTracesAll();

    /** Drop the connection to one shard (before restarting it). */
    void disconnect(int shard);

    /** Cumulative router-side accounting. */
    struct Counters
    {
        std::vector<std::uint64_t> sentPerShard; ///< lines written
        std::uint64_t puts = 0;            ///< replication writes sent
        std::uint64_t skippedPuts = 0;     ///< replica down, not sent
        std::uint64_t overloadRetries = 0; ///< shed lines retried
        std::uint64_t failovers = 0; ///< lines rerouted to a replica
        std::uint64_t reconnects = 0; ///< connections re-established
    };
    const Counters &counters() const { return counters_; }

  private:
    struct Pending;

    bool ensureConnected(int shard, std::uint64_t *reconnects);
    void runRound(std::vector<Pending *> &batch,
                  std::vector<std::string> &responses);
    void replicateFresh(const std::vector<Pending> &lines,
                        const std::vector<std::string> &responses);

    RouterOptions opt_;
    Ring ring_;
    std::vector<std::unique_ptr<serve::Client>> clients_;
    /// Per-shard flags as char, not vector<bool>: each round thread
    /// writes only its own shard's slot, which is only race-free
    /// with byte-addressable elements.
    std::vector<char> connected_;
    std::vector<char> everConnected_;
    Counters counters_;
};

} // namespace fleet
} // namespace ganacc

#endif // GANACC_FLEET_ROUTER_HH
