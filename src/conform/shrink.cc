/**
 * @file
 * ddmin over conformance sequences (see shrink.hh).
 */

#include "conform/shrink.hh"

#include <algorithm>

namespace ganacc {
namespace conform {

namespace {

/** `seq` minus the half-open index range [from, to). */
std::vector<Op>
without(const std::vector<Op> &seq, std::size_t from, std::size_t to)
{
    std::vector<Op> out;
    out.reserve(seq.size() - (to - from));
    for (std::size_t i = 0; i < seq.size(); ++i)
        if (i < from || i >= to)
            out.push_back(seq[i]);
    return out;
}

} // namespace

ShrinkResult
shrinkSequence(const std::vector<Op> &seq, const RunOptions &opt,
               std::size_t maxRuns)
{
    ShrinkResult res;
    res.ops = seq;

    auto fails = [&](const std::vector<Op> &cand) {
        ++res.runs;
        return !runConformance(cand, opt).clean();
    };

    if (!fails(res.ops))
        return res; // not reproducible; report the input unchanged

    std::size_t chunk = std::max<std::size_t>(1, res.ops.size() / 2);
    while (chunk >= 1 && res.runs < maxRuns) {
        bool shrunk = false;
        for (std::size_t from = 0;
             from < res.ops.size() && res.runs < maxRuns;) {
            const std::size_t to =
                std::min(from + chunk, res.ops.size());
            std::vector<Op> cand = without(res.ops, from, to);
            if (!cand.empty() && fails(cand)) {
                res.ops.swap(cand);
                shrunk = true;
                // same `from` now addresses the next chunk
            } else {
                from = to;
            }
        }
        if (chunk == 1 && !shrunk)
            break; // 1-minimal: no single op can be dropped
        if (!shrunk)
            chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return res;
}

} // namespace conform
} // namespace ganacc
