/**
 * @file
 * Fig. 19 reproduction: performance (effective GOP/s) and energy
 * efficiency (GOP/s per watt) of the accelerator versus the CPU and
 * GPU baselines on one full training iteration of each network.
 * Baselines are calibrated roofline models (DESIGN.md substitution);
 * the comparison's *shape* — who wins, by what factor — is the claim
 * under reproduction.
 */

#include <iostream>

#include "baseline/cpu_gpu_model.hh"
#include "bench/bench_common.hh"
#include "core/accelerator.hh"
#include "gan/models.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Fig. 19 — comparison with CPU and GPU",
                  "8.3x speedup and 45.2x energy efficiency over CPU; "
                  "7.1x / 5.2x energy efficiency over K20 / Titan X");

    core::GanAccelerator acc;
    const double fpga_power = baseline::fpgaBoardPowerWatts();

    double cpu_speedup = 0, cpu_e = 0, k20_e = 0, tx_e = 0;
    for (const auto &m : gan::allModels()) {
        auto rep = acc.evaluate(m);
        double fpga_gops = rep.gopsDeferred;
        double fpga_gpw = fpga_gops / fpga_power;
        std::cout << "\n" << m.name << "\n";
        util::Table t({"device", "GOPS", "power W", "GOPS/W",
                       "FPGA speedup", "FPGA energy-eff"});
        t.addRow("FPGA (ZFOST-ZFWST)", fpga_gops, fpga_power, fpga_gpw,
                 1.0, 1.0);
        for (const auto &d : baseline::allDevices()) {
            double g = baseline::iterationGops(d, m);
            double gpw = baseline::gopsPerWatt(d, m);
            t.addRow(d.name, g, d.powerWatts, gpw, fpga_gops / g,
                     fpga_gpw / gpw);
            if (d.name.find("CPU") != std::string::npos) {
                cpu_speedup += fpga_gops / g;
                cpu_e += fpga_gpw / gpw;
            } else if (d.name.find("K20") != std::string::npos) {
                k20_e += fpga_gpw / gpw;
            } else {
                tx_e += fpga_gpw / gpw;
            }
        }
        t.print(std::cout);
    }
    std::cout << "\nAverages over the three networks:\n";
    util::Table a({"metric", "measured", "paper"});
    a.addRow("speedup vs CPU", cpu_speedup / 3, 8.3);
    a.addRow("energy-eff vs CPU", cpu_e / 3, 45.2);
    a.addRow("energy-eff vs K20", k20_e / 3, 7.1);
    a.addRow("energy-eff vs Titan X", tx_e / 3, 5.2);
    a.print(std::cout);
    return 0;
}
