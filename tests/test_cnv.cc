/**
 * @file
 * Tests for the Cnvlutin-style dynamic zero-skipping baseline:
 * functional equivalence, dynamic-vs-structural skipping behaviour,
 * lane imbalance, and the Section VII critique (zero-inserted kernels
 * defeat activation-side skipping).
 */

#include <gtest/gtest.h>

#include "core/zfost.hh"
#include "sim/cnv.hh"
#include "sim/conv_spec.hh"
#include "sim/nlr.hh"
#include "stats_helpers.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using sim::Cnv;
using sim::ConvSpec;
using sim::Nlr;
using sim::RunStats;
using sim::Unroll;
using tensor::approxEqual;
using tensor::Tensor;
using util::Rng;

ConvSpec
denseSpec()
{
    ConvSpec s;
    s.label = "dense";
    s.nif = 4;
    s.nof = 3;
    s.ih = s.iw = 10;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 10;
    return s;
}

ConvSpec
stuffedSpec()
{
    ConvSpec s;
    s.label = "stuffed";
    s.nif = 2;
    s.nof = 2;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 5;
    s.ih = s.iw = 9;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 9;
    return s;
}

TEST(Cnv, MatchesGoldenOnDenseAndStuffedInputs)
{
    Rng rng(1);
    Cnv cnv(Unroll{.pIf = 2, .pOf = 2});
    for (const ConvSpec &s : {denseSpec(), stuffedSpec()}) {
        Tensor in = sim::makeStreamedInput(s, rng);
        Tensor w = sim::makeStreamedKernel(s, rng);
        Tensor golden = sim::genericConvRef(s, in, w);
        Tensor out = sim::makeOutputTensor(s);
        cnv.run(s, &in, &w, &out);
        EXPECT_TRUE(approxEqual(golden, out, 1e-3f)) << s.describe();
    }
}

TEST(Cnv, RefusesTimingOnlyRuns)
{
    Cnv cnv(Unroll{.pIf = 2, .pOf = 2});
    EXPECT_THROW(cnv.run(denseSpec()), util::PanicError);
}

TEST(Cnv, HarvestsDynamicReluSparsity)
{
    // Structural designs cannot see data zeros in a dense map; CNV
    // can. Make 70% of a dense input zero (post-ReLU style) and CNV's
    // cycles should drop roughly proportionally.
    ConvSpec s = denseSpec();
    Rng rng(2);
    Tensor dense_in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor sparse_in = dense_in;
    Rng kill(3);
    for (std::size_t i = 0; i < sparse_in.numel(); ++i)
        if (kill.bernoulli(0.7))
            sparse_in.data()[i] = 0.0f;

    Cnv cnv(Unroll{.pIf = 2, .pOf = 3});
    Tensor out = sim::makeOutputTensor(s);
    RunStats on_dense = cnv.run(s, &dense_in, &w, &out);
    RunStats on_sparse = cnv.run(s, &sparse_in, &w, &out);
    tests::expectSlotConservation(on_dense, "cnv dense");
    tests::expectSlotConservation(on_sparse, "cnv sparse");
    double ratio =
        double(on_sparse.cycles) / double(on_dense.cycles);
    EXPECT_LT(ratio, 0.5);
    EXPECT_GT(ratio, 0.15);

    // The structural skipper is oblivious: same cycles either way.
    Zfost zfost(Unroll{.pOf = 3, .pOx = 2, .pOy = 2});
    Tensor out2 = sim::makeOutputTensor(s);
    EXPECT_EQ(zfost.run(s, &dense_in, &w, &out2).cycles,
              zfost.run(s, &sparse_in, &w, &out2).cycles);
}

TEST(Cnv, SkipsStructuralStuffingLikeZfost)
{
    // On T-CONV inputs the inserted zeros are data zeros too, so CNV
    // gets the same ~4x skip the structural design engineered.
    ConvSpec s = stuffedSpec();
    Rng rng(4);
    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Cnv cnv(Unroll{.pIf = 2, .pOf = 2});
    Tensor out = sim::makeOutputTensor(s);
    RunStats st = cnv.run(s, &in, &w, &out);
    tests::expectSlotConservation(st, "cnv stuffed");
    // Effective MACs equal the structural count (all dense values are
    // non-zero in this input).
    EXPECT_EQ(st.effectiveMacs, s.effectiveMacs());
    EXPECT_EQ(st.ineffectualMacs, 0u);
}

TEST(Cnv, LaneImbalanceCostsIdleSlots)
{
    // Put all the non-zeros in channel 0's lane: the other lane
    // idles while the loaded lane streams — window cycles follow the
    // max lane, not the mean.
    ConvSpec s = denseSpec();
    s.nif = 2;
    Rng rng(5);
    Tensor in(tensor::Shape4(1, 2, s.ih, s.iw), 0.0f);
    for (int y = 0; y < s.ih; ++y)
        for (int x = 0; x < s.iw; ++x)
            in.ref(0, 0, y, x) = rng.uniformf(0.1f, 1.0f);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Cnv cnv(Unroll{.pIf = 2, .pOf = 1});
    Tensor out = sim::makeOutputTensor(s);
    RunStats st = cnv.run(s, &in, &w, &out);
    // Half the lane-slots are idle (plus edge effects).
    EXPECT_GT(st.idlePeSlots, st.totalSlots() / 3);
}

TEST(Cnv, ZeroInsertedKernelStillBurnsCycles)
{
    // Dw-style job: dense input, dilated kernel. CNV skips none of
    // the kernel zeros — the Section VII critique.
    ConvSpec dw;
    dw.label = "wconv-D";
    dw.nif = 2;
    dw.nof = 2;
    dw.ih = dw.iw = 10;
    dw.kZeroStride = 2;
    dw.kOrigH = dw.kOrigW = 4;
    dw.kh = dw.kw = 7;
    dw.stride = 1;
    dw.pad = 0;
    dw.oh = dw.ow = 4;
    dw.fourDimOutput = true;
    Rng rng(6);
    Tensor in = sim::makeStreamedInput(dw, rng);
    Tensor w = sim::makeStreamedKernel(dw, rng);
    Tensor golden = sim::genericConvRef(dw, in, w);
    Cnv cnv(Unroll{.pIf = 2, .pOf = 2});
    Tensor out = sim::makeOutputTensor(dw);
    RunStats st = cnv.run(dw, &in, &w, &out);
    EXPECT_TRUE(approxEqual(golden, out, 1e-3f));
    // ~3/4 of the executed products hit inserted kernel zeros.
    EXPECT_GT(st.ineffectualMacs, 2 * st.effectiveMacs);
}

} // namespace
