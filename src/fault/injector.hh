/**
 * @file
 * The MAC-path fault injector.
 *
 * FaultInjector implements sim::MacFaultHook for one FaultPlan. Per
 * job it arms `transient.sitesPerJob` distinct points of the *dense*
 * MAC lattice [0, spec.denseMacs()): the set of multiplies a
 * zero-oblivious machine would execute. When a dataflow schedules the
 * multiply at an armed point, the upset *fires* and the product's
 * Fixed16 image gets its bits flipped; a point the schedule never
 * issues is *masked* — the physical register or wire the upset landed
 * on is never sampled by an accumulator. Because every architecture is
 * armed with the identical site set (the arming draw is keyed on
 * (plan seed, job index) only), masked/armed is a like-for-like
 * architectural-vulnerability comparison: the zero-free dataflows mask
 * the sites that fall on structural zeros they skip, the baselines
 * execute those same sites and absorb the corruption.
 *
 * Permanent PE faults (stuck-at lanes) apply to every product the
 * faulty physical lane produces, effectual or not.
 */

#ifndef GANACC_FAULT_INJECTOR_HH
#define GANACC_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hh"
#include "sim/conv_spec.hh"
#include "sim/fault_hook.hh"

namespace ganacc {
namespace fault {

/** Seeded, order-independent realization of one FaultPlan. */
class FaultInjector final : public sim::MacFaultHook
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /**
     * Arm the transient sites for one job. `job_index` is the caller's
     * stable identifier of the job (its position in the campaign's job
     * list) — two injectors armed with the same (seed, job_index, spec)
     * are identical regardless of architecture or thread.
     */
    void beginJob(const sim::ConvSpec &spec, std::uint64_t job_index);

    // sim::MacFaultHook
    float onMac(const sim::MacContext &ctx, float a, float b) override;
    bool visitIneffectual() const override;

    /** Lifetime counters, accumulated across beginJob() calls. */
    struct Counters
    {
        std::uint64_t armed = 0; ///< transient sites armed
        std::uint64_t fired = 0; ///< armed sites actually scheduled
        std::uint64_t macsObserved = 0; ///< products seen by the hook
        std::uint64_t peHits = 0; ///< products altered by a stuck lane

        std::uint64_t masked() const { return armed - fired; }

        /** Fraction of armed upsets the dataflow never sampled. */
        double
        maskingRate() const
        {
            return armed == 0 ? 0.0
                              : double(masked()) / double(armed);
        }
    };

    const Counters &counters() const { return counters_; }
    void resetCounters() { counters_ = Counters{}; }

    const FaultPlan &plan() const { return plan_; }

  private:
    std::uint64_t latticeIndex(const sim::MacContext &ctx) const;
    float flipProductBits(float product, std::uint64_t site) const;

    FaultPlan plan_;
    sim::ConvSpec spec_; ///< geometry of the armed job
    bool haveJob_ = false;
    std::vector<std::uint64_t> armedSites_; ///< sorted, distinct
    Counters counters_;
};

} // namespace fault
} // namespace ganacc

#endif // GANACC_FAULT_INJECTOR_HH
