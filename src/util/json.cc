/**
 * @file
 * JSON document model implementation.
 */

#include "util/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace util {
namespace json {

Value::Value(int i)
    : kind_(Kind::Number), num_(double(i)), isInt_(i >= 0)
{
    if (i >= 0)
        uint_ = std::uint64_t(i);
}

Value::Value(Array a)
    : kind_(Kind::ArrayKind), arr_(std::make_shared<Array>(std::move(a)))
{
}

Value::Value(Object o)
    : kind_(Kind::ObjectKind),
      obj_(std::make_shared<Object>(std::move(o)))
{
}

namespace {

const char *
kindName(Value::Kind k)
{
    switch (k) {
      case Value::Kind::Null: return "null";
      case Value::Kind::Bool: return "bool";
      case Value::Kind::Number: return "number";
      case Value::Kind::String: return "string";
      case Value::Kind::ArrayKind: return "array";
      case Value::Kind::ObjectKind: return "object";
    }
    return "?";
}

[[noreturn]] void
wrongKind(const char *wanted, Value::Kind got)
{
    fatal("json: expected ", wanted, ", got ", kindName(got));
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        wrongKind("bool", kind_);
    return bool_;
}

double
Value::asDouble() const
{
    if (kind_ != Kind::Number)
        wrongKind("number", kind_);
    return num_;
}

std::uint64_t
Value::asUint64() const
{
    if (kind_ != Kind::Number)
        wrongKind("number", kind_);
    if (isInt_)
        return uint_;
    if (num_ < 0 ||
        num_ > double(std::numeric_limits<std::uint64_t>::max()))
        fatal("json: number ", num_, " is not a valid uint64");
    return std::uint64_t(num_);
}

int
Value::asInt() const
{
    if (kind_ != Kind::Number)
        wrongKind("number", kind_);
    double d = num_;
    if (d < double(std::numeric_limits<int>::min()) ||
        d > double(std::numeric_limits<int>::max()))
        fatal("json: number ", d, " out of int range");
    return int(d);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        wrongKind("string", kind_);
    return str_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::ArrayKind)
        wrongKind("array", kind_);
    return *arr_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::ObjectKind)
        wrongKind("object", kind_);
    return *obj_;
}

void
Object::set(const std::string &key, Value v)
{
    for (auto &e : entries_) {
        if (e.first == key) {
            e.second = std::move(v);
            return;
        }
    }
    entries_.emplace_back(key, std::move(v));
}

const Value *
Object::find(const std::string &key) const
{
    for (const auto &e : entries_)
        if (e.first == key)
            return &e.second;
    return nullptr;
}

const Value &
Object::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing key \"", key, "\"");
    return *v;
}

namespace {

void
dumpTo(const Value &v, std::string &out)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Value::Kind::Number:
        if (v.isInteger()) {
            out += std::to_string(v.asUint64());
        } else {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", v.asDouble());
            out += buf;
        }
        break;
      case Value::Kind::String:
        out += '"';
        out += escapeJson(v.asString());
        out += '"';
        break;
      case Value::Kind::ArrayKind: {
        out += '[';
        bool first = true;
        for (const Value &e : v.asArray()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(e, out);
        }
        out += ']';
        break;
      }
      case Value::Kind::ObjectKind: {
        out += '{';
        bool first = true;
        for (const auto &[key, val] : v.asObject().entries()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escapeJson(key);
            out += "\":";
            dumpTo(val, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser with byte-offset errors. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    Value
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Value(string());
        if (c == 't' || c == 'f')
            return Value(boolean());
        if (c == 'n') {
            literal("null");
            return Value();
        }
        return number();
    }

    Value
    object()
    {
        expect('{');
        Object o;
        skipWs();
        if (tryConsume('}'))
            return Value(std::move(o));
        do {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            o.set(key, value());
            skipWs();
        } while (tryConsume(','));
        expect('}');
        return Value(std::move(o));
    }

    Value
    array()
    {
        expect('[');
        Array a;
        skipWs();
        if (tryConsume(']'))
            return Value(std::move(a));
        do {
            a.push_back(value());
            skipWs();
        } while (tryConsume(','));
        expect(']');
        return Value(std::move(a));
    }

    std::string
    string()
    {
        skipWs();
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The emitters only escape control bytes; encode the
                // code point as UTF-8 for generality.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    bool
    boolean()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        literal("false");
        return false;
    }

    Value
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        if (integral && token[0] != '+' && token[0] != '-') {
            // Plain non-negative integer: keep full 64-bit precision.
            // (strtoull would silently wrap a negative token, so
            // signed integers take the double path below instead.)
            errno = 0;
            char *end = nullptr;
            unsigned long long u = std::strtoull(token.c_str(), &end, 10);
            if (end && *end == '\0' && errno == 0)
                return Value(std::uint64_t(u));
        }
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number '" + token + "'");
        return Value(d);
    }

    void
    literal(const char *text)
    {
        const std::size_t n = std::string(text).size();
        if (text_.compare(pos_, n, text) != 0)
            fail(std::string("expected '") + text + "'");
        pos_ += n;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("json: ", why, " at byte ", pos_);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
Value::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace json
} // namespace util
} // namespace ganacc
