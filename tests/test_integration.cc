/**
 * @file
 * Cross-module integration sweeps: every architecture executes every
 * phase of every evaluation network, and the system-wide invariants
 * hold everywhere — identical useful work across architectures,
 * PE-slot conservation (asserted inside run()), bounded utilization,
 * and cycle counts never below the work/array lower bound.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "gan/network.hh"
#include "sim/phase.hh"
#include "sim/rst.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using core::BankRole;
using sim::Phase;
using sim::PhaseFamily;

class FullSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    gan::GanModel
    model() const
    {
        return gan::allModels()[std::get<0>(GetParam())];
    }

    Phase
    phase() const
    {
        return sim::allPhases()[std::get<1>(GetParam())];
    }
};

TEST_P(FullSweep, EveryArchRunsEveryPhaseWithInvariants)
{
    gan::GanModel m = model();
    Phase p = phase();
    PhaseFamily fam = sim::familyOf(p);
    BankRole role = (fam == PhaseFamily::Dw || fam == PhaseFamily::Gw)
                        ? BankRole::W
                        : BankRole::ST;
    int pes = role == BankRole::ST ? 1200 : 480;
    auto jobs = sim::phaseJobs(m, p);
    std::uint64_t expected_eff = sim::totalEffectiveMacs(jobs);

    for (ArchKind kind : core::allArchKinds()) {
        auto arch =
            core::makeArch(kind, core::paperUnroll(kind, role, fam, pes));
        sim::RunStats sum;
        for (const auto &j : jobs)
            sum += arch->run(j); // run() asserts conservation per job
        EXPECT_EQ(sum.effectiveMacs, expected_eff)
            << core::archKindName(kind) << " on " << m.name << " "
            << sim::phaseName(p);
        EXPECT_LE(sum.utilization(), 1.0 + 1e-9);
        // No array finishes faster than work / width allows.
        EXPECT_GE(sum.cycles * sum.nPes, expected_eff);
        EXPECT_GT(sum.totalAccesses(), 0u);
    }

    // The RST extension baseline obeys the same invariants.
    sim::Rst rst(sim::Unroll{.pOf = pes / 16, .pKy = 4, .pOy = 4});
    sim::RunStats rst_sum;
    for (const auto &j : jobs)
        rst_sum += rst.run(j);
    EXPECT_EQ(rst_sum.effectiveMacs, expected_eff);
    EXPECT_LE(rst_sum.utilization(), 1.0 + 1e-9);
}

std::string
sweepName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *models[] = {"MNIST", "DCGAN", "cGAN"};
    static const char *phases[] = {"Dfwd", "Gfwd", "Dbwd",
                                   "Gbwd", "Dw",   "Gw"};
    return std::string(models[std::get<0>(info.param)]) + "_" +
           phases[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByPhases, FullSweep,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 6)),
    sweepName);

TEST(Integration, ZeroFreeArchesAlwaysAtLeastAsFastAsTheirBase)
{
    // ZFOST >= OST and ZFWST >= WST in cycles on every (model, phase)
    // with matching unrollings — skipping can only help.
    for (const auto &m : gan::allModels()) {
        for (Phase p : sim::allPhases()) {
            PhaseFamily fam = sim::familyOf(p);
            BankRole role =
                (fam == PhaseFamily::Dw || fam == PhaseFamily::Gw)
                    ? BankRole::W
                    : BankRole::ST;
            int pes = role == BankRole::ST ? 1200 : 480;
            auto jobs = sim::phaseJobs(m, p);

            auto cycles = [&](ArchKind kind, sim::Unroll u) {
                auto arch = core::makeArch(kind, u);
                std::uint64_t c = 0;
                for (const auto &j : jobs)
                    c += arch->run(j).cycles;
                return c;
            };
            // Same unrolling for the base and zero-free variants so
            // the comparison isolates the skip logic.
            sim::Unroll u_ost =
                core::paperUnroll(ArchKind::OST, role, fam, pes);
            EXPECT_LE(cycles(ArchKind::ZFOST, u_ost),
                      cycles(ArchKind::OST, u_ost))
                << m.name << " " << sim::phaseName(p);
            // ZFWST streams *outputs* while WST streams *inputs*, so
            // on up-sampling (T-CONV) phases the comparison mixes two
            // streaming axes; the paper only deploys ZFWST on the
            // down-sampling and W-CONV phases, where skipping can
            // only help.
            if (fam != PhaseFamily::G) {
                sim::Unroll u_wst =
                    core::paperUnroll(ArchKind::WST, role, fam, pes);
                EXPECT_LE(cycles(ArchKind::ZFWST, u_wst),
                          cycles(ArchKind::WST, u_wst))
                    << m.name << " " << sim::phaseName(p);
            }
        }
    }
}

TEST(Integration, PairedPhasesShareConvolutionPattern)
{
    // Table I: D-fwd pairs with G-bwd (S-CONV) and G-fwd with D-bwd
    // (T-CONV) — their jobs must carry the same zero structure kinds.
    gan::GanModel m = gan::makeDcgan();
    for (const auto &j : sim::phaseJobs(m, Phase::DiscForward))
        EXPECT_EQ(j.inZeroStride, 1) << j.describe();
    for (const auto &j : sim::phaseJobs(m, Phase::GenBackward))
        EXPECT_EQ(j.inZeroStride, 1) << j.describe();
    int stuffed = 0;
    for (const auto &j : sim::phaseJobs(m, Phase::GenForward))
        stuffed += j.inZeroStride > 1;
    EXPECT_GE(stuffed, 4); // all strided generator layers
    // Backward through every *strided* discriminator layer is a
    // zero-stuffed job (the stride-1 head needs no insertion).
    int stuffed_bwd = 0;
    for (const auto &j : sim::phaseJobs(m, Phase::DiscBackward))
        stuffed_bwd += j.inZeroStride > 1;
    EXPECT_EQ(stuffed_bwd, 3); // layers 3..1 of DCGAN (stride 2)
}

TEST(Integration, AcceleratorPhaseWorkMatchesTrainerArithmetic)
{
    // The simulator's job geometry and the functional trainer must
    // agree on the shape of every intermediate: run one sample
    // functionally and compare tensor sizes against the phase jobs.
    gan::GanModel m = gan::makeMnistGan();
    util::Rng rng(3);
    gan::Network disc(m.disc, rng);
    tensor::Tensor img(1, m.disc[0].inChannels, m.disc[0].inH,
                       m.disc[0].inW);
    img.fillUniform(rng);
    tensor::Tensor out = disc.forward(img);
    auto jobs = sim::phaseJobs(m, Phase::DiscForward);
    // The last forward job's output extent equals the network output.
    EXPECT_EQ(jobs.back().nof, out.shape().d1);
    EXPECT_EQ(jobs.back().oh, out.shape().d2);
}

} // namespace
