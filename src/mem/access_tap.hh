/**
 * @file
 * Observer interface for memory port traffic.
 *
 * The on-chip buffers and the DRAM model are access *counters* — no
 * data flows through them — but some clients need to see the access
 * stream as it happens rather than the totals afterwards. The fault
 * subsystem is one: it samples transient word corruptions per access
 * (src/fault/mem_faults.hh). A null tap costs one pointer test per
 * access.
 */

#ifndef GANACC_MEM_ACCESS_TAP_HH
#define GANACC_MEM_ACCESS_TAP_HH

#include <cstdint>

namespace ganacc {
namespace mem {

/** Receives every read/write recorded by a tapped memory model. */
class AccessTap
{
  public:
    virtual ~AccessTap() = default;

    /** One recorded access of `bytes` bytes. */
    virtual void onAccess(std::uint64_t bytes, bool is_write) = 0;
};

} // namespace mem
} // namespace ganacc

#endif // GANACC_MEM_ACCESS_TAP_HH
