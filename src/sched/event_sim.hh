/**
 * @file
 * Event-driven simulation of the time-multiplexed accelerator.
 *
 * The analytic model of design.hh treats one update as two bank
 * totals (ST, W) that either serialize or fully overlap. This module
 * refines that to *job granularity*: every (phase, layer) pass of
 * every sample is a job with real dependencies — forward chains,
 * per-sample loss points, the d^l / delta^l operands each W-CONV
 * needs — list-scheduled onto the ST bank, the W bank and the shared
 * DRAM channel. It answers the questions the coarse model cannot:
 * how much of the ideal overlap the dependency structure actually
 * permits, where the DRAM channel binds, and how big the Data/Error
 * buffers really need to be (validating mem::planBuffers).
 */

#ifndef GANACC_SCHED_EVENT_SIM_HH
#define GANACC_SCHED_EVENT_SIM_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gan/models.hh"
#include "mem/offchip.hh"
#include "sched/design.hh"
#include "sched/pipeline.hh"

namespace ganacc {
namespace sched {

/** Execution resources of the Fig. 14 organization. */
enum class Resource
{
    StBank, ///< the ZFOST (ST-ARCH) bank
    WBank,  ///< the ZFWST (W-ARCH) bank
};

/** One (phase, layer) pass of one sample. */
struct Job
{
    std::string label;
    Resource resource = Resource::StBank;
    std::uint64_t computeCycles = 0;
    /// Off-chip traffic this job must move (weight fetch, ∇W
    /// read+write stream); occupies the DRAM channel concurrently.
    std::uint64_t dramBytes = 0;
    /// Indices of jobs that must finish first.
    std::vector<std::size_t> deps;
};

/** A buffered tensor's lifetime: produced by one job, freed when its
 *  last consumer finishes. */
struct BufferClaim
{
    std::size_t producer = 0;
    std::size_t consumer = 0;
    std::uint64_t bytes = 0;
    std::string buffer; ///< "data" or "error"
};

/** A scheduled job instance. */
struct Span
{
    std::size_t job = 0;
    std::uint64_t start = 0;
    std::uint64_t end = 0;
};

/**
 * Result of one event-driven run. Named to keep it unmistakably
 * distinct from sim::RunStats (the per-layer dataflow counters):
 * these are schedule-level numbers — spans, makespan, busy
 * fractions — not MAC/access tallies.
 */
struct EventRunStats
{
    std::vector<Span> spans; ///< same order as the job list
    std::vector<Span> dramSpans; ///< serialized gradient streams
    std::uint64_t makespan = 0;
    double stBusyFraction = 0.0;
    double wBusyFraction = 0.0;
    double dramBusyFraction = 0.0;
    std::uint64_t peakDataBytes = 0;  ///< Data-buffer high-water mark
    std::uint64_t peakErrorBytes = 0; ///< Error-buffer high-water mark
};

/** The job DAG of one update for one sample (pair). */
struct UpdateDag
{
    std::vector<Job> jobs;
    std::vector<BufferClaim> claims;
};

/**
 * Build the per-sample job DAG of one update on a combination design:
 * per-layer cycles come from the bank architectures with their
 * Table V unrollings; DRAM bytes model the single-fetch weight stream
 * (ST jobs) and the ∇W read+write stream (W jobs, the eq. 7 traffic).
 */
UpdateDag buildUpdateDag(const Design &design,
                         const gan::GanModel &model, UpdateKind kind,
                         int bytes_per_elem = 2);

/**
 * List-schedule a DAG (replicated for `samples` independent samples,
 * which is what lets the W bank overlap across the per-sample loops
 * of Fig. 8) onto the two banks and the DRAM channel.
 */
EventRunStats simulateEvents(const UpdateDag &dag, int samples,
                          const mem::OffChipConfig &offchip);

/**
 * Convenience: event-driven per-sample cycles of a full update in
 * steady state — ceil(makespan / samples) for a multi-sample run.
 * Rounded *up* by convention: a per-sample figure that feeds a
 * throughput claim must not understate the cycles when the makespan
 * is not an exact multiple of the batch.
 */
std::uint64_t eventCyclesPerSample(const Design &design,
                                   const gan::GanModel &model,
                                   UpdateKind kind, int samples = 8);

/**
 * Render an ASCII Gantt chart of a trace: one row per resource
 * (ST bank, W bank, DRAM gradient streams), time bucketed into
 * `width` columns; '#' marks majority-busy buckets, '-' partial,
 * '.' idle. Per-sample boundaries are drawn on a ruler row.
 */
std::string renderGantt(const UpdateDag &dag, const EventRunStats &trace,
                        int samples, int width = 100);

/**
 * Write the trace in Chrome tracing (chrome://tracing / Perfetto)
 * JSON format: one lane per resource, one complete event per job
 * span, timestamps in cycles. Lets a schedule be inspected
 * interactively in a browser.
 */
void writeChromeTrace(const UpdateDag &dag, const EventRunStats &trace,
                      int samples, std::ostream &os);

} // namespace sched
} // namespace ganacc

#endif // GANACC_SCHED_EVENT_SIM_HH
