/**
 * @file
 * Unit tests for the util substrate: logging, RNG, fixed point, table.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace ganacc::util;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config value ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, MessagesCarryFormattedContent)
{
    try {
        fatal("expected ", 3, " got ", 4);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: expected 3 got 4");
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(GANACC_ASSERT(1 + 1 == 2, "math"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(GANACC_ASSERT(false, "should fire"), PanicError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(99);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Fixed16, RoundTripSmallValues)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 3.125, -7.875}) {
        auto f = AccelFixed::fromDouble(v);
        EXPECT_DOUBLE_EQ(f.toDouble(), v) << "value " << v;
    }
}

TEST(Fixed16, QuantizationErrorBounded)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-100.0, 100.0);
        auto f = AccelFixed::fromDouble(v);
        EXPECT_LE(std::fabs(f.toDouble() - v), AccelFixed::epsilon());
    }
}

TEST(Fixed16, SaturatesInsteadOfWrapping)
{
    auto big = AccelFixed::fromDouble(1e6);
    EXPECT_NEAR(big.toDouble(), 127.996, 0.01);
    auto neg = AccelFixed::fromDouble(-1e6);
    EXPECT_NEAR(neg.toDouble(), -128.0, 0.01);
    // Addition saturates too.
    auto sum = big + big;
    EXPECT_NEAR(sum.toDouble(), 127.996, 0.01);
}

TEST(Fixed16, MultiplicationMatchesDouble)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double a = rng.uniform(-8.0, 8.0);
        double b = rng.uniform(-8.0, 8.0);
        auto fa = AccelFixed::fromDouble(a);
        auto fb = AccelFixed::fromDouble(b);
        double prod = (fa * fb).toDouble();
        // Error: operand quantization plus one rounding step.
        EXPECT_NEAR(prod, fa.toDouble() * fb.toDouble(),
                    AccelFixed::epsilon());
    }
}

TEST(Fixed16, RawAccessorsConsistent)
{
    auto f = AccelFixed::fromRaw(256);
    EXPECT_DOUBLE_EQ(f.toDouble(), 1.0);
    EXPECT_EQ(f.raw(), 256);
}

TEST(Fixed16, RoundingAtTheSaturationBoundary)
{
    // The largest representable value is (2^15 - 1) / 2^n. A double
    // just below it must round *to* it, and anything at or beyond it
    // must saturate — never wrap or invoke an out-of-range narrowing
    // cast (rounding must happen in a wide integer before clamping).
    const double top = 32767.0 / AccelFixed::scale;
    EXPECT_EQ(AccelFixed::fromDouble(top).raw(), 32767);
    // Just below the bound: rounds up to the bound, stays in range.
    EXPECT_EQ(AccelFixed::fromDouble(top - 0.4 / AccelFixed::scale)
                  .raw(),
              32767);
    // Just past the bound: round-to-nearest lands on 32768;
    // saturation must win.
    EXPECT_EQ(AccelFixed::fromDouble(top + 0.6 / AccelFixed::scale)
                  .raw(),
              32767);
    EXPECT_EQ(AccelFixed::fromDouble(top + 1.0).raw(), 32767);
    const double bottom = -32768.0 / AccelFixed::scale;
    EXPECT_EQ(AccelFixed::fromDouble(bottom).raw(), -32768);
    EXPECT_EQ(AccelFixed::fromDouble(bottom - 1.0).raw(), -32768);
}

TEST(Fixed16, NonFiniteInputsSaturateOrZero)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(AccelFixed::fromDouble(inf).raw(), 32767);
    EXPECT_EQ(AccelFixed::fromDouble(-inf).raw(), -32768);
    EXPECT_EQ(AccelFixed::fromDouble(
                  std::numeric_limits<double>::quiet_NaN())
                  .raw(),
              0);
    // Finite but astronomically large values saturate too.
    EXPECT_EQ(AccelFixed::fromDouble(1e300).raw(), 32767);
    EXPECT_EQ(AccelFixed::fromDouble(-1e300).raw(), -32768);
}

TEST(EscapeJson, PassesCleanStringsThrough)
{
    EXPECT_EQ(escapeJson("G-fwd L0"), "G-fwd L0");
    EXPECT_EQ(escapeJson(""), "");
}

TEST(EscapeJson, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeJson("a\nb\tc\rd\be\ff"),
              "a\\nb\\tc\\rd\\be\\ff");
    EXPECT_EQ(escapeJson(std::string("a\x01z", 3)), "a\\u0001z");
    EXPECT_EQ(escapeJson(std::string(1, '\x1f')), "\\u001f");
    // UTF-8 passes through untouched.
    EXPECT_EQ(escapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.jobs(), 4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 100);
    }
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ParallelMap, PreservesInputOrder)
{
    std::vector<int> items(257);
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = int(i);
    for (int jobs : {1, 3, 8}) {
        auto out = parallelMap(
            items, [](int v) { return v * v; }, jobs);
        ASSERT_EQ(out.size(), items.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], int(i) * int(i));
    }
}

TEST(ParallelMap, PropagatesTheFirstException)
{
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW(parallelMap(
                     items,
                     [](int v) -> int {
                         if (v == 5)
                             throw std::runtime_error("boom");
                         return v;
                     },
                     4),
                 std::runtime_error);
}

TEST(ResolveJobs, ExplicitRequestWins)
{
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(hardwareJobs(), 1);
}

TEST(ResolveJobs, EnvFallbackParsesGanaccJobs)
{
    ::setenv("GANACC_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0), 5);
    EXPECT_EQ(resolveJobs(2), 2); // explicit still wins
    ::setenv("GANACC_JOBS", "garbage", 1);
    EXPECT_GE(resolveJobs(0), 1); // malformed env falls through
    ::unsetenv("GANACC_JOBS");
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow("x", 1);
    t.addRow("longer", 23.5);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("23.5"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

} // namespace
