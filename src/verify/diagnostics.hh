/**
 * @file
 * Diagnostic records produced by the static verifier.
 *
 * Every finding carries a *stable* code (documented in
 * docs/static_analysis.md and asserted by the negative-path tests), a
 * severity, and the spec location it refers to, so both humans and the
 * DSE frontier pre-filter can act on reports without parsing prose.
 * Reports render as text for the terminal or as JSON
 * (`ganacc-lint --format=json`) for machine consumers.
 */

#ifndef GANACC_VERIFY_DIAGNOSTICS_HH
#define GANACC_VERIFY_DIAGNOSTICS_HH

#include <ostream>
#include <string>
#include <vector>

namespace ganacc {
namespace verify {

/** How bad a finding is. */
enum class Severity
{
    Note,    ///< informative (e.g. boundary under-utilization figures)
    Warning, ///< legal but suspicious; simulation results may mislead
    Error,   ///< illegal: simulating this spec is meaningless or panics
};

std::string severityName(Severity s);

/** Stable diagnostic codes. Append-only: codes are a public contract
 *  (tests and DSE match on them), so never renumber or reuse one. */
namespace codes {

// Spec-level (ConvSpec) legality.
inline constexpr const char *kSpecField = "GA-SPEC-FIELD";
inline constexpr const char *kSpecExtent = "GA-SPEC-EXTENT";
inline constexpr const char *kSpecZeroInsertStride = "GA-SPEC-ZI-STRIDE";
inline constexpr const char *kSpecZeroInsertGeom = "GA-SPEC-ZI-GEOM";
inline constexpr const char *kSpecKernelZeroGeom = "GA-SPEC-KZ-GEOM";

// Network-level (LayerSpec graph) legality.
inline constexpr const char *kNetEmpty = "GA-NET-EMPTY";
inline constexpr const char *kNetShape = "GA-NET-SHAPE";
inline constexpr const char *kNetChain = "GA-NET-CHAIN";
inline constexpr const char *kNetHead = "GA-NET-HEAD";
inline constexpr const char *kNetImage = "GA-NET-IMAGE";

// Unrolling legality against a dataflow.
inline constexpr const char *kUnrollPositive = "GA-UNROLL-POSITIVE";
inline constexpr const char *kUnrollUnused = "GA-UNROLL-UNUSED";
inline constexpr const char *kUnrollDivide = "GA-UNROLL-DIVIDE";
inline constexpr const char *kUnrollWaste = "GA-UNROLL-WASTE";

// On-chip buffer capacity.
inline constexpr const char *kBufCapacity = "GA-BUF-CAPACITY";
inline constexpr const char *kBufWorkset = "GA-BUF-WORKSET";

// Fixed-point range analysis.
inline constexpr const char *kRangeSaturate = "GA-RANGE-SAT";
inline constexpr const char *kRangeGradient = "GA-RANGE-GRAD";
inline constexpr const char *kRangeWorstCase = "GA-RANGE-WC";

// Static-vs-simulated bounds cross-check.
inline constexpr const char *kBoundsDiverge = "GA-BOUNDS-DIVERGE";

// DSE point pre-filter.
inline constexpr const char *kDsePoint = "GA-DSE-POINT";

// Schedule-hazard analysis (verify/schedule_analysis).
inline constexpr const char *kSchedSlot = "GA-SCHED-SLOT";
inline constexpr const char *kSchedWaw = "GA-SCHED-WAW";
inline constexpr const char *kSchedRaw = "GA-SCHED-RAW";
inline constexpr const char *kSchedDrain = "GA-SCHED-DRAIN";
inline constexpr const char *kSchedOob = "GA-SCHED-OOB";
inline constexpr const char *kSchedPort = "GA-SCHED-PORT";
inline constexpr const char *kSchedDiverge = "GA-SCHED-DIVERGE";
inline constexpr const char *kSchedUnmodeled = "GA-SCHED-UNMODELED";

} // namespace codes

/** One verifier finding. */
struct Diagnostic
{
    std::string code;    ///< stable code from verify::codes
    Severity severity = Severity::Error;
    std::string where;   ///< spec location, e.g. "DCGAN disc L2"
    std::string message; ///< human-readable explanation
};

/** An ordered collection of findings for one verification run. */
class Report
{
  public:
    void add(Diagnostic d);

    void error(const std::string &code, const std::string &where,
               const std::string &message);
    void warning(const std::string &code, const std::string &where,
                 const std::string &message);
    void note(const std::string &code, const std::string &where,
              const std::string &message);

    /** Append every diagnostic of another report. */
    void merge(const Report &other);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    int errorCount() const;
    int warningCount() const;
    int noteCount() const;

    /** No errors: the design may be simulated. */
    bool ok() const { return errorCount() == 0; }

    /** Nothing at all to report. */
    bool empty() const { return diags_.empty(); }

    /** True when any diagnostic carries the given code. */
    bool has(const std::string &code) const;

    /** First diagnostic with the given code, or nullptr. */
    const Diagnostic *find(const std::string &code) const;

    /** One line per diagnostic: "severity code where: message". */
    void renderText(std::ostream &os) const;

    /** Deterministic JSON (schema in docs/static_analysis.md). */
    void renderJson(std::ostream &os) const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_DIAGNOSTICS_HH
