/**
 * @file
 * End-to-end service tests: responses must be bit-identical to direct
 * in-process simulation for randomized specs no matter which tier
 * serves them, the pipe transport must preserve that identity through
 * a real encode/decode cycle, identical concurrent requests must
 * coalesce correctly, backpressure must bound and drain must fence
 * admissions, and one malformed line must never kill a stream.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "obs/trace.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "sim/json.hh"
#include "sim/phase.hh"
#include "tensor/shape.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
namespace fs = std::filesystem;
using util::Rng;

/** Random *legal* spec over the three GAN convolution patterns —
 *  the same families the differential fuzzer draws from. */
sim::ConvSpec
randomSpec(Rng &rng)
{
    sim::ConvSpec s;
    s.label = "serve-fuzz";
    s.nif = rng.uniformInt(1, 4);
    s.nof = rng.uniformInt(1, 4);
    const int kind = rng.uniformInt(0, 2);
    if (kind == 0) { // dense strided S-CONV
        s.ih = s.iw = rng.uniformInt(5, 16);
        s.kh = s.kw = rng.uniformInt(1, 5);
        s.stride = rng.uniformInt(1, 3);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    } else if (kind == 1) { // zero-stuffed T-CONV
        const int dense = rng.uniformInt(2, 7);
        const int z = rng.uniformInt(2, 3);
        const int extra = rng.uniformInt(0, z - 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
    } else { // dilated-kernel W-CONV (4-D output)
        s.ih = s.iw = rng.uniformInt(7, 16);
        const int err = rng.uniformInt(2, 5);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 2);
        s.fourDimOutput = true;
        const int natural = s.ih + 2 * s.pad - s.kh + 1;
        if (natural < 1)
            return randomSpec(rng);
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 6));
    }
    if (s.oh < 1 || s.ow < 1)
        return randomSpec(rng);
    return s;
}

sim::Unroll
smallUnroll(Rng &rng)
{
    sim::Unroll u;
    u.pIf = rng.uniformInt(1, 3);
    u.pOf = rng.uniformInt(1, 4);
    u.pKx = rng.uniformInt(1, 4);
    u.pKy = rng.uniformInt(1, 4);
    u.pOx = rng.uniformInt(1, 4);
    u.pOy = rng.uniformInt(1, 4);
    return u;
}

class ServeServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        core::CycleCache::instance().clear();
        dir_ = (fs::temp_directory_path() /
                ("ganacc-serve-test-" + std::to_string(::getpid()) +
                 "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        core::CycleCache::instance().attachDiskTier(nullptr);
        fs::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(ServeServiceTest, ServedEqualsDirectOverRandomizedSpecs)
{
    Rng rng(0x5EFD1234);
    serve::EngineOptions opts;
    opts.jobs = 4;
    opts.cacheDir = dir_;
    serve::Engine engine(opts);

    const auto kinds = core::allArchKinds();
    for (int i = 0; i < 60; ++i) {
        serve::Request req;
        req.id = std::uint64_t(i + 1);
        req.kind =
            kinds[std::size_t(rng.uniformInt(0, int(kinds.size()) - 1))];
        req.unroll = smallUnroll(rng);
        req.hasSpec = true;
        req.spec = randomSpec(rng);

        const serve::Response rsp = engine.handle(req);
        ASSERT_TRUE(rsp.ok) << rsp.error;
        const sim::RunStats direct =
            core::makeArch(req.kind, req.unroll)->run(req.spec);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct))
            << "served response diverged from direct simulation ("
            << core::archKindName(req.kind) << ", " << req.spec.label
            << ", iteration " << i << ")";
    }
    engine.drain();
}

TEST_F(ServeServiceTest, EveryTierServesIdenticalBits)
{
    Rng rng(0x7134);
    serve::Request req;
    req.id = 1;
    req.kind = core::ArchKind::ZFOST;
    req.unroll = smallUnroll(rng);
    req.hasSpec = true;
    req.spec = randomSpec(rng);
    const sim::RunStats direct =
        core::makeArch(req.kind, req.unroll)->run(req.spec);

    serve::EngineOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir_;

    // Tier 1: cold -> simulated.
    {
        serve::Engine engine(opts);
        const serve::Response rsp = engine.handle(req);
        ASSERT_TRUE(rsp.ok);
        EXPECT_EQ(rsp.cache, "sim");
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));

        // Tier 2: repeat in-process -> memory.
        const serve::Response again = engine.handle(req);
        EXPECT_EQ(again.cache, "mem");
        EXPECT_EQ(sim::toJson(again.stats), sim::toJson(direct));
        engine.drain();
    }

    // Tier 3: new engine ("new process"), memory dropped -> disk.
    core::CycleCache::instance().clear();
    serve::Engine engine(opts);
    const serve::Response rsp = engine.handle(req);
    ASSERT_TRUE(rsp.ok);
    EXPECT_EQ(rsp.cache, "disk");
    EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
    engine.drain();
}

TEST_F(ServeServiceTest, PipeTransportPreservesBitIdentity)
{
    Rng rng(0xA11CE);
    std::vector<serve::Request> reqs;
    std::stringstream in;
    for (int i = 0; i < 20; ++i) {
        serve::Request req;
        req.id = std::uint64_t(i + 1);
        req.kind = core::ArchKind::ZFWST;
        req.unroll = smallUnroll(rng);
        req.hasSpec = true;
        req.spec = randomSpec(rng);
        reqs.push_back(req);
        in << serve::encodeRequest(req) << "\n";
    }

    serve::EngineOptions opts;
    opts.jobs = 2;
    serve::Engine engine(opts);
    std::stringstream out;
    const serve::ServeTotals totals =
        serve::runPipeServer(in, out, engine);
    engine.drain();
    EXPECT_EQ(totals.lines, 20u);
    EXPECT_EQ(totals.responses, 20u);

    std::string line;
    std::size_t i = 0;
    while (std::getline(out, line)) {
        ASSERT_LT(i, reqs.size());
        const serve::Response rsp = serve::decodeResponse(line);
        EXPECT_EQ(rsp.id, reqs[i].id) << "responses must keep order";
        ASSERT_TRUE(rsp.ok) << rsp.error;
        const sim::RunStats direct =
            core::makeArch(reqs[i].kind, reqs[i].unroll)
                ->run(reqs[i].spec);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
        ++i;
    }
    EXPECT_EQ(i, 20u);
}

TEST_F(ServeServiceTest, OneMalformedLineDoesNotKillTheStream)
{
    Rng rng(0xBAD);
    serve::Request good;
    good.id = 7;
    good.kind = core::ArchKind::NLR;
    good.unroll = smallUnroll(rng);
    good.hasSpec = true;
    good.spec = randomSpec(rng);

    std::stringstream in;
    in << serve::encodeRequest(good) << "\n";
    in << "{\"v\":1,\"id\":8,this is not json}\n";
    in << serve::encodeRequest(good) << "\n";

    serve::EngineOptions opts;
    opts.jobs = 1;
    serve::Engine engine(opts);
    std::stringstream out;
    const serve::ServeTotals totals =
        serve::runPipeServer(in, out, engine);
    engine.drain();
    EXPECT_EQ(totals.responses, 3u);

    std::string line;
    std::getline(out, line);
    EXPECT_TRUE(serve::decodeResponse(line).ok);
    std::getline(out, line);
    const serve::Response err = serve::decodeResponse(line);
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id, 8u) << "salvaged id lets the client correlate";
    std::getline(out, line);
    EXPECT_TRUE(serve::decodeResponse(line).ok);
}

TEST_F(ServeServiceTest, IdenticalConcurrentRequestsCoalesce)
{
    Rng rng(0xD0D0);
    serve::Request req;
    req.kind = core::ArchKind::ZFOST;
    req.unroll = smallUnroll(rng);
    req.hasSpec = true;
    req.spec = randomSpec(rng);
    const sim::RunStats direct =
        core::makeArch(req.kind, req.unroll)->run(req.spec);

    serve::EngineOptions opts;
    opts.jobs = 2;
    serve::Engine engine(opts);

    const int n = 64;
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < n; ++i) {
        serve::Request r = req;
        r.id = std::uint64_t(i + 1);
        futures.push_back(engine.submit(r));
    }
    for (int i = 0; i < n; ++i) {
        const serve::Response rsp = futures[std::size_t(i)].get();
        ASSERT_TRUE(rsp.ok);
        EXPECT_EQ(rsp.id, std::uint64_t(i + 1))
            << "followers must be relabeled with their own id";
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
    }
    const serve::EngineCounters c = engine.counters();
    EXPECT_EQ(c.requests, std::uint64_t(n));
    EXPECT_EQ(c.errors, 0u);
    EXPECT_EQ(c.simulated + c.memHits + c.diskHits + c.deduped,
              std::uint64_t(n))
        << "every request is accounted to exactly one tier";
    EXPECT_EQ(c.simulated, 1u)
        << "the cycle walk must run exactly once for one content key";
    engine.drain();
}

TEST_F(ServeServiceTest, BackpressureBoundsAndDrainFencesAdmission)
{
    Rng rng(0xFE11);
    serve::EngineOptions opts;
    opts.jobs = 2;
    opts.maxQueue = 4; // tiny bound: submit() must block, not balloon
    serve::Engine engine(opts);

    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 64; ++i) {
        serve::Request req;
        req.id = std::uint64_t(i + 1);
        req.kind = core::ArchKind::OST;
        req.unroll = smallUnroll(rng);
        req.hasSpec = true;
        req.spec = randomSpec(rng);
        futures.push_back(engine.submit(req));
    }
    for (auto &f : futures)
        EXPECT_TRUE(f.get().ok);

    engine.drain();
    serve::Request late;
    late.id = 999;
    late.kind = core::ArchKind::NLR;
    late.unroll = smallUnroll(rng);
    late.hasSpec = true;
    late.spec = randomSpec(rng);
    EXPECT_THROW(engine.submit(late), util::FatalError);
}

TEST_F(ServeServiceTest, NetworkRequestsMatchAccumulatedDirectRun)
{
    serve::EngineOptions opts;
    opts.jobs = 2;
    serve::Engine engine(opts);

    const gan::GanModel model = gan::makeMnistGan();
    for (core::ArchKind kind : core::allArchKinds()) {
        serve::Request req;
        req.id = 1;
        req.kind = kind;
        req.unroll = core::paperUnroll(
            kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
        req.model = "mnist-gan";
        req.family = "D";
        const serve::Response rsp = engine.handle(req);
        ASSERT_TRUE(rsp.ok) << rsp.error;

        sim::RunStats direct;
        const auto arch = core::makeArch(kind, req.unroll);
        for (const auto &job :
             sim::familyJobs(model, sim::PhaseFamily::D))
            direct += arch->run(job);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct))
            << core::archKindName(kind);
    }
    engine.drain();
}

TEST_F(ServeServiceTest, StatsProbeAnswersWithLiveTelemetry)
{
    serve::EngineOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir_; // so store counters are live too
    serve::Engine engine(opts);

    // Generate some load first, so the probe reports real traffic.
    Rng rng(0x0B5E);
    for (int i = 0; i < 4; ++i) {
        serve::Request req;
        req.id = std::uint64_t(i + 1);
        req.kind = core::ArchKind::ZFOST;
        req.hasSpec = true;
        req.spec = randomSpec(rng);
        req.unroll = smallUnroll(rng);
        ASSERT_TRUE(engine.handle(req).ok);
    }

    serve::Request probe;
    probe.id = 99;
    probe.statsProbe = true;
    const serve::Response rsp = engine.handle(probe);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_EQ(rsp.id, 99u);
    EXPECT_EQ(rsp.simVersion, serve::simulatorVersion());
    ASSERT_FALSE(rsp.telemetry.empty());

    // The snapshot parses, covers every advertised subsystem, and
    // reflects the traffic just generated.
    const auto doc = util::json::parse(rsp.telemetry);
    const auto &counters =
        doc.asObject().at("counters").asObject();
    EXPECT_GE(counters.at("ganacc_serve_requests_total").asUint64(),
              4u);
    EXPECT_TRUE(counters.contains("ganacc_cache_misses_total"));
    EXPECT_TRUE(counters.contains("ganacc_store_writes_total"));
    EXPECT_TRUE(counters.contains("ganacc_pool_executed_total"));
    EXPECT_TRUE(doc.asObject().at("gauges").asObject().contains(
        "ganacc_serve_inflight"));
    const auto &hist = doc.asObject()
                           .at("histograms")
                           .asObject()
                           .at("ganacc_serve_latency_us")
                           .asObject();
    EXPECT_GE(hist.at("count").asUint64(), 4u);

    // Probes do not count as requests in the service summary, and the
    // wire round-trip of the probe response is byte-stable.
    EXPECT_EQ(engine.counters().requests, 4u);
    const std::string wire = serve::encodeResponse(rsp);
    EXPECT_EQ(serve::encodeResponse(serve::decodeResponse(wire)),
              wire);
    engine.drain();
}

TEST_F(ServeServiceTest, StatsProbeAnswersThroughThePipeTransport)
{
    serve::EngineOptions opts;
    opts.jobs = 1;
    opts.deterministic = true;
    serve::Engine engine(opts);

    std::istringstream in("{\"v\":1,\"id\":7,\"stats\":true}\n");
    std::ostringstream out;
    const serve::ServeTotals totals =
        serve::runPipeServer(in, out, engine);
    engine.drain();
    EXPECT_EQ(totals.lines, 1u);
    EXPECT_EQ(totals.responses, 1u);

    const serve::Response rsp =
        serve::decodeResponse(out.str().substr(
            0, out.str().find('\n')));
    EXPECT_TRUE(rsp.ok) << rsp.error;
    EXPECT_EQ(rsp.id, 7u);
    EXPECT_FALSE(rsp.telemetry.empty());
    EXPECT_NO_THROW(util::json::parse(rsp.telemetry));
}

TEST_F(ServeServiceTest, MetricsProbeAnswersWithPrometheusText)
{
    serve::EngineOptions opts;
    opts.jobs = 1;
    serve::Engine engine(opts);

    serve::Request probe;
    probe.id = 61;
    probe.metricsProbe = true;
    const serve::Response rsp = engine.handle(probe);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_EQ(rsp.id, 61u);
    ASSERT_FALSE(rsp.metricsText.empty());
    EXPECT_NE(rsp.metricsText.find(
                  "# TYPE ganacc_serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(rsp.metricsText.find("ganacc_serve_metrics_probes_total"),
              std::string::npos);

    // Like stats probes: no queueing, no request accounting, and the
    // wire round-trip is byte-stable.
    EXPECT_EQ(engine.counters().requests, 0u);
    const std::string wire = serve::encodeResponse(rsp);
    EXPECT_EQ(serve::encodeResponse(serve::decodeResponse(wire)),
              wire);
    engine.drain();
}

TEST_F(ServeServiceTest, TracedRequestsOpenCorrectlyParentedSpans)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable(""); // live mode
    sink.setSampling(1.0, 0);

    serve::EngineOptions opts;
    opts.jobs = 1;
    serve::Engine engine(opts);

    Rng rng(0x5AA5);
    serve::Request req;
    req.id = 5;
    req.kind = core::ArchKind::ZFOST;
    req.hasSpec = true;
    req.spec = randomSpec(rng);
    req.unroll = smallUnroll(rng);
    req.trace = "00112233445566778899aabbccddeeff-0000000000000042";
    const serve::Response rsp = engine.handle(req);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_TRUE(rsp.traceKept);
    EXPECT_EQ(rsp.traceId, "00112233445566778899aabbccddeeff");
    EXPECT_NE(rsp.traceSpan, 0u);

    // Drain through the probe path, exactly as a collector would.
    serve::Request drain;
    drain.id = 62;
    drain.traceDrainProbe = true;
    const serve::Response dr = engine.handle(drain);
    ASSERT_TRUE(dr.ok) << dr.error;
    const std::vector<obs::TraceEvent> evs =
        serve::decodeSpanBatch(dr.spans);
    ASSERT_FALSE(evs.empty());

    // Walk the batch: serve.request carries the sender's span as its
    // parent, serve.cache hangs off serve.request, and a sim-tier
    // request nests serve.simulate under serve.cache. (The batch may
    // also hold plain RAII spans from deeper layers — only the
    // request's distributed spans carry the trace identity.)
    std::string hopSpan, cacheSpan;
    for (const obs::TraceEvent &ev : evs) {
        if (ev.name.rfind("serve.", 0) != 0)
            continue;
        const auto args = util::json::parse(ev.args).asObject();
        EXPECT_EQ(args.at("trace").asString(),
                  "00112233445566778899aabbccddeeff");
        if (ev.name == "serve.request") {
            EXPECT_EQ(args.at("parent").asString(),
                      "0000000000000042");
            hopSpan = args.at("span").asString();
        }
    }
    ASSERT_FALSE(hopSpan.empty()) << "no serve.request span drained";
    for (const obs::TraceEvent &ev : evs) {
        const auto args = util::json::parse(ev.args).asObject();
        if (ev.name == "serve.cache") {
            EXPECT_EQ(args.at("parent").asString(), hopSpan);
            EXPECT_EQ(args.at("tier").asString(), rsp.cache);
            cacheSpan = args.at("span").asString();
        }
    }
    ASSERT_EQ(rsp.cache, "sim") << "fresh spec must simulate";
    ASSERT_FALSE(cacheSpan.empty());
    bool sawSimulate = false;
    for (const obs::TraceEvent &ev : evs) {
        if (ev.name != "serve.simulate")
            continue;
        sawSimulate = true;
        const auto args = util::json::parse(ev.args).asObject();
        EXPECT_EQ(args.at("parent").asString(), cacheSpan);
    }
    EXPECT_TRUE(sawSimulate);

    // A second drain with nothing new buffered is the empty batch.
    const serve::Response again = engine.handle(drain);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.spans, "{\"events\":[]}");

    engine.drain();
    sink.disable();
    sink.drain();
}

TEST_F(ServeServiceTest, HeadDroppedRequestsLeaveNoSpans)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable("");
    sink.setSampling(0.0, 0); // drop everything, no tail rescue

    serve::EngineOptions opts;
    opts.jobs = 1;
    serve::Engine engine(opts);

    Rng rng(0xD20b);
    serve::Request req;
    req.id = 6;
    req.kind = core::ArchKind::NLR;
    req.hasSpec = true;
    req.spec = randomSpec(rng);
    req.unroll = smallUnroll(rng);
    req.trace = "00112233445566778899aabbccddeeff-0000000000000042";
    const serve::Response rsp = engine.handle(req);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_FALSE(rsp.traceKept);
    // Plain RAII spans from deeper layers may still record; the
    // request's own span batch must not.
    for (const obs::TraceEvent &ev : sink.drain())
        EXPECT_NE(ev.name.rfind("serve.", 0), 0u)
            << "head-dropped request leaked span " << ev.name;

    // Tail-keep rescues the same request at a 1us threshold (any
    // simulated request takes at least that long end to end).
    sink.setSampling(0.0, 1);
    serve::Request again = req;
    again.id = 7;
    again.spec = randomSpec(rng); // fresh shape: forces a simulate
    const serve::Response rescued = engine.handle(again);
    ASSERT_TRUE(rescued.ok) << rescued.error;
    EXPECT_TRUE(rescued.traceKept);
    bool sawRequestSpan = false;
    for (const obs::TraceEvent &ev : sink.drain())
        sawRequestSpan |= ev.name == "serve.request";
    EXPECT_TRUE(sawRequestSpan);

    sink.setSampling(1.0, 0);
    engine.drain();
    sink.disable();
    sink.drain();
}

} // namespace
