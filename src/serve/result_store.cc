/**
 * @file
 * Result-store implementation.
 */

#include "serve/result_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "fault/fs_faults.hh"
#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ganacc {
namespace serve {

namespace {

std::atomic<StoreBug> g_store_bug{StoreBug::None};

/** Read a whole file; nullopt when it does not exist or is unreadable. */
std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

void
setStoreBugForTesting(StoreBug bug)
{
    g_store_bug.store(bug, std::memory_order_relaxed);
}

StoreBug
storeBugForTesting()
{
    return g_store_bug.load(std::memory_order_relaxed);
}

ResultStore::ResultStore(std::string dir, std::string version)
    : dir_(std::move(dir)), version_(std::move(version))
{
    if (dir_.empty())
        util::fatal("result store needs a non-empty directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        util::fatal("result store: cannot create '", dir_,
                    "': ", ec.message());
    // Publish this store's counters to the telemetry registry for
    // the store's lifetime. Values across stores accumulate into one
    // series, so a sweep that reopens its store still reports totals.
    collector_ = obs::Registry::instance().addCollector(
        [this](obs::Snapshot &snap) {
            const StoreCounters c = storeStats();
            snap.counter("ganacc_store_hits_total", c.hits);
            snap.counter("ganacc_store_misses_total", c.misses);
            snap.counter("ganacc_store_stale_misses_total",
                         c.staleMisses);
            snap.counter("ganacc_store_corrupt_misses_total",
                         c.corruptMisses);
            snap.counter("ganacc_store_writes_total", c.writes);
        });
}

ResultStore::~ResultStore()
{
    obs::Registry::instance().removeCollector(collector_);
}

std::string
ResultStore::entryPath(core::ArchKind kind, const sim::Unroll &u,
                       const sim::ConvSpec &spec) const
{
    const std::string key = contentKey(kind, u, spec, version_);
    return (fs::path(dir_) / key.substr(0, 2) / (key + ".json"))
        .string();
}

std::optional<sim::RunStats>
ResultStore::load(core::ArchKind kind, const sim::Unroll &u,
                  const sim::ConvSpec &spec)
{
    const fs::path path = entryPath(kind, u, spec);
    // Fallible-filesystem seam: an armed read fault makes this entry
    // unreadable (EIO-equivalent), which the store reports as a plain
    // miss — the caller re-simulates and write-through repairs.
    if (fault::consumeReadFault()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::optional<std::string> text = slurp(path);
    if (!text) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    auto quarantine = [&](const char *why) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        if (storeBugForTesting() == StoreBug::SkipQuarantine)
            return; // deliberate bug: corrupt entry left in place
        std::error_code ec;
        fs::rename(path, fs::path(path.string() + ".quarantined"), ec);
        if (ec)
            fs::remove(path, ec);
        util::warn("result store: quarantined ", path.string(), " (",
                   why, ")");
    };
    try {
        const util::json::Value doc = util::json::parse(*text);
        const util::json::Object &o = doc.asObject();
        if (o.at("version").asString() != version_ &&
            storeBugForTesting() != StoreBug::SkipStaleCheck) {
            // Written by a different simulator: self-invalidates.
            stale_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        // The shape must match the probe — a content-hash collision
        // or foreign file must never alias a different job's numbers.
        if (o.at("spec").dump() !=
                util::json::parse(sim::specShapeKey(spec)).dump() ||
            o.at("arch").asString() != core::archKindName(kind) ||
            o.at("unroll").dump() !=
                util::json::parse(sim::toJson(u)).dump()) {
            quarantine("key mismatch");
            return std::nullopt;
        }
        sim::RunStats st = sim::runStatsFromJson(o.at("stats"));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return st;
    } catch (const util::FatalError &e) {
        quarantine(e.what());
        return std::nullopt;
    }
}

void
ResultStore::store(core::ArchKind kind, const sim::Unroll &u,
                   const sim::ConvSpec &spec,
                   const sim::RunStats &stats)
{
    const fs::path path = entryPath(kind, u, spec);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
        util::warn("result store: cannot create ",
                   path.parent_path().string(), ": ", ec.message());
        return;
    }

    // Fallible-filesystem seam: an armed write fault drops this
    // write-through on the floor — the entry simply never lands.
    if (fault::consumeWriteFault())
        return;

    std::ostringstream body;
    body << "{\"version\":\"" << version_ << "\",\"arch\":\""
         << core::archKindName(kind)
         << "\",\"unroll\":" << sim::toJson(u)
         << ",\"spec\":" << sim::specShapeKey(spec)
         << ",\"stats\":" << sim::toJson(stats) << "}\n";
    std::string bytes = body.str();
    // A torn write emulates a writer that died mid-file *before* the
    // atomic-rename discipline existed: half an object lands at the
    // live address, which the next load must quarantine.
    if (fault::consumeTornWrite())
        bytes.resize(bytes.size() / 2);

    // Private tmp name (pid + process-wide sequence disambiguate
    // concurrent writers), then an atomic rename into place. The
    // sequence must be shared across store handles: two threads with
    // their own handles share a pid, and per-handle counters would
    // let them collide on the same tmp name and tear each other's
    // writes.
    static std::atomic<std::uint64_t> tmpSeq{0};
    std::ostringstream tmpName;
    tmpName << path.string() << ".tmp."
            << static_cast<unsigned long>(::getpid()) << "."
            << tmpSeq.fetch_add(1, std::memory_order_relaxed);
    const fs::path tmp(tmpName.str());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            util::warn("result store: cannot write ", tmp.string());
            return;
        }
        os << bytes;
        os.flush();
        if (!os) {
            util::warn("result store: short write to ", tmp.string());
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        util::warn("result store: rename to ", path.string(),
                   " failed: ", ec.message());
        fs::remove(tmp, ec);
        return;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
}

StoreCounters
ResultStore::counters() const
{
    StoreCounters c;
    c.hits = hits_.load();
    c.misses = misses_.load();
    c.staleMisses = stale_.load();
    c.corruptMisses = corrupt_.load();
    c.writes = writes_.load();
    return c;
}

std::size_t
ResultStore::entryCount() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (fs::recursive_directory_iterator
             it(dir_, fs::directory_options::skip_permission_denied,
                ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) &&
            it->path().extension() == ".json")
            ++n;
    }
    return n;
}

std::string
ResultStore::summary() const
{
    const StoreCounters c = counters();
    std::ostringstream os;
    os << "result store '" << dir_ << "': " << c.hits << " hits, "
       << c.misses << " misses (" << c.staleMisses << " stale, "
       << c.corruptMisses << " quarantined), " << c.writes
       << " writes";
    return os.str();
}

ScopedDiskCache::ScopedDiskCache(const std::string &dir)
{
    if (dir.empty())
        return;
    store_ = std::make_unique<ResultStore>(dir);
    core::CycleCache::instance().attachDiskTier(store_.get());
}

ScopedDiskCache::~ScopedDiskCache()
{
    if (store_)
        core::CycleCache::instance().attachDiskTier(nullptr);
}

} // namespace serve
} // namespace ganacc
