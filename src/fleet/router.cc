/**
 * @file
 * Fleet router implementation.
 */

#include "fleet/router.hh"

#include <chrono>
#include <thread>

#include "core/unrolling.hh"
#include "obs/trace.hh"
#include "sim/json.hh"
#include "util/logging.hh"

namespace ganacc {
namespace fleet {

namespace {

/** Failure response synthesized when no replica is reachable. */
constexpr const char *kNoReplicaError =
    "fleet: no live replica reachable for this request";

bool
isOverloaded(const std::string &responseLine)
{
    // Cheap reject first; decode only plausible shed responses.
    if (responseLine.find("\"error\":\"overloaded:") ==
        std::string::npos)
        return false;
    try {
        const serve::Response rsp =
            serve::decodeResponse(responseLine);
        return !rsp.ok && rsp.error == serve::kOverloadedError;
    } catch (...) {
        return false;
    }
}

/** Salvage the id of a possibly undecodable line (same best-effort
 *  contract as the daemon's error path). */
std::uint64_t
salvageId(const std::string &line)
{
    std::uint64_t id = 0;
    const auto at = line.find("\"id\":");
    if (at != std::string::npos) {
        std::size_t p = at + 5;
        while (p < line.size() && line[p] >= '0' && line[p] <= '9')
            id = id * 10 + std::uint64_t(line[p++] - '0');
    }
    return id;
}

} // namespace

std::string
routeKeyOf(const serve::Request &req)
{
    if (req.statsProbe || req.fleetProbe || req.metricsProbe ||
        req.traceDrainProbe)
        return ""; // probes pin to shard 0 (any shard would do)
    // A put routes like the spec it carries: replication copies must
    // land on the same shard set the content key owns.
    if (req.hasSpec || req.put)
        return serve::contentKey(req.kind, req.unroll, req.spec);
    return "net|" + core::archKindName(req.kind) + '|' +
           sim::toJson(req.unroll) + '|' + req.model + '|' +
           req.family;
}

/** One batch line and where it stands in the retry/failover state
 *  machine. */
struct Router::Pending
{
    std::size_t index = 0; ///< original batch position
    std::string line;      ///< raw request line (sent verbatim)
    bool decoded = false;
    serve::Request req;     ///< valid when decoded
    std::vector<int> route; ///< failover order (distinct shards)
    std::size_t routePos = 0;
    int overloadAttempts = 0;
    bool done = false;
};

Router::Router(RouterOptions opt)
    : opt_(std::move(opt)), ring_(opt_.topology)
{
    const std::size_t n = opt_.topology.shards.size();
    clients_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        clients_.push_back(std::make_unique<serve::Client>());
    connected_.assign(n, false);
    everConnected_.assign(n, false);
    counters_.sentPerShard.assign(n, 0);
}

Router::~Router() = default;

Topology
Router::bootstrap(const std::string &seedAddr,
                  const serve::ConnectOptions &opt)
{
    serve::Client seed;
    seed.connect(seedAddr, opt);
    serve::Request probe;
    probe.id = 1;
    probe.fleetProbe = true;
    const serve::Response rsp = seed.roundTrip(probe);
    if (!rsp.ok)
        util::fatal("fleet bootstrap(", seedAddr, "): ", rsp.error);
    return topologyFromJson(rsp.fleet);
}

bool
Router::ensureConnected(int shard, std::uint64_t *reconnects)
{
    if (connected_[std::size_t(shard)])
        return true;
    try {
        clients_[std::size_t(shard)]->connect(
            opt_.topology.shards[std::size_t(shard)], opt_.connect);
    } catch (const util::FatalError &) {
        return false;
    }
    connected_[std::size_t(shard)] = 1;
    if (everConnected_[std::size_t(shard)] && reconnects)
        ++*reconnects;
    everConnected_[std::size_t(shard)] = 1;
    return true;
}

void
Router::disconnect(int shard)
{
    clients_[std::size_t(shard)]->close();
    connected_[std::size_t(shard)] = 0;
}

/**
 * One pass over every not-yet-done line: group by current target
 * shard, pipeline each group over its connection (all shards in
 * parallel), classify each outcome as answered / shed (retry next
 * round) / transport failure (reconnect or fail over).
 */
void
Router::runRound(std::vector<Pending *> &batch,
                 std::vector<std::string> &responses)
{
    const int n = int(opt_.topology.shards.size());
    std::vector<std::vector<Pending *>> byShard(
        static_cast<std::size_t>(n));
    for (Pending *p : batch)
        if (!p->done)
            byShard[std::size_t(p->route[p->routePos])].push_back(p);

    struct PassResult
    {
        std::uint64_t sent = 0;
        std::uint64_t overloadRetries = 0;
        std::uint64_t reconnects = 0;
        std::vector<Pending *> advance; ///< move to next replica
    };
    std::vector<PassResult> results(static_cast<std::size_t>(n));
    std::vector<std::thread> threads;

    for (int s = 0; s < n; ++s) {
        std::vector<Pending *> &group = byShard[std::size_t(s)];
        if (group.empty())
            continue;
        threads.emplace_back([this, s, &group, &responses,
                              &results] {
            PassResult &res = results[std::size_t(s)];
            if (!ensureConnected(s, &res.reconnects)) {
                res.advance = group;
                return;
            }
            serve::Client &client = *clients_[std::size_t(s)];
            std::size_t sent = 0, received = 0;
            try {
                while (received < group.size()) {
                    while (sent < group.size() &&
                           sent - received < opt_.window) {
                        client.sendLine(group[sent]->line);
                        ++res.sent;
                        ++sent;
                    }
                    const std::string line = client.recvLine();
                    Pending *p = group[received++];
                    if (isOverloaded(line) &&
                        p->overloadAttempts < opt_.overloadRetries) {
                        // Shed: leave pending, retry next round
                        // (after the round's backoff sleep). Past
                        // the retry budget the shed response is the
                        // final answer.
                        ++p->overloadAttempts;
                        ++res.overloadRetries;
                        continue;
                    }
                    responses[p->index] = line;
                    p->done = true;
                }
            } catch (const util::FatalError &) {
                // The connection died (shard draining or gone). The
                // unanswered tail may have been half-executed —
                // requests are idempotent, so resending is safe.
                // One immediate reconnect attempt distinguishes "the
                // shard restarted" (stay) from "the shard is down"
                // (fail over).
                client.close();
                connected_[std::size_t(s)] = 0;
                if (!ensureConnected(s, &res.reconnects))
                    res.advance.assign(group.begin() + long(received),
                                       group.end());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int s = 0; s < n; ++s) {
        PassResult &res = results[std::size_t(s)];
        counters_.sentPerShard[std::size_t(s)] += res.sent;
        counters_.overloadRetries += res.overloadRetries;
        counters_.reconnects += res.reconnects;
        for (Pending *p : res.advance) {
            if (p->routePos + 1 < p->route.size()) {
                ++p->routePos;
                ++counters_.failovers;
            } else {
                const std::uint64_t id =
                    p->decoded ? p->req.id : salvageId(p->line);
                responses[p->index] = serve::encodeResponse(
                    serve::errorResponse(id, kNoReplicaError));
                p->done = true;
            }
        }
    }
}

std::vector<std::string>
Router::transactLines(const std::vector<std::string> &lines)
{
    const int n = int(opt_.topology.shards.size());
    const int rf = opt_.topology.effectiveRf();

    obs::TraceSink &sink = obs::TraceSink::instance();
    const bool tracing = sink.enabled();
    /// Root trace identity + start stamp per line (invalid when the
    /// line is untraced: undecodable, a probe, or tracing is off).
    struct RootTrace
    {
        obs::TraceContext ctx;
        std::uint64_t t0 = 0;
    };
    std::vector<RootTrace> roots(lines.size());

    std::vector<Pending> pendings(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        Pending &p = pendings[i];
        p.index = i;
        p.line = lines[i];
        try {
            p.req = serve::decodeRequest(lines[i]);
            p.decoded = true;
        } catch (...) {
            p.decoded = false;
        }
        if (tracing && p.decoded && !p.req.statsProbe &&
            !p.req.fleetProbe && !p.req.metricsProbe &&
            !p.req.traceDrainProbe && p.req.trace.empty()) {
            // Open this request's trace: a fresh root context rides
            // the re-encoded line to the serving shard (and, for
            // fresh results, on to the replicas). Lines that already
            // carry a context pass through untouched.
            roots[i].ctx = obs::newTraceContext();
            roots[i].t0 = sink.nowUs();
            p.req.trace = obs::encodeTraceContext(roots[i].ctx);
            p.line = serve::encodeRequest(p.req);
        }
        if (p.decoded) {
            const std::string key = routeKeyOf(p.req);
            if (key.empty()) {
                // Probes pin to shard 0; the rest of the list is
                // only a failover order.
                for (int s = 0; s < n; ++s)
                    p.route.push_back(s);
            } else {
                p.route = ring_.replicas(key, rf);
            }
        } else {
            // Undecodable: every shard answers the same error, so
            // route on the raw bytes purely for load spreading.
            p.route = ring_.replicas(lines[i], rf);
        }
    }

    std::vector<std::string> responses(lines.size());
    std::vector<Pending *> batch;
    batch.reserve(pendings.size());
    for (Pending &p : pendings)
        batch.push_back(&p);

    // Round loop: each round handles every pending line once; sheds
    // back off exponentially, transport failures walk the replica
    // chain. The bound is generous — every line can exhaust its shed
    // budget and its whole route and still get a final answer.
    const int maxRounds = opt_.overloadRetries + n + 2;
    int backoffMs = opt_.overloadBackoffMs;
    for (int round = 0; round < maxRounds; ++round) {
        bool open = false;
        for (const Pending &p : pendings)
            open |= !p.done;
        if (!open)
            break;
        if (round > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs = backoffMs < 1000 ? backoffMs * 2 : 1000;
        }
        runRound(batch, responses);
    }
    for (Pending &p : pendings) {
        if (p.done)
            continue;
        const std::uint64_t id =
            p.decoded ? p.req.id : salvageId(p.line);
        responses[p.index] = serve::encodeResponse(
            serve::errorResponse(id, kNoReplicaError));
        p.done = true;
    }

    if (tracing) {
        // Close the root spans now that every line has its answer.
        // The same head-sample hash every shard used decides here
        // too, plus the tail-keep threshold on router-side latency.
        const std::uint64_t t1 = sink.nowUs();
        for (const Pending &p : pendings) {
            const RootTrace &rt = roots[p.index];
            if (!rt.ctx.valid())
                continue;
            const std::uint64_t lat = t1 > rt.t0 ? t1 - rt.t0 : 1;
            if (!sink.keep(rt.ctx, lat))
                continue;
            obs::TraceEvent ev;
            ev.name = "fleet.request";
            ev.cat = "fleet";
            ev.tid = obs::TraceSink::threadLane();
            ev.ts = rt.t0;
            ev.dur = lat;
            ev.args = obs::spanArgs(rt.ctx, rt.ctx.span, 0,
                                    "\"id\":" +
                                        std::to_string(p.req.id));
            sink.record(std::move(ev));
        }
    }

    if (opt_.replicate && rf > 1)
        replicateFresh(pendings, responses);
    return responses;
}

/**
 * Push every freshly simulated result to the other replicas of its
 * key. Fire-and-confirm: each put is a normal pipelined request to
 * one specific shard (no failover — a down replica is repaired by
 * the next miss-and-simulate cycle, that is the read-repair path).
 */
void
Router::replicateFresh(const std::vector<Pending> &lines,
                       const std::vector<std::string> &responses)
{
    std::vector<Pending> puts;
    for (const Pending &p : lines) {
        if (!p.done || !p.decoded || !p.req.hasSpec || p.req.put)
            continue;
        serve::Response rsp;
        try {
            rsp = serve::decodeResponse(responses[p.index]);
        } catch (...) {
            continue;
        }
        if (!rsp.ok || rsp.cache != "sim")
            continue;
        const std::string key = serve::contentKey(
            p.req.kind, p.req.unroll, p.req.spec);
        const std::vector<int> replicas =
            ring_.replicas(key, opt_.topology.effectiveRf());
        const int servedBy = p.route[p.routePos];
        serve::Request put;
        put.id = p.req.id;
        // Forward the request's trace context: the replica's put
        // spans then parent under the same root as the serving
        // shard's, so a merged trace shows the whole replication fan.
        put.trace = p.req.trace;
        put.put = true;
        put.kind = p.req.kind;
        put.unroll = p.req.unroll;
        put.hasSpec = true;
        put.spec = p.req.spec;
        put.putStats = rsp.stats;
        put.putSimVersion = rsp.simVersion;
        const std::string putLine = serve::encodeRequest(put);
        for (int r : replicas) {
            if (r == servedBy)
                continue;
            Pending q;
            q.index = puts.size();
            q.line = putLine;
            q.decoded = true;
            q.req = put;
            q.route = {r};
            puts.push_back(std::move(q));
        }
    }
    if (puts.empty())
        return;

    std::vector<std::string> acks(puts.size());
    std::vector<Pending *> batch;
    batch.reserve(puts.size());
    for (Pending &p : puts)
        batch.push_back(&p);
    const int maxRounds = opt_.overloadRetries + 2;
    int backoffMs = opt_.overloadBackoffMs;
    for (int round = 0; round < maxRounds; ++round) {
        bool open = false;
        for (const Pending &p : puts)
            open |= !p.done;
        if (!open)
            break;
        if (round > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs = backoffMs < 1000 ? backoffMs * 2 : 1000;
        }
        runRound(batch, acks);
    }
    for (std::size_t i = 0; i < puts.size(); ++i) {
        bool stored = false;
        if (puts[i].done && !acks[i].empty()) {
            try {
                const serve::Response rsp =
                    serve::decodeResponse(acks[i]);
                stored = rsp.ok && rsp.cache == "put";
            } catch (...) {
            }
        }
        if (stored)
            ++counters_.puts;
        else
            ++counters_.skippedPuts;
    }
}

serve::Response
Router::call(const serve::Request &req)
{
    const std::vector<std::string> out =
        transactLines({serve::encodeRequest(req)});
    return serve::decodeResponse(out.at(0));
}

std::vector<std::pair<std::string, std::string>>
Router::statsAll()
{
    std::vector<std::pair<std::string, std::string>> out;
    const int n = int(opt_.topology.shards.size());
    for (int s = 0; s < n; ++s) {
        const std::string &addr =
            opt_.topology.shards[std::size_t(s)];
        std::string telemetry;
        if (ensureConnected(s, &counters_.reconnects)) {
            try {
                serve::Request probe;
                probe.id = std::uint64_t(s) + 1;
                probe.statsProbe = true;
                ++counters_.sentPerShard[std::size_t(s)];
                const serve::Response rsp =
                    clients_[std::size_t(s)]->roundTrip(probe);
                if (rsp.ok)
                    telemetry = rsp.telemetry;
            } catch (const util::FatalError &) {
                clients_[std::size_t(s)]->close();
                connected_[std::size_t(s)] = false;
            }
        }
        out.emplace_back(addr, telemetry);
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
Router::scrapeAll()
{
    std::vector<std::pair<std::string, std::string>> out;
    const int n = int(opt_.topology.shards.size());
    for (int s = 0; s < n; ++s) {
        const std::string &addr =
            opt_.topology.shards[std::size_t(s)];
        std::string text;
        if (ensureConnected(s, &counters_.reconnects)) {
            try {
                serve::Request probe;
                probe.id = std::uint64_t(s) + 1;
                probe.metricsProbe = true;
                ++counters_.sentPerShard[std::size_t(s)];
                const serve::Response rsp =
                    clients_[std::size_t(s)]->roundTrip(probe);
                if (rsp.ok)
                    text = rsp.metricsText;
            } catch (const util::FatalError &) {
                clients_[std::size_t(s)]->close();
                connected_[std::size_t(s)] = false;
            }
        }
        out.emplace_back(addr, text);
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
Router::drainTracesAll()
{
    std::vector<std::pair<std::string, std::string>> out;
    const int n = int(opt_.topology.shards.size());
    for (int s = 0; s < n; ++s) {
        const std::string &addr =
            opt_.topology.shards[std::size_t(s)];
        std::string spans;
        if (ensureConnected(s, &counters_.reconnects)) {
            try {
                serve::Request probe;
                probe.id = std::uint64_t(s) + 1;
                probe.traceDrainProbe = true;
                ++counters_.sentPerShard[std::size_t(s)];
                const serve::Response rsp =
                    clients_[std::size_t(s)]->roundTrip(probe);
                if (rsp.ok)
                    spans = rsp.spans;
            } catch (const util::FatalError &) {
                clients_[std::size_t(s)]->close();
                connected_[std::size_t(s)] = false;
            }
        }
        out.emplace_back(addr, spans);
    }
    return out;
}

} // namespace fleet
} // namespace ganacc
