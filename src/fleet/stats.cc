/**
 * @file
 * Telemetry merge implementation.
 */

#include "fleet/stats.hh"

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace ganacc {
namespace fleet {

namespace {

/** Insertion-ordered accumulator: fleet totals should list metrics
 *  in the order the first shard reported them, not alphabetically —
 *  that keeps the aggregate visually diffable against one shard. */
template <typename V> class OrderedSums
{
  public:
    V &
    slot(const std::string &name)
    {
        auto it = index_.find(name);
        if (it == index_.end()) {
            index_.emplace(name, entries_.size());
            entries_.emplace_back(name, V{});
            return entries_.back().second;
        }
        return entries_[it->second].second;
    }

    const std::vector<std::pair<std::string, V>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::size_t> index_;
    std::vector<std::pair<std::string, V>> entries_;
};

struct HistSum
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;
};

/**
 * The smallest bucket upper bound covering `pct` percent of the
 * samples, as the Prometheus le string ("64", "+Inf", …). Exact
 * integer arithmetic (cum * 100 >= pct * count); "0" when the
 * histogram is empty. Bounds come from obs::Histogram's fixed
 * power-of-two layout — the same one every shard records under.
 */
std::string
quantileLe(const std::vector<std::uint64_t> &buckets,
           std::uint64_t count, std::uint64_t pct)
{
    if (count == 0)
        return "0";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum * 100 >= pct * count) {
            if (i + 1 == buckets.size())
                return "+Inf";
            return std::to_string(
                obs::Histogram::bucketBound(int(i)));
        }
    }
    return "+Inf";
}

} // namespace

std::string
mergeTelemetry(const std::vector<std::string> &snapshots)
{
    OrderedSums<std::uint64_t> counters;
    OrderedSums<std::int64_t> gauges;
    OrderedSums<HistSum> histograms;

    for (const std::string &text : snapshots) {
        if (text.empty())
            continue; // unreachable shard: contributes nothing
        const util::json::Value doc = util::json::parse(text);
        const util::json::Object &o = doc.asObject();
        for (const auto &[name, v] :
             o.at("counters").asObject().entries())
            counters.slot(name) += v.asUint64();
        for (const auto &[name, v] :
             o.at("gauges").asObject().entries())
            gauges.slot(name) += std::int64_t(v.asUint64());
        for (const auto &[name, v] :
             o.at("histograms").asObject().entries()) {
            const util::json::Object &h = v.asObject();
            HistSum &acc = histograms.slot(name);
            acc.count += h.at("count").asUint64();
            acc.sum += h.at("sum").asUint64();
            const util::json::Array &buckets =
                h.at("buckets").asArray();
            if (acc.buckets.empty())
                acc.buckets.assign(buckets.size(), 0);
            if (acc.buckets.size() != buckets.size())
                util::fatal("fleet stats: histogram \"", name,
                            "\" bucket layouts differ across shards (",
                            acc.buckets.size(), " vs ",
                            buckets.size(), ")");
            for (std::size_t i = 0; i < buckets.size(); ++i)
                acc.buckets[i] += buckets[i].asUint64();
        }
    }

    util::json::Object countersOut;
    for (const auto &[name, v] : counters.entries())
        countersOut.set(name, util::json::Value(v));
    util::json::Object gaugesOut;
    for (const auto &[name, v] : gauges.entries())
        gaugesOut.set(name, util::json::Value(std::uint64_t(
                                v < 0 ? 0 : v)));
    util::json::Object histogramsOut;
    for (const auto &[name, h] : histograms.entries()) {
        util::json::Object hist;
        hist.set("count", util::json::Value(h.count));
        hist.set("sum", util::json::Value(h.sum));
        util::json::Array buckets;
        for (std::uint64_t b : h.buckets)
            buckets.push_back(util::json::Value(b));
        hist.set("buckets", util::json::Value(std::move(buckets)));
        histogramsOut.set(name, util::json::Value(std::move(hist)));
    }
    util::json::Object root;
    root.set("counters", util::json::Value(std::move(countersOut)));
    root.set("gauges", util::json::Value(std::move(gaugesOut)));
    root.set("histograms",
             util::json::Value(std::move(histogramsOut)));
    return util::json::Value(std::move(root)).dump();
}

std::string
fleetStatsReport(
    const std::vector<std::pair<std::string, std::string>> &perShard)
{
    std::vector<std::string> snapshots;
    std::size_t reachable = 0;
    for (const auto &[addr, telemetry] : perShard) {
        (void)addr;
        snapshots.push_back(telemetry);
        if (!telemetry.empty())
            ++reachable;
    }
    const std::string aggregate = mergeTelemetry(snapshots);

    util::json::Object fleet;
    fleet.set("shards",
              util::json::Value(std::uint64_t(perShard.size())));
    fleet.set("reachable",
              util::json::Value(std::uint64_t(reachable)));
    util::json::Array rows;
    for (std::size_t s = 0; s < perShard.size(); ++s) {
        util::json::Object row;
        row.set("shard", util::json::Value(std::uint64_t(s)));
        row.set("address", util::json::Value(perShard[s].first));
        if (perShard[s].second.empty())
            row.set("telemetry", util::json::Value());
        else
            row.set("telemetry",
                    util::json::parse(perShard[s].second));
        rows.push_back(util::json::Value(std::move(row)));
    }
    // Derived fleet-wide latency summary from the aggregate
    // ganacc_serve_latency_us histogram: request count, total
    // microseconds, and the bucket bounds covering p50/p99. The le
    // values are strings so "+Inf" needs no special case; all
    // arithmetic is exact integers, which is what lets a ctest pin
    // this report byte-for-byte.
    util::json::Object latency;
    {
        std::uint64_t count = 0, sumUs = 0;
        std::vector<std::uint64_t> buckets;
        const util::json::Value aggDoc = util::json::parse(aggregate);
        const util::json::Object &hists =
            aggDoc.asObject().at("histograms").asObject();
        if (hists.contains("ganacc_serve_latency_us")) {
            const util::json::Object &h =
                hists.at("ganacc_serve_latency_us").asObject();
            count = h.at("count").asUint64();
            sumUs = h.at("sum").asUint64();
            for (const util::json::Value &b :
                 h.at("buckets").asArray())
                buckets.push_back(b.asUint64());
        }
        latency.set("count", util::json::Value(count));
        latency.set("sumUs", util::json::Value(sumUs));
        latency.set("p50Le",
                    util::json::Value(quantileLe(buckets, count, 50)));
        latency.set("p99Le",
                    util::json::Value(quantileLe(buckets, count, 99)));
    }

    util::json::Object root;
    root.set("fleet", util::json::Value(std::move(fleet)));
    root.set("latency", util::json::Value(std::move(latency)));
    root.set("perShard", util::json::Value(std::move(rows)));
    root.set("aggregate", util::json::parse(aggregate));
    return util::json::Value(std::move(root)).dump();
}

} // namespace fleet
} // namespace ganacc
