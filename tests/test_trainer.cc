/**
 * @file
 * Tests for the GAN networks and the two training algorithms,
 * including the paper's central algorithmic claim: deferred
 * synchronization computes the exact same mini-batch gradient as the
 * original synchronized algorithm (Section IV-A, eq. 6).
 */

#include <gtest/gtest.h>

#include "gan/data.hh"
#include "gan/models.hh"
#include "gan/network.hh"
#include "gan/trainer.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using gan::GanModel;
using gan::LayerSpec;
using gan::SyncMode;
using gan::Trainer;
using tensor::approxEqual;
using tensor::maxAbsDiff;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

/** A small two-layer GAN so training tests run fast. */
GanModel
tinyModel()
{
    std::vector<LayerSpec> disc;
    LayerSpec l1;
    l1.kind = nn::ConvKind::Strided;
    l1.act = nn::Activation::LeakyReLU;
    l1.inChannels = 1;
    l1.outChannels = 8;
    l1.inH = l1.inW = 8;
    l1.geom = nn::Conv2dGeom{4, 2, 1, 0};
    disc.push_back(l1);
    LayerSpec l2;
    l2.kind = nn::ConvKind::Strided;
    l2.act = nn::Activation::None;
    l2.inChannels = 8;
    l2.outChannels = 1;
    l2.inH = l2.inW = 4;
    l2.geom = nn::Conv2dGeom{4, 1, 0, 0};
    disc.push_back(l2);
    return gan::makeModel("tiny", std::move(disc), 16);
}

TEST(Network, ForwardProducesScalarScore)
{
    GanModel m = tinyModel();
    Rng rng(1);
    gan::Network disc(m.disc, rng);
    Tensor img(2, 1, 8, 8);
    img.fillUniform(rng);
    Tensor out = disc.forward(img);
    EXPECT_EQ(out.shape(), Shape4(2, 1, 1, 1));
    auto scores = gan::Network::scores(out);
    EXPECT_EQ(scores.size(), 2u);
}

TEST(Network, GeneratorMapsNoiseToImage)
{
    GanModel m = tinyModel();
    Rng rng(2);
    gan::Network gen(m.gen, rng);
    Tensor z(3, 16, 1, 1);
    z.fillGaussian(rng);
    Tensor img = gen.forward(z);
    EXPECT_EQ(img.shape(), Shape4(3, 1, 8, 8));
    // Tanh output is bounded.
    EXPECT_LE(img.absMax(), 1.0f);
}

TEST(Network, BackwardErrorLeavesGradientsUntouched)
{
    GanModel m = tinyModel();
    Rng rng(3);
    gan::Network disc(m.disc, rng);
    Tensor img(1, 1, 8, 8);
    img.fillUniform(rng);
    disc.forward(img);
    disc.backward(Tensor(1, 1, 1, 1, 0.5f));
    Tensor grad_before = disc.layers()[0]->gradAccum();
    int samples_before = disc.layers()[0]->gradSamples();

    disc.forward(img);
    disc.backwardError(Tensor(1, 1, 1, 1, 0.5f));
    EXPECT_EQ(maxAbsDiff(disc.layers()[0]->gradAccum(), grad_before),
              0.0f);
    EXPECT_EQ(disc.layers()[0]->gradSamples(), samples_before);
}

TEST(Network, BackwardErrorReturnsSameErrorAsBackward)
{
    GanModel m = tinyModel();
    Rng rng(4);
    gan::Network disc(m.disc, rng);
    Tensor img(1, 1, 8, 8);
    img.fillUniform(rng);
    disc.forward(img);
    Tensor derr(1, 1, 1, 1, -0.25f);
    Tensor e1 = disc.backward(derr);
    disc.forward(img);
    Tensor e2 = disc.backwardError(derr);
    EXPECT_TRUE(approxEqual(e1, e2, 1e-6f));
}

TEST(Trainer, DeferredEqualsSynchronizedDiscriminatorGradient)
{
    // The paper's key algorithmic equivalence (Section IV-A): the m
    // independent per-sample loops accumulate exactly the synchronized
    // mini-batch gradient.
    GanModel m = tinyModel();
    const int batch = 6;
    Trainer sync(m, 42, SyncMode::Synchronized);
    Trainer defer(m, 42, SyncMode::Deferred);

    Rng data_rng(100);
    Tensor real = gan::makeBlobImages(batch, 1, 8, 8, data_rng);
    Rng noise_rng(200);
    Tensor noise = sync.sampleNoise(batch, noise_rng);

    double loss_s = sync.accumulateDiscriminatorGradients(real, noise);
    double loss_d = defer.accumulateDiscriminatorGradients(real, noise);
    EXPECT_NEAR(loss_s, loss_d, 1e-5);

    for (std::size_t i = 0; i < m.disc.size(); ++i) {
        const Tensor &gs =
            sync.discriminator().layers()[i]->gradAccum();
        const Tensor &gd =
            defer.discriminator().layers()[i]->gradAccum();
        EXPECT_TRUE(approxEqual(gs, gd, 1e-4f))
            << "disc layer " << i << " diff " << maxAbsDiff(gs, gd);
    }
}

TEST(Trainer, DeferredEqualsSynchronizedGeneratorGradient)
{
    GanModel m = tinyModel();
    const int batch = 5;
    Trainer sync(m, 7, SyncMode::Synchronized);
    Trainer defer(m, 7, SyncMode::Deferred);

    Rng noise_rng(300);
    Tensor noise = sync.sampleNoise(batch, noise_rng);

    double loss_s = sync.accumulateGeneratorGradients(noise);
    double loss_d = defer.accumulateGeneratorGradients(noise);
    EXPECT_NEAR(loss_s, loss_d, 1e-5);

    for (std::size_t i = 0; i < m.gen.size(); ++i) {
        const Tensor &gs = sync.generator().layers()[i]->gradAccum();
        const Tensor &gd = defer.generator().layers()[i]->gradAccum();
        EXPECT_TRUE(approxEqual(gs, gd, 1e-4f))
            << "gen layer " << i << " diff " << maxAbsDiff(gs, gd);
    }
    // The generator update must not have polluted the discriminator's
    // gradients (its backward is error-relay only, Fig. 8(b)).
    for (std::size_t i = 0; i < m.disc.size(); ++i) {
        EXPECT_FLOAT_EQ(
            sync.discriminator().layers()[i]->gradAccum().absMax(),
            0.0f);
        EXPECT_FLOAT_EQ(
            defer.discriminator().layers()[i]->gradAccum().absMax(),
            0.0f);
    }
}

TEST(Trainer, SameSeedSameWeights)
{
    GanModel m = tinyModel();
    Trainer a(m, 11, SyncMode::Synchronized);
    Trainer b(m, 11, SyncMode::Deferred);
    for (std::size_t i = 0; i < m.disc.size(); ++i)
        EXPECT_EQ(maxAbsDiff(a.discriminator().layers()[i]->weights(),
                             b.discriminator().layers()[i]->weights()),
                  0.0f);
}

TEST(Trainer, ClippingBoundsCriticWeights)
{
    GanModel m = tinyModel();
    Trainer t(m, 13, SyncMode::Deferred, 0.01f);
    Rng rng(400);
    Tensor real = gan::makeBlobImages(4, 1, 8, 8, rng);
    Tensor noise = t.sampleNoise(4, rng);
    t.accumulateDiscriminatorGradients(real, noise);
    nn::RmsProp opt(5e-3f);
    t.applyDiscriminatorUpdate(opt);
    for (auto &layer : t.discriminator().layers())
        EXPECT_LE(layer->weights().absMax(), 0.01f);
}

TEST(Trainer, CriticLearnsToSeparateRealFromFake)
{
    // A few critic-only updates must grow the Wasserstein gap
    // D(real) - D(fake) — the loss (eq. 1) must fall.
    // With fixed real data, fixed noise, no clipping and a small SGD
    // step, each discriminator update is exact gradient descent on
    // eq. (1), so the Wasserstein gap D(real)-D(fake) must grow.
    GanModel m = tinyModel();
    Trainer t(m, 21, SyncMode::Deferred, /*clip=*/0.0f);
    Rng rng(500);
    nn::Sgd opt(1e-2f);
    const int batch = 8;

    Tensor real = gan::makeBlobImages(batch, 1, 8, 8, rng);
    Tensor noise = t.sampleNoise(batch, rng);
    auto gap = [&]() {
        Tensor fake = t.generate(noise);
        auto real_s =
            gan::Network::scores(t.discriminator().forward(real));
        auto fake_s =
            gan::Network::scores(t.discriminator().forward(fake));
        double g = 0.0;
        for (int i = 0; i < batch; ++i)
            g += real_s[i] - fake_s[i];
        return g / batch;
    };

    double gap_before = gap();
    for (int it = 0; it < 10; ++it) {
        t.accumulateDiscriminatorGradients(real, noise);
        t.applyDiscriminatorUpdate(opt);
    }
    double gap_after = gap();
    EXPECT_GT(gap_after, gap_before);
}

TEST(Trainer, FullIterationRunsAndReportsLosses)
{
    GanModel m = tinyModel();
    Trainer t(m, 31, SyncMode::Deferred);
    Rng rng(600);
    Tensor real = gan::makeBlobImages(3, 1, 8, 8, rng);
    nn::RmsProp d_opt(1e-3f), g_opt(1e-3f);
    auto losses = t.trainIteration(real, d_opt, g_opt, rng, 2);
    EXPECT_TRUE(std::isfinite(losses.discLoss));
    EXPECT_TRUE(std::isfinite(losses.genLoss));
}

TEST(Trainer, BatchNormBreaksDeferredEquivalenceUnlessFrozen)
{
    // The deferred-synchronization proof (eq. 6) needs per-sample
    // independence; batch-statistics BN violates it, frozen-statistics
    // BN restores it. This is the assumption behind the paper's
    // algorithm, made testable.
    GanModel m = tinyModel();
    m.disc[0].batchNorm = true;

    for (bool frozen : {false, true}) {
        Trainer sync(m, 77, SyncMode::Synchronized);
        Trainer defer(m, 77, SyncMode::Deferred);
        if (frozen) {
            sync.discriminator().setBnMode(
                nn::BatchNormLayer::Mode::Frozen);
            defer.discriminator().setBnMode(
                nn::BatchNormLayer::Mode::Frozen);
        }
        Rng data_rng(800);
        Tensor real = gan::makeBlobImages(5, 1, 8, 8, data_rng);
        Tensor noise = sync.sampleNoise(5, data_rng);
        sync.accumulateDiscriminatorGradients(real, noise);
        defer.accumulateDiscriminatorGradients(real, noise);
        float diff = maxAbsDiff(
            sync.discriminator().layers()[0]->gradAccum(),
            defer.discriminator().layers()[0]->gradAccum());
        if (frozen) {
            EXPECT_LT(diff, 1e-4f)
                << "frozen BN must keep deferred == synchronized";
        } else {
            EXPECT_GT(diff, 1e-3f)
                << "batch BN couples samples and must diverge";
        }
    }
}

TEST(Trainer, BackwardErrorPreservesBnGradients)
{
    GanModel m = tinyModel();
    m.disc[0].batchNorm = true;
    Trainer t(m, 91, SyncMode::Synchronized);
    Rng rng(900);
    Tensor img = gan::makeBlobImages(2, 1, 8, 8, rng);
    auto &layer = *t.discriminator().layers()[0];
    ASSERT_TRUE(layer.hasBatchNorm());

    t.discriminator().forward(img);
    t.discriminator().backward(Tensor(2, 1, 1, 1, 0.5f));
    Tensor g_before = layer.batchNorm()->gradGamma();

    t.discriminator().forward(img);
    t.discriminator().backwardError(Tensor(2, 1, 1, 1, 0.5f));
    EXPECT_EQ(maxAbsDiff(layer.batchNorm()->gradGamma(), g_before),
              0.0f);
}

TEST(TrainerHelpers, ExtractAndConcat)
{
    Rng rng(700);
    Tensor a(2, 3, 4, 4), b(3, 3, 4, 4);
    a.fillUniform(rng);
    b.fillUniform(rng);
    Tensor s = gan::extractSample(a, 1);
    EXPECT_EQ(s.shape(), Shape4(1, 3, 4, 4));
    EXPECT_FLOAT_EQ(s.get(0, 2, 3, 3), a.get(1, 2, 3, 3));
    Tensor c = gan::concatBatch(a, b);
    EXPECT_EQ(c.shape(), Shape4(5, 3, 4, 4));
    EXPECT_FLOAT_EQ(c.get(0, 0, 0, 0), a.get(0, 0, 0, 0));
    EXPECT_FLOAT_EQ(c.get(2, 1, 2, 2), b.get(0, 1, 2, 2));
}

TEST(Data, BlobAndStripeImagesAreBoundedAndDeterministic)
{
    Rng r1(1), r2(1);
    Tensor a = gan::makeBlobImages(4, 1, 8, 8, r1);
    Tensor b = gan::makeBlobImages(4, 1, 8, 8, r2);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0f);
    EXPECT_LE(a.absMax(), 1.0f);
    Tensor s = gan::makeStripeImages(4, 3, 8, 8, r1);
    EXPECT_LE(s.absMax(), 1.0f);
    EXPECT_EQ(s.shape(), Shape4(4, 3, 8, 8));
}

} // namespace
