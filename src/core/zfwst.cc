/**
 * @file
 * ZFWST cycle-level model.
 */

#include "core/zfwst.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace core {

using sim::ConvSpec;
using sim::RunStats;
using tensor::Tensor;

RunStats
Zfwst::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
             Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    const int resident_cap = unroll_.pKx * unroll_.pKy;
    sim::ScheduleRecorder *const rec = schedRec();
    RunStats st;

    const int z = spec.inZeroStride;
    GANACC_ASSERT(z == 1 || spec.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", spec.describe());

    for (int cy = 0; cy < z && cy < spec.oh; ++cy) {
        for (int cx = 0; cx < z && cx < spec.ow; ++cx) {
            const int n_y = (spec.oh - cy + z - 1) / z;
            const int n_x = (spec.ow - cx + z - 1) / z;
            // Effective kernel elements for this output class: not a
            // structural kernel zero, and parity-compatible with the
            // input stuffing pattern.
            std::vector<std::pair<int, int>> eff;
            for (int ky = 0; ky < spec.kh; ++ky) {
                if (spec.kernelRowZero(ky))
                    continue;
                if (z > 1 && (cy + ky - spec.pad) % z != 0)
                    continue;
                for (int kx = 0; kx < spec.kw; ++kx) {
                    if (spec.kernelColZero(kx))
                        continue;
                    if (z > 1 && (cx + kx - spec.pad) % z != 0)
                        continue;
                    eff.emplace_back(ky, kx);
                }
            }
            if (eff.empty())
                continue;
            const int n_chunks =
                int((eff.size() + resident_cap - 1) / resident_cap);

            const std::uint64_t positions = std::uint64_t(n_y) * n_x;
            for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
                const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
                // The ping-pong partial-result buffer window for this
                // class/of-tile: NOT zero-initialized — the first
                // chunk's writes create every cell, later passes
                // read-modify-write, and the final pass's writes drain
                // the window.
                if (rec)
                    rec->onWindowBegin(
                        positions * of_cnt *
                            (spec.fourDimOutput ? std::uint64_t(spec.nif)
                                                : 1),
                        sim::WindowKind::AccumBuffer);
                for (int chunk = 0; chunk < n_chunks; ++chunk) {
                    const int e0 = chunk * resident_cap;
                    const int e_cnt = std::min(
                        resident_cap, int(eff.size()) - e0);
                    // Resident weights load once per pass per channel.
                    st.weightLoads += std::uint64_t(e_cnt) * of_cnt;
                    if (rec)
                        rec->onPort(sim::SchedPort::Weight,
                                    std::uint64_t(e_cnt) * of_cnt);

                    for (int c = 0; c < spec.nif; ++c) {
                        bool first_out = true;
                        for (int t_y = 0; t_y < n_y; ++t_y) {
                            for (int t_x = 0; t_x < n_x; ++t_x) {
                                // ---- one cycle: one output neuron
                                // per channel via the adder tree ----
                                st.cycles += 1;
                                const int oy = cy + t_y * z;
                                const int ox = cx + t_x * z;
                                int eff_cnt = 0;
                                for (int e = e0; e < e0 + e_cnt; ++e) {
                                    const auto [ky, kx] = eff[e];
                                    int iy = oy * spec.stride + ky -
                                             spec.pad;
                                    int ix = ox * spec.stride + kx -
                                             spec.pad;
                                    bool useful =
                                        iy >= 0 && iy < spec.ih &&
                                        ix >= 0 && ix < spec.iw &&
                                        !spec.inputIsZero(iy, ix);
                                    if (useful)
                                        ++eff_cnt;
                                    // Residual padding/zero slots in a
                                    // chunk still occupy multiplier
                                    // lanes; the fault hook may visit
                                    // them.
                                    if (functional &&
                                        (useful ||
                                         faultVisitsIneffectual())) {
                                        float v = in->getPadded(
                                            0, c, iy, ix);
                                        for (int f = 0; f < of_cnt;
                                             ++f) {
                                            int of = of0 + f;
                                            int wc =
                                                spec.fourDimOutput
                                                    ? 0
                                                    : c;
                                            float ww = w->get(
                                                of, wc, ky, kx);
                                            const sim::MacContext ctx{
                                                (e - e0) * unroll_.pOf +
                                                    f,
                                                of, c, oy, ox, ky, kx};
                                            float p =
                                                macProduct(v, ww, ctx);
                                            if (spec.fourDimOutput)
                                                out->ref(of, c, oy,
                                                         ox) += p;
                                            else
                                                out->ref(0, of, oy,
                                                         ox) += p;
                                        }
                                    }
                                }
                                st.effectiveMacs +=
                                    std::uint64_t(eff_cnt) * of_cnt;
                                st.ineffectualMacs +=
                                    std::uint64_t(e_cnt - eff_cnt) *
                                    of_cnt;
                                st.idlePeSlots +=
                                    std::uint64_t(n_pes) -
                                    std::uint64_t(e_cnt) * of_cnt;
                                // Register-array traffic: footprint on
                                // the first output of a pass, then a
                                // column shift per step.
                                std::uint64_t in_words;
                                if (first_out) {
                                    in_words = std::uint64_t(e_cnt);
                                    first_out = false;
                                } else {
                                    in_words = std::uint64_t(
                                        std::min(e_cnt, unroll_.pKy));
                                }
                                st.inputLoads += in_words;
                                // One adder-tree result per channel;
                                // later passes accumulate through the
                                // ping-pong partial-result buffer.
                                st.outputWrites += std::uint64_t(of_cnt);
                                const bool accumulating =
                                    chunk > 0 ||
                                    (!spec.fourDimOutput && c > 0);
                                if (accumulating)
                                    st.outputReads +=
                                        std::uint64_t(of_cnt);
                                if (rec) {
                                    rec->onCycle();
                                    for (int e = 0; e < e_cnt; ++e)
                                        rec->onLanes(e * unroll_.pOf,
                                                     of_cnt);
                                    rec->onPort(sim::SchedPort::Input,
                                                in_words);
                                    rec->onPort(
                                        sim::SchedPort::OutputWrite,
                                        std::uint64_t(of_cnt));
                                    if (accumulating)
                                        rec->onPort(
                                            sim::SchedPort::OutputRead,
                                            std::uint64_t(of_cnt));
                                    const std::uint64_t cell =
                                        ((spec.fourDimOutput
                                              ? std::uint64_t(c)
                                              : 0) *
                                             positions +
                                         std::uint64_t(t_y) * n_x + t_x) *
                                        of_cnt;
                                    if (accumulating)
                                        rec->onCellRead(
                                            cell, std::uint64_t(of_cnt));
                                    rec->onCellWrite(
                                        cell, std::uint64_t(of_cnt));
                                    // The final pass's writes are the
                                    // drain: nothing reads this cell
                                    // again inside the window.
                                    if (chunk == n_chunks - 1 &&
                                        (spec.fourDimOutput ||
                                         c == spec.nif - 1))
                                        rec->onDrain(
                                            cell, std::uint64_t(of_cnt));
                                }
                            }
                        }
                    }
                }
                if (rec)
                    rec->onWindowEnd();
            }
        }
    }
    return st;
}

bool
Zfwst::fastStats(const ConvSpec &spec, RunStats &st) const
{
    st = sim::zfwstClosedForm(unroll_, spec);
    return true;
}

} // namespace core
} // namespace ganacc
