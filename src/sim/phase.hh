/**
 * @file
 * The six computing phases of GAN training (Fig. 2 / Table I) and
 * their mapping onto streamed convolution jobs.
 *
 *   D-fwd  (D→)  S-CONV over dense images
 *   G-fwd  (G→)  T-CONV over zero-inserted noise-side maps
 *   D-bwd  (D←)  T-CONV over zero-inserted error maps
 *   G-bwd  (G←)  S-CONV over dense error maps
 *   D-wu   (Dw)  W-CONV with the stride-dilated error as kernel
 *   G-wu   (Gw)  W-CONV with zero-inserted inputs
 *
 * The paper groups these into the four phase families of Fig. 15
 * (D: D→/G←, G: G→/D←, Dw, Gw) because paired phases share the same
 * convolution pattern.
 */

#ifndef GANACC_SIM_PHASE_HH
#define GANACC_SIM_PHASE_HH

#include <string>
#include <vector>

#include "gan/models.hh"
#include "sim/conv_spec.hh"

namespace ganacc {
namespace sim {

/** One of the six computing phases. */
enum class Phase
{
    DiscForward,   ///< D→ : S-CONV
    GenForward,    ///< G→ : T-CONV
    DiscBackward,  ///< D← : T-CONV (error back through D)
    GenBackward,   ///< G← : S-CONV (error back through G)
    DiscWeight,    ///< Dw : W-CONV (zero-inserted kernel)
    GenWeight,     ///< Gw : W-CONV (zero-inserted input)
};

/** All six phases in schedule order. */
std::vector<Phase> allPhases();

/** Short display name, e.g. "D-fwd". */
std::string phaseName(Phase p);

/** The four comparison families of Fig. 15. */
enum class PhaseFamily
{
    D,  ///< S-CONV phases: D→ and G←
    G,  ///< T-CONV phases: G→ and D←
    Dw, ///< discriminator weight update
    Gw, ///< generator weight update
};

std::string phaseFamilyName(PhaseFamily f);

/** Which family a phase belongs to. */
PhaseFamily familyOf(Phase p);

/**
 * Streamed convolution jobs (one per layer) that a phase executes for
 * a single sample of the given model. Backward phases skip the
 * first layer's data-error (no earlier layer consumes it).
 */
std::vector<ConvSpec> phaseJobs(const gan::GanModel &model, Phase p);

/** Convenience: jobs of every layer for one family's representative
 *  phase (used by the Fig. 15 per-phase comparison). */
std::vector<ConvSpec> familyJobs(const gan::GanModel &model,
                                 PhaseFamily f);

/** Total effective (non-zero) MACs across a set of jobs. */
std::uint64_t totalEffectiveMacs(const std::vector<ConvSpec> &jobs);

/** Total dense MACs across a set of jobs. */
std::uint64_t totalDenseMacs(const std::vector<ConvSpec> &jobs);

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_PHASE_HH
