/**
 * @file
 * Full-chain functional proof: one complete training pass (every
 * phase, every layer) executed job-by-job *through the ZFOST/ZFWST
 * microarchitecture models*, with operands laid out by
 * sim/streaming, must reproduce the reference trainer's activations,
 * back-propagated errors and weight gradients exactly. This ties the
 * phase mapping, the streaming transforms and the dataflow models
 * together end to end.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/activations.hh"
#include "nn/conv_ref.hh"
#include "sim/phase.hh"
#include "sim/streaming.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using core::Zfwst;
using sim::Phase;
using tensor::approxEqual;
using tensor::maxAbsDiff;
using tensor::Shape4;
using tensor::Tensor;
using util::Rng;

/** A compact 3-layer model exercising stride-2 (with output padding)
 *  and the stride-1 head. */
gan::GanModel
chainModel()
{
    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec l0;
    l0.kind = nn::ConvKind::Strided;
    l0.act = nn::Activation::LeakyReLU;
    l0.inChannels = 2;
    l0.outChannels = 6;
    l0.inH = l0.inW = 12;
    l0.geom = nn::Conv2dGeom{5, 2, 2, 0};
    disc.push_back(l0);
    gan::LayerSpec l1 = l0;
    l1.inChannels = 6;
    l1.outChannels = 10;
    l1.inH = l1.inW = 6;
    disc.push_back(l1);
    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 10;
    head.outChannels = 1;
    head.inH = head.inW = 3;
    head.geom = nn::Conv2dGeom{3, 1, 0, 0};
    disc.push_back(head);
    return gan::makeModel("chain", std::move(disc), 4);
}

/** Run one job functionally on an architecture. */
Tensor
runJob(const sim::Architecture &arch, const sim::ConvSpec &job,
       const sim::StreamedOperands &ops)
{
    Tensor out = sim::makeOutputTensor(job);
    arch.run(job, &ops.input, &ops.kernel, &out);
    return out;
}

class AccelChain : public ::testing::Test
{
  protected:
    AccelChain()
        : model_(chainModel()),
          zfost_(sim::Unroll{.pOf = 6, .pOx = 3, .pOy = 3}),
          zfwst_(sim::Unroll{.pOf = 5, .pKx = 3, .pKy = 3})
    {
    }

    gan::GanModel model_;
    Zfost zfost_;
    Zfwst zfwst_;
};

TEST_F(AccelChain, DiscriminatorUpdateMatchesReferenceEverywhere)
{
    Rng rng(321);
    gan::Network ref_net(model_.disc, rng);
    Tensor x(1, 2, 12, 12);
    x.fillUniform(rng);

    // ---- Reference: manual layer-by-layer chain. ----
    const std::size_t L = model_.disc.size();
    std::vector<Tensor> d(L + 1), pre(L);
    d[0] = x;
    for (std::size_t l = 0; l < L; ++l) {
        pre[l] = nn::sconvForward(d[l], ref_net.layers()[l]->weights(),
                                  model_.disc[l].geom);
        d[l + 1] =
            nn::activationForward(pre[l], model_.disc[l].act);
    }
    std::vector<Tensor> dpre(L), dw(L);
    dpre[L - 1] = Tensor(pre[L - 1].shape(), 1.0f); // head is linear
    for (std::size_t l = L; l-- > 0;) {
        dw[l] = nn::sconvBackwardWeights(d[l], dpre[l],
                                         model_.disc[l].geom,
                                         model_.disc[l].geom.kernel,
                                         model_.disc[l].geom.kernel);
        if (l == 0)
            break;
        Tensor dd = nn::sconvBackwardData(
            dpre[l], ref_net.layers()[l]->weights(),
            model_.disc[l].geom, model_.disc[l].inH,
            model_.disc[l].inW);
        dpre[l - 1] =
            nn::activationBackward(dd, pre[l - 1],
                                   model_.disc[l - 1].act);
    }
    // Independent reference: the trainer's own backward.
    ref_net.forward(x);
    ref_net.backward(Tensor(Shape4(1, 1, 1, 1), 1.0f));

    // ---- Accelerator: chained jobs with streamed operands. ----
    auto fwd_jobs = sim::phaseJobs(model_, Phase::DiscForward);
    std::vector<Tensor> acc_d(L + 1), acc_pre(L);
    acc_d[0] = x;
    for (std::size_t l = 0; l < L; ++l) {
        auto ops = sim::streamDiscForward(
            model_.disc[l], acc_d[l], ref_net.layers()[l]->weights());
        acc_pre[l] = runJob(zfost_, fwd_jobs[l], ops);
        EXPECT_TRUE(approxEqual(pre[l], acc_pre[l], 1e-3f))
            << "forward pre-activation, layer " << l;
        acc_d[l + 1] =
            nn::activationForward(acc_pre[l], model_.disc[l].act);
    }

    // Backward error: jobs ordered layer L-1 down to 1.
    auto bwd_jobs = sim::phaseJobs(model_, Phase::DiscBackward);
    std::vector<Tensor> acc_dpre(L);
    acc_dpre[L - 1] = Tensor(acc_pre[L - 1].shape(), 1.0f);
    for (std::size_t k = 0; k + 1 < L; ++k) {
        std::size_t l = L - 1 - k;
        auto ops = sim::streamDiscBackward(
            model_.disc[l], acc_dpre[l],
            ref_net.layers()[l]->weights());
        Tensor dd = runJob(zfost_, bwd_jobs[k], ops);
        acc_dpre[l - 1] = nn::activationBackward(
            dd, acc_pre[l - 1], model_.disc[l - 1].act);
        EXPECT_TRUE(approxEqual(dpre[l - 1], acc_dpre[l - 1], 1e-3f))
            << "backward error into layer " << l - 1;
    }

    // Weight gradients on the ZFWST bank.
    auto dw_jobs = sim::phaseJobs(model_, Phase::DiscWeight);
    for (std::size_t l = 0; l < L; ++l) {
        auto ops = sim::streamDiscWeight(model_.disc[l], acc_d[l],
                                         acc_dpre[l]);
        Tensor raw = runJob(zfwst_, dw_jobs[l], ops);
        EXPECT_TRUE(approxEqual(dw[l], raw, 1e-3f))
            << "dW via manual reference, layer " << l;
        EXPECT_TRUE(approxEqual(
            ref_net.layers()[l]->gradAccum(), raw, 1e-3f))
            << "dW via trainer backward, layer " << l;
    }
}

TEST_F(AccelChain, GeneratorUpdateMatchesReferenceEverywhere)
{
    Rng rng(654);
    gan::Network gen_net(model_.gen, rng);
    Tensor z(1, model_.latentDim, 1, 1);
    z.fillGaussian(rng);

    // ---- Reference chain through the T-CONV layers. ----
    const std::size_t Lg = model_.gen.size();
    std::vector<Tensor> d(Lg + 1), pre(Lg);
    d[0] = z;
    for (std::size_t l = 0; l < Lg; ++l) {
        pre[l] = nn::tconvForward(d[l], gen_net.layers()[l]->weights(),
                                  model_.gen[l].geom);
        d[l + 1] = nn::activationForward(pre[l], model_.gen[l].act);
    }
    // A made-up error at the generated image (pre-activation side).
    Tensor dimg(pre[Lg - 1].shape());
    dimg.fillUniform(rng);
    std::vector<Tensor> dpre(Lg), dw(Lg);
    dpre[Lg - 1] = dimg;
    for (std::size_t l = Lg; l-- > 0;) {
        dw[l] = nn::tconvBackwardWeights(d[l], dpre[l],
                                         model_.gen[l].geom,
                                         model_.gen[l].geom.kernel,
                                         model_.gen[l].geom.kernel);
        if (l == 0)
            break;
        Tensor dd = nn::tconvBackwardData(
            dpre[l], gen_net.layers()[l]->weights(),
            model_.gen[l].geom, model_.gen[l].inH, model_.gen[l].inW);
        dpre[l - 1] = nn::activationBackward(dd, pre[l - 1],
                                             model_.gen[l - 1].act);
    }

    // ---- Accelerator chain. ----
    auto fwd_jobs = sim::phaseJobs(model_, Phase::GenForward);
    std::vector<Tensor> acc_d(Lg + 1), acc_pre(Lg);
    acc_d[0] = z;
    for (std::size_t l = 0; l < Lg; ++l) {
        auto ops = sim::streamGenForward(
            model_.gen[l], acc_d[l], gen_net.layers()[l]->weights());
        acc_pre[l] = runJob(zfost_, fwd_jobs[l], ops);
        EXPECT_TRUE(approxEqual(pre[l], acc_pre[l], 1e-3f))
            << "G forward, layer " << l;
        acc_d[l + 1] =
            nn::activationForward(acc_pre[l], model_.gen[l].act);
    }

    auto bwd_jobs = sim::phaseJobs(model_, Phase::GenBackward);
    std::vector<Tensor> acc_dpre(Lg);
    acc_dpre[Lg - 1] = dimg;
    for (std::size_t k = 0; k + 1 < Lg; ++k) {
        std::size_t l = Lg - 1 - k;
        auto ops = sim::streamGenBackward(
            model_.gen[l], acc_dpre[l],
            gen_net.layers()[l]->weights());
        Tensor dd = runJob(zfost_, bwd_jobs[k], ops);
        acc_dpre[l - 1] = nn::activationBackward(
            dd, acc_pre[l - 1], model_.gen[l - 1].act);
        EXPECT_TRUE(approxEqual(dpre[l - 1], acc_dpre[l - 1], 1e-3f))
            << "G backward error into layer " << l - 1;
    }

    auto gw_jobs = sim::phaseJobs(model_, Phase::GenWeight);
    for (std::size_t l = 0; l < Lg; ++l) {
        auto ops = sim::streamGenWeight(model_.gen[l], acc_d[l],
                                        acc_dpre[l]);
        Tensor raw = runJob(zfwst_, gw_jobs[l], ops);
        Tensor got = sim::unflipGenWeightGrad(raw);
        EXPECT_TRUE(approxEqual(dw[l], got, 1e-3f))
            << "Gw gradient, layer " << l << " maxdiff "
            << maxAbsDiff(dw[l], got);
    }
}

TEST_F(AccelChain, StreamingRejectsWrongShapes)
{
    Tensor wrong(1, 3, 12, 12); // layer 0 expects 2 channels
    Tensor w(6, 2, 5, 5);
    EXPECT_THROW(
        sim::streamDiscForward(model_.disc[0], wrong, w),
        util::PanicError);
    EXPECT_THROW(sim::streamGenForward(model_.gen[0], wrong, w),
                 util::PanicError);
}

} // namespace
