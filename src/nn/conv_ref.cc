/**
 * @file
 * Golden-model convolution implementations.
 */

#include "nn/conv_ref.hh"

#include "nn/zero_insert.hh"
#include "tensor/shape.hh"
#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::convOutDim;
using tensor::Shape4;
using tensor::tconvOutDim;
using tensor::Tensor;

Tensor
sconvForward(const Tensor &in, const Tensor &w, const Conv2dGeom &g)
{
    const Shape4 &is = in.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d1 == is.d1, "S-CONV channel mismatch: weights ",
                  ws.str(), " input ", is.str());
    GANACC_ASSERT(ws.d2 == g.kernel && ws.d3 == g.kernel,
                  "kernel geometry mismatch");
    int oh = convOutDim(is.d2, g.kernel, g.stride, g.pad);
    int ow = convOutDim(is.d3, g.kernel, g.stride, g.pad);
    Tensor out(Shape4(is.d0, ws.d0, oh, ow), 0.0f);
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < ws.d0; ++of)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (int c = 0; c < is.d1; ++c)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int iy = oy * g.stride + ky - g.pad;
                                int ix = ox * g.stride + kx - g.pad;
                                acc += double(in.getPadded(n, c, iy, ix)) *
                                       w.get(of, c, ky, kx);
                            }
                    out.ref(n, of, oy, ox) = float(acc);
                }
    return out;
}

Tensor
sconvBackwardData(const Tensor &dout, const Tensor &w, const Conv2dGeom &g,
                  int in_h, int in_w)
{
    const Shape4 &os = dout.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d0 == os.d1, "S-CONV bwd-data channel mismatch");
    Tensor din(Shape4(os.d0, ws.d1, in_h, in_w), 0.0f);
    for (int n = 0; n < os.d0; ++n)
        for (int of = 0; of < ws.d0; ++of)
            for (int oy = 0; oy < os.d2; ++oy)
                for (int ox = 0; ox < os.d3; ++ox) {
                    float grad = dout.get(n, of, oy, ox);
                    if (grad == 0.0f)
                        continue;
                    for (int c = 0; c < ws.d1; ++c)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int iy = oy * g.stride + ky - g.pad;
                                int ix = ox * g.stride + kx - g.pad;
                                if (iy < 0 || iy >= in_h || ix < 0 ||
                                    ix >= in_w)
                                    continue;
                                din.ref(n, c, iy, ix) +=
                                    grad * w.get(of, c, ky, kx);
                            }
                }
    return din;
}

Tensor
sconvBackwardWeights(const Tensor &in, const Tensor &dout,
                     const Conv2dGeom &g, int kh, int kw)
{
    const Shape4 &is = in.shape();
    const Shape4 &os = dout.shape();
    GANACC_ASSERT(is.d0 == os.d0, "batch mismatch in W-CONV");
    Tensor dw(Shape4(os.d1, is.d1, kh, kw), 0.0f);
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < os.d1; ++of)
            for (int c = 0; c < is.d1; ++c)
                for (int ky = 0; ky < kh; ++ky)
                    for (int kx = 0; kx < kw; ++kx) {
                        double acc = 0.0;
                        for (int oy = 0; oy < os.d2; ++oy)
                            for (int ox = 0; ox < os.d3; ++ox) {
                                int iy = oy * g.stride + ky - g.pad;
                                int ix = ox * g.stride + kx - g.pad;
                                acc += double(dout.get(n, of, oy, ox)) *
                                       in.getPadded(n, c, iy, ix);
                            }
                        dw.ref(of, c, ky, kx) += float(acc);
                    }
    return dw;
}

Tensor
tconvForward(const Tensor &in, const Tensor &w, const Conv2dGeom &g)
{
    const Shape4 &is = in.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d0 == is.d1, "T-CONV channel mismatch: weights ",
                  ws.str(), " input ", is.str());
    int oh = tconvOutDim(is.d2, g.kernel, g.stride, g.pad, g.outPad);
    int ow = tconvOutDim(is.d3, g.kernel, g.stride, g.pad, g.outPad);
    Tensor out(Shape4(is.d0, ws.d1, oh, ow), 0.0f);
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < ws.d1; ++of)
            for (int y = 0; y < oh; ++y)
                for (int x = 0; x < ow; ++x) {
                    double acc = 0.0;
                    for (int c = 0; c < is.d1; ++c)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int ny = y + g.pad - ky;
                                int nx = x + g.pad - kx;
                                if (ny < 0 || nx < 0 ||
                                    ny % g.stride != 0 ||
                                    nx % g.stride != 0)
                                    continue;
                                int iy = ny / g.stride;
                                int ix = nx / g.stride;
                                if (iy >= is.d2 || ix >= is.d3)
                                    continue;
                                acc += double(in.get(n, c, iy, ix)) *
                                       w.get(c, of, ky, kx);
                            }
                    out.ref(n, of, y, x) = float(acc);
                }
    return out;
}

Tensor
tconvForwardViaZeroInsert(const Tensor &in, const Tensor &w,
                          const Conv2dGeom &g)
{
    // The zero-inserted map the accelerator actually streams.
    Tensor stuffed = zeroInsertSpatial(in, g.stride, g.outPad);
    // Equivalent stride-1 convolution uses the flipped kernel with the
    // channel axes swapped to (OF, IF, ...), and "full" padding
    // shrunk by the transposed conv's own pad.
    Tensor flipped = flipKernelSpatial(swapLeadingAxes(w));
    Conv2dGeom eff{g.kernel, 1, g.kernel - 1 - g.pad};
    GANACC_ASSERT(eff.pad >= 0,
                  "T-CONV pad must be < kernel for zero-insert form");
    return sconvForward(stuffed, flipped, eff);
}

Tensor
tconvBackwardData(const Tensor &dout, const Tensor &w, const Conv2dGeom &g,
                  int in_h, int in_w)
{
    const Shape4 &os = dout.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d1 == os.d1, "T-CONV bwd-data channel mismatch");
    Tensor din(Shape4(os.d0, ws.d0, in_h, in_w), 0.0f);
    for (int n = 0; n < os.d0; ++n)
        for (int c = 0; c < ws.d0; ++c)
            for (int iy = 0; iy < in_h; ++iy)
                for (int ix = 0; ix < in_w; ++ix) {
                    double acc = 0.0;
                    for (int of = 0; of < ws.d1; ++of)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int y = iy * g.stride + ky - g.pad;
                                int x = ix * g.stride + kx - g.pad;
                                if (y < 0 || y >= os.d2 || x < 0 ||
                                    x >= os.d3)
                                    continue;
                                acc += double(dout.get(n, of, y, x)) *
                                       w.get(c, of, ky, kx);
                            }
                    din.ref(n, c, iy, ix) = float(acc);
                }
    return din;
}

Tensor
tconvBackwardWeights(const Tensor &in, const Tensor &dout,
                     const Conv2dGeom &g, int kh, int kw)
{
    const Shape4 &is = in.shape();
    const Shape4 &os = dout.shape();
    GANACC_ASSERT(is.d0 == os.d0, "batch mismatch in W-CONV (gen)");
    Tensor dw(Shape4(is.d1, os.d1, kh, kw), 0.0f);
    for (int n = 0; n < is.d0; ++n)
        for (int c = 0; c < is.d1; ++c)
            for (int of = 0; of < os.d1; ++of)
                for (int ky = 0; ky < kh; ++ky)
                    for (int kx = 0; kx < kw; ++kx) {
                        double acc = 0.0;
                        for (int iy = 0; iy < is.d2; ++iy)
                            for (int ix = 0; ix < is.d3; ++ix) {
                                int y = iy * g.stride + ky - g.pad;
                                int x = ix * g.stride + kx - g.pad;
                                if (y < 0 || y >= os.d2 || x < 0 ||
                                    x >= os.d3)
                                    continue;
                                acc += double(in.get(n, c, iy, ix)) *
                                       dout.get(n, of, y, x);
                            }
                        dw.ref(c, of, ky, kx) += float(acc);
                    }
    return dw;
}

Tensor
wconvViaDilatedKernel(const Tensor &in, const Tensor &dout,
                      const Conv2dGeom &g, int kh, int kw)
{
    const Shape4 &is = in.shape();
    const Shape4 &os = dout.shape();
    GANACC_ASSERT(is.d0 == os.d0, "batch mismatch in W-CONV (dilated)");
    // Zero-insert the error map: this is the "zero-inserting in kernel"
    // of Fig. 6(c). The dilated map then slides at stride 1 over the
    // padded input; output positions beyond the kernel extent would be
    // artifacts of inexact conv arithmetic and are cropped.
    Tensor dil = zeroInsertSpatial(dout, g.stride);
    Tensor padded = padSpatial(in, g.pad);
    const Shape4 &ds = dil.shape();
    Tensor dw(Shape4(os.d1, is.d1, kh, kw), 0.0f);
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < os.d1; ++of)
            for (int c = 0; c < is.d1; ++c)
                for (int ky = 0; ky < kh; ++ky)
                    for (int kx = 0; kx < kw; ++kx) {
                        double acc = 0.0;
                        for (int jy = 0; jy < ds.d2; ++jy)
                            for (int jx = 0; jx < ds.d3; ++jx)
                                acc += double(dil.get(n, of, jy, jx)) *
                                       padded.get(n, c, ky + jy, kx + jx);
                        dw.ref(of, c, ky, kx) += float(acc);
                    }
    return dw;
}

} // namespace nn
} // namespace ganacc
