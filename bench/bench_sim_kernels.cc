/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: how fast
 * the cycle-level models and the golden convolution execute on real
 * layer shapes. These guard against performance regressions that
 * would make the figure-reproduction sweeps impractical.
 */

#include <benchmark/benchmark.h>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "nn/conv_ref.hh"
#include "sim/closed_form.hh"
#include "sim/conv_spec.hh"
#include "sim/phase.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;

/** Timing-only simulation of one DCGAN phase family per iteration. */
void
simulateFamily(benchmark::State &state, core::ArchKind kind,
               sim::PhaseFamily family,
               sim::SimEngine engine = sim::SimEngine::Walk)
{
    sim::ScopedSimEngine eng(engine);
    gan::GanModel m = gan::makeDcgan();
    core::BankRole role =
        (family == sim::PhaseFamily::D || family == sim::PhaseFamily::G)
            ? core::BankRole::ST
            : core::BankRole::W;
    int pes = role == core::BankRole::ST ? 1200 : 480;
    auto arch =
        core::makeArch(kind, core::paperUnroll(kind, role, family, pes));
    auto jobs = sim::familyJobs(m, family);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        for (const auto &j : jobs)
            cycles += arch->run(j).cycles;
        benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles_per_iter"] =
        benchmark::Counter(double(cycles) /
                           double(state.iterations()));
}

void
BM_ZfostOnGPhase(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::ZFOST, sim::PhaseFamily::G);
}
BENCHMARK(BM_ZfostOnGPhase)->Unit(benchmark::kMillisecond);

void
BM_ZfostOnGPhaseFast(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::ZFOST, sim::PhaseFamily::G,
                   sim::SimEngine::Fast);
}
BENCHMARK(BM_ZfostOnGPhaseFast)->Unit(benchmark::kMillisecond);

void
BM_ZfwstOnGwPhase(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::ZFWST, sim::PhaseFamily::Gw);
}
BENCHMARK(BM_ZfwstOnGwPhase)->Unit(benchmark::kMillisecond);

void
BM_ZfwstOnGwPhaseFast(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::ZFWST, sim::PhaseFamily::Gw,
                   sim::SimEngine::Fast);
}
BENCHMARK(BM_ZfwstOnGwPhaseFast)->Unit(benchmark::kMillisecond);

void
BM_OstOnDPhase(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::OST, sim::PhaseFamily::D);
}
BENCHMARK(BM_OstOnDPhase)->Unit(benchmark::kMillisecond);

void
BM_OstOnDPhaseFast(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::OST, sim::PhaseFamily::D,
                   sim::SimEngine::Fast);
}
BENCHMARK(BM_OstOnDPhaseFast)->Unit(benchmark::kMillisecond);

void
BM_WstOnDwPhase(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::WST, sim::PhaseFamily::Dw);
}
BENCHMARK(BM_WstOnDwPhase)->Unit(benchmark::kMillisecond);

void
BM_WstOnDwPhaseFast(benchmark::State &state)
{
    simulateFamily(state, core::ArchKind::WST, sim::PhaseFamily::Dw,
                   sim::SimEngine::Fast);
}
BENCHMARK(BM_WstOnDwPhaseFast)->Unit(benchmark::kMillisecond);

/**
 * LSUN-scale T-CONV (up-sampling toward 128x128 feature maps): the
 * kind of job that made walk-based sweeps wall-clock-bound, and the
 * headline fast-path speedup row (EXPERIMENTS.md).
 */
sim::ConvSpec
lsunScaleTconv()
{
    sim::ConvSpec s;
    s.label = "lsun-tconv";
    s.nif = 128;
    s.nof = 64;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 64;
    s.ih = s.iw = 127;
    s.kh = s.kw = 5;
    s.stride = 1;
    s.pad = 2;
    s.oh = s.ow = 127;
    return s;
}

void
simulateLargeTconv(benchmark::State &state, sim::SimEngine engine)
{
    sim::ScopedSimEngine eng(engine);
    const sim::ConvSpec job = lsunScaleTconv();
    auto arch = core::makeArch(
        core::ArchKind::ZFOST,
        core::paperUnroll(core::ArchKind::ZFOST, core::BankRole::ST,
                          sim::PhaseFamily::G, 1200));
    for (auto _ : state) {
        auto st = arch->run(job);
        benchmark::DoNotOptimize(st.cycles);
    }
}

void
BM_ZfostLargeTconvWalk(benchmark::State &state)
{
    simulateLargeTconv(state, sim::SimEngine::Walk);
}
BENCHMARK(BM_ZfostLargeTconvWalk)->Unit(benchmark::kMillisecond);

void
BM_ZfostLargeTconvFast(benchmark::State &state)
{
    simulateLargeTconv(state, sim::SimEngine::Fast);
}
BENCHMARK(BM_ZfostLargeTconvFast)->Unit(benchmark::kMillisecond);

/** Functional (data-carrying) simulation of a mid-sized T-CONV job. */
void
BM_ZfostFunctionalTconv(benchmark::State &state)
{
    gan::GanModel m = gan::makeMnistGan();
    auto jobs = sim::phaseJobs(m, sim::Phase::GenForward);
    const sim::ConvSpec &job = jobs[1];
    util::Rng rng(1);
    tensor::Tensor in = sim::makeStreamedInput(job, rng);
    tensor::Tensor w = sim::makeStreamedKernel(job, rng);
    tensor::Tensor out = sim::makeOutputTensor(job);
    auto arch = core::makeArch(
        core::ArchKind::ZFOST,
        core::paperUnroll(core::ArchKind::ZFOST, core::BankRole::ST,
                          sim::PhaseFamily::G, 1200));
    for (auto _ : state) {
        auto st = arch->run(job, &in, &w, &out);
        benchmark::DoNotOptimize(st.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(job.effectiveMacs()));
}
BENCHMARK(BM_ZfostFunctionalTconv)->Unit(benchmark::kMillisecond);

/** Golden-model strided convolution on the first DCGAN layer. */
void
BM_GoldenSconvDcganL1(benchmark::State &state)
{
    util::Rng rng(2);
    tensor::Tensor in(1, 3, 64, 64);
    in.fillUniform(rng);
    tensor::Tensor w(64, 3, 5, 5);
    w.fillUniform(rng);
    nn::Conv2dGeom g{5, 2, 2, 0};
    for (auto _ : state) {
        tensor::Tensor out = nn::sconvForward(in, w, g);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 64 * 3 * 25 *
                            32 * 32);
}
BENCHMARK(BM_GoldenSconvDcganL1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
