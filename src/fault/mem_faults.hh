/**
 * @file
 * Storage-fault models: transient bit flips on the Fixed16 words held
 * in the on-chip buffers and off-chip DRAM, plus the fixed-point
 * saturation-stress model (forced writeback narrowing).
 *
 * The flip model is access-driven: a word picks up a flip with
 * probability `flipProbPerAccess` each time it crosses a buffer port,
 * so the expected flip count of a run is (accesses x probability) —
 * drawn binomially from the RunStats access counters the simulators
 * already produce. An architecture that touches memory 10x more often
 * (NLR's no-local-reuse streaming) therefore absorbs ~10x the
 * corruptions of a register-reusing dataflow on the same job, which is
 * exactly the resilience argument the campaign quantifies.
 */

#ifndef GANACC_FAULT_MEM_FAULTS_HH
#define GANACC_FAULT_MEM_FAULTS_HH

#include <cstdint>

#include "mem/onchip_buffer.hh"
#include "sim/stats.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace fault {

/**
 * Deterministic binomial sample: exact Bernoulli convolution for small
 * n, Poisson/normal approximations beyond. Draws only from `rng`.
 */
std::uint64_t sampleBinomial(util::Rng &rng, std::uint64_t n, double p);

/** Flip counts one job's access streams produced. */
struct FlipCounts
{
    std::uint64_t weightFlips = 0;
    std::uint64_t inputFlips = 0;
    std::uint64_t outputFlips = 0;

    std::uint64_t
    total() const
    {
        return weightFlips + inputFlips + outputFlips;
    }
};

/**
 * Draw per-stream flip counts from a run's access counters at
 * `prob_per_access` per word access (weight/input loads; output
 * reads + writes).
 */
FlipCounts drawFlips(const sim::RunStats &stats, double prob_per_access,
                     util::Rng &rng);

/**
 * Corrupt `flips` randomly chosen elements of t: each victim's
 * Fixed16 image gets `bits` distinct bits flipped. @return elements
 * actually corrupted (= flips; repeats may hit the same element).
 */
std::uint64_t applyBitFlips(tensor::Tensor &t, std::uint64_t flips,
                            int bits, util::Rng &rng);

/** Root-mean-square difference between same-shape tensors. */
double rmse(const tensor::Tensor &a, const tensor::Tensor &b);

/** Outcome of forcing a narrower writeback format onto a tensor. */
struct SaturationStress
{
    std::uint64_t saturated = 0; ///< elements that clipped
    std::uint64_t total = 0;     ///< elements examined
    double rmseVsFloat = 0.0;    ///< quantization + clipping error

    double
    saturationRate() const
    {
        return total == 0 ? 0.0 : double(saturated) / double(total);
    }
};

/**
 * Re-quantize every element of t to the 16-bit Q(15-frac_bits)
 * .frac_bits grid in place (round-to-nearest, saturating — the
 * writeback path of util::Fixed16 with a runtime format), reporting
 * how many elements the narrowed integer range clipped. Cross-check
 * the result against verify::requiredIntBits: a format with at least
 * that many integer bits must report zero saturated elements.
 */
SaturationStress stressSaturation(tensor::Tensor &t, int frac_bits);

/**
 * Access tap counting would-be word corruptions on a live
 * mem::OnChipBuffer / DRAM access stream: every tapped access draws
 * binomially at the configured probability. The accumulated count is
 * then applied to the victim tensor with applyBitFlips().
 */
class FlipCountingTap final : public mem::AccessTap
{
  public:
    FlipCountingTap(double prob_per_access, std::uint64_t seed)
        : prob_(prob_per_access), rng_(seed) {}

    void
    onAccess(std::uint64_t bytes, bool is_write) override
    {
        (void)is_write;
        pendingFlips_ += sampleBinomial(rng_, bytes / 2, prob_);
    }

    std::uint64_t pendingFlips() const { return pendingFlips_; }

    /** Consume the accumulated count (after applying it). */
    std::uint64_t
    takeFlips()
    {
        const std::uint64_t n = pendingFlips_;
        pendingFlips_ = 0;
        return n;
    }

  private:
    double prob_;
    util::Rng rng_;
    std::uint64_t pendingFlips_ = 0;
};

} // namespace fault
} // namespace ganacc

#endif // GANACC_FAULT_MEM_FAULTS_HH
