/**
 * @file
 * Fig. 18 reproduction: performance of the top three designs
 * (NLR-OST, unique ZFOST, ZFOST-ZFWST) as the PE count sweeps, under
 * deferred synchronization. The paper's headline: ZFOST-ZFWST with
 * 512 PEs roughly matches the other two with 1024 PEs.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;
    using sched::SyncPolicy;

    bench::banner("Fig. 18 — performance vs PE count",
                  "ZFOST-ZFWST best at every size; with 512 PEs it "
                  "matches NLR-OST and ZFOST at 1024 PEs");

    const int pe_counts[] = {256, 512, 1024, 1680, 2048};

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (iterations/sec at 200 MHz, deferred sync)\n";
        util::Table t({"PEs", "NLR-OST", "ZFOST", "ZFOST-ZFWST",
                       "ZF advantage"});
        for (int pes : pe_counts) {
            auto rate = [&](const Design &d) {
                return 200e6 /
                       double(sched::iterationCycles(
                           d, m, SyncPolicy::Deferred));
            };
            double nlr_ost =
                rate(Design::combo(ArchKind::NLR, ArchKind::OST, pes));
            double zfost = rate(Design::unique(ArchKind::ZFOST, pes));
            double zz = rate(Design::combo(ArchKind::ZFOST,
                                           ArchKind::ZFWST, pes));
            t.addRow(pes, nlr_ost, zfost, zz,
                     zz / std::max(nlr_ost, zfost));
        }
        t.print(std::cout);
    }

    // The crossover claim, spelled out.
    gan::GanModel dcgan = gan::makeDcgan();
    auto cycles = [&](const Design &d) {
        return sched::iterationCycles(d, dcgan, SyncPolicy::Deferred);
    };
    std::cout << "\nCrossover check (DCGAN iteration cycles): "
              << "ZFOST-ZFWST@512 = "
              << cycles(Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                      512))
              << ", NLR-OST@1024 = "
              << cycles(Design::combo(ArchKind::NLR, ArchKind::OST,
                                      1024))
              << ", ZFOST@1024 = "
              << cycles(Design::unique(ArchKind::ZFOST, 1024)) << "\n";
    return 0;
}
