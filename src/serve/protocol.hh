/**
 * @file
 * The versioned JSON-lines request/response protocol of the
 * simulation service.
 *
 * One request per line, one response per line, same order. A request
 * names an architecture kind, an unrolling, and either a single
 * ConvSpec or a (model, phase-family) pair whose per-layer jobs are
 * simulated and accumulated. A response carries the canonical
 * sim::RunStats (see sim/json.hh), provenance (protocol version,
 * simulator version stamp, architecture, unrolling), which cache tier
 * satisfied it, and the service-side latency.
 *
 *   {"v":1,"id":7,"arch":"ZFOST","unroll":{...},"spec":{...}}
 *   {"v":1,"id":8,"arch":"ZFWST","unroll":{...},
 *    "model":"dcgan","family":"Gw"}
 *   {"v":1,"id":12,"stats":true}
 *   {"v":1,"id":13,"metrics":true}
 *   {"v":1,"id":14,"trace-drain":true}
 *
 *   {"v":1,"id":7,"ok":true,"sim":"ganacc-1.0.0","arch":"ZFOST",
 *    "unroll":{...},"cache":"sim","latencyUs":412,"stats":{...}}
 *   {"v":1,"id":9,"ok":false,"error":"..."}
 *   {"v":1,"id":12,"ok":true,"sim":"ganacc-1.0.0",
 *    "telemetry":{"counters":{...},"gauges":{...},...}}
 *
 * The third request form is the telemetry probe: a live daemon
 * answers with a snapshot of its metric registry (cache and store
 * tiers, queue occupancy, request-latency histogram — see
 * docs/observability.md) without touching the simulation path. The
 * `metrics` and `trace-drain` probes are its live-collection
 * siblings: Prometheus text and the buffered distributed-tracing
 * span batch, also answered without touching the simulation path.
 * Any request may additionally carry an optional
 * "trace":"<32hex>-<16hex>" context (obs::TraceContext) linking the
 * spans this hop opens to the sender's trace; it is attached only
 * while tracing is armed and never affects a response.
 *
 * Requests with an unknown protocol version, unknown architecture or
 * malformed JSON produce an ok:false response carrying the parse
 * error — the stream keeps flowing; one bad line never kills the
 * daemon. Responses are bit-identical to direct in-process simulation
 * because the counters are integers end to end.
 */

#ifndef GANACC_SERVE_PROTOCOL_HH
#define GANACC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/unrolling.hh"
#include "obs/trace.hh"
#include "sim/conv_spec.hh"
#include "sim/json.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace serve {

/** Wire-format generation; bump on incompatible schema changes. */
inline constexpr int kProtocolVersion = 1;

/**
 * The exact error text of a shed request. A daemon running with
 * admission shedding (fleet shards, --shed) answers with this instead
 * of blocking when its bounded queue is full; fleet::Router retries
 * with backoff on it. Pinned by tests — treat like the malformed-frame
 * table, do not rephrase.
 */
inline constexpr const char *kOverloadedError =
    "overloaded: admission queue full, retry with backoff";

/**
 * The simulator-version stamp written into every response and every
 * result-store entry. Bump the suffix whenever a change can alter any
 * counter of any cycle walk: stale store entries then self-invalidate
 * (stamp mismatch reads as a miss) instead of serving wrong numbers.
 */
const std::string &simulatorVersion();

/** One simulation request. */
struct Request
{
    std::uint64_t id = 0;
    core::ArchKind kind = core::ArchKind::NLR;
    sim::Unroll unroll;

    /// Telemetry probe ({"stats":true}): carries no simulation
    /// payload; the daemon answers with its metric snapshot.
    bool statsProbe = false;

    /// Fleet-topology probe ({"fleet":true}): the daemon answers with
    /// its shard map (see fleet/topology.hh) so a client can bootstrap
    /// a whole-fleet view from any one shard address.
    bool fleetProbe = false;

    /// Metrics probe ({"metrics":true}): the daemon answers with its
    /// registry rendered as Prometheus text — the live scrape path
    /// (ganacc-client --scrape), no signals or restarts needed.
    bool metricsProbe = false;

    /// Trace-drain probe ({"trace-drain":true}): the daemon answers
    /// with every span buffered since the last drain and keeps
    /// recording. The fleet collector stitches per-shard batches into
    /// one Perfetto trace (fleet/trace_merge.hh).
    bool traceDrainProbe = false;

    /// Distributed trace context ("trace":"<32hex>-<16hex>", see
    /// obs::TraceContext). Optional and strictly observational:
    /// absent on the wire unless the sender is tracing, and never
    /// consulted by the simulation path.
    std::string trace;

    /// Transport-side decode-span timing (never on the wire): the
    /// daemon stamps when and how long decoding this request took on
    /// the trace clock, so the engine's span batch can cover the
    /// whole hop. Zero for requests constructed in-process.
    std::uint64_t decodeTs = 0;
    std::uint64_t decodeDurUs = 0;

    /// Replication write ({"put":true,...,"result":{...},"sim":"..."}):
    /// carries a finished RunStats for (arch, unroll, spec); the
    /// daemon inserts it into its cache tiers without simulating and
    /// answers with cache:"put". fleet::Router uses this to copy
    /// freshly simulated results to the other replicas of a key.
    bool put = false;
    sim::RunStats putStats;    ///< the result being replicated
    std::string putSimVersion; ///< stamp the result was computed under

    /// Otherwise exactly one of the two payloads is set:
    bool hasSpec = false;
    sim::ConvSpec spec; ///< single-job request
    std::string model;  ///< network request: model name…
    std::string family; ///< …plus phase family (D, G, Dw, Gw)
};

/** One service response. */
struct Response
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string error; ///< set when !ok

    std::string simVersion; ///< provenance: simulator stamp
    std::string arch;       ///< provenance: architecture name
    sim::Unroll unroll;     ///< provenance: unrolling executed
    sim::RunStats stats;
    /// "mem" | "disk" | "sim" | "dup" (coalesced into an identical
    /// in-flight request by the single-flight layer) | "put"
    /// (replication write acknowledged).
    std::string cache;
    std::uint64_t latencyUs = 0;

    /// Stats-probe responses only: the metric snapshot as canonical
    /// JSON object text (empty for simulation responses).
    std::string telemetry;

    /// Fleet-probe responses only: the shard map as canonical JSON
    /// object text (opaque to serve/; decoded by fleet/topology.hh).
    std::string fleet;

    /// Metrics-probe responses only: the registry as Prometheus text
    /// (exemplars included), carried as one JSON string.
    std::string metricsText;

    /// Trace-drain responses only: the drained span batch as
    /// canonical JSON object text (serve::encodeSpanBatch; always
    /// non-empty for a drain response — no buffered spans yields
    /// {"events":[]}).
    std::string spans;

    /// Trace bookkeeping (never on the wire): whether the engine kept
    /// this request's spans under the sampling policy, and the hop's
    /// identity, so the transport can parent its encode span. Unset
    /// for untraced requests and on decoded responses.
    bool traceKept = false;
    std::string traceId;        ///< 32-hex trace id
    std::uint64_t traceSpan = 0; ///< the hop span's id
};

/** Canonical one-line encodings (no trailing newline). */
std::string encodeRequest(const Request &req);
std::string encodeResponse(const Response &rsp);

/** Parse one line; throws util::FatalError on malformed input. */
Request decodeRequest(const std::string &line);
Response decodeResponse(const std::string &line);

/** An ok:false response echoing the request id. */
Response errorResponse(std::uint64_t id, const std::string &message);

/**
 * The content address of a request's simulation: an FNV-1a 64 hash of
 * the canonical (simulator version, kind, unrolling, shape) encoding,
 * as 16 lowercase hex digits. Single-flight dedupe and the result
 * store both key on this.
 */
std::string contentKey(core::ArchKind kind, const sim::Unroll &u,
                       const sim::ConvSpec &spec,
                       const std::string &version = simulatorVersion());

/** FNV-1a 64-bit hash of a byte string. */
std::uint64_t fnv1a64(const std::string &bytes);

/**
 * Canonical JSON batch codec for drained span events — the payload of
 * a trace-drain probe response: {"events":[{"name":…,"cat":…,"ph":"X",
 * "tid":…,"ts":…,"dur":…,"args":{…}},…]}. Round-trips byte-identically
 * through util::json (encode(decode(encode(b))) == encode(b)). The
 * pid is deliberately absent: the collector assigns one pid per
 * drained process when merging (fleet/trace_merge.hh). Lives here
 * rather than in obs/ because it is a wire format of this protocol —
 * and obs/ stays free of non-header util dependencies.
 */
std::string encodeSpanBatch(const std::vector<obs::TraceEvent> &events);
std::vector<obs::TraceEvent> decodeSpanBatch(const std::string &text);

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_PROTOCOL_HH
