/**
 * @file
 * The static-vs-simulated bounds equivalence property: over randomized
 * legal streamed jobs and randomized unrollings, the closed-form
 * staticRunStats() must match the cycle-level walk *bit for bit* on
 * every counter, for all five dataflows. A divergence is a bug in
 * either the closed form or the simulator — both derive from the same
 * schedule, so there is no tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "verify/legality.hh"
#include "verify/static_bounds.hh"

namespace {

using namespace ganacc;

int
pick(std::mt19937 &rng, int lo, int hi)
{
    return lo + int(rng() % unsigned(hi - lo + 1));
}

/**
 * A random legal job drawn from the four streamed-operand shapes the
 * GAN phase mapping produces: dense S-CONV, zero-stuffed T-CONV input,
 * dilated W-CONV kernel, and stuffed four-dimensional W-CONV.
 */
sim::ConvSpec
randomSpec(std::mt19937 &rng)
{
    sim::ConvSpec s;
    s.label = "random job";
    s.nif = pick(rng, 1, 3);
    s.nof = pick(rng, 1, 4);

    const int mode = pick(rng, 0, 3);
    if (mode == 0) {
        // Dense, stride 1 or 2, occasionally four-dimensional (the
        // stride-1 W-CONV case dilates by 1, i.e. stays dense).
        s.stride = pick(rng, 1, 2);
        s.ih = pick(rng, 4, 9);
        s.iw = pick(rng, 4, 9);
        s.kh = pick(rng, 1, 3);
        s.kw = pick(rng, 1, 3);
        s.fourDimOutput = pick(rng, 0, 3) == 0;
    } else if (mode == 2) {
        // Dilated kernel (discriminator weight gradients).
        s.stride = 1;
        const int z = pick(rng, 2, 3);
        s.kZeroStride = z;
        s.kOrigH = pick(rng, 1, 2);
        s.kOrigW = pick(rng, 1, 2);
        s.kh = (s.kOrigH - 1) * z + 1;
        s.kw = (s.kOrigW - 1) * z + 1;
        s.ih = s.kh + pick(rng, 0, 4);
        s.iw = s.kw + pick(rng, 0, 4);
        s.fourDimOutput = pick(rng, 0, 1) == 1;
    } else {
        // Zero-stuffed input, stride 1 (T-CONV forward/backward when
        // mode 1, generator weight gradients when mode 3).
        s.stride = 1;
        const int z = pick(rng, 2, 3);
        s.inZeroStride = z;
        s.inOrigH = pick(rng, 2, 4);
        s.inOrigW = pick(rng, 2, 4);
        s.ih = (s.inOrigH - 1) * z + 1 + pick(rng, 0, z - 1);
        s.iw = (s.inOrigW - 1) * z + 1 + pick(rng, 0, z - 1);
        if (pick(rng, 0, 3) == 0)
            s.inOrigH = s.inOrigW = -1; // whole-grid stuffing pattern
        s.kh = pick(rng, 1, std::min(3, s.ih));
        s.kw = pick(rng, 1, std::min(3, s.iw));
        s.fourDimOutput = mode == 3;
    }

    s.pad = pick(rng, 0, std::min(s.kh, s.kw) - 1);
    s.oh = (s.ih - s.kh + s.pad) / s.stride + 1;
    s.ow = (s.iw - s.kw + s.pad) / s.stride + 1;
    return s;
}

sim::Unroll
randomUnroll(std::mt19937 &rng)
{
    sim::Unroll u;
    u.pIf = pick(rng, 1, 3);
    u.pOf = pick(rng, 1, 3);
    u.pKx = pick(rng, 1, 3);
    u.pKy = pick(rng, 1, 3);
    u.pOx = pick(rng, 1, 3);
    u.pOy = pick(rng, 1, 3);
    return u;
}

/** Assert closed form == cycle walk on every counter of one job. */
void
expectBoundsMatch(core::ArchKind kind, const sim::Unroll &u,
                  const sim::ConvSpec &spec)
{
    auto arch = core::makeArch(kind, u);
    const sim::RunStats walked = arch->run(spec);
    const sim::RunStats derived = verify::staticRunStats(kind, u, spec);

    verify::Report r;
    const bool same =
        verify::checkBoundsAgainstSim(kind, u, spec, walked, r);
    std::ostringstream os;
    r.renderText(os);
    EXPECT_TRUE(same) << core::archKindName(kind) << " with "
                      << u.str() << " on " << spec.describe() << "\n"
                      << os.str();

    // The closed form must satisfy the same conservation law the
    // simulator asserts: every offered PE slot is accounted for.
    EXPECT_EQ(derived.effectiveMacs + derived.ineffectualMacs +
                  derived.idlePeSlots,
              derived.totalSlots())
        << core::archKindName(kind) << " on " << spec.describe();
    EXPECT_EQ(derived.nPes, walked.nPes);
}

TEST(StaticBounds, AllDataflowsAreSupported)
{
    for (core::ArchKind kind : core::allArchKinds())
        EXPECT_TRUE(verify::staticBoundsSupported(kind))
            << core::archKindName(kind);
}

/** The property test: randomized specs, randomized unrollings. */
TEST(StaticBounds, MatchesCycleWalkOnRandomizedSpecs)
{
    std::mt19937 rng(0xC0FFEE);
    for (core::ArchKind kind : core::allArchKinds()) {
        for (int iter = 0; iter < 50; ++iter) {
            const sim::ConvSpec spec = randomSpec(rng);

            // The generator must only emit verifier-legal jobs —
            // otherwise the property is vacuous.
            verify::Report legal;
            verify::checkConvSpec(spec, legal);
            ASSERT_TRUE(legal.ok()) << spec.describe();

            expectBoundsMatch(kind, randomUnroll(rng), spec);
        }
    }
}

/** Same property on the real phase jobs under the paper unrollings. */
TEST(StaticBounds, MatchesCycleWalkOnPaperSchedules)
{
    const gan::GanModel mnist = gan::makeMnistGan();
    for (core::ArchKind kind : core::allArchKinds()) {
        for (sim::PhaseFamily family :
             {sim::PhaseFamily::D, sim::PhaseFamily::G,
              sim::PhaseFamily::Dw, sim::PhaseFamily::Gw}) {
            const bool weight_family = family == sim::PhaseFamily::Dw ||
                                       family == sim::PhaseFamily::Gw;
            const sim::Unroll u = core::paperUnroll(
                kind,
                weight_family ? core::BankRole::W : core::BankRole::ST,
                family, weight_family ? 480 : 1200);
            const bool zero_free = kind == core::ArchKind::ZFOST ||
                                   kind == core::ArchKind::ZFWST;
            for (const sim::ConvSpec &job :
                 sim::familyJobs(mnist, family)) {
                // The zero-free schedules are undefined on stuffed
                // inputs streamed with stride > 1 (GA-SPEC-ZI-STRIDE).
                if (zero_free && job.inZeroStride > 1 && job.stride != 1)
                    continue;
                expectBoundsMatch(kind, u, job);
            }
        }
    }
}

} // namespace
