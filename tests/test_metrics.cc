/**
 * @file
 * Tests for the distribution metrics: MMD^2 and moment distance must
 * behave as two-sample statistics — near zero for same-distribution
 * batches, clearly positive across distributions, and monotone in
 * distribution distance.
 */

#include <gtest/gtest.h>

#include "gan/data.hh"
#include "gan/metrics.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using tensor::Tensor;
using util::Rng;

TEST(Metrics, MomentDistanceZeroForIdenticalBatches)
{
    Rng rng(1);
    Tensor a = gan::makeBlobImages(8, 1, 8, 8, rng);
    EXPECT_DOUBLE_EQ(gan::momentDistance(a, a), 0.0);
}

TEST(Metrics, MomentDistanceSeparatesDistributions)
{
    Rng r1(2), r2(3), r3(4);
    Tensor blobs_a = gan::makeBlobImages(32, 1, 8, 8, r1);
    Tensor blobs_b = gan::makeBlobImages(32, 1, 8, 8, r2);
    Tensor stripes = gan::makeStripeImages(32, 1, 8, 8, r3);
    double same = gan::momentDistance(blobs_a, blobs_b);
    double cross = gan::momentDistance(blobs_a, stripes);
    EXPECT_GT(cross, 2.0 * same);
}

TEST(Metrics, MmdNearZeroForSameDistribution)
{
    Rng r1(5), r2(6);
    Tensor a = gan::makeBlobImages(24, 1, 8, 8, r1);
    Tensor b = gan::makeBlobImages(24, 1, 8, 8, r2);
    double v = gan::mmd2(a, b);
    // The unbiased estimator fluctuates around zero for matched
    // distributions.
    EXPECT_LT(std::abs(v), 0.05);
}

TEST(Metrics, MmdLargeAcrossDistributions)
{
    Rng r1(7), r2(8);
    Tensor blobs = gan::makeBlobImages(24, 1, 8, 8, r1);
    Tensor stripes = gan::makeStripeImages(24, 1, 8, 8, r2);
    double same_scale = std::abs(
        gan::mmd2(blobs, gan::makeBlobImages(24, 1, 8, 8, r2)));
    double cross = gan::mmd2(blobs, stripes);
    EXPECT_GT(cross, 5.0 * same_scale);
    EXPECT_GT(cross, 0.05);
}

TEST(Metrics, MmdMonotoneInMeanShift)
{
    // Shifting one batch's pixels monotonically increases MMD^2.
    Rng rng(9);
    Tensor base = gan::makeBlobImages(20, 1, 6, 6, rng);
    double bw = gan::medianBandwidth(base, base);
    double prev = -1.0;
    for (float shift : {0.0f, 0.3f, 0.8f}) {
        Tensor moved = base;
        for (std::size_t i = 0; i < moved.numel(); ++i)
            moved.data()[i] += shift;
        double v = gan::mmd2(base, moved, bw);
        EXPECT_GT(v, prev) << "shift " << shift;
        prev = v;
    }
}

TEST(Metrics, MedianBandwidthPositiveAndScales)
{
    Rng rng(10);
    Tensor a = gan::makeBlobImages(12, 1, 8, 8, rng);
    Tensor b = gan::makeBlobImages(12, 1, 8, 8, rng);
    double bw = gan::medianBandwidth(a, b);
    EXPECT_GT(bw, 0.0);
    // Scaling the data scales the median bandwidth.
    Tensor a2 = a, b2 = b;
    a2.scale(3.0f);
    b2.scale(3.0f);
    EXPECT_NEAR(gan::medianBandwidth(a2, b2), 3.0 * bw, 0.3 * bw);
}

TEST(Metrics, RejectsDegenerateInputs)
{
    Rng rng(11);
    Tensor a = gan::makeBlobImages(4, 1, 4, 4, rng);
    Tensor wrong(4, 2, 4, 4);
    EXPECT_THROW(gan::mmd2(a, wrong), util::PanicError);
    Tensor one(1, 1, 4, 4);
    EXPECT_THROW(gan::mmd2(one, one), util::PanicError);
}

} // namespace
