/**
 * @file
 * Tests for the Row-Stationary (Eyeriss-style) extension baseline:
 * functional equivalence with the golden model, and the qualitative
 * claims the paper makes about it — zero *gating* saves energy but
 * not cycles, and zero-inserted kernels defeat it.
 */

#include <gtest/gtest.h>

#include "core/zfost.hh"
#include "sim/conv_spec.hh"
#include "sim/nlr.hh"
#include "sim/ost.hh"
#include "sim/rst.hh"
#include "stats_helpers.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using sim::ConvSpec;
using sim::Ost;
using sim::Rst;
using sim::RunStats;
using sim::Unroll;
using tensor::approxEqual;
using tensor::Tensor;
using util::Rng;

ConvSpec
denseSpec()
{
    ConvSpec s;
    s.label = "dense";
    s.nif = 3;
    s.nof = 4;
    s.ih = s.iw = 12;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 12;
    return s;
}

ConvSpec
stuffedSpec()
{
    ConvSpec s;
    s.label = "stuffed";
    s.nif = 2;
    s.nof = 3;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 6;
    s.ih = s.iw = 11;
    s.kh = s.kw = 5;
    s.stride = 1;
    s.pad = 2;
    s.oh = s.ow = 11;
    return s;
}

ConvSpec
dilatedKernelSpec()
{
    ConvSpec s;
    s.label = "wconv-D";
    s.nif = 2;
    s.nof = 3;
    s.ih = s.iw = 12;
    s.kZeroStride = 2;
    s.kOrigH = s.kOrigW = 5;
    s.kh = s.kw = 9;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 4;
    s.fourDimOutput = true;
    return s;
}

TEST(Rst, MatchesGoldenModelOnAllPatterns)
{
    Rng rng(42);
    Rst rst(Unroll{.pOf = 2, .pKy = 3, .pOy = 4});
    for (const ConvSpec &s :
         {denseSpec(), stuffedSpec(), dilatedKernelSpec()}) {
        Tensor in = sim::makeStreamedInput(s, rng);
        Tensor w = sim::makeStreamedKernel(s, rng);
        Tensor golden = sim::genericConvRef(s, in, w);
        Tensor out = sim::makeOutputTensor(s);
        rst.run(s, &in, &w, &out);
        EXPECT_TRUE(approxEqual(golden, out, 1e-3f)) << s.describe();
    }
}

TEST(Rst, GatingSavesNoCyclesOnStuffedInputs)
{
    // Eyeriss gates zero operands — the slots show up as ineffectual,
    // the cycle count is the dense one. ZFOST actually skips.
    ConvSpec s = stuffedSpec();
    Rst rst(Unroll{.pOf = 3, .pKy = 5, .pOy = 4});
    Zfost zfost(Unroll{.pOf = 3, .pOx = 4, .pOy = 4});

    RunStats r = rst.run(s);
    RunStats z = zfost.run(s);
    // Both do the same useful work...
    EXPECT_EQ(r.effectiveMacs, z.effectiveMacs);
    // ...but RST burns dense-schedule slots on it: gating leaves its
    // utilization near the stuffed map's density (~25%), while
    // ZFOST's skipping keeps the array mostly effective.
    EXPECT_GT(r.ineffectualMacs, r.effectiveMacs);
    EXPECT_LT(r.utilization(), 0.45);
    EXPECT_GT(z.utilization(), 2.0 * r.utilization());
    // The gated slots are exactly the ineffectual ones.
    EXPECT_EQ(r.gatedSlots, r.ineffectualMacs);
}

TEST(Rst, DilatedKernelRowsWasteHalfTheGrid)
{
    // Zero-inserted kernels (W-CONV of the discriminator) idle every
    // other kernel-row PE — the Section VII criticism, quantified.
    ConvSpec s = dilatedKernelSpec();
    Rst rst(Unroll{.pOf = 2, .pKy = 3, .pOy = 4});
    RunStats st = rst.run(s);
    EXPECT_LT(st.utilization(), 0.35);
}

TEST(Rst, FullUtilizationOnWellShapedDenseConv)
{
    // Pad-free dense stride-1 conv with exact tile fits: everything
    // effective except nothing.
    ConvSpec s;
    s.nif = 2;
    s.nof = 4;
    s.ih = s.iw = 10;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 0;
    s.oh = s.ow = 8;
    Rst rst(Unroll{.pOf = 2, .pKy = 3, .pOy = 4});
    RunStats st = rst.run(s);
    EXPECT_EQ(st.ineffectualMacs, 0u);
    EXPECT_EQ(st.effectiveMacs, s.effectiveMacs());
}

TEST(Rst, TimingOnlyMatchesFunctionalCounters)
{
    Rng rng(7);
    ConvSpec s = stuffedSpec();
    Rst rst(Unroll{.pOf = 2, .pKy = 2, .pOy = 3});
    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor out = sim::makeOutputTensor(s);
    RunStats f = rst.run(s, &in, &w, &out);
    RunStats t = rst.run(s);
    tests::expectSlotConservation(f, "rst functional");
    tests::expectStatsEqual(f, t, "rst timing vs functional");
}

TEST(Rst, StridedConvStillWorks)
{
    Rng rng(9);
    ConvSpec s;
    s.nif = 2;
    s.nof = 2;
    s.ih = s.iw = 12;
    s.kh = s.kw = 5;
    s.stride = 2;
    s.pad = 2;
    s.oh = s.ow = 6;
    Rst rst(Unroll{.pOf = 2, .pKy = 5, .pOy = 3});
    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor golden = sim::genericConvRef(s, in, w);
    Tensor out = sim::makeOutputTensor(s);
    rst.run(s, &in, &w, &out);
    EXPECT_TRUE(approxEqual(golden, out, 1e-3f));
}

TEST(ZfostRasterAblation, SameCyclesMoreInputTraffic)
{
    // The Fig. 12(a) reorder buys buffer traffic, not cycles: the
    // raster-order ablation matches ZFOST's cycle count on S-CONV but
    // reloads the register array every cycle.
    ConvSpec s;
    s.nif = 3;
    s.nof = 4;
    s.ih = s.iw = 16;
    s.kh = s.kw = 5;
    s.stride = 2;
    s.pad = 2;
    s.oh = s.ow = 8;
    Zfost reordered(Unroll{.pOf = 4, .pOx = 4, .pOy = 4});
    Zfost raster(Unroll{.pOf = 4, .pOx = 4, .pOy = 4},
                 Zfost::WeightOrder::Raster);
    RunStats a = reordered.run(s);
    RunStats b = raster.run(s);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.effectiveMacs, b.effectiveMacs);
    EXPECT_GT(b.inputLoads, 2 * a.inputLoads);
    EXPECT_EQ(raster.name(), "ZFOST-raster");
}

TEST(NlrVanillaAblation, ZeroSkipGrantIsWorthFourXOnStuffedInputs)
{
    // The paper's evaluation "optimizes the dataflow of NLR so that
    // it can skip over zeros" — without that grant, the vanilla
    // dataflow burns the full dense schedule on T-CONV.
    ConvSpec s = stuffedSpec();
    sim::Nlr improved(Unroll{.pIf = 2, .pOf = 3});
    sim::Nlr vanilla(Unroll{.pIf = 2, .pOf = 3},
                     sim::Nlr::ZeroPolicy::Execute);
    RunStats a = improved.run(s);
    RunStats b = vanilla.run(s);
    EXPECT_EQ(a.effectiveMacs, b.effectiveMacs);
    double ratio = double(b.cycles) / double(a.cycles);
    // The asymptotic factor is ~4x (the stuffing density); on this
    // small map the improved NLR still burns padding-region cycles,
    // diluting it to ~2.3x.
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 5.0);
    EXPECT_EQ(vanilla.name(), "NLR-vanilla");

    // Functional output identical (zeros contribute nothing).
    Rng rng(21);
    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor golden = sim::genericConvRef(s, in, w);
    Tensor out = sim::makeOutputTensor(s);
    vanilla.run(s, &in, &w, &out);
    EXPECT_TRUE(approxEqual(golden, out, 1e-3f));
}

TEST(ZfostRasterAblation, FunctionalOutputUnchanged)
{
    Rng rng(11);
    ConvSpec s = stuffedSpec();
    Zfost raster(Unroll{.pOf = 2, .pOx = 3, .pOy = 3},
                 Zfost::WeightOrder::Raster);
    Tensor in = sim::makeStreamedInput(s, rng);
    Tensor w = sim::makeStreamedKernel(s, rng);
    Tensor golden = sim::genericConvRef(s, in, w);
    Tensor out = sim::makeOutputTensor(s);
    raster.run(s, &in, &w, &out);
    EXPECT_TRUE(approxEqual(golden, out, 1e-3f));
}

} // namespace
