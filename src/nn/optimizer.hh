/**
 * @file
 * Parameter-update rules.
 *
 * The paper trains with the Wasserstein objective (Arjovsky et al.),
 * whose reference recipe is RMSProp plus weight clipping on the
 * critic; plain SGD is provided for deterministic equivalence tests.
 */

#ifndef GANACC_NN_OPTIMIZER_HH
#define GANACC_NN_OPTIMIZER_HH

#include <memory>
#include <unordered_map>

#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/** Abstract update rule: param -= f(grad). */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Apply one update step.
     *
     * @param param_id stable identifier of the parameter tensor, used
     *                 to key per-parameter optimizer state.
     * @param param    the parameter tensor, updated in place.
     * @param grad     the gradient of the loss w.r.t. param.
     */
    virtual void step(std::uintptr_t param_id, tensor::Tensor &param,
                      const tensor::Tensor &grad) = 0;

    float learningRate() const { return lr_; }

  protected:
    explicit Optimizer(float lr) : lr_(lr) {}
    float lr_;
};

/** Vanilla stochastic gradient descent. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(float lr) : Optimizer(lr) {}

    void
    step(std::uintptr_t, tensor::Tensor &param,
         const tensor::Tensor &grad) override
    {
        param.axpy(-lr_, grad);
    }
};

/** RMSProp as used by the WGAN reference implementation. */
class RmsProp : public Optimizer
{
  public:
    explicit RmsProp(float lr, float decay = 0.9f, float eps = 1e-8f)
        : Optimizer(lr), decay_(decay), eps_(eps) {}

    void step(std::uintptr_t param_id, tensor::Tensor &param,
              const tensor::Tensor &grad) override;

  private:
    float decay_;
    float eps_;
    std::unordered_map<std::uintptr_t, tensor::Tensor> meanSquare_;
};

/** Adam (Kingma & Ba) — the optimizer of the original DCGAN recipe. */
class Adam : public Optimizer
{
  public:
    explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f)
        : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

    void step(std::uintptr_t param_id, tensor::Tensor &param,
              const tensor::Tensor &grad) override;

  private:
    struct State
    {
        tensor::Tensor m; ///< first-moment estimate
        tensor::Tensor v; ///< second-moment estimate
        long t = 0;       ///< step count (bias correction)
    };

    float beta1_;
    float beta2_;
    float eps_;
    std::unordered_map<std::uintptr_t, State> state_;
};

/** Clamp every element of a tensor into [-c, c] (WGAN critic clip). */
void clipWeights(tensor::Tensor &t, float c);

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_OPTIMIZER_HH
