/**
 * @file
 * Field-by-field RunStats comparison, shared by the test helpers
 * (tests/stats_helpers.hh), the protocol round-trip tests and the
 * conformance harness's differ.
 *
 * The equality story of this repo is always *exact*: two runs that
 * claim to be twins must agree on every counter bit for bit, and a
 * served response must equal direct simulation the same way. Stating
 * the comparison once — and returning a diff that names each
 * disagreeing field with both values — keeps every consumer's failure
 * message equally diagnosable.
 */

#ifndef GANACC_SIM_STATS_DIFF_HH
#define GANACC_SIM_STATS_DIFF_HH

#include <string>

#include "sim/stats.hh"

namespace ganacc {
namespace sim {

/**
 * A human-readable diff of two RunStats: empty when every counter is
 * equal, otherwise "field: left != right" clauses joined with "; ".
 */
inline std::string
diffRunStats(const RunStats &a, const RunStats &b)
{
    std::string out;
    auto field = [&](const char *name, std::uint64_t x,
                     std::uint64_t y) {
        if (x == y)
            return;
        if (!out.empty())
            out += "; ";
        out += name;
        out += ": ";
        out += std::to_string(x);
        out += " != ";
        out += std::to_string(y);
    };
    field("cycles", a.cycles, b.cycles);
    field("nPes", a.nPes, b.nPes);
    field("effectiveMacs", a.effectiveMacs, b.effectiveMacs);
    field("ineffectualMacs", a.ineffectualMacs, b.ineffectualMacs);
    field("idlePeSlots", a.idlePeSlots, b.idlePeSlots);
    field("gatedSlots", a.gatedSlots, b.gatedSlots);
    field("weightLoads", a.weightLoads, b.weightLoads);
    field("inputLoads", a.inputLoads, b.inputLoads);
    field("outputReads", a.outputReads, b.outputReads);
    field("outputWrites", a.outputWrites, b.outputWrites);
    return out;
}

/** True when every counter of the two RunStats agrees. */
inline bool
statsEqual(const RunStats &a, const RunStats &b)
{
    return diffRunStats(a, b).empty();
}

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_STATS_DIFF_HH
