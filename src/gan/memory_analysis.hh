/**
 * @file
 * Intermediate-data footprint analysis (Section III-A).
 *
 * Weight updating needs every layer's forward output d^l (eq. 4), so
 * the synchronized algorithm buffers the per-sample intermediate set
 * for all 2m samples of the combined real+fake batch; the paper
 * reports ~126 MB for DCGAN at batch 256 with 16-bit data. Deferred
 * synchronization shrinks the live set to a single sample.
 */

#ifndef GANACC_GAN_MEMORY_ANALYSIS_HH
#define GANACC_GAN_MEMORY_ANALYSIS_HH

#include <cstddef>

#include "gan/models.hh"

namespace ganacc {
namespace gan {

/** Byte counts of the intermediate-activation buffers. */
struct MemoryFootprint
{
    /// d^l bytes for one sample through the discriminator.
    std::size_t perSampleDiscBytes = 0;
    /// d^l bytes for one sample through the generator.
    std::size_t perSampleGenBytes = 0;
    /// Synchronized discriminator update: 2m buffered sample sets.
    std::size_t syncDiscUpdateBytes = 0;
    /// Synchronized generator update: m sets through G and D each.
    std::size_t syncGenUpdateBytes = 0;
    /// Deferred: one sample's set (data) plus one error set in flight.
    std::size_t deferredDiscUpdateBytes = 0;
    std::size_t deferredGenUpdateBytes = 0;
};

/**
 * Compute the footprint for one model and batch size.
 *
 * @param bytes_per_elem data width; 2 for the paper's 16-bit datapath.
 */
MemoryFootprint analyzeMemory(const GanModel &model, int batch_size,
                              int bytes_per_elem = 2);

} // namespace gan
} // namespace ganacc

#endif // GANACC_GAN_MEMORY_ANALYSIS_HH
