/**
 * @file
 * Conditional (Context-Encoder-style) trainer tests: joint-objective
 * bookkeeping, gradient hygiene between the two networks, and
 * learning progress on masked reconstruction.
 */

#include <gtest/gtest.h>

#include "gan/conditional.hh"
#include "gan/data.hh"
#include "gan/models.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using tensor::Tensor;
using util::Rng;

/** A small encoder-decoder conditional model on 8x8 images. */
gan::GanModel
miniModel()
{
    std::vector<gan::LayerSpec> gen;
    gan::LayerSpec e;
    e.kind = nn::ConvKind::Strided;
    e.act = nn::Activation::LeakyReLU;
    e.inChannels = 1;
    e.outChannels = 8;
    e.inH = e.inW = 8;
    e.geom = nn::Conv2dGeom{4, 2, 1, 0};
    gen.push_back(e);
    gan::LayerSpec d;
    d.kind = nn::ConvKind::Transposed;
    d.act = nn::Activation::Tanh;
    d.inChannels = 8;
    d.outChannels = 1;
    d.inH = d.inW = 4;
    d.geom = nn::Conv2dGeom{4, 2, 1, 0};
    gen.push_back(d);

    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec l1;
    l1.kind = nn::ConvKind::Strided;
    l1.act = nn::Activation::LeakyReLU;
    l1.inChannels = 1;
    l1.outChannels = 6;
    l1.inH = l1.inW = 8;
    l1.geom = nn::Conv2dGeom{4, 2, 1, 0};
    disc.push_back(l1);
    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 6;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};
    disc.push_back(head);
    return gan::makeModelWithGenerator("mini-cond", disc, gen);
}

Tensor
mask(const Tensor &batch)
{
    Tensor out = batch;
    const auto &s = batch.shape();
    for (int n = 0; n < s.d0; ++n)
        for (int y = 2; y < 6; ++y)
            for (int x = 2; x < 6; ++x)
                out.ref(n, 0, y, x) = 0.0f;
    return out;
}

TEST(Conditional, InpaintShapesAndBounds)
{
    gan::ConditionalTrainer t(miniModel(), 1);
    Rng rng(1);
    Tensor cond(3, 1, 8, 8);
    cond.fillUniform(rng);
    Tensor rec = t.inpaint(cond);
    EXPECT_EQ(rec.shape(), cond.shape());
    EXPECT_LE(rec.absMax(), 1.0f);
}

TEST(Conditional, StepsProduceFiniteLossesAndClipCritic)
{
    gan::ConditionalTrainer t(miniModel(), 2, 5.0f, 0.02f);
    Rng rng(2);
    Tensor real = gan::makeBlobImages(4, 1, 8, 8, rng);
    Tensor cond = mask(real);
    nn::RmsProp d_opt(1e-3f), g_opt(1e-3f);
    double d_loss = t.discriminatorStep(real, cond, d_opt);
    auto g_losses = t.generatorStep(real, cond, g_opt);
    EXPECT_TRUE(std::isfinite(d_loss));
    EXPECT_TRUE(std::isfinite(g_losses.adversarial));
    EXPECT_GT(g_losses.reconstruction, 0.0);
    for (auto &layer : t.discriminator().layers())
        EXPECT_LE(layer->weights().absMax(), 0.02f);
}

TEST(Conditional, GeneratorStepLeavesCriticGradientsClean)
{
    gan::ConditionalTrainer t(miniModel(), 3);
    Rng rng(3);
    Tensor real = gan::makeBlobImages(3, 1, 8, 8, rng);
    Tensor cond = mask(real);
    nn::Sgd g_opt(1e-3f);
    t.generatorStep(real, cond, g_opt);
    for (auto &layer : t.discriminator().layers())
        EXPECT_FLOAT_EQ(layer->gradAccum().absMax(), 0.0f);
}

TEST(Conditional, ReconstructionImprovesWithTraining)
{
    gan::ConditionalTrainer t(miniModel(), 4, /*recon=*/20.0f,
                              /*clip=*/0.02f);
    Rng rng(4);
    nn::Adam d_opt(1e-3f), g_opt(2e-3f);
    Rng probe_rng(5);
    Tensor probe = gan::makeBlobImages(8, 1, 8, 8, probe_rng);
    Tensor probe_cond = mask(probe);

    auto mse = [&]() {
        Tensor rec = t.inpaint(probe_cond);
        double acc = 0.0;
        for (std::size_t i = 0; i < rec.numel(); ++i) {
            double d = double(rec.data()[i]) - probe.data()[i];
            acc += d * d;
        }
        return acc / double(rec.numel());
    };
    double before = mse();
    for (int it = 0; it < 25; ++it) {
        Tensor real = gan::makeBlobImages(6, 1, 8, 8, rng);
        Tensor cond = mask(real);
        t.discriminatorStep(real, cond, d_opt);
        t.generatorStep(real, cond, g_opt);
    }
    double after = mse();
    EXPECT_LT(after, before);
}

TEST(Conditional, ZeroReconWeightIsPureAdversarial)
{
    gan::ConditionalTrainer t(miniModel(), 6, 0.0f);
    Rng rng(6);
    Tensor real = gan::makeBlobImages(2, 1, 8, 8, rng);
    Tensor cond = mask(real);
    nn::Sgd g_opt(1e-3f);
    auto losses = t.generatorStep(real, cond, g_opt);
    // Reconstruction is still reported, just unweighted in the grad.
    EXPECT_GT(losses.reconstruction, 0.0);
    EXPECT_EQ(t.reconWeight(), 0.0f);
}

TEST(Conditional, MismatchedBatchesRejected)
{
    gan::ConditionalTrainer t(miniModel(), 7);
    Rng rng(7);
    Tensor real = gan::makeBlobImages(3, 1, 8, 8, rng);
    Tensor cond = gan::makeBlobImages(2, 1, 8, 8, rng);
    nn::Sgd opt(1e-3f);
    EXPECT_THROW(t.discriminatorStep(real, cond, opt),
                 util::PanicError);
    EXPECT_THROW(t.generatorStep(real, cond, opt), util::PanicError);
}

} // namespace
