/**
 * @file
 * Tests for the 16-bit fixed-point datapath: the quantized
 * convolutions must track the float reference within the error bound
 * the Q7.8 format implies, and the wide-accumulator modeling must be
 * exact for representable inputs.
 */

#include <gtest/gtest.h>

#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/conv_ref.hh"
#include "nn/quantize.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using nn::Conv2dGeom;
using tensor::Tensor;
using util::Rng;

TEST(Quantize, TensorSnapToGrid)
{
    Tensor t(1, 1, 1, 3);
    t.at(0, 0, 0, 0) = 0.126f;  // nearest Q7.8 grid point: 32/256
    t.at(0, 0, 0, 1) = -1.0f;
    t.at(0, 0, 0, 2) = 300.0f;  // saturates at ~127.996
    Tensor q = nn::quantizeTensor(t);
    EXPECT_FLOAT_EQ(q.get(0, 0, 0, 0), 32.0f / 256.0f);
    EXPECT_FLOAT_EQ(q.get(0, 0, 0, 1), -1.0f);
    EXPECT_NEAR(q.get(0, 0, 0, 2), 127.996f, 0.01f);
}

TEST(Quantize, ExactOnGridAlignedOperands)
{
    // Inputs already on the Q7.8 grid with small magnitudes: the
    // fixed conv must be *bit-exact* against the float conv because
    // products and sums stay inside the wide accumulator.
    Rng rng(3);
    Tensor in(1, 2, 6, 6), w(3, 2, 3, 3);
    for (std::size_t i = 0; i < in.numel(); ++i)
        in.data()[i] = float(rng.uniformInt(-64, 64)) / 256.0f;
    for (std::size_t i = 0; i < w.numel(); ++i)
        w.data()[i] = float(rng.uniformInt(-64, 64)) / 256.0f;
    Conv2dGeom g{3, 1, 1, 0};
    Tensor ref = nn::sconvForward(in, w, g);
    Tensor fx = nn::sconvForwardFixed(in, w, g);
    auto e = nn::quantError(ref, fx);
    // Only the single writeback rounding applies.
    EXPECT_LE(e.maxAbs, 1.0 / 256.0 + 1e-6);
}

TEST(Quantize, SconvErrorBoundedByQuantNoise)
{
    Rng rng(5);
    Tensor in(1, 3, 12, 12), w(8, 3, 5, 5);
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -0.2f, 0.2f);
    Conv2dGeom g{5, 2, 2, 0};
    Tensor ref = nn::sconvForward(in, w, g);
    Tensor fx = nn::sconvForwardFixed(in, w, g);
    auto e = nn::quantError(ref, fx);
    // 75 products, each with ~2^-9 operand noise on ~unit operands:
    // error stays far below the signal.
    EXPECT_LT(e.maxAbs, 0.05);
    EXPECT_LT(e.rms, 0.02);
    EXPECT_GT(e.refScale, 0.2);
}

TEST(Quantize, TconvErrorBounded)
{
    Rng rng(7);
    Tensor in(1, 4, 4, 4), w(4, 2, 5, 5);
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -0.2f, 0.2f);
    Conv2dGeom g{5, 2, 2, 1};
    Tensor ref = nn::tconvForward(in, w, g);
    Tensor fx = nn::tconvForwardFixed(in, w, g);
    auto e = nn::quantError(ref, fx);
    EXPECT_LT(e.maxAbs, 0.05);
    EXPECT_EQ(ref.shape(), fx.shape());
}

TEST(Quantize, ErrorGrowsWithAccumulationDepth)
{
    // More products per output accumulate more operand noise — a
    // sanity property of the noise model.
    Rng rng(9);
    Conv2dGeom g{3, 1, 1, 0};
    auto rms_for_channels = [&](int c) {
        Tensor in(1, c, 8, 8), w(4, c, 3, 3);
        in.fillUniform(rng, -1.0f, 1.0f);
        w.fillUniform(rng, -0.2f, 0.2f);
        Tensor ref = nn::sconvForward(in, w, g);
        Tensor fx = nn::sconvForwardFixed(in, w, g);
        return nn::quantError(ref, fx).rms;
    };
    double narrow = rms_for_channels(2);
    double wide = rms_for_channels(32);
    EXPECT_GT(wide, narrow);
}

class QuantizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizeSweep, ErrorBoundedByAccumulationNoise)
{
    // Property: for operands in [-1, 1], the fixed result differs
    // from float by at most ~(products + 1) quantization steps (each
    // operand's rounding is <= eps/2, products |.| <= 1, plus one
    // writeback rounding) — a loose analytic envelope.
    Rng rng(4000 + GetParam());
    int c = rng.uniformInt(1, 4);
    int k = rng.uniformInt(2, 5);
    int hw = rng.uniformInt(k, 10);
    int s = rng.uniformInt(1, 2);
    int p = rng.uniformInt(0, k / 2);
    Tensor in(1, c, hw, hw), w(3, c, k, k);
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -1.0f, 1.0f);
    Conv2dGeom g{k, s, p, 0};
    Tensor ref = nn::sconvForward(in, w, g);
    Tensor fx = nn::sconvForwardFixed(in, w, g);
    auto e = nn::quantError(ref, fx);
    double eps = 1.0 / 256.0;
    double products = double(c) * k * k;
    // Saturation can only trigger if the true value nears the Q7.8
    // ceiling; bound the non-saturated case.
    if (e.refScale < 120.0) {
        EXPECT_LE(e.maxAbs, (products + 1.0) * eps)
            << "c=" << c << " k=" << k << " hw=" << hw;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, QuantizeSweep,
                         ::testing::Range(0, 15));

TEST(Quantize, CriticScoresSurviveQuantization)
{
    // End-to-end: quantizing a small critic's weights and inputs must
    // perturb the per-sample scores only slightly — supporting the
    // paper's 16-bit datapath choice.
    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec l1;
    l1.kind = nn::ConvKind::Strided;
    l1.act = nn::Activation::LeakyReLU;
    l1.inChannels = 1;
    l1.outChannels = 8;
    l1.inH = l1.inW = 8;
    l1.geom = nn::Conv2dGeom{4, 2, 1, 0};
    disc.push_back(l1);
    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 8;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};
    disc.push_back(head);
    gan::GanModel m = gan::makeModel("q", std::move(disc), 8);

    Rng rng(11);
    gan::Network critic(m.disc, rng);
    Tensor img(4, 1, 8, 8);
    img.fillUniform(rng, -1.0f, 1.0f);
    auto ref_scores = gan::Network::scores(critic.forward(img));

    // Quantize weights in place and the input.
    for (auto &layer : critic.layers())
        layer->weights() = nn::quantizeTensor(layer->weights());
    Tensor qimg = nn::quantizeTensor(img);
    auto q_scores = gan::Network::scores(critic.forward(qimg));
    for (std::size_t i = 0; i < ref_scores.size(); ++i)
        EXPECT_NEAR(q_scores[i], ref_scores[i],
                    0.05 * (1.0 + std::abs(ref_scores[i])));
}

} // namespace
