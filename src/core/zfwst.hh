/**
 * @file
 * ZFWST — Zero-Free Weight-STationary microarchitecture (Fig. 13),
 * the paper's design for W-ARCH (phases Dw, Gw).
 *
 * Unrolls Loop-3: a P_ky x P_kx tile of *structurally non-zero*
 * kernel elements stays resident in the PEs (for W-CONV the "kernel"
 * is the back-propagated error map — dilated for Dw, dense for Gw),
 * and each cycle the adder tree folds all resident products into one
 * output neuron per channel. The input register array shifts as the
 * output neuron advances, giving the same temporal input reuse as
 * ZFOST ("ZFWST and ZFOST are somehow asymmetric in terms of kernel
 * weights and output neurons").
 *
 * Zero freedom: only non-zero kernel elements are allocated to PEs
 * (Dw), and outputs are processed per parity class so zero-inserted
 * input operands are never fetched (Gw, and T-CONV when ZFWST runs ST
 * phases in the Fig. 15 comparison). When the effective element count
 * exceeds P_ky*P_kx, multiple resident passes accumulate partial
 * results through the ping-pong gradient buffer (Section V-B3).
 */

#ifndef GANACC_CORE_ZFWST_HH
#define GANACC_CORE_ZFWST_HH

#include "sim/arch.hh"

namespace ganacc {
namespace core {

/** The paper's zero-free weight-stationary array. */
class Zfwst : public sim::Architecture
{
  public:
    explicit Zfwst(sim::Unroll unroll)
        : sim::Architecture("ZFWST", unroll) {}

    int
    numPes() const override
    {
        return unroll_.pKx * unroll_.pKy * unroll_.pOf;
    }

  protected:
    sim::RunStats doRun(const sim::ConvSpec &spec,
                        const tensor::Tensor *in, const tensor::Tensor *w,
                        tensor::Tensor *out) const override;

    bool fastStats(const sim::ConvSpec &spec,
                   sim::RunStats &st) const override;
};

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_ZFWST_HH
