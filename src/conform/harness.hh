/**
 * @file
 * The conformance harness: drive a live daemon and the reference
 * model in lockstep, diff every observable.
 *
 * The systems-under-test wrap the real transports — a Unix-domain
 *-socket daemon behind serve::Client, a pipe daemon behind real
 * pipe(2) descriptors, a loopback-TCP daemon, and a multi-shard TCP
 * fleet behind fleet::Router — all running in-process threads so the
 * harness can reach the fault seams, the caches and the obs
 * registry the daemons share. Operations are applied in lockstep
 * (every response of op N is read and checked before op N+1 is sent),
 * which is what makes every counter exactly predictable; a Restart op
 * emulates process death (drain, verify every accepted request was
 * answered, clear the memory tier, fresh engine and store session).
 *
 * A divergence is any disagreement between daemon and model:
 * response fields, exact RunStats, admissible cache tier, telemetry
 * counters at a probe, or store directory contents at the periodic
 * scan. Reports are deterministic — same sequence, same options, same
 * report — so a failing seed shrinks and replays faithfully.
 */

#ifndef GANACC_CONFORM_HARNESS_HH
#define GANACC_CONFORM_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conform/ops.hh"
#include "serve/result_store.hh"

namespace ganacc {
namespace conform {

/** Which transport the daemon side runs. */
enum class SutMode
{
    Unix, ///< AF_UNIX socket server + serve::Client
    Pipe, ///< pipe(2) pair through serve::runPipeServer
    Tcp,  ///< loopback TCP listener + serve::Client
};

std::string sutModeName(SutMode m);

/** Harness configuration. */
struct RunOptions
{
    SutMode mode = SutMode::Unix;
    /// Fleet width. 1 = a single daemon of `mode`. >= 2 = that many
    /// TCP shards with private caches behind a fleet::Router (RF=2,
    /// routing and replication modelled per shard; `mode` is
    /// ignored, FsFault ops are unsupported). A Restart op restarts
    /// one shard round-robin on its original address.
    int shards = 1;
    /// Scratch root for the store and the socket; wiped at run start.
    /// Must be non-empty and short (AF_UNIX path limit).
    std::string scratchDir;
    /// Deliberate store bug to arm (harness self-test); None = clean.
    serve::StoreBug bug = serve::StoreBug::None;
    int maxDivergences = 8;         ///< stop the run after this many
    std::size_t storeCheckInterval = 64; ///< ops between store scans
    std::size_t maxQueue = 256;     ///< engine admission bound
};

/** One disagreement between the daemon and the reference model. */
struct Divergence
{
    std::size_t opIndex = 0; ///< index into the applied sequence
    std::string what;
};

/** The outcome of one conformance run. */
struct Report
{
    std::vector<Divergence> divergences;
    std::size_t opsApplied = 0;
    std::size_t linesSent = 0; ///< wire request lines

    bool
    clean() const
    {
        return divergences.empty();
    }

    /** Deterministic multi-line rendering (one line per divergence,
     *  plus a summary line). */
    std::string text() const;
};

/**
 * Apply `seq` to a fresh daemon of the requested mode and to a fresh
 * reference model, diffing after every operation. Resets process-wide
 * state it uses (CycleCache, fault budgets, store bug) on entry and
 * exit, so runs compose — the shrinker calls this in a loop.
 */
Report runConformance(const std::vector<Op> &seq,
                      const RunOptions &opt);

/** A default scratch directory under the system temp dir, unique per
 *  process (deterministic within one run of a tool or test). */
std::string defaultScratchDir();

} // namespace conform
} // namespace ganacc

#endif // GANACC_CONFORM_HARNESS_HH
