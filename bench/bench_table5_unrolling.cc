/**
 * @file
 * Table V reproduction: the unrolling strategy of every architecture
 * on both PE banks. Prints the paper's published entries next to the
 * choices of the exhaustive solver (which minimizes simulated cycles
 * over the evaluation networks' jobs), confirming the published
 * configurations are (near-)optimal under the model.
 */

#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace ganacc;

std::string
unrollStr(core::ArchKind kind, const sim::Unroll &u)
{
    switch (kind) {
      case core::ArchKind::NLR:
        return "Pif=" + std::to_string(u.pIf) +
               ",Pof=" + std::to_string(u.pOf);
      case core::ArchKind::WST:
      case core::ArchKind::ZFWST:
        return "Pk=" + std::to_string(u.pKy) + "x" +
               std::to_string(u.pKx) + ",Pof=" + std::to_string(u.pOf);
      case core::ArchKind::OST:
      case core::ArchKind::ZFOST:
        return "Po=" + std::to_string(u.pOy) + "x" +
               std::to_string(u.pOx) + ",Pof=" + std::to_string(u.pOf);
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    bench::banner("Table V — unrolling strategy",
                  "ST-ARCH (1200 PEs) e.g. OST Po=4x4 Pof=75; "
                  "W-ARCH (480 PEs) e.g. ZFWST Pk=4x4 Pof=30");

    // Probe jobs: the DCGAN families (the network Table V was sized
    // for; 5x5 kernels).
    gan::GanModel dcgan = gan::makeDcgan();

    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };

    // One work item per (bank row, architecture): the exhaustive
    // solver dominates the runtime, so the parallel map spreads the
    // 20 searches across the workers; results land by index and print
    // in the original deterministic order.
    struct Cell
    {
        std::string paperUnroll, solverUnroll;
        std::uint64_t paperCycles = 0, solverCycles = 0;
        int solverPes = 0;
    };
    const auto kinds = core::allArchKinds();
    std::vector<std::pair<const Row *, core::ArchKind>> work;
    for (const Row &row : rows)
        for (core::ArchKind kind : kinds)
            work.emplace_back(&row, kind);

    auto cells = util::parallelMap(
        work,
        [&](const std::pair<const Row *, core::ArchKind> &w) {
            const Row &row = *w.first;
            core::ArchKind kind = w.second;
            auto probe = sim::familyJobs(dcgan, row.family);
            auto paper =
                core::paperUnroll(kind, row.role, row.family, row.pes);
            auto paper_arch = core::makeArch(kind, paper);
            Cell c;
            for (const auto &j : probe)
                c.paperCycles += paper_arch->run(j).cycles;
            auto solved = core::solveUnrolling(kind, row.pes, probe, 8);
            c.paperUnroll = unrollStr(kind, paper);
            c.solverUnroll = unrollStr(kind, solved.unroll);
            c.solverCycles = solved.cycles;
            c.solverPes = solved.pes;
            return c;
        },
        jobs);

    std::size_t idx = 0;
    for (const Row &row : rows) {
        std::cout << "\nPhase family " << sim::phaseFamilyName(row.family)
                  << " on the "
                  << (row.role == core::BankRole::ST ? "ST" : "W")
                  << " bank (" << row.pes << " PEs):\n";
        util::Table t({"arch", "paper unrolling", "paper cycles",
                       "solver unrolling", "solver cycles", "solver PEs"});
        for (core::ArchKind kind : kinds) {
            const Cell &c = cells[idx++];
            t.addRow(core::archKindName(kind), c.paperUnroll,
                     c.paperCycles, c.solverUnroll, c.solverCycles,
                     c.solverPes);
        }
        t.print(std::cout);
    }
    std::cout << "\n(Solver may shave cycles with workload-specific "
                 "shapes; the published entries must be within a few "
                 "percent.)\n";
    return 0;
}
