/**
 * @file
 * Design-space exploration: the optimizer an architect runs before
 * committing to a configuration.
 *
 * The paper picks one point (eqs. 7-8 at 192 Gbps on the VCU9P); this
 * module searches the surrounding space — bank widths, PE split and
 * clock — for the best throughput subject to the FPGA's resources and
 * the DRAM bandwidth constraint, and can emit the whole frontier for
 * plotting. It reuses the same cycle models and resource/bandwidth
 * laws as the reproduction, so its optimum landing on the paper's
 * configuration is itself a consistency check (asserted in the
 * tests).
 */

#ifndef GANACC_CORE_DSE_HH
#define GANACC_CORE_DSE_HH

#include <optional>
#include <vector>

#include "core/resource_model.hh"
#include "gan/models.hh"
#include "mem/offchip.hh"
#include "mem/onchip_buffer.hh"
#include "sched/design.hh"

namespace ganacc {
namespace core {

/** The search space. */
struct DseConstraints
{
    mem::OffChipConfig offchip;       ///< bandwidth + clock + width
    FpgaResources budget;             ///< device limits
    int maxWPof = 120;                ///< W-bank channel ceiling
    int pesPerChannel = 16;           ///< 4x4 arrays per channel
    /// Run the static verifier as a frontier pre-filter: illegal
    /// points are rejected with a diagnostic code instead of being
    /// simulated (or panicking the cycle models). Opt out with
    /// --no-verify in the example/bench drivers.
    bool verify = true;
};

/** One evaluated configuration. */
struct DsePoint
{
    int wPof = 0;
    int stPof = 0;
    int totalPes = 0;
    std::uint64_t iterationCycles = 0; ///< DCGAN-weighted, deferred
    double samplesPerSecond = 0.0;
    FpgaResources resources;
    bool fitsDevice = false;
    bool bandwidthFeasible = false;
    /// Set when the static verifier rejected the point before
    /// simulation; verifierCode/verifierMessage carry the first error.
    bool verifierRejected = false;
    /// Set (together with verifierRejected) when the rejection came
    /// from the schedule-hazard analyzer (a GA-SCHED-* code).
    bool scheduleRejected = false;
    std::string verifierCode;
    std::string verifierMessage;

    bool
    feasible() const
    {
        return !verifierRejected && fitsDevice && bandwidthFeasible;
    }
};

/**
 * Evaluate one (W_Pof, ST_Pof) configuration on a model: timing from
 * the cycle models, resources from the Table III model, bandwidth
 * feasibility from eq. (7)'s worst-case ∇W stream.
 */
DsePoint evaluatePoint(const DseConstraints &cons,
                       const gan::GanModel &model, int w_pof,
                       int st_pof);

/**
 * Sweep W_Pof (with ST_Pof following eq. 8) and return every point,
 * feasible or not, in increasing W_Pof order. Serial reference
 * implementation.
 */
std::vector<DsePoint> sweepFrontier(const DseConstraints &cons,
                                    const gan::GanModel &model);

/**
 * The same sweep evaluated on `jobs` worker threads (0 resolves via
 * util::resolveJobs: GANACC_JOBS, then hardware concurrency). Each
 * point is an independent pure evaluation and results are stored by
 * point index, so the returned vector is bit-identical to
 * sweepFrontier — same points, same order — only faster. Per-layer
 * cycle counts are shared through the memoizing CycleCache.
 */
std::vector<DsePoint> sweepFrontierParallel(const DseConstraints &cons,
                                            const gan::GanModel &model,
                                            int jobs = 0);

/** The fastest feasible point of the frontier, if any. */
std::optional<DsePoint> bestFeasible(const std::vector<DsePoint> &pts);

/** How many frontier points the static verifier rejected. */
int verifierRejectedCount(const std::vector<DsePoint> &pts);

/** How many of those rejections came from the schedule-hazard
 *  analyzer (GA-SCHED-* codes). */
int scheduleRejectedCount(const std::vector<DsePoint> &pts);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_DSE_HH
