/**
 * @file
 * Context-Encoder inpainting demo — the workload behind the paper's
 * cGAN evaluation (Pathak et al.): an encoder-decoder generator
 * reconstructs the masked-out center of an image. Trains a small
 * mixed strided/transposed stack with reconstruction loss, reports
 * masked-region error, and prices each iteration on the accelerator
 * model (the mixed generator exercises both W-CONV forms at once).
 */

#include <iostream>

#include "core/unrolling.hh"
#include "gan/conditional.hh"
#include "gan/data.hh"
#include "gan/models.hh"
#include "nn/optimizer.hh"
#include "sched/design.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;
using tensor::Tensor;

/** Zero out the central square of every image. */
Tensor
maskCenter(const Tensor &batch, int hole)
{
    Tensor out = batch;
    const auto &s = batch.shape();
    int y0 = (s.d2 - hole) / 2, x0 = (s.d3 - hole) / 2;
    for (int n = 0; n < s.d0; ++n)
        for (int c = 0; c < s.d1; ++c)
            for (int y = y0; y < y0 + hole; ++y)
                for (int x = x0; x < x0 + hole; ++x)
                    out.ref(n, c, y, x) = 0.0f;
    return out;
}

/** Mean squared error over the masked region only. */
double
holeError(const Tensor &pred, const Tensor &target, int hole)
{
    const auto &s = target.shape();
    int y0 = (s.d2 - hole) / 2, x0 = (s.d3 - hole) / 2;
    double acc = 0.0;
    int n_elems = 0;
    for (int n = 0; n < s.d0; ++n)
        for (int c = 0; c < s.d1; ++c)
            for (int y = y0; y < y0 + hole; ++y)
                for (int x = x0; x < x0 + hole; ++x) {
                    double d = double(pred.get(n, c, y, x)) -
                               target.get(n, c, y, x);
                    acc += d * d;
                    ++n_elems;
                }
    return acc / n_elems;
}

} // namespace

int
main()
{
    using namespace ganacc;

    // A 16x16 encoder-decoder (two down, two up) for a fast demo.
    std::vector<gan::LayerSpec> gen;
    auto enc = [&](int ic, int oc, int hw) {
        gan::LayerSpec l;
        l.kind = nn::ConvKind::Strided;
        l.act = nn::Activation::LeakyReLU;
        l.inChannels = ic;
        l.outChannels = oc;
        l.inH = l.inW = hw;
        l.geom = nn::Conv2dGeom{4, 2, 1, 0};
        gen.push_back(l);
    };
    auto dec = [&](int ic, int oc, int hw, nn::Activation a) {
        gan::LayerSpec l;
        l.kind = nn::ConvKind::Transposed;
        l.act = a;
        l.inChannels = ic;
        l.outChannels = oc;
        l.inH = l.inW = hw;
        l.geom = nn::Conv2dGeom{4, 2, 1, 0};
        gen.push_back(l);
    };
    enc(1, 12, 16);
    enc(12, 24, 8);
    dec(24, 12, 4, nn::Activation::ReLU);
    dec(12, 1, 8, nn::Activation::Tanh);
    std::vector<gan::LayerSpec> disc;
    {
        gan::LayerSpec h;
        h.kind = nn::ConvKind::Strided;
        h.act = nn::Activation::None;
        h.inChannels = 1;
        h.outChannels = 1;
        h.inH = h.inW = 16;
        h.geom = nn::Conv2dGeom{16, 1, 0, 0};
        disc.push_back(h);
    }
    gan::GanModel model = gan::makeModelWithGenerator(
        "mini-inpainter", std::move(disc), std::move(gen));

    // Price an iteration of the full-size ContextEncoder on the
    // accelerator (mixed generator = both W-CONV forms live at once).
    auto design = sched::Design::combo(core::ArchKind::ZFOST,
                                       core::ArchKind::ZFWST, 1680);
    gan::GanModel full = gan::makeContextEncoder();
    std::cout << "Full ContextEncoder on the 1680-PE accelerator: "
              << sched::iterationCycles(design, full,
                                        sched::SyncPolicy::Deferred)
              << " cycles/sample-iteration ("
              << 200e6 / double(sched::iterationCycles(
                             design, full,
                             sched::SyncPolicy::Deferred))
              << " samples/s @200 MHz)\n\n";

    // Joint adversarial + reconstruction training (the Context-
    // Encoder recipe) on masked synthetic digits, using the
    // deferred-synchronization per-sample loops throughout.
    util::Rng rng(99);
    gan::ConditionalTrainer trainer(model, 2025, /*recon=*/25.0f,
                                    /*clip=*/0.03f);
    nn::Adam d_opt(1e-3f), g_opt(2e-3f);
    const int batch = 8, hole = 6, iters = 40;

    util::Rng probe_rng(1);
    Tensor probe = gan::makeBlobImages(16, 1, 16, 16, probe_rng);
    Tensor probe_masked = maskCenter(probe, hole);

    util::Table t({"iter", "hole MSE (probe)", "adv loss",
                   "recon loss"});
    double adv = 0.0, rec_loss = 0.0;
    for (int it = 0; it <= iters; ++it) {
        if (it % 8 == 0 || it == iters) {
            Tensor rec = trainer.inpaint(probe_masked);
            t.addRow(it, holeError(rec, probe, hole), adv, rec_loss);
        }
        if (it == iters)
            break;
        Tensor target = gan::makeBlobImages(batch, 1, 16, 16, rng);
        Tensor masked = maskCenter(target, hole);
        trainer.discriminatorStep(target, masked, d_opt);
        auto losses = trainer.generatorStep(target, masked, g_opt);
        adv = losses.adversarial;
        rec_loss = losses.reconstruction;
    }
    t.print(std::cout);
    std::cout << "\nThe hole MSE falling shows the encoder-decoder "
                 "learning to hallucinate the masked center from "
                 "context — the Context-Encoder objective.\n";
    return 0;
}
