/**
 * @file
 * 16-bit fixed-point datapath model.
 *
 * The paper's FPGA computes in 16-bit fixed point ("the width of data
 * is 16 in our system", Section V-C) while the CPU/GPU baselines use
 * floating point. This module runs the convolutions through the
 * modeled datapath — Q7.8 operands, exact 32-bit products, wide
 * accumulation, round-and-saturate on writeback (the Xilinx DSP48
 * behaviour) — so the reproduction can quantify what the precision
 * choice costs in accuracy.
 */

#ifndef GANACC_NN_QUANTIZE_HH
#define GANACC_NN_QUANTIZE_HH

#include "nn/conv_ref.hh"
#include "tensor/tensor.hh"
#include "util/fixed_point.hh"

namespace ganacc {
namespace nn {

/** Snap every element to the Q(15-FracBits).FracBits grid. */
template <int FracBits = util::AccelFixed::fracBits>
tensor::Tensor
quantizeTensor(const tensor::Tensor &t)
{
    tensor::Tensor out(t.shape());
    for (std::size_t i = 0; i < t.numel(); ++i)
        out.data()[i] = float(
            util::Fixed16<FracBits>::fromDouble(t.data()[i]).toDouble());
    return out;
}

/**
 * S-CONV through the fixed-point datapath: operands quantized to
 * Q7.8, products kept exact in 32 bits, accumulated in 64 bits, one
 * round-and-saturate on writeback.
 */
tensor::Tensor sconvForwardFixed(const tensor::Tensor &in,
                                 const tensor::Tensor &w,
                                 const Conv2dGeom &g);

/** T-CONV through the fixed-point datapath (gather form). */
tensor::Tensor tconvForwardFixed(const tensor::Tensor &in,
                                 const tensor::Tensor &w,
                                 const Conv2dGeom &g);

/** Error metrics between a float reference and the fixed result. */
struct QuantError
{
    double maxAbs = 0.0;
    double rms = 0.0;
    double refScale = 0.0; ///< max |reference| for context
};

QuantError quantError(const tensor::Tensor &reference,
                      const tensor::Tensor &fixed_result);

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_QUANTIZE_HH
