/**
 * @file
 * Tests for the phase-to-job mapping: geometry consistency for all
 * three evaluation networks, the paper's ineffectual-multiplication
 * census (Section III-C3), and functional correctness of the streamed
 * jobs against the layer-level reference math.
 */

#include <gtest/gtest.h>

#include "gan/models.hh"
#include "nn/conv_ref.hh"
#include "nn/zero_insert.hh"
#include "sim/phase.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using gan::GanModel;
using sim::ConvSpec;
using sim::Phase;
using sim::PhaseFamily;
using tensor::approxEqual;
using tensor::Tensor;
using util::Rng;

TEST(Phase, NamesAndFamilies)
{
    EXPECT_EQ(sim::phaseName(Phase::DiscForward), "D-fwd");
    EXPECT_EQ(sim::phaseName(Phase::GenWeight), "Gw");
    EXPECT_EQ(sim::familyOf(Phase::DiscForward), PhaseFamily::D);
    EXPECT_EQ(sim::familyOf(Phase::GenBackward), PhaseFamily::D);
    EXPECT_EQ(sim::familyOf(Phase::GenForward), PhaseFamily::G);
    EXPECT_EQ(sim::familyOf(Phase::DiscBackward), PhaseFamily::G);
    EXPECT_EQ(sim::familyOf(Phase::DiscWeight), PhaseFamily::Dw);
    EXPECT_EQ(sim::familyOf(Phase::GenWeight), PhaseFamily::Gw);
    EXPECT_EQ(sim::allPhases().size(), 6u);
}

TEST(Phase, JobCountsPerPhase)
{
    GanModel m = gan::makeDcgan();
    const std::size_t layers = m.disc.size();
    EXPECT_EQ(sim::phaseJobs(m, Phase::DiscForward).size(), layers);
    EXPECT_EQ(sim::phaseJobs(m, Phase::GenForward).size(), layers);
    // Backward error skips the first layer.
    EXPECT_EQ(sim::phaseJobs(m, Phase::DiscBackward).size(), layers - 1);
    EXPECT_EQ(sim::phaseJobs(m, Phase::GenBackward).size(), layers - 1);
    EXPECT_EQ(sim::phaseJobs(m, Phase::DiscWeight).size(), layers);
    EXPECT_EQ(sim::phaseJobs(m, Phase::GenWeight).size(), layers);
}

TEST(Phase, AllJobsOfAllModelsValidate)
{
    for (const GanModel &m : gan::allModels())
        for (Phase p : sim::allPhases())
            for (const ConvSpec &j : sim::phaseJobs(m, p))
                EXPECT_NO_THROW(j.validate()) << j.describe();
}

TEST(Phase, ForwardJobsMatchLayerMacCounts)
{
    // D-fwd jobs are dense: effective == dense == the layer's MACs.
    GanModel m = gan::makeCgan();
    auto jobs = sim::phaseJobs(m, Phase::DiscForward);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].inZeroStride, 1);
        EXPECT_EQ(jobs[i].kZeroStride, 1);
        // Dense MACs of the job equal the layer's arithmetic (padding
        // slots included in denseMacs, so compare effective <= dense).
        EXPECT_EQ(jobs[i].denseMacs(), m.disc[i].macs());
    }
}

TEST(Phase, GenForwardJobsAreStuffed)
{
    GanModel m = gan::makeDcgan();
    auto jobs = sim::phaseJobs(m, Phase::GenForward);
    // Every strided generator layer streams a zero-inserted input.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &l = m.gen[i];
        if (l.geom.stride > 1) {
            EXPECT_EQ(jobs[i].inZeroStride, l.geom.stride);
            EXPECT_GT(jobs[i].ih, l.inH);
        }
        EXPECT_EQ(jobs[i].stride, 1);
        EXPECT_EQ(jobs[i].oh, l.outH());
    }
}

TEST(Phase, WeightJobsAreFourDimensional)
{
    GanModel m = gan::makeMnistGan();
    for (Phase p : {Phase::DiscWeight, Phase::GenWeight})
        for (const ConvSpec &j : sim::phaseJobs(m, p)) {
            EXPECT_TRUE(j.fourDimOutput) << j.describe();
            // Output patch is the layer kernel extent.
            EXPECT_LE(j.oh, 7);
        }
}

TEST(Phase, DiscWeightKernelIsDilatedError)
{
    GanModel m = gan::makeDcgan();
    auto jobs = sim::phaseJobs(m, Phase::DiscWeight);
    // First layer: error 32x32 dilated by 2 -> 63x63 streamed kernel.
    EXPECT_EQ(jobs[0].kh, 63);
    EXPECT_EQ(jobs[0].kZeroStride, 2);
    EXPECT_EQ(jobs[0].kOrigH, 32);
    EXPECT_EQ(jobs[0].oh, 5);
    EXPECT_EQ(jobs[0].nof, 64);
    EXPECT_EQ(jobs[0].nif, 3);
}

TEST(Phase, IneffectualCensusMatchesPaperClaims)
{
    // Section III-C3: "These ineffectual operations account for about
    // 64% and 75% of total multiplications in G/Gw and Dw
    // respectively." Measured across the evaluation networks the
    // zero-inserted phases must waste roughly this range.
    for (const GanModel &m : gan::allModels()) {
        for (PhaseFamily f :
             {PhaseFamily::G, PhaseFamily::Gw, PhaseFamily::Dw}) {
            auto jobs = sim::familyJobs(m, f);
            double dense = double(sim::totalDenseMacs(jobs));
            double eff = double(sim::totalEffectiveMacs(jobs));
            double wasted = 1.0 - eff / dense;
            EXPECT_GT(wasted, 0.55)
                << m.name << " " << sim::phaseFamilyName(f);
            // ~64%/75% from stuffing alone; padding pushes the
            // smallest network (MNIST-GAN, 7x7 maps) slightly higher.
            EXPECT_LT(wasted, 0.90)
                << m.name << " " << sim::phaseFamilyName(f);
        }
        // Dense phases waste only padding slots.
        auto d_jobs = sim::familyJobs(m, PhaseFamily::D);
        double wasted_d =
            1.0 - double(sim::totalEffectiveMacs(d_jobs)) /
                      double(sim::totalDenseMacs(d_jobs));
        EXPECT_LT(wasted_d, 0.25) << m.name;
    }
}

TEST(Phase, GenForwardJobComputesTheLayerForward)
{
    // Functional cross-check: streaming the stuffed input through the
    // generic reference with the layer's (flipped, axis-swapped)
    // kernel reproduces nn::tconvForward.
    GanModel m = gan::makeMnistGan();
    const auto &l = m.gen[1]; // a strided T-CONV layer
    auto jobs = sim::phaseJobs(m, Phase::GenForward);
    const ConvSpec &job = jobs[1];

    Rng rng(5);
    Tensor dense_in(1, l.inChannels, l.inH, l.inW);
    dense_in.fillUniform(rng);
    Tensor w(l.inChannels, l.outChannels, l.geom.kernel, l.geom.kernel);
    w.fillUniform(rng);

    nn::Conv2dGeom g = l.geom;
    Tensor expected = nn::tconvForward(dense_in, w, g);

    // Build the streamed operands the accelerator sees.
    Tensor stuffed = nn::zeroInsertSpatial(dense_in, g.stride, g.outPad);
    ASSERT_EQ(stuffed.shape().d2, job.ih);
    Tensor streamed_w =
        nn::flipKernelSpatial(nn::swapLeadingAxes(w));
    Tensor got = sim::genericConvRef(job, stuffed, streamed_w);
    EXPECT_TRUE(approxEqual(Tensor(expected), got, 1e-4f));
}

TEST(Phase, DiscWeightJobComputesTheWeightGradient)
{
    // The Dw job must reproduce sconvBackwardWeights for one sample.
    GanModel m = gan::makeMnistGan();
    const auto &l = m.disc[1];
    auto jobs = sim::phaseJobs(m, Phase::DiscWeight);
    const ConvSpec &job = jobs[1];

    Rng rng(6);
    Tensor d_in(1, l.inChannels, l.inH, l.inW);
    d_in.fillUniform(rng);
    Tensor derr(1, l.outChannels, l.outH(), l.outW());
    derr.fillUniform(rng);

    Tensor expected = nn::sconvBackwardWeights(
        d_in, derr, l.geom, l.geom.kernel, l.geom.kernel);

    // Streamed kernel = dilated error, one plane per output map.
    Tensor dil = nn::zeroInsertSpatial(derr, l.geom.stride);
    Tensor streamed_w(tensor::Shape4(l.outChannels, 1, job.kh, job.kw),
                      0.0f);
    for (int of = 0; of < l.outChannels; ++of)
        for (int y = 0; y < job.kh; ++y)
            for (int x = 0; x < job.kw; ++x)
                streamed_w.ref(of, 0, y, x) = dil.get(0, of, y, x);

    Tensor got = sim::genericConvRef(job, d_in, streamed_w);
    // got is (nof, nif, k, k); expected is (OF, IF, k, k).
    EXPECT_TRUE(approxEqual(expected, got, 1e-3f));
}

TEST(Phase, TotalsAreMonotone)
{
    GanModel m = gan::makeDcgan();
    auto jobs = sim::phaseJobs(m, Phase::GenForward);
    EXPECT_GT(sim::totalDenseMacs(jobs), sim::totalEffectiveMacs(jobs));
    EXPECT_GT(sim::totalEffectiveMacs(jobs), 0u);
}

} // namespace
