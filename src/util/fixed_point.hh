/**
 * @file
 * 16-bit fixed-point arithmetic matching the accelerator datapath.
 *
 * The paper's FPGA implementation computes in 16-bit fixed point
 * ("the width of data is 16 in our system", Section V-C). This type
 * models a Qm.n two's-complement format with saturating conversion so
 * the functional simulator can quantify fixed-vs-float error.
 */

#ifndef GANACC_UTIL_FIXED_POINT_HH
#define GANACC_UTIL_FIXED_POINT_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ganacc {
namespace util {

/**
 * Signed fixed-point value with FracBits fractional bits in a 16-bit
 * container. Multiplication accumulates in 32 bits (the DSP-slice
 * behaviour) before renormalizing.
 */
template <int FracBits>
class Fixed16
{
    static_assert(FracBits > 0 && FracBits < 16,
                  "FracBits must leave at least one integer bit");

  public:
    static constexpr int fracBits = FracBits;
    static constexpr double scale = double(1 << FracBits);

    constexpr Fixed16() = default;

    /** Quantize a double with round-to-nearest and saturation.
     *  NaN quantizes to zero. */
    static Fixed16
    fromDouble(double v)
    {
        Fixed16 f;
        if (std::isnan(v))
            return f;
        // Round in a wide integer *before* clamping: rounding a value
        // that a floating-point clamp already pinned to INT16_MAX can
        // land past the bound and make the narrowing cast
        // implementation-defined.
        double scaled = v * scale;
        std::int64_t r;
        if (scaled >= 2e18)
            r = std::numeric_limits<std::int64_t>::max();
        else if (scaled <= -2e18)
            r = std::numeric_limits<std::int64_t>::min();
        else
            r = std::llrint(scaled);
        r = std::clamp(r,
                       std::int64_t(std::numeric_limits<int16_t>::min()),
                       std::int64_t(std::numeric_limits<int16_t>::max()));
        f.raw_ = static_cast<int16_t>(r);
        return f;
    }

    /** Construct directly from a raw two's-complement pattern. */
    static constexpr Fixed16
    fromRaw(int16_t raw)
    {
        Fixed16 f;
        f.raw_ = raw;
        return f;
    }

    double toDouble() const { return double(raw_) / scale; }
    int16_t raw() const { return raw_; }

    Fixed16
    operator+(Fixed16 o) const
    {
        return fromSaturated32(int32_t(raw_) + int32_t(o.raw_));
    }

    Fixed16
    operator-(Fixed16 o) const
    {
        return fromSaturated32(int32_t(raw_) - int32_t(o.raw_));
    }

    Fixed16
    operator*(Fixed16 o) const
    {
        int32_t prod = int32_t(raw_) * int32_t(o.raw_);
        // Round-to-nearest on the renormalizing shift.
        prod += (1 << (FracBits - 1));
        return fromSaturated32(prod >> FracBits);
    }

    bool operator==(const Fixed16 &) const = default;

    /** Largest representable quantization step. */
    static constexpr double epsilon() { return 1.0 / scale; }

  private:
    static Fixed16
    fromSaturated32(int32_t v)
    {
        v = std::clamp(v, int32_t(std::numeric_limits<int16_t>::min()),
                       int32_t(std::numeric_limits<int16_t>::max()));
        Fixed16 f;
        f.raw_ = static_cast<int16_t>(v);
        return f;
    }

    int16_t raw_ = 0;
};

/** The datapath format used throughout the accelerator model: Q7.8. */
using AccelFixed = Fixed16<8>;

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_FIXED_POINT_HH
