/**
 * @file
 * Register-array implementation.
 */

#include "core/register_array.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace ganacc {
namespace core {

InputRegisterArray::InputRegisterArray(int rows, int cols)
    : rows_(rows), cols_(cols), grid_(std::size_t(rows) * cols)
{
    GANACC_ASSERT(rows >= 1 && cols >= 1, "degenerate register array");
}

Coord
InputRegisterArray::held(int r, int c) const
{
    GANACC_ASSERT(loaded_, "register array not loaded");
    GANACC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "register index out of range");
    return grid_[std::size_t(r) * cols_ + c];
}

bool
InputRegisterArray::translationOf(const std::vector<Coord> &want,
                                  int &dy, int &dx) const
{
    dy = want[0].y - grid_[0].y;
    dx = want[0].x - grid_[0].x;
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (want[i].y - grid_[i].y != dy ||
            want[i].x - grid_[i].x != dx)
            return false;
    }
    return true;
}

Delivery
InputRegisterArray::deliver(const std::vector<Coord> &want)
{
    GANACC_ASSERT(int(want.size()) == rows_ * cols_,
                  "demand size mismatch: ", want.size(), " vs ",
                  rows_ * cols_);
    Delivery d;
    auto reload = [&] {
        grid_ = want;
        loaded_ = true;
        d.bufferLoads = rows_ * cols_;
        d.reloaded = true;
        totalLoads_ += std::uint64_t(d.bufferLoads);
        totalReloads_ += 1;
    };

    if (!loaded_) {
        reload();
        return d;
    }

    int dy = 0, dx = 0;
    if (!translationOf(want, dy, dx)) {
        reload();
        return d;
    }
    if (dy == 0 && dx == 0)
        return d; // already holding exactly this set

    // Register pitch along each axis: the coordinate spacing between
    // adjacent registers. A translation is shiftable only by whole
    // register positions.
    int pitch_x =
        cols_ > 1 ? grid_[1].x - grid_[0].x : (dx != 0 ? 0 : 1);
    int pitch_y = rows_ > 1 ? grid_[std::size_t(cols_)].y - grid_[0].y
                            : (dy != 0 ? 0 : 1);
    bool x_ok = dx == 0 || (pitch_x != 0 && dx % pitch_x == 0);
    bool y_ok = dy == 0 || (pitch_y != 0 && dy % pitch_y == 0);
    if (!x_ok || !y_ok) {
        reload();
        return d;
    }
    int steps_x = dx == 0 ? 0 : std::abs(dx / pitch_x);
    int steps_y = dy == 0 ? 0 : std::abs(dy / pitch_y);
    // Each column shift brings in one new column (rows_ loads); each
    // row shift one new row (cols_ loads).
    d.shifts = steps_x + steps_y;
    d.bufferLoads = steps_x * rows_ + steps_y * cols_;
    grid_ = want;
    totalShifts_ += std::uint64_t(d.shifts);
    totalLoads_ += std::uint64_t(d.bufferLoads);
    return d;
}

std::vector<Coord>
zfostDemand(int ty0, int tx0, int rows, int cols, int cy, int cx, int zc,
            int stride, int ky, int kx, int pad)
{
    std::vector<Coord> want;
    want.reserve(std::size_t(rows) * cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            int oy = cy + (ty0 + r) * zc;
            int ox = cx + (tx0 + c) * zc;
            want.push_back(
                {oy * stride + ky - pad, ox * stride + kx - pad});
        }
    return want;
}

} // namespace core
} // namespace ganacc
