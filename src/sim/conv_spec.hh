/**
 * @file
 * The unified convolution-job description every microarchitecture
 * executes.
 *
 * All six GAN computing phases reduce to one generalized convolution
 * over *streamed* operands — the tensors exactly as the hardware sees
 * them, with T-CONV zero-insertion already applied to the input sizes
 * and W-CONV dilation already applied to the kernel sizes:
 *
 *   out(of[,if],oy,ox) = sum_{[if],ky,kx}
 *       in(if, oy*stride+ky-pad, ox*stride+kx-pad) * w(of[,if],ky,kx)
 *
 * The structural-zero patterns (inZeroStride / kZeroStride plus the
 * original dense extents) describe which operand positions are known
 * zeros from the layer geometry alone; the zero-free architectures
 * skip them through address generation, never by inspecting data.
 *
 * fourDimOutput marks W-CONV jobs (Fig. 3): no accumulation across
 * input feature maps, one output plane per (of, if) pair, and the
 * "kernel" is the back-propagated error map (indexed by `of` only).
 */

#ifndef GANACC_SIM_CONV_SPEC_HH
#define GANACC_SIM_CONV_SPEC_HH

#include <string>

#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace sim {

/** A generalized convolution job in streamed form. */
struct ConvSpec
{
    std::string label;

    int nif = 1; ///< input feature maps
    int nof = 1; ///< output feature maps (error maps for W-CONV)
    int ih = 1;  ///< streamed input rows (zero-stuffed size for T-CONV)
    int iw = 1;  ///< streamed input columns
    int kh = 1;  ///< streamed kernel rows (dilated size for W-CONV-D)
    int kw = 1;  ///< streamed kernel columns
    int oh = 1;  ///< output rows (cropped to the true extent)
    int ow = 1;  ///< output columns
    int stride = 1;
    int pad = 0;

    /// Input non-zero only at coordinates that are multiples of this.
    int inZeroStride = 1;
    /// Dense extent of the input before stuffing (rows/cols); -1 if dense.
    int inOrigH = -1;
    int inOrigW = -1;

    /// Kernel non-zero only at coordinates that are multiples of this.
    int kZeroStride = 1;
    int kOrigH = -1;
    int kOrigW = -1;

    /// W-CONV: no accumulation across nif; output is (nof, nif, oh, ow).
    bool fourDimOutput = false;

    /** True when the input at streamed coordinate (y, x) is a
     *  structural zero (stuffing pattern or trailing rows). Does not
     *  include padding (callers bound-check separately). */
    bool inputIsZero(int y, int x) const;

    /** True when kernel position (ky, kx) is a structural zero. */
    bool kernelIsZero(int ky, int kx) const;

    /** Separable per-axis structural-zero tests (the zero patterns of
     *  Fig. 6 are products of per-axis patterns, which is what makes
     *  the parity-class reordering of Fig. 12 possible). */
    bool inputRowZero(int y) const;
    bool inputColZero(int x) const;
    bool kernelRowZero(int ky) const;
    bool kernelColZero(int kx) const;

    /** Dense multiply count if nothing were skipped:
     *  nof * [nif] * oh * ow * kh * kw (always includes nif). */
    std::uint64_t denseMacs() const;

    /** Multiplies with both operands structurally non-zero
     *  (in-bounds); the work an ideal zero-free machine performs. */
    std::uint64_t effectiveMacs() const;

    /** Validate internal consistency; panics on malformed specs. */
    void validate() const;

    std::string describe() const;
};

/**
 * Count output indices t in [t0, t0 + len) whose input coordinate
 * c = t*stride + k - pad is inside [0, extent) and structurally
 * non-zero for the given zero-stride/orig pattern.
 */
int countNonzeroCoords(int t0, int len, int stride, int k, int pad,
                       int extent, int zero_stride, int orig);

/** Random streamed input honouring the spec's zero structure,
 *  shaped (1, nif, ih, iw). */
tensor::Tensor makeStreamedInput(const ConvSpec &spec, util::Rng &rng);

/** Random streamed kernel honouring the zero structure; shaped
 *  (nof, nif, kh, kw), or (nof, 1, kh, kw) for four-dim jobs. */
tensor::Tensor makeStreamedKernel(const ConvSpec &spec, util::Rng &rng);

/**
 * Golden-model execution of a spec: direct nested loops. Output is
 * (1, nof, oh, ow), or (nof, nif, oh, ow) for four-dim jobs.
 */
tensor::Tensor genericConvRef(const ConvSpec &spec,
                              const tensor::Tensor &in,
                              const tensor::Tensor &w);

/** Shape the output tensor for a spec. */
tensor::Tensor makeOutputTensor(const ConvSpec &spec);

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_CONV_SPEC_HH
