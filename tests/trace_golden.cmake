# CTest driver for the Chrome-trace golden check: ganacc_report's
# D-update event trace for the MNIST GAN must byte-compare against the
# committed golden. Timestamps are simulated cycles, so the file is
# fully deterministic; any drift in the obs::writeChromeTraceJson
# emitter (field order, escaping, footer) or in the event-sim schedule
# itself fails here. Variables: TOOL (ganacc_report binary), GOLDEN
# (committed trace), OUT (scratch output path).

execute_process(
    COMMAND ${TOOL} --model mnist --trace ${OUT}
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ganacc_report exited with status ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "Chrome trace diverges from ${GOLDEN}; inspect ${OUT} and, if "
        "the change is intended, regenerate the golden with: "
        "ganacc_report --model mnist --trace <golden>")
endif()
