/**
 * @file
 * Dense rank-4 float tensor.
 *
 * This is the single data container shared by the reference NN math
 * (nn/), the GAN training substrate (gan/) and the functional side of
 * every microarchitecture simulator (sim/, core/). Keeping one layout
 * lets the golden-model cross-checks compare buffers element-for-
 * element.
 */

#ifndef GANACC_TENSOR_TENSOR_HH
#define GANACC_TENSOR_TENSOR_HH

#include <cmath>
#include <cstddef>
#include <vector>

#include "tensor/shape.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ganacc {
namespace tensor {

/** Row-major dense rank-4 tensor of floats. */
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(const Shape4 &shape, float fill_value = 0.0f)
        : shape_(shape), data_(shape.numel(), fill_value)
    {
    }

    Tensor(int d0, int d1, int d2, int d3, float fill_value = 0.0f)
        : Tensor(Shape4(d0, d1, d2, d3), fill_value)
    {
    }

    const Shape4 &shape() const { return shape_; }
    std::size_t numel() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(int i0, int i1, int i2, int i3)
    {
        return data_[checkedOffset(i0, i1, i2, i3)];
    }

    float
    at(int i0, int i1, int i2, int i3) const
    {
        return data_[checkedOffset(i0, i1, i2, i3)];
    }

    /** Unchecked fast-path accessors for inner simulator loops. */
    float &
    ref(int i0, int i1, int i2, int i3)
    {
        return data_[shape_.offset(i0, i1, i2, i3)];
    }

    float
    get(int i0, int i1, int i2, int i3) const
    {
        return data_[shape_.offset(i0, i1, i2, i3)];
    }

    /**
     * Read with zero padding: out-of-range spatial coordinates return
     * 0. The leading two indices must be in range.
     */
    float
    getPadded(int i0, int i1, int i2, int i3) const
    {
        if (i2 < 0 || i2 >= shape_.d2 || i3 < 0 || i3 >= shape_.d3)
            return 0.0f;
        return get(i0, i1, i2, i3);
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    void
    fill(float v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    /** Fill i.i.d. uniform in [lo, hi) from the given RNG. */
    void
    fillUniform(util::Rng &rng, float lo = -1.0f, float hi = 1.0f)
    {
        for (auto &v : data_)
            v = rng.uniformf(lo, hi);
    }

    /** Fill i.i.d. Gaussian from the given RNG. */
    void
    fillGaussian(util::Rng &rng, float mean = 0.0f, float stddev = 1.0f)
    {
        for (auto &v : data_)
            v = float(rng.gaussian(mean, stddev));
    }

    /** Element-wise in-place scale. */
    void
    scale(float s)
    {
        for (auto &v : data_)
            v *= s;
    }

    /** Element-wise in-place add of another tensor (shapes must match). */
    void
    add(const Tensor &o)
    {
        GANACC_ASSERT(shape_ == o.shape_, "tensor add shape mismatch ",
                      shape_.str(), " vs ", o.shape_.str());
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] += o.data_[i];
    }

    /** Element-wise in-place axpy: this += a * x. */
    void
    axpy(float a, const Tensor &x)
    {
        GANACC_ASSERT(shape_ == x.shape_, "tensor axpy shape mismatch");
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] += a * x.data_[i];
    }

    /** Sum of all elements. */
    double
    sum() const
    {
        double s = 0.0;
        for (auto v : data_)
            s += v;
        return s;
    }

    /** Largest absolute element. */
    float
    absMax() const
    {
        float m = 0.0f;
        for (auto v : data_)
            m = std::max(m, std::fabs(v));
        return m;
    }

    /** Number of exactly-zero elements. */
    std::size_t
    countZeros() const
    {
        std::size_t n = 0;
        for (auto v : data_)
            if (v == 0.0f)
                ++n;
        return n;
    }

    bool operator==(const Tensor &) const = default;

  private:
    std::size_t
    checkedOffset(int i0, int i1, int i2, int i3) const
    {
        GANACC_ASSERT(i0 >= 0 && i0 < shape_.d0 && i1 >= 0 &&
                          i1 < shape_.d1 && i2 >= 0 && i2 < shape_.d2 &&
                          i3 >= 0 && i3 < shape_.d3,
                      "index (", i0, ",", i1, ",", i2, ",", i3,
                      ") out of range for ", shape_.str());
        return shape_.offset(i0, i1, i2, i3);
    }

    Shape4 shape_;
    std::vector<float> data_;
};

/**
 * Maximum absolute difference between two same-shape tensors.
 */
inline float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    GANACC_ASSERT(a.shape() == b.shape(), "maxAbsDiff shape mismatch ",
                  a.shape().str(), " vs ", b.shape().str());
    float m = 0.0f;
    for (std::size_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
    return m;
}

/**
 * True when every element differs by at most tol (plus a relative
 * component scaled by the larger magnitude).
 */
inline bool
approxEqual(const Tensor &a, const Tensor &b, float tol = 1e-4f)
{
    if (a.shape() != b.shape())
        return false;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        float x = a.data()[i], y = b.data()[i];
        float allowed =
            tol * (1.0f + std::max(std::fabs(x), std::fabs(y)));
        if (std::fabs(x - y) > allowed)
            return false;
    }
    return true;
}

} // namespace tensor
} // namespace ganacc

#endif // GANACC_TENSOR_TENSOR_HH
