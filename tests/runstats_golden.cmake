# CTest driver for the RunStats-golden check: dumps the Table V
# (family x bank x architecture) RunStats matrix as JSON lines and
# byte-compares it against the committed golden. Any unintended change
# to a dataflow's schedule accounting — including a fault-injection
# hook that perturbs the no-fault path — fails this test. Variables:
# TOOL (ganacc-runstats binary), GOLDEN (committed dump), OUT (scratch
# output path).

execute_process(
    COMMAND ${TOOL} --model dcgan
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ganacc-runstats exited with status ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "RunStats diverge from ${GOLDEN}; inspect ${OUT} and, if the "
        "change is intended, regenerate the golden with: "
        "ganacc-runstats --model dcgan")
endif()
