/**
 * @file
 * Protocol round-trip tests: fuzzed requests and responses must
 * survive encode -> decode -> encode byte-identically, counters must
 * round-trip bit-exactly (including values above 2^53, where a
 * double-based JSON layer would silently round), and the content key
 * must depend on exactly the inputs that shape a simulation — not on
 * the job label, and not on anything else it should ignore.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/unrolling.hh"
#include "obs/trace.hh"
#include "serve/protocol.hh"
#include "sim/conv_spec.hh"
#include "sim/json.hh"
#include "stats_helpers.hh"
#include "tensor/shape.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using util::Rng;

/** Random legal-ish spec over the three GAN convolution patterns
 *  (the protocol must round-trip any spec, legal or not, so this
 *  generator only needs diversity, not legality). */
sim::ConvSpec
randomSpec(Rng &rng)
{
    sim::ConvSpec s;
    s.label = "fuzz-" + std::to_string(rng.uniformInt(0, 1 << 20));
    s.nif = rng.uniformInt(1, 64);
    s.nof = rng.uniformInt(1, 64);
    s.ih = s.iw = rng.uniformInt(5, 64);
    s.kh = s.kw = rng.uniformInt(1, 5);
    s.stride = rng.uniformInt(1, 3);
    s.pad = rng.uniformInt(0, 2);
    s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
    s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    const int kind = rng.uniformInt(0, 2);
    if (kind == 1) {
        s.inZeroStride = 2;
        s.inOrigH = s.inOrigW = (s.ih + 1) / 2;
    } else if (kind == 2) {
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = (s.kh + 1) / 2;
        s.fourDimOutput = true;
    }
    return s;
}

sim::Unroll
randomUnroll(Rng &rng)
{
    sim::Unroll u;
    u.pIf = rng.uniformInt(1, 8);
    u.pOf = rng.uniformInt(1, 120);
    u.pKx = rng.uniformInt(1, 5);
    u.pKy = rng.uniformInt(1, 5);
    u.pOx = rng.uniformInt(1, 8);
    u.pOy = rng.uniformInt(1, 8);
    return u;
}

core::ArchKind
randomKind(Rng &rng)
{
    const auto kinds = core::allArchKinds();
    return kinds[std::size_t(
        rng.uniformInt(0, int(kinds.size()) - 1))];
}

TEST(ServeProtocol, FuzzedSpecRequestsRoundTripBitExact)
{
    Rng rng(0x5E7EC0DE);
    for (int i = 0; i < 200; ++i) {
        serve::Request req;
        req.id = std::uint64_t(rng.uniformInt(0, 1 << 30));
        req.kind = randomKind(rng);
        req.unroll = randomUnroll(rng);
        req.hasSpec = true;
        req.spec = randomSpec(rng);

        const std::string wire = serve::encodeRequest(req);
        const serve::Request back = serve::decodeRequest(wire);
        // Byte-identical re-encoding is the strongest round-trip
        // statement the canonical encoding can make.
        EXPECT_EQ(serve::encodeRequest(back), wire);
        EXPECT_EQ(back.id, req.id);
        EXPECT_EQ(back.kind, req.kind);
        EXPECT_TRUE(back.hasSpec);
        EXPECT_EQ(sim::toJson(back.spec), sim::toJson(req.spec));
        EXPECT_EQ(sim::toJson(back.unroll), sim::toJson(req.unroll));
    }
}

TEST(ServeProtocol, NetworkRequestsRoundTrip)
{
    Rng rng(0xBEEF);
    for (const char *model : {"dcgan", "mnist-gan", "cgan"}) {
        for (const char *family : {"D", "G", "Dw", "Gw"}) {
            serve::Request req;
            req.id = std::uint64_t(rng.uniformInt(1, 1000));
            req.kind = randomKind(rng);
            req.unroll = randomUnroll(rng);
            req.model = model;
            req.family = family;
            const std::string wire = serve::encodeRequest(req);
            const serve::Request back = serve::decodeRequest(wire);
            EXPECT_EQ(serve::encodeRequest(back), wire);
            EXPECT_FALSE(back.hasSpec);
            EXPECT_EQ(back.model, model);
            EXPECT_EQ(back.family, family);
        }
    }
}

TEST(ServeProtocol, ResponsesRoundTripLargeCountersBitExact)
{
    Rng rng(0xCAFE);
    for (int i = 0; i < 100; ++i) {
        serve::Response rsp;
        rsp.id = std::uint64_t(rng.uniformInt(0, 1 << 30));
        rsp.ok = true;
        rsp.simVersion = serve::simulatorVersion();
        rsp.arch = core::archKindName(randomKind(rng));
        rsp.unroll = randomUnroll(rng);
        rsp.cache = (i % 2) ? "mem" : "sim";
        rsp.latencyUs = std::uint64_t(rng.uniformInt(0, 1 << 30));
        // Counters above 2^53: a double-typed JSON layer would round
        // these; the plain-integer path must not.
        rsp.stats.cycles = (1ULL << 53) + 1 + std::uint64_t(i);
        rsp.stats.nPes = 1200;
        rsp.stats.effectiveMacs = 0xFFFFFFFFFFFFFFFFULL - 7;
        rsp.stats.ineffectualMacs = (1ULL << 60) + 3;
        rsp.stats.idlePeSlots = std::uint64_t(rng.uniformInt(0, 1 << 30));
        rsp.stats.weightLoads = (1ULL << 54) + 5;

        const std::string wire = serve::encodeResponse(rsp);
        const serve::Response back = serve::decodeResponse(wire);
        EXPECT_EQ(serve::encodeResponse(back), wire);
        tests::expectStatsEqual(back.stats, rsp.stats,
                                "response round-trip " +
                                    std::to_string(i));
        EXPECT_EQ(back.latencyUs, rsp.latencyUs);
    }
}

TEST(ServeProtocol, ErrorResponsesRoundTrip)
{
    const serve::Response rsp =
        serve::errorResponse(42, "spec: oh must be >= 1");
    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_EQ(back.id, 42u);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "spec: oh must be >= 1");
    EXPECT_EQ(serve::encodeResponse(back), wire);
}

TEST(ServeProtocol, MalformedLinesThrow)
{
    EXPECT_THROW(serve::decodeRequest("not json"),
                 util::FatalError);
    EXPECT_THROW(serve::decodeRequest("{}"), util::FatalError);
    // Wrong protocol version.
    EXPECT_THROW(
        serve::decodeRequest(
            R"({"v":99,"id":1,"arch":"NLR","unroll":{"pIf":1,"pOf":1,)"
            R"("pKx":1,"pKy":1,"pOx":1,"pOy":1},"model":"dcgan",)"
            R"("family":"D"})"),
        util::FatalError);
    // Unknown architecture.
    EXPECT_THROW(
        serve::decodeRequest(
            R"({"v":1,"id":1,"arch":"TPU","unroll":{"pIf":1,"pOf":1,)"
            R"("pKx":1,"pKy":1,"pOx":1,"pOy":1},"model":"dcgan",)"
            R"("family":"D"})"),
        util::FatalError);
    // Both payloads at once.
    serve::Request req;
    req.id = 1;
    req.kind = core::ArchKind::NLR;
    req.hasSpec = true;
    req.spec.label = "x";
    std::string wire = serve::encodeRequest(req);
    wire.pop_back(); // strip '}'
    wire += R"(,"model":"dcgan","family":"D"})";
    EXPECT_THROW(serve::decodeRequest(wire), util::FatalError);
}

TEST(ServeProtocol, ContentKeyIgnoresLabelOnly)
{
    Rng rng(0x12345);
    const core::ArchKind kind = core::ArchKind::ZFOST;
    const sim::Unroll u = randomUnroll(rng);
    sim::ConvSpec a = randomSpec(rng);
    sim::ConvSpec b = a;
    b.label = "a different name for the same shape";
    EXPECT_EQ(serve::contentKey(kind, u, a),
              serve::contentKey(kind, u, b));

    // Every shaping input must move the key.
    sim::ConvSpec c = a;
    c.nof += 1;
    EXPECT_NE(serve::contentKey(kind, u, a),
              serve::contentKey(kind, u, c));
    sim::Unroll u2 = u;
    u2.pOf += 1;
    EXPECT_NE(serve::contentKey(kind, u, a),
              serve::contentKey(kind, u2, a));
    EXPECT_NE(serve::contentKey(core::ArchKind::OST, u, a),
              serve::contentKey(kind, u, a));
    EXPECT_NE(serve::contentKey(kind, u, a, "ganacc-0.0.0"),
              serve::contentKey(kind, u, a));

    // Shape of the key: 16 lowercase hex digits.
    const std::string key = serve::contentKey(kind, u, a);
    EXPECT_EQ(key.size(), 16u);
    for (char ch : key)
        EXPECT_TRUE((ch >= '0' && ch <= '9') ||
                    (ch >= 'a' && ch <= 'f'))
            << key;
}

TEST(ServeProtocol, CanonicalJsonIsParseableAndStable)
{
    Rng rng(0x777);
    for (int i = 0; i < 50; ++i) {
        const sim::ConvSpec s = randomSpec(rng);
        const std::string text = sim::toJson(s);
        const auto doc = util::json::parse(text);
        const sim::ConvSpec back = sim::convSpecFromJson(doc);
        EXPECT_EQ(sim::toJson(back), text);

        // The shape key is the same encoding with the label cleared.
        sim::ConvSpec unlabeled = s;
        unlabeled.label.clear();
        EXPECT_EQ(sim::specShapeKey(s), sim::toJson(unlabeled));
    }
}

TEST(ServeProtocol, StatsProbeRequestsRoundTripBitExact)
{
    Rng rng(0x57A7);
    for (int i = 0; i < 100; ++i) {
        serve::Request req;
        req.id = std::uint64_t(rng.uniformInt(0, 1 << 30));
        req.statsProbe = true;
        const std::string wire = serve::encodeRequest(req);
        EXPECT_EQ(wire, "{\"v\":1,\"id\":" + std::to_string(req.id) +
                            ",\"stats\":true}");
        const serve::Request back = serve::decodeRequest(wire);
        EXPECT_TRUE(back.statsProbe);
        EXPECT_EQ(back.id, req.id);
        EXPECT_FALSE(back.hasSpec);
        EXPECT_EQ(serve::encodeRequest(back), wire);
    }
}

TEST(ServeProtocol, StatsProbeRejectsMalformedForms)
{
    // "stats" must be literally true.
    EXPECT_THROW(
        serve::decodeRequest(R"({"v":1,"id":1,"stats":false})"),
        util::FatalError);
    // A probe carries no simulation payload.
    EXPECT_THROW(serve::decodeRequest(
                     R"({"v":1,"id":1,"stats":true,"model":"dcgan",)"
                     R"("family":"D","arch":"NLR"})"),
                 util::FatalError);
    // Version checking still applies to probes.
    EXPECT_THROW(
        serve::decodeRequest(R"({"v":9,"id":1,"stats":true})"),
        util::FatalError);
}

TEST(ServeProtocol, TelemetryResponsesRoundTripBitExact)
{
    // The telemetry payload is canonical JSON object text (what
    // Engine::telemetryJson emits); build one the same way so the
    // encode -> decode -> encode comparison is byte-exact.
    util::json::Object counters;
    counters.set("ganacc_serve_requests_total",
                 util::json::Value(std::uint64_t(7)));
    counters.set("ganacc_cache_mem_hits_total",
                 util::json::Value((std::uint64_t(1) << 53) + 1));
    util::json::Object root;
    root.set("counters", util::json::Value(std::move(counters)));

    serve::Response rsp;
    rsp.id = 9;
    rsp.ok = true;
    rsp.simVersion = serve::simulatorVersion();
    rsp.telemetry = util::json::Value(std::move(root)).dump();

    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.telemetry, rsp.telemetry);
    EXPECT_EQ(serve::encodeResponse(back), wire);

    // Counters above 2^53 survive (integer JSON path, not doubles).
    const auto doc = util::json::parse(back.telemetry);
    EXPECT_EQ(doc.asObject()
                  .at("counters")
                  .asObject()
                  .at("ganacc_cache_mem_hits_total")
                  .asUint64(),
              (std::uint64_t(1) << 53) + 1);

    // A simulation response (empty telemetry) must not gain the key.
    serve::Response plain = serve::errorResponse(1, "x");
    EXPECT_EQ(serve::encodeResponse(plain).find("telemetry"),
              std::string::npos);
}

TEST(ServeProtocol, FleetProbeRequestsRoundTripBitExact)
{
    serve::Request req;
    req.id = 41;
    req.fleetProbe = true;
    const std::string wire = serve::encodeRequest(req);
    EXPECT_EQ(wire, "{\"v\":1,\"id\":41,\"fleet\":true}");
    const serve::Request back = serve::decodeRequest(wire);
    EXPECT_TRUE(back.fleetProbe);
    EXPECT_FALSE(back.statsProbe);
    EXPECT_FALSE(back.hasSpec);
    EXPECT_EQ(serve::encodeRequest(back), wire);
}

TEST(ServeProtocol, FleetResponsesCarryTheShardMapVerbatim)
{
    serve::Response rsp;
    rsp.id = 41;
    rsp.ok = true;
    rsp.simVersion = serve::simulatorVersion();
    rsp.fleet = "{\"shards\":[\"h1:1\",\"h2:2\"],\"vnodes\":64,"
                "\"rf\":2,\"self\":0}";
    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.fleet, rsp.fleet);
    EXPECT_EQ(serve::encodeResponse(back), wire);

    // Non-fleet responses must not gain the key.
    EXPECT_EQ(serve::encodeResponse(serve::errorResponse(1, "x"))
                  .find("fleet"),
              std::string::npos);
}

TEST(ServeProtocol, PutRequestsRoundTripBitExact)
{
    Rng rng(0x907);
    for (int i = 0; i < 100; ++i) {
        serve::Request req;
        req.id = std::uint64_t(rng.uniformInt(0, 1 << 30));
        req.kind = randomKind(rng);
        req.unroll = randomUnroll(rng);
        req.spec = randomSpec(rng);
        req.put = true;
        req.putSimVersion = serve::simulatorVersion();
        req.putStats.cycles = (std::uint64_t(1) << 53) + 1;
        req.putStats.effectiveMacs =
            std::uint64_t(rng.uniformInt(0, 1 << 30));
        req.putStats.weightLoads =
            std::uint64_t(rng.uniformInt(0, 1 << 30));

        const std::string wire = serve::encodeRequest(req);
        const serve::Request back = serve::decodeRequest(wire);
        EXPECT_TRUE(back.put);
        EXPECT_TRUE(back.hasSpec) << "a put names its triple";
        EXPECT_EQ(back.id, req.id);
        EXPECT_EQ(back.kind, req.kind);
        EXPECT_EQ(back.putSimVersion, req.putSimVersion);
        EXPECT_EQ(back.putStats.cycles, req.putStats.cycles);
        EXPECT_EQ(back.putStats.effectiveMacs,
                  req.putStats.effectiveMacs);
        EXPECT_EQ(serve::encodeRequest(back), wire);
    }
}

TEST(ServeProtocol, PutAckResponsesRoundTripBitExact)
{
    serve::Response rsp;
    rsp.id = 12;
    rsp.ok = true;
    rsp.simVersion = serve::simulatorVersion();
    rsp.arch = "NLR";
    rsp.cache = "put";
    rsp.stats.cycles = 1234;
    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.cache, "put");
    EXPECT_EQ(back.stats.cycles, 1234u);
    EXPECT_EQ(serve::encodeResponse(back), wire);
}

TEST(ServeProtocol, MetricsProbeRequestsRoundTripBitExact)
{
    serve::Request req;
    req.id = 51;
    req.metricsProbe = true;
    const std::string wire = serve::encodeRequest(req);
    EXPECT_EQ(wire, "{\"v\":1,\"id\":51,\"metrics\":true}");
    const serve::Request back = serve::decodeRequest(wire);
    EXPECT_TRUE(back.metricsProbe);
    EXPECT_FALSE(back.statsProbe);
    EXPECT_FALSE(back.hasSpec);
    EXPECT_EQ(serve::encodeRequest(back), wire);
}

TEST(ServeProtocol, TraceDrainRequestsRoundTripBitExact)
{
    serve::Request req;
    req.id = 52;
    req.traceDrainProbe = true;
    const std::string wire = serve::encodeRequest(req);
    EXPECT_EQ(wire, "{\"v\":1,\"id\":52,\"trace-drain\":true}");
    const serve::Request back = serve::decodeRequest(wire);
    EXPECT_TRUE(back.traceDrainProbe);
    EXPECT_FALSE(back.metricsProbe);
    EXPECT_FALSE(back.hasSpec);
    EXPECT_EQ(serve::encodeRequest(back), wire);
}

TEST(ServeProtocol, LiveCollectionProbesRejectMalformedForms)
{
    EXPECT_THROW(
        serve::decodeRequest(R"({"v":1,"id":1,"metrics":false})"),
        util::FatalError);
    EXPECT_THROW(serve::decodeRequest(
                     R"({"v":1,"id":1,"metrics":true,"model":"dcgan",)"
                     R"("family":"D","arch":"NLR"})"),
                 util::FatalError);
    EXPECT_THROW(
        serve::decodeRequest(R"({"v":1,"id":1,"trace-drain":false})"),
        util::FatalError);
    EXPECT_THROW(
        serve::decodeRequest(
            R"({"v":1,"id":1,"trace-drain":true,"model":"dcgan",)"
            R"("family":"D","arch":"NLR"})"),
        util::FatalError);
}

TEST(ServeProtocol, TraceContextRidesAnyRequestForm)
{
    const std::string ctx =
        "0123456789abcdef0123456789abcdef-00000000000000aa";

    serve::Request probe;
    probe.id = 7;
    probe.statsProbe = true;
    probe.trace = ctx;
    const std::string wire = serve::encodeRequest(probe);
    EXPECT_EQ(wire, "{\"v\":1,\"id\":7,\"trace\":\"" + ctx +
                        "\",\"stats\":true}");
    const serve::Request back = serve::decodeRequest(wire);
    EXPECT_EQ(back.trace, ctx);
    EXPECT_TRUE(back.statsProbe);
    EXPECT_EQ(serve::encodeRequest(back), wire);

    // Simulation requests carry it too, and only when set: with an
    // empty context the field never appears on the wire, so traced
    // and untraced streams replay byte-identically.
    Rng rng(0x7247);
    serve::Request sim;
    sim.id = 8;
    sim.kind = randomKind(rng);
    sim.unroll = randomUnroll(rng);
    sim.hasSpec = true;
    sim.spec = randomSpec(rng);
    const std::string untraced = serve::encodeRequest(sim);
    EXPECT_EQ(untraced.find("trace"), std::string::npos);
    sim.trace = ctx;
    const std::string traced = serve::encodeRequest(sim);
    const serve::Request simBack = serve::decodeRequest(traced);
    EXPECT_EQ(simBack.trace, ctx);
    EXPECT_EQ(serve::encodeRequest(simBack), traced);
    serve::Request stripped = simBack;
    stripped.trace.clear();
    EXPECT_EQ(serve::encodeRequest(stripped), untraced);
}

TEST(ServeProtocol, MetricsResponsesCarryPrometheusTextAsAString)
{
    serve::Response rsp;
    rsp.id = 51;
    rsp.ok = true;
    rsp.simVersion = serve::simulatorVersion();
    rsp.metricsText = "# TYPE a_total counter\na_total 3\n"
                      "b_us_bucket{le=\"1\"} 2 # "
                      "{trace_id=\"00ff\"} 1\n";
    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.metricsText, rsp.metricsText);
    EXPECT_EQ(serve::encodeResponse(back), wire);

    EXPECT_EQ(serve::encodeResponse(serve::errorResponse(1, "x"))
                  .find("metrics"),
              std::string::npos);
}

TEST(ServeProtocol, SpanBatchCodecRoundTripsBitExact)
{
    std::vector<obs::TraceEvent> events(2);
    events[0].name = "serve.simulate";
    events[0].cat = "serve";
    events[0].tid = 3;
    events[0].ts = 100;
    events[0].dur = 42;
    events[0].args = "{\"trace\":\"00ff\",\"span\":\"0a\","
                     "\"parent\":\"0b\"}";
    events[1].name = "with \"quotes\" and \\ backslash";
    events[1].ts = 7;
    events[1].dur = 1;

    const std::string batch = serve::encodeSpanBatch(events);
    const std::vector<obs::TraceEvent> back =
        serve::decodeSpanBatch(batch);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, events[0].name);
    EXPECT_EQ(back[0].cat, events[0].cat);
    EXPECT_EQ(back[0].tid, events[0].tid);
    EXPECT_EQ(back[0].ts, events[0].ts);
    EXPECT_EQ(back[0].dur, events[0].dur);
    EXPECT_EQ(back[0].ph, 'X');
    EXPECT_EQ(back[1].name, events[1].name);
    EXPECT_EQ(serve::encodeSpanBatch(back), batch);

    // Args survive as canonical JSON the merge step can re-dump.
    const auto doc = util::json::parse(batch);
    EXPECT_EQ(doc.asObject()
                  .at("events")
                  .asArray()[0]
                  .asObject()
                  .at("args")
                  .asObject()
                  .at("span")
                  .asString(),
              "0a");

    // The empty batch is the pinned no-spans drain payload.
    EXPECT_EQ(serve::encodeSpanBatch({}), "{\"events\":[]}");
    EXPECT_TRUE(serve::decodeSpanBatch("{\"events\":[]}").empty());
    EXPECT_THROW(serve::decodeSpanBatch("nope"), util::FatalError);
    EXPECT_THROW(serve::decodeSpanBatch("{}"), util::FatalError);
}

TEST(ServeProtocol, SpanResponsesCarryTheBatchVerbatim)
{
    serve::Response rsp;
    rsp.id = 52;
    rsp.ok = true;
    rsp.simVersion = serve::simulatorVersion();
    std::vector<obs::TraceEvent> events(1);
    events[0].name = "serve.request";
    events[0].ts = 5;
    events[0].dur = 9;
    rsp.spans = serve::encodeSpanBatch(events);
    const std::string wire = serve::encodeResponse(rsp);
    const serve::Response back = serve::decodeResponse(wire);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.spans, rsp.spans);
    EXPECT_EQ(serve::encodeResponse(back), wire);
    ASSERT_EQ(serve::decodeSpanBatch(back.spans).size(), 1u);

    EXPECT_EQ(serve::encodeResponse(serve::errorResponse(1, "x"))
                  .find("spans"),
              std::string::npos);
}

} // namespace
