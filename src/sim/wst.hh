/**
 * @file
 * WST — the traditional Weight-STationary architecture (Fig. 5(b),
 * NeuFlow-style).
 *
 * A P_ky x P_kx tile of kernel weights is pinned to the PE array
 * (replicated across P_of channels); every input neuron of the layer
 * is broadcast to all PEs, one per cycle, and each PE accumulates
 * into whichever output neuron its (input, weight) pair feeds.
 *
 * Weaknesses on GAN (Section III-C2): with down-sampling convolutions
 * (S-CONV, and the huge dilated kernels of W-CONV) most streamed
 * inputs align with few or no resident weights, so PE utilization
 * collapses to Noy*Nox / Niy*Nix (eq. 5); streamed zero inputs and
 * resident zero weights still burn full cycles.
 */

#ifndef GANACC_SIM_WST_HH
#define GANACC_SIM_WST_HH

#include "sim/arch.hh"

namespace ganacc {
namespace sim {

/** Traditional weight-stationary array. */
class Wst : public Architecture
{
  public:
    explicit Wst(Unroll unroll) : Architecture("WST", unroll) {}

    int
    numPes() const override
    {
        return unroll_.pKx * unroll_.pKy * unroll_.pOf;
    }

  protected:
    RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                   const tensor::Tensor *w,
                   tensor::Tensor *out) const override;

    bool fastStats(const ConvSpec &spec, RunStats &st) const override;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_WST_HH
