/**
 * @file
 * The versioned JSON-lines request/response protocol of the
 * simulation service.
 *
 * One request per line, one response per line, same order. A request
 * names an architecture kind, an unrolling, and either a single
 * ConvSpec or a (model, phase-family) pair whose per-layer jobs are
 * simulated and accumulated. A response carries the canonical
 * sim::RunStats (see sim/json.hh), provenance (protocol version,
 * simulator version stamp, architecture, unrolling), which cache tier
 * satisfied it, and the service-side latency.
 *
 *   {"v":1,"id":7,"arch":"ZFOST","unroll":{...},"spec":{...}}
 *   {"v":1,"id":8,"arch":"ZFWST","unroll":{...},
 *    "model":"dcgan","family":"Gw"}
 *   {"v":1,"id":12,"stats":true}
 *
 *   {"v":1,"id":7,"ok":true,"sim":"ganacc-1.0.0","arch":"ZFOST",
 *    "unroll":{...},"cache":"sim","latencyUs":412,"stats":{...}}
 *   {"v":1,"id":9,"ok":false,"error":"..."}
 *   {"v":1,"id":12,"ok":true,"sim":"ganacc-1.0.0",
 *    "telemetry":{"counters":{...},"gauges":{...},...}}
 *
 * The third request form is the telemetry probe: a live daemon
 * answers with a snapshot of its metric registry (cache and store
 * tiers, queue occupancy, request-latency histogram — see
 * docs/observability.md) without touching the simulation path.
 *
 * Requests with an unknown protocol version, unknown architecture or
 * malformed JSON produce an ok:false response carrying the parse
 * error — the stream keeps flowing; one bad line never kills the
 * daemon. Responses are bit-identical to direct in-process simulation
 * because the counters are integers end to end.
 */

#ifndef GANACC_SERVE_PROTOCOL_HH
#define GANACC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "core/unrolling.hh"
#include "sim/conv_spec.hh"
#include "sim/json.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace serve {

/** Wire-format generation; bump on incompatible schema changes. */
inline constexpr int kProtocolVersion = 1;

/**
 * The exact error text of a shed request. A daemon running with
 * admission shedding (fleet shards, --shed) answers with this instead
 * of blocking when its bounded queue is full; fleet::Router retries
 * with backoff on it. Pinned by tests — treat like the malformed-frame
 * table, do not rephrase.
 */
inline constexpr const char *kOverloadedError =
    "overloaded: admission queue full, retry with backoff";

/**
 * The simulator-version stamp written into every response and every
 * result-store entry. Bump the suffix whenever a change can alter any
 * counter of any cycle walk: stale store entries then self-invalidate
 * (stamp mismatch reads as a miss) instead of serving wrong numbers.
 */
const std::string &simulatorVersion();

/** One simulation request. */
struct Request
{
    std::uint64_t id = 0;
    core::ArchKind kind = core::ArchKind::NLR;
    sim::Unroll unroll;

    /// Telemetry probe ({"stats":true}): carries no simulation
    /// payload; the daemon answers with its metric snapshot.
    bool statsProbe = false;

    /// Fleet-topology probe ({"fleet":true}): the daemon answers with
    /// its shard map (see fleet/topology.hh) so a client can bootstrap
    /// a whole-fleet view from any one shard address.
    bool fleetProbe = false;

    /// Replication write ({"put":true,...,"result":{...},"sim":"..."}):
    /// carries a finished RunStats for (arch, unroll, spec); the
    /// daemon inserts it into its cache tiers without simulating and
    /// answers with cache:"put". fleet::Router uses this to copy
    /// freshly simulated results to the other replicas of a key.
    bool put = false;
    sim::RunStats putStats;    ///< the result being replicated
    std::string putSimVersion; ///< stamp the result was computed under

    /// Otherwise exactly one of the two payloads is set:
    bool hasSpec = false;
    sim::ConvSpec spec; ///< single-job request
    std::string model;  ///< network request: model name…
    std::string family; ///< …plus phase family (D, G, Dw, Gw)
};

/** One service response. */
struct Response
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string error; ///< set when !ok

    std::string simVersion; ///< provenance: simulator stamp
    std::string arch;       ///< provenance: architecture name
    sim::Unroll unroll;     ///< provenance: unrolling executed
    sim::RunStats stats;
    /// "mem" | "disk" | "sim" | "dup" (coalesced into an identical
    /// in-flight request by the single-flight layer) | "put"
    /// (replication write acknowledged).
    std::string cache;
    std::uint64_t latencyUs = 0;

    /// Stats-probe responses only: the metric snapshot as canonical
    /// JSON object text (empty for simulation responses).
    std::string telemetry;

    /// Fleet-probe responses only: the shard map as canonical JSON
    /// object text (opaque to serve/; decoded by fleet/topology.hh).
    std::string fleet;
};

/** Canonical one-line encodings (no trailing newline). */
std::string encodeRequest(const Request &req);
std::string encodeResponse(const Response &rsp);

/** Parse one line; throws util::FatalError on malformed input. */
Request decodeRequest(const std::string &line);
Response decodeResponse(const std::string &line);

/** An ok:false response echoing the request id. */
Response errorResponse(std::uint64_t id, const std::string &message);

/**
 * The content address of a request's simulation: an FNV-1a 64 hash of
 * the canonical (simulator version, kind, unrolling, shape) encoding,
 * as 16 lowercase hex digits. Single-flight dedupe and the result
 * store both key on this.
 */
std::string contentKey(core::ArchKind kind, const sim::Unroll &u,
                       const sim::ConvSpec &spec,
                       const std::string &version = simulatorVersion());

/** FNV-1a 64-bit hash of a byte string. */
std::uint64_t fnv1a64(const std::string &bytes);

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_PROTOCOL_HH
