/**
 * @file
 * Closed-form performance bounds — the checker face of the fast-path
 * engine.
 *
 * The per-dataflow derivations used to live here; PR 6 promoted them
 * to sim/closed_form.{hh,cc} so Architecture::run() can use them as
 * its timing-only fast path. This translation unit keeps the
 * verify-level API: the ArchKind switch (with the default design
 * knobs makeArch() configures — ZFOST reordered weight feed, NLR zero
 * skipping) and the GA-BOUNDS-DIVERGE counter-by-counter cross-check.
 */

#include "verify/static_bounds.hh"

#include <sstream>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace verify {

using core::ArchKind;
using sim::ConvSpec;
using sim::RunStats;
using sim::Unroll;

bool
staticBoundsSupported(ArchKind kind)
{
    switch (kind) {
      case ArchKind::NLR:
      case ArchKind::WST:
      case ArchKind::OST:
      case ArchKind::ZFOST:
      case ArchKind::ZFWST:
        return true;
    }
    return false;
}

RunStats
staticRunStats(ArchKind kind, const Unroll &unroll, const ConvSpec &spec)
{
    spec.validate();
    switch (kind) {
      case ArchKind::NLR:
        return sim::nlrClosedForm(unroll, spec, /*zero_skip=*/true);
      case ArchKind::WST:
        return sim::wstClosedForm(unroll, spec);
      case ArchKind::OST:
        return sim::ostClosedForm(unroll, spec);
      case ArchKind::ZFOST:
        return sim::zfostClosedForm(unroll, spec,
                                    /*reordered_feed=*/true);
      case ArchKind::ZFWST:
        return sim::zfwstClosedForm(unroll, spec);
    }
    util::panic("unknown arch kind");
}

bool
checkBoundsAgainstSim(ArchKind kind, const Unroll &unroll,
                      const ConvSpec &spec, const RunStats &simulated,
                      Report &report)
{
    RunStats expect = staticRunStats(kind, unroll, spec);
    const std::string where =
        core::archKindName(kind) + " " + spec.label;
    bool agree = true;
    auto check = [&](const char *name, std::uint64_t stat,
                     std::uint64_t simv) {
        if (stat == simv)
            return;
        agree = false;
        std::ostringstream os;
        os << name << ": closed form says " << stat
           << " but the cycle walk counted " << simv
           << " (one of the two derivations is buggy)";
        report.error(codes::kBoundsDiverge, where, os.str());
    };
    check("cycles", expect.cycles, simulated.cycles);
    check("nPes", expect.nPes, simulated.nPes);
    check("effectiveMacs", expect.effectiveMacs, simulated.effectiveMacs);
    check("ineffectualMacs", expect.ineffectualMacs,
          simulated.ineffectualMacs);
    check("idlePeSlots", expect.idlePeSlots, simulated.idlePeSlots);
    check("weightLoads", expect.weightLoads, simulated.weightLoads);
    check("inputLoads", expect.inputLoads, simulated.inputLoads);
    check("outputReads", expect.outputReads, simulated.outputReads);
    check("outputWrites", expect.outputWrites, simulated.outputWrites);
    return agree;
}

} // namespace verify
} // namespace ganacc
