/**
 * @file
 * Design-space exploration with the public API: sweep off-chip
 * bandwidth and PE budget, derive each point's unrolling (eqs. 7-8 or
 * the exhaustive solver), check it against the FPGA's resources, and
 * report the throughput/resource frontier — the workflow an architect
 * would actually use this library for.
 */

#include <iostream>

#include "core/accelerator.hh"
#include "core/resource_model.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    gan::GanModel dcgan = gan::makeDcgan();

    // 1. Bandwidth sweep: eq. (7) couples DRAM bandwidth to the
    //    sustainable W-bank width, which sizes the whole design.
    std::cout << "Bandwidth-driven sizing (DCGAN, 200 MHz):\n";
    util::Table bw({"DRAM Gbps", "W_Pof", "ST_Pof", "PEs", "GOPS",
                    "samples/s", "fits VCU9P"});
    for (double gbps : {48.0, 96.0, 192.0, 384.0}) {
        core::AcceleratorConfig cfg;
        cfg.offchip.bandwidthBitsPerSec = gbps * 1e9;
        core::GanAccelerator acc(cfg);
        auto rep = acc.evaluate(dcgan);
        bw.addRow(gbps, acc.wPof(), acc.stPof(), acc.totalPes(),
                  rep.gopsDeferred, rep.samplesPerSecond,
                  rep.fitsDevice ? "yes" : "no");
    }
    bw.print(std::cout);

    // 2. PE sweep at fixed bandwidth: where does the design stop
    //    scaling?
    std::cout << "\nPE scaling (ZFOST-ZFWST, deferred sync):\n";
    util::Table pe({"PEs", "iter cycles", "samples/s", "DSP", "LUTs",
                    "fits"});
    auto plan = mem::planBuffers(dcgan, 30, 2);
    for (int pes : {256, 512, 1024, 1680, 2048, 4096}) {
        auto d = sched::Design::combo(core::ArchKind::ZFOST,
                                      core::ArchKind::ZFWST, pes);
        auto cycles = sched::iterationCycles(
            d, dcgan, sched::SyncPolicy::Deferred);
        auto res = core::estimateResources(pes, plan);
        pe.addRow(pes, cycles, 200e6 / double(cycles), res.dsp,
                  res.luts,
                  core::fits(res, core::vcu9pBudget()) ? "yes" : "no");
    }
    pe.print(std::cout);

    // 3. Let the solver re-derive the ST-bank unrolling for each
    //    network — Table V, but computed rather than copied.
    std::cout << "\nSolver-derived ZFOST unrollings (1200 PEs, "
                 "T-CONV family):\n";
    util::Table sv({"network", "Po", "Pof", "cycles"});
    for (const auto &m : gan::allModels()) {
        auto jobs = sim::familyJobs(m, sim::PhaseFamily::G);
        auto c = core::solveUnrolling(core::ArchKind::ZFOST, 1200,
                                      jobs, 8);
        sv.addRow(m.name,
                  std::to_string(c.unroll.pOy) + "x" +
                      std::to_string(c.unroll.pOx),
                  c.unroll.pOf, c.cycles);
    }
    sv.print(std::cout);
    return 0;
}
