/**
 * @file
 * Network implementation.
 */

#include "gan/network.hh"

#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Tensor;

Network::Network(const std::vector<LayerSpec> &specs, util::Rng &rng)
{
    GANACC_ASSERT(!specs.empty(), "network needs at least one layer");
    for (const auto &spec : specs) {
        auto layer = instantiateLayer(spec);
        layer->initWeights(rng);
        layers_.push_back(std::move(layer));
    }
}

Tensor
Network::forward(const Tensor &in)
{
    Tensor x = in;
    for (auto &layer : layers_)
        x = layer->forward(x);
    return x;
}

Tensor
Network::backward(const Tensor &dout)
{
    Tensor g = dout;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

Tensor
Network::backwardError(const Tensor &dout)
{
    // Save gradient accumulators, run the normal backward, restore.
    std::vector<nn::ConvLayerBase::GradSnapshot> saved;
    saved.reserve(layers_.size());
    for (auto &layer : layers_)
        saved.push_back(layer->snapshotGrads());
    Tensor g = backward(dout);
    for (std::size_t i = 0; i < layers_.size(); ++i)
        layers_[i]->restoreGrads(saved[i]);
    return g;
}

void
Network::zeroGrads()
{
    for (auto &layer : layers_)
        layer->zeroGrad();
}

void
Network::applyUpdates(nn::Optimizer &opt)
{
    for (auto &layer : layers_)
        layer->applyUpdate(opt);
}

void
Network::clipWeights(float c)
{
    for (auto &layer : layers_)
        nn::clipWeights(layer->weights(), c);
}

void
Network::setBnMode(nn::BatchNormLayer::Mode mode)
{
    for (auto &layer : layers_)
        layer->setBnMode(mode);
}

std::vector<double>
Network::scores(const Tensor &out)
{
    GANACC_ASSERT(out.shape().d1 == 1 && out.shape().d2 == 1 &&
                      out.shape().d3 == 1,
                  "scores() expects a (N,1,1,1) tensor, got ",
                  out.shape().str());
    std::vector<double> s(out.shape().d0);
    for (int n = 0; n < out.shape().d0; ++n)
        s[n] = out.get(n, 0, 0, 0);
    return s;
}

} // namespace gan
} // namespace ganacc
