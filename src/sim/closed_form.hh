/**
 * @file
 * The closed-form fast-path simulator engine.
 *
 * Every dataflow walk in this repository advances one cycle at a
 * time, even through long idle, drain and zero-skip stretches. But a
 * timing-only run is a pure function of (schedule, job geometry), and
 * each walk's counters are expressible as sums over *schedule
 * segments* — pass blocks, parity classes, kernel positions, resident
 * chunks — whose per-axis structure factorizes. The functions here
 * evaluate those sums directly: cost O(kernel area + parity classes)
 * per job instead of O(simulated cycles), which is what makes
 * LSUN-scale layers and 100x-larger DSE sweeps tractable.
 *
 * The cycle walks remain the golden reference. Each closed form is
 * required to match its walk *bit for bit* on every RunStats counter;
 * tests/test_differential_fuzz.cc enforces the parity on a fuzzed
 * corpus across all five dataflows (plus the NLR-vanilla and
 * ZFOST-raster ablation configurations), and verify/static_bounds
 * re-exposes the same formulas as the GA-BOUNDS-DIVERGE checker.
 *
 * Engine selection: Architecture::run() consults simEngine() and uses
 * the fast path for timing-only, fault-free runs when the concrete
 * architecture provides one (Architecture::fastStats). Functional
 * runs always walk — they produce real output data, which no closed
 * form can. Force the choice with GANACC_ENGINE=walk|fast|auto or
 * programmatically with setSimEngine().
 */

#ifndef GANACC_SIM_CLOSED_FORM_HH
#define GANACC_SIM_CLOSED_FORM_HH

#include <optional>
#include <string>

#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace sim {

/** Which engine times a timing-only run. */
enum class SimEngine
{
    Auto, ///< fast path when the architecture has one (the default)
    Walk, ///< always the per-cycle walk (the golden reference)
    Fast, ///< fast path when available, walk otherwise — today
          ///< identical to Auto; exists so "forced on" reads
          ///< symmetrically with "forced off" in scripts and CI
};

/** The process-wide engine. First use reads GANACC_ENGINE
 *  (walk|fast|auto); setSimEngine() overrides. Thread-safe. */
SimEngine simEngine();

/** Override the process-wide engine (tests, benches, tools). */
void setSimEngine(SimEngine engine);

std::string simEngineName(SimEngine engine);

/** Inverse of simEngineName (case-insensitive); nullopt if unknown. */
std::optional<SimEngine> simEngineFromName(const std::string &name);

/** True when run() would take the fast path for a timing-only run of
 *  this engine setting. */
bool fastPathEnabled();

/** RAII engine override for tests, benches and checkers: forces the
 *  given engine for its scope and restores the previous one. */
class ScopedSimEngine
{
  public:
    explicit ScopedSimEngine(SimEngine engine) : prev_(simEngine())
    {
        setSimEngine(engine);
    }
    ~ScopedSimEngine() { setSimEngine(prev_); }
    ScopedSimEngine(const ScopedSimEngine &) = delete;
    ScopedSimEngine &operator=(const ScopedSimEngine &) = delete;

  private:
    SimEngine prev_;
};

/**
 * Closed forms, one per dataflow, parameterized by the design knobs
 * that change the schedule. Each returns exactly the RunStats the
 * corresponding cycle walk counts for a timing-only run of `spec` —
 * the parity suite keeps "exactly" honest. All panic on the same
 * malformed-spec preconditions the walks assert.
 */

/** NLR; `zero_skip` selects the paper's improved dataflow (true) or
 *  the vanilla DianNao-style ablation that executes structural zeros
 *  as wasted cycles (false). */
RunStats nlrClosedForm(const Unroll &u, const ConvSpec &s,
                       bool zero_skip);

/** WST: resident kernel tile, one streamed input position per cycle. */
RunStats wstClosedForm(const Unroll &u, const ConvSpec &s);

/** OST: pinned output tile, raster-order weight feed. */
RunStats ostClosedForm(const Unroll &u, const ConvSpec &s);

/** ZFOST; `reordered_feed` selects the Fig. 12(a) parity-grouped
 *  weight feed (true) or the raster-order ablation (false), which
 *  reloads the input tile every cycle on strided jobs. */
RunStats zfostClosedForm(const Unroll &u, const ConvSpec &s,
                         bool reordered_feed);

/** ZFWST: resident chunks of effective kernel elements, one output
 *  neuron per cycle through the adder tree. */
RunStats zfwstClosedForm(const Unroll &u, const ConvSpec &s);

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_CLOSED_FORM_HH
