/**
 * @file
 * Serving-throughput bench: requests/second of the simulation service
 * across the three tiers (cold = cycle walk, warm disk = persistent
 * result store, warm memory = in-process cycle cache), for one client
 * and for eight concurrent clients driving the same engine.
 *
 * This is the quantitative case for the serving subsystem: once a
 * figure's (arch, unrolling, layer) population is on disk, every
 * later regeneration — same process or not — replays it at disk
 * speed. The summary line reports the warm-over-cold speedup the
 * subsystem is expected to keep above 5x.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "fleet/router.hh"
#include "gan/models.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;

/**
 * The request population: every job of every Table V row of every
 * model on every architecture, as individual spec requests — the same
 * cycle walks the figure benches perform, phrased as service traffic.
 */
std::vector<serve::Request>
makeRequests()
{
    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };
    std::vector<serve::Request> reqs;
    std::uint64_t id = 1;
    for (const auto &m : gan::allModels()) {
        for (const Row &row : rows) {
            for (core::ArchKind kind : core::allArchKinds()) {
                const sim::Unroll u = core::paperUnroll(
                    kind, row.role, row.family, row.pes);
                for (const auto &job :
                     sim::familyJobs(m, row.family)) {
                    serve::Request req;
                    req.id = id++;
                    req.kind = kind;
                    req.unroll = u;
                    req.hasSpec = true;
                    req.spec = job;
                    reqs.push_back(req);
                }
            }
        }
    }
    return reqs;
}

struct PhaseResult
{
    double seconds = 0.0;
    double reqPerSec = 0.0;
    serve::EngineCounters counters;
};

/**
 * Drive `clients` threads against the engine, each pipelining its
 * share of the request list with a bounded window of outstanding
 * futures (a client library replaying a file behaves the same way).
 */
PhaseResult
runPhase(serve::Engine &engine, const std::vector<serve::Request> &reqs,
         int clients)
{
    const serve::EngineCounters before = engine.counters();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            const std::size_t window = 32;
            std::vector<std::future<serve::Response>> pending;
            for (std::size_t i = std::size_t(c); i < reqs.size();
                 i += std::size_t(clients)) {
                pending.push_back(engine.submit(reqs[i]));
                if (pending.size() >= window) {
                    pending.front().get();
                    pending.erase(pending.begin());
                }
            }
            for (auto &f : pending)
                f.get();
        });
    }
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    PhaseResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.reqPerSec = double(reqs.size()) / r.seconds;
    const serve::EngineCounters after = engine.counters();
    r.counters.memHits = after.memHits - before.memHits;
    r.counters.diskHits = after.diskHits - before.diskHits;
    r.counters.simulated = after.simulated - before.simulated;
    r.counters.deduped = after.deduped - before.deduped;
    return r;
}

/** One in-process TCP fleet: N shards on ephemeral loopback ports,
 *  each with its own cache tiers and store directory. */
class BenchFleet
{
  public:
    BenchFleet(int n, int jobs, const std::string &root)
    {
        namespace fs = std::filesystem;
        fs::remove_all(root);
        fs::create_directories(root);
        for (int i = 0; i < n; ++i) {
            auto sh = std::make_unique<Shard>();
            serve::EngineOptions eo;
            eo.jobs = jobs;
            eo.cacheDir = root + "/store" + std::to_string(i);
            eo.ownCache = true;
            eo.shedOverload = true;
            sh->engine = std::make_unique<serve::Engine>(eo);
            const int listener =
                serve::listenTcp("127.0.0.1:0", &sh->bound);
            Shard *raw = sh.get();
            sh->thread = std::thread([raw, listener] {
                serve::serveListener(listener, *raw->engine,
                                     raw->stop);
            });
            shards_.push_back(std::move(sh));
        }
    }

    ~BenchFleet()
    {
        for (auto &sh : shards_) {
            sh->stop.store(true);
            sh->thread.join();
        }
    }

    std::vector<std::string>
    addresses() const
    {
        std::vector<std::string> out;
        for (const auto &sh : shards_)
            out.push_back(sh->bound);
        return out;
    }

  private:
    struct Shard
    {
        std::string bound;
        std::unique_ptr<serve::Engine> engine;
        std::thread thread;
        std::atomic<bool> stop{false};
    };
    std::vector<std::unique_ptr<Shard>> shards_;
};

std::uint64_t
percentile(std::vector<std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx =
        std::size_t(q * double(sorted.size() - 1) + 0.5);
    return sorted[idx];
}

/** Fleet scaling: route the full population through 1/2/4 TCP shards
 *  and report throughput plus the service-side latency tail per cache
 *  tier (Response.latencyUs, so socket time is excluded — the curve
 *  isolates shard-side queueing). */
void
runFleetScaling(const std::vector<serve::Request> &reqs, int jobs,
                const std::string &scratch, util::Table &t,
                std::map<int, double> &coldRate)
{
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));

    for (int shards : {1, 2, 4}) {
        BenchFleet fleet(shards, jobs,
                         scratch + "-fleet" + std::to_string(shards));
        fleet::RouterOptions ropt;
        ropt.topology.shards = fleet.addresses();
        fleet::Router router(std::move(ropt));

        for (const char *pass : {"cold", "warm"}) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto out = router.transactLines(lines);
            const auto t1 = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();

            // Latency tail per serving tier.
            std::map<std::string, std::vector<std::uint64_t>> byTier;
            for (const std::string &line : out) {
                const serve::Response rsp =
                    serve::decodeResponse(line);
                if (rsp.ok)
                    byTier[rsp.cache].push_back(rsp.latencyUs);
            }
            for (const auto &[tier, lat] : byTier)
                t.addRow(shards, pass, secs,
                         double(lines.size()) / secs, tier,
                         lat.size(), percentile(lat, 0.50),
                         percentile(lat, 0.99));
            if (std::string(pass) == "cold")
                coldRate[shards] = double(lines.size()) / secs;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    std::string cache_dir = args.getCacheDir();
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    if (cache_dir.empty())
        cache_dir = (std::filesystem::temp_directory_path() /
                     "ganacc-serve-bench")
                        .string();

    bench::banner(
        "Serving throughput — cold vs warm, 1 vs 8 clients",
        "a warm result store replays figure populations >= 5x faster "
        "than cold simulation");

    const auto reqs = makeRequests();
    std::cout << "\n" << reqs.size() << " spec requests (3 models x 4 "
              << "phase families x 5 architectures), " << jobs
              << " engine workers, store at " << cache_dir << "\n\n";

    util::Table t({"phase", "clients", "seconds", "req/s", "sim",
                   "disk", "mem", "dup"});
    auto addRow = [&](const std::string &name, int clients,
                      const PhaseResult &r) {
        t.addRow(name, clients, r.seconds, r.reqPerSec,
                 r.counters.simulated, r.counters.diskHits,
                 r.counters.memHits, r.counters.deduped);
    };

    double cold1 = 0, warm_disk1 = 0, warm_mem1 = 0;
    for (int clients : {1, 8}) {
        // Cold: empty store, empty memory cache — every request is a
        // fresh cycle walk (concurrent duplicates may single-flight).
        std::filesystem::remove_all(cache_dir);
        core::CycleCache::instance().clear();
        serve::EngineOptions opts;
        opts.jobs = jobs;
        opts.cacheDir = cache_dir;
        PhaseResult cold;
        {
            serve::Engine engine(opts);
            cold = runPhase(engine, reqs, clients);
            engine.drain();
        }
        addRow("cold", clients, cold);

        // Warm disk: a *new* engine (new process, morally) over the
        // populated store, memory cache dropped.
        core::CycleCache::instance().clear();
        serve::Engine engine(opts);
        const PhaseResult disk = runPhase(engine, reqs, clients);
        addRow("warm disk", clients, disk);

        // Warm memory: same engine again; everything is memoized.
        const PhaseResult mem = runPhase(engine, reqs, clients);
        addRow("warm mem", clients, mem);
        engine.drain();

        if (clients == 1) {
            cold1 = cold.reqPerSec;
            warm_disk1 = disk.reqPerSec;
            warm_mem1 = mem.reqPerSec;
        }
    }
    t.print(std::cout);

    std::cout << "\nwarm-over-cold (1 client): disk "
              << warm_disk1 / cold1 << "x, memory "
              << warm_mem1 / cold1 << "x (target: >= 5x)\n";

    // --- Fleet scaling: the same population through 1/2/4 TCP
    // shards behind fleet::Router (RF=2 replication on) ---
    std::cout << "\nFleet scaling — " << jobs
              << " workers per shard, loopback TCP, RF=2\n\n";
    util::Table ft({"shards", "pass", "seconds", "req/s", "tier",
                    "n", "p50us", "p99us"});
    std::map<int, double> coldRate;
    runFleetScaling(reqs, jobs, cache_dir, ft, coldRate);
    ft.print(std::cout);
    std::cout << "\nfleet cold scaling vs 1 shard: 2 shards "
              << coldRate[2] / coldRate[1] << "x, 4 shards "
              << coldRate[4] / coldRate[1] << "x\n";
    return 0;
}
