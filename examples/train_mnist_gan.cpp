/**
 * @file
 * Functional WGAN training demo: train the MNIST-GAN topology on
 * synthetic digit-like images using the *deferred-synchronization*
 * algorithm (the exact computation the accelerator executes), and
 * show that (a) the critic's Wasserstein gap responds to training,
 * (b) the generator's output distribution moves toward the data, and
 * (c) the algorithm change cuts the intermediate-buffer footprint
 * from megabytes to kilobytes without changing the gradients.
 */

#include <iomanip>
#include <iostream>

#include "gan/data.hh"
#include "gan/memory_analysis.hh"
#include "gan/models.hh"
#include "gan/trainer.hh"
#include "nn/optimizer.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using tensor::Tensor;

    // A reduced MNIST-GAN (14x14 images, thinner layers) so the demo
    // trains in seconds on a laptop; same topology family as Table IV.
    std::vector<gan::LayerSpec> disc;
    {
        gan::LayerSpec l1;
        l1.kind = nn::ConvKind::Strided;
        l1.act = nn::Activation::LeakyReLU;
        l1.inChannels = 1;
        l1.outChannels = 16;
        l1.inH = l1.inW = 14;
        l1.geom = nn::Conv2dGeom{5, 2, 2, 0};
        disc.push_back(l1);
        gan::LayerSpec l2 = l1;
        l2.inChannels = 16;
        l2.outChannels = 32;
        l2.inH = l2.inW = 7;
        disc.push_back(l2);
        gan::LayerSpec head;
        head.kind = nn::ConvKind::Strided;
        head.act = nn::Activation::None;
        head.inChannels = 32;
        head.outChannels = 1;
        head.inH = head.inW = 4;
        head.geom = nn::Conv2dGeom{4, 1, 0, 0};
        disc.push_back(head);
    }
    gan::GanModel model = gan::makeModel("mini-MNIST-GAN",
                                         std::move(disc), 32);

    // The memory argument for running deferred (Section III-A).
    auto mem = gan::analyzeMemory(model, 64, 2);
    std::cout << "Intermediate buffers @ batch 64: synchronized "
              << mem.syncDiscUpdateBytes / 1024 << " KiB vs deferred "
              << mem.deferredDiscUpdateBytes / 1024 << " KiB\n\n";

    gan::Trainer trainer(model, /*seed=*/2024, gan::SyncMode::Deferred,
                         /*clip=*/0.03f);
    util::Rng rng(7);
    nn::RmsProp d_opt(5e-4f), g_opt(5e-4f);

    const int batch = 16;
    const int iters = 30;
    Tensor probe_noise = trainer.sampleNoise(64, rng);
    double real_mean =
        gan::meanPixel(gan::makeBlobImages(64, 1, 14, 14, rng));

    util::Table t({"iter", "critic loss", "gen loss",
                   "fake mean px", "target mean px"});
    for (int it = 0; it < iters; ++it) {
        Tensor real = gan::makeBlobImages(batch, 1, 14, 14, rng);
        auto losses =
            trainer.trainIteration(real, d_opt, g_opt, rng,
                                   /*n_critic=*/2);
        if (it % 5 == 0 || it == iters - 1) {
            Tensor fake = trainer.generate(probe_noise);
            t.addRow(it, losses.discLoss, losses.genLoss,
                     gan::meanPixel(fake), real_mean);
        }
    }
    t.print(std::cout);

    // Final distribution check: the generator's mean pixel should
    // have moved toward the data's.
    Tensor fake = trainer.generate(probe_noise);
    std::cout << "\nFinal |fake mean - real mean| = "
              << std::abs(gan::meanPixel(fake) - real_mean)
              << " (started near |" << -0.0 - real_mean << "|)\n";

    // Show one generated sample as ASCII art, because why not.
    std::cout << "\nA generated sample:\n";
    for (int y = 0; y < 14; ++y) {
        for (int x = 0; x < 14; ++x) {
            float v = fake.get(0, 0, y, x);
            std::cout << (v > 0.3f ? '#' : v > -0.3f ? '+' : '.');
        }
        std::cout << "\n";
    }
    return 0;
}
