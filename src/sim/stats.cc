/**
 * @file
 * RunStats implementation.
 */

#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace ganacc {
namespace sim {

RunStats &
RunStats::operator+=(const RunStats &o)
{
    // Accumulation across phases may mix slightly different channel
    // roundings of the same bank (e.g. 1197- vs 1200-PE unrollings of
    // a 1200-PE budget); keep the widest array for utilization.
    nPes = std::max(nPes, o.nPes);
    cycles += o.cycles;
    effectiveMacs += o.effectiveMacs;
    ineffectualMacs += o.ineffectualMacs;
    idlePeSlots += o.idlePeSlots;
    gatedSlots += o.gatedSlots;
    weightLoads += o.weightLoads;
    inputLoads += o.inputLoads;
    outputReads += o.outputReads;
    outputWrites += o.outputWrites;
    return *this;
}

std::string
RunStats::str() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " pes=" << nPes << " eff=" << effectiveMacs
       << " ineff=" << ineffectualMacs << " idle=" << idlePeSlots
       << " util=" << utilization() << " wld=" << weightLoads << " ild="
       << inputLoads << " ord=" << outputReads << " owr=" << outputWrites;
    if (gatedSlots)
        os << " gated=" << gatedSlots;
    return os.str();
}

} // namespace sim
} // namespace ganacc
