/**
 * @file
 * Shared RunStats assertions for the dataflow tests.
 *
 * Every architecture test states the same two facts in its own words;
 * this header states them once:
 *
 *  - conservation: each PE slot of each cycle is classified exactly
 *    once as effective, ineffectual or idle (run() also asserts this
 *    internally, but the tests re-check the returned struct so a
 *    future accounting change cannot silently pass through a stale
 *    assert), and gated slots are a subset of the ineffectual ones;
 *  - exact equality: two runs that claim to be deterministic twins
 *    must agree on every counter, not just on cycles.
 */

#ifndef GANACC_TESTS_STATS_HELPERS_HH
#define GANACC_TESTS_STATS_HELPERS_HH

#include <gtest/gtest.h>

#include <string>

#include "sim/stats.hh"
#include "sim/stats_diff.hh"

namespace ganacc {
namespace tests {

/** Assert the PE-slot conservation invariant on one run's stats. */
inline void
expectSlotConservation(const sim::RunStats &st, const std::string &context)
{
    EXPECT_EQ(st.effectiveMacs + st.ineffectualMacs + st.idlePeSlots,
              st.totalSlots())
        << context << ": " << st.str();
    EXPECT_LE(st.gatedSlots, st.ineffectualMacs)
        << context << ": gated slots are a subset of ineffectual slots";
}

/** Assert two RunStats agree on every counter. The comparison itself
 *  lives in sim/stats_diff.hh, shared with the conformance differ —
 *  a failure message names every disagreeing field with both values. */
inline void
expectStatsEqual(const sim::RunStats &a, const sim::RunStats &b,
                 const std::string &context)
{
    EXPECT_EQ(sim::diffRunStats(a, b), std::string()) << context;
}

} // namespace tests
} // namespace ganacc

#endif // GANACC_TESTS_STATS_HELPERS_HH
