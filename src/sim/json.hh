/**
 * @file
 * Canonical JSON serialization of the simulator value types.
 *
 * Exactly one encoding of RunStats, ConvSpec and Unroll exists in the
 * codebase: this one. The serving protocol, the persistent result
 * store, ganacc-runstats and the golden byte-comparison tests all go
 * through these functions, so a field added to RunStats shows up
 * everywhere at once — and nowhere can drift.
 *
 * The encodings are canonical in the strict sense: fixed field order,
 * integers as plain decimals, no whitespace. Two equal values always
 * serialize to the same bytes (which is what lets the result store be
 * content-addressed, and responses be byte-compared against goldens).
 * Integer counters round-trip through util::json bit-exactly.
 */

#ifndef GANACC_SIM_JSON_HH
#define GANACC_SIM_JSON_HH

#include <string>

#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "sim/stats.hh"
#include "util/json.hh"

namespace ganacc {
namespace sim {

/** {"cycles":..,"nPes":..,...,"outputWrites":..} — the historical
 *  ganacc-runstats field order, kept byte-compatible with the
 *  committed tests/golden/runstats_table5.json. */
std::string toJson(const RunStats &st);
RunStats runStatsFromJson(const util::json::Value &v);

/** All six unrolling factors in Table II order. */
std::string toJson(const Unroll &u);
Unroll unrollFromJson(const util::json::Value &v);

/** Every field that shapes a job, label included (the label names,
 *  it does not shape; cache keys strip it — see specShapeKey). */
std::string toJson(const ConvSpec &s);
ConvSpec convSpecFromJson(const util::json::Value &v);

/** toJson(spec) with the label forced empty: the canonical
 *  *shape-only* encoding used for content-addressed cache keys. */
std::string specShapeKey(const ConvSpec &s);

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_JSON_HH
