/**
 * @file
 * Closed-form fast-path derivations, one per dataflow.
 *
 * Shared notation: u64 arithmetic throughout; ceil(a/b) via ceilDiv;
 * per-axis occupancy counts reuse countNonzeroCoords, whose sum over a
 * partition of the output range equals the count over the whole range
 * (the cycle walks tile that range, the closed forms do not). Each
 * function steps the schedule *segments* its walk steps cycles:
 * kernel positions (NLR, OST), streamed-axis classes (WST), parity
 * classes (ZFOST, ZFWST) and resident chunks (ZFWST) — every
 * contribution inside a segment is a product of per-axis counts, so
 * idle, drain and zero-skip stretches are jumped, never walked.
 */

#include "sim/closed_form.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <vector>

#include "util/logging.hh"

namespace ganacc {
namespace sim {

namespace {

using u64 = std::uint64_t;

u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

SimEngine
engineFromEnv()
{
    const char *env = std::getenv("GANACC_ENGINE");
    if (env == nullptr || *env == '\0')
        return SimEngine::Auto;
    if (auto e = simEngineFromName(env))
        return *e;
    util::warn("GANACC_ENGINE='", env,
               "' is not walk|fast|auto; using auto");
    return SimEngine::Auto;
}

std::atomic<SimEngine> &
engineCell()
{
    static std::atomic<SimEngine> cell{engineFromEnv()};
    return cell;
}

/** The kernel rows (or columns) a ZFOST/ZFWST parity class streams:
 *  not structural kernel zeros, and parity-compatible with the input
 *  stuffing (plain C++ `%` — negative remainders match the walk). */
std::vector<int>
classKernelAxis(const ConvSpec &s, int k_extent, bool row, int c, int z)
{
    std::vector<int> eff;
    for (int k = 0; k < k_extent; ++k) {
        if (row ? s.kernelRowZero(k) : s.kernelColZero(k))
            continue;
        if (z > 1 && (c + k - s.pad) % z != 0)
            continue;
        eff.push_back(k);
    }
    return eff;
}

/** Per-axis WST stream counts for one kernel coordinate: input
 *  positions that contribute to some output (total) and the non-zero
 *  subset (effective). */
void
wstAxisCounts(const ConvSpec &s, int k, int in_extent, int out_extent,
              bool row, u64 &total, u64 &nonzero)
{
    total = nonzero = 0;
    for (int i = 0; i < in_extent; ++i) {
        int n = i - k + s.pad;
        if (n < 0 || n % s.stride != 0 || n / s.stride >= out_extent)
            continue;
        ++total;
        if (!(row ? s.inputRowZero(i) : s.inputColZero(i)))
            ++nonzero;
    }
}

} // namespace

SimEngine
simEngine()
{
    return engineCell().load(std::memory_order_relaxed);
}

void
setSimEngine(SimEngine engine)
{
    engineCell().store(engine, std::memory_order_relaxed);
}

std::string
simEngineName(SimEngine engine)
{
    switch (engine) {
      case SimEngine::Auto: return "auto";
      case SimEngine::Walk: return "walk";
      case SimEngine::Fast: return "fast";
    }
    util::panic("unknown sim engine");
}

std::optional<SimEngine>
simEngineFromName(const std::string &name)
{
    std::string low;
    low.reserve(name.size());
    for (char c : name)
        low += char(std::tolower(static_cast<unsigned char>(c)));
    for (SimEngine e :
         {SimEngine::Auto, SimEngine::Walk, SimEngine::Fast})
        if (simEngineName(e) == low)
            return e;
    return std::nullopt;
}

bool
fastPathEnabled()
{
    return simEngine() != SimEngine::Walk;
}

/**
 * NLR: scheduled output/kernel combinations classify per axis into
 * in-bounds non-zero, in-bounds zero, and padding. Under the improved
 * (zero-skipping) policy, combinations whose operand is an in-bounds
 * structural zero are never scheduled; the vanilla policy executes the
 * full dense schedule and burns them as ineffectual cycles.
 */
RunStats
nlrClosedForm(const Unroll &u, const ConvSpec &s, bool zero_skip)
{
    RunStats st;
    st.nPes = u64(u.pIf) * u.pOf;

    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 n_ifb = ceilDiv(u64(s.nif), u64(u.pIf));

    u64 sched_pos = 0, eff_pos = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        for (int kx = 0; kx < s.kw; ++kx) {
            if (s.kernelIsZero(ky, kx)) {
                // Skipping never schedules the position; the vanilla
                // dataflow streams it as a full plane of waste.
                if (!zero_skip)
                    sched_pos += u64(s.oh) * s.ow;
                continue;
            }
            u64 in_y = 0, nz_y = 0, in_x = 0, nz_x = 0;
            for (int oy = 0; oy < s.oh; ++oy) {
                int iy = oy * s.stride + ky - s.pad;
                if (iy < 0 || iy >= s.ih)
                    continue;
                ++in_y;
                if (!s.inputRowZero(iy))
                    ++nz_y;
            }
            for (int ox = 0; ox < s.ow; ++ox) {
                int ix = ox * s.stride + kx - s.pad;
                if (ix < 0 || ix >= s.iw)
                    continue;
                ++in_x;
                if (!s.inputColZero(ix))
                    ++nz_x;
            }
            // Skipped: both coordinates in bounds but the operand is a
            // structural zero (padding still burns cycles).
            const u64 skipped =
                zero_skip ? in_y * in_x - nz_y * nz_x : 0;
            sched_pos += u64(s.oh) * s.ow - skipped;
            eff_pos += nz_y * nz_x;
        }
    }
    const u64 pad_pos = sched_pos - eff_pos;

    if (!s.fourDimOutput) {
        st.cycles = sched_pos * n_ofb * n_ifb;
        st.inputLoads = sched_pos * n_ofb * s.nif;
    } else {
        // Four-dimension outputs accumulate nothing across input maps:
        // the adder tree idles and input maps stream sequentially.
        st.cycles = sched_pos * n_ofb * s.nif;
        st.inputLoads = sched_pos * n_ofb * s.nif;
    }
    st.weightLoads = sched_pos * u64(s.nof) * s.nif;
    st.outputReads = s.fourDimOutput
                         ? sched_pos * u64(s.nof) * s.nif
                         : sched_pos * u64(s.nof) * n_ifb;
    st.outputWrites = st.outputReads;
    st.effectiveMacs = eff_pos * u64(s.nof) * s.nif;
    st.ineffectualMacs = pad_pos * u64(s.nof) * s.nif;
    st.idlePeSlots =
        st.nPes * st.cycles - sched_pos * u64(s.nof) * s.nif;
    return st;
}

/**
 * WST: a kernel tile is resident; every streamed input position is a
 * cycle, and its contributions factorize per axis.
 */
RunStats
wstClosedForm(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pKx) * u.pKy * u.pOf;

    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 kt_y = ceilDiv(u64(s.kh), u64(u.pKy));
    const u64 kt_x = ceilDiv(u64(s.kw), u64(u.pKx));

    st.cycles = n_ofb * kt_y * kt_x * s.nif * u64(s.ih) * s.iw;
    st.inputLoads = st.cycles;
    st.weightLoads = u64(s.nof) * s.kh * s.kw;

    u64 vy_sum = 0, vy_nz_sum = 0, vx_sum = 0, vx_nz_sum = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        u64 total, nonzero;
        wstAxisCounts(s, ky, s.ih, s.oh, true, total, nonzero);
        vy_sum += total;
        if (!s.kernelRowZero(ky))
            vy_nz_sum += nonzero;
    }
    for (int kx = 0; kx < s.kw; ++kx) {
        u64 total, nonzero;
        wstAxisCounts(s, kx, s.iw, s.ow, false, total, nonzero);
        vx_sum += total;
        if (!s.kernelColZero(kx))
            vx_nz_sum += nonzero;
    }
    const u64 contrib = vy_sum * vx_sum;
    const u64 eff = vy_nz_sum * vx_nz_sum;

    st.effectiveMacs = u64(s.nof) * s.nif * eff;
    st.ineffectualMacs = u64(s.nof) * s.nif * (contrib - eff);
    st.idlePeSlots =
        st.nPes * st.cycles - u64(s.nof) * s.nif * contrib;
    st.outputReads = u64(s.nof) * s.nif * contrib;
    st.outputWrites = st.outputReads;
    return st;
}

/**
 * OST: an output tile is pinned per pass; every (ofb, tyb, txb, c,
 * ky, kx) combination is one cycle. Input-register traffic depends on
 * whether raster weight order still shifts (stride 1) or reloads the
 * tile (strided).
 */
RunStats
ostClosedForm(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pOx) * u.pOy * u.pOf;

    const u64 oh = u64(s.oh), ow = u64(s.ow);
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 n_tyb = ceilDiv(oh, u64(u.pOy));
    const u64 n_txb = ceilDiv(ow, u64(u.pOx));
    const u64 kpos = u64(s.kh) * s.kw;

    st.cycles = n_ofb * n_tyb * n_txb * s.nif * kpos;
    st.weightLoads = u64(s.nof) * n_tyb * n_txb * s.nif * kpos;

    // Per (ofb, tile, c): full tile at the first kernel position; at
    // stride 1 each later position shifts in one row (kx == 0) or one
    // column; strided raster order reloads the tile every cycle.
    // Summed over the tile grid: sum(tile) = oh*ow,
    // sum(tx_cnt) = n_tyb*ow, sum(ty_cnt) = n_txb*oh.
    u64 loads_all_tiles;
    if (s.stride == 1)
        loads_all_tiles = oh * ow + u64(s.kh - 1) * n_tyb * ow +
                          u64(s.kh) * u64(s.kw - 1) * n_txb * oh;
    else
        loads_all_tiles = kpos * oh * ow;
    st.inputLoads = n_ofb * s.nif * loads_all_tiles;

    // Occupancy: scheduled slots cover the whole tile; effective ones
    // are the per-axis non-zero counts, separable per kernel position.
    u64 eff_positions = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        if (s.kernelRowZero(ky))
            continue;
        u64 rows = u64(countNonzeroCoords(0, s.oh, s.stride, ky, s.pad,
                                          s.ih, s.inZeroStride,
                                          s.inOrigH));
        for (int kx = 0; kx < s.kw; ++kx) {
            if (s.kernelColZero(kx))
                continue;
            eff_positions +=
                rows * u64(countNonzeroCoords(0, s.ow, s.stride, kx,
                                              s.pad, s.iw,
                                              s.inZeroStride,
                                              s.inOrigW));
        }
    }
    const u64 scheduled = u64(s.nof) * s.nif * kpos * oh * ow;
    st.effectiveMacs = u64(s.nof) * s.nif * eff_positions;
    st.ineffectualMacs = scheduled - st.effectiveMacs;
    st.idlePeSlots = st.nPes * st.cycles - scheduled;

    st.outputWrites =
        s.fourDimOutput ? u64(s.nof) * s.nif * oh * ow
                        : u64(s.nof) * oh * ow;
    return st;
}

/**
 * ZFOST: OST per parity class of the zero-stuffed output, with the
 * class's effective kernel positions only. The reordered weight feed
 * keeps the register array shifting even on strided jobs; the raster
 * ablation loses the shift alignment there and reloads the tile every
 * cycle.
 */
RunStats
zfostClosedForm(const Unroll &u, const ConvSpec &s, bool reordered_feed)
{
    RunStats st;
    st.nPes = u64(u.pOx) * u.pOy * u.pOf;

    const int z = s.inZeroStride;
    GANACC_ASSERT(z == 1 || s.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", s.describe());
    const bool shifts = reordered_feed || s.stride == 1;
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));

    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            const u64 n_y = u64((s.oh - cy + z - 1) / z);
            const u64 n_x = u64((s.ow - cx + z - 1) / z);
            std::vector<int> eff_ky =
                classKernelAxis(s, s.kh, true, cy, z);
            std::vector<int> eff_kx =
                classKernelAxis(s, s.kw, false, cx, z);
            if (eff_ky.empty() || eff_kx.empty())
                continue;
            const u64 n_ky = eff_ky.size(), n_kx = eff_kx.size();
            const u64 n_tyb = ceilDiv(n_y, u64(u.pOy));
            const u64 n_txb = ceilDiv(n_x, u64(u.pOx));

            st.cycles += n_ofb * n_tyb * n_txb * s.nif * n_ky * n_kx;
            st.weightLoads +=
                u64(s.nof) * n_tyb * n_txb * s.nif * n_ky * n_kx;

            // Shifting feed: tile at the first kernel position, a row
            // (tx_cnt) at each later ky step, a column (ty_cnt)
            // otherwise. Without the shift, every cycle reloads the
            // tile.
            if (shifts)
                st.inputLoads +=
                    n_ofb * s.nif *
                    (n_y * n_x + (n_ky - 1) * n_tyb * n_x +
                     n_ky * (n_kx - 1) * n_txb * n_y);
            else
                st.inputLoads +=
                    n_ofb * s.nif * (n_ky * n_kx * n_y * n_x);

            u64 rows_sum = 0, cols_sum = 0;
            for (int ky : eff_ky)
                rows_sum += u64(countNonzeroCoords(
                    0, int(n_y), z * s.stride,
                    cy * s.stride + ky - s.pad, 0, s.ih, s.inZeroStride,
                    s.inOrigH));
            for (int kx : eff_kx)
                cols_sum += u64(countNonzeroCoords(
                    0, int(n_x), z * s.stride,
                    cx * s.stride + kx - s.pad, 0, s.iw, s.inZeroStride,
                    s.inOrigW));
            const u64 scheduled =
                u64(s.nof) * s.nif * n_ky * n_kx * n_y * n_x;
            st.effectiveMacs += u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.ineffectualMacs +=
                scheduled - u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.idlePeSlots +=
                st.nPes * (n_ofb * n_tyb * n_txb * s.nif * n_ky * n_kx) -
                scheduled;

            st.outputWrites += s.fourDimOutput
                                   ? u64(s.nof) * s.nif * n_y * n_x
                                   : u64(s.nof) * n_y * n_x;
        }
    }
    return st;
}

/**
 * ZFWST: per parity class, the effective kernel elements stream in
 * resident chunks of P_ky*P_kx; one output neuron per cycle through
 * the adder tree.
 */
RunStats
zfwstClosedForm(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pKx) * u.pKy * u.pOf;

    const int z = s.inZeroStride;
    GANACC_ASSERT(z == 1 || s.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", s.describe());
    const int cap = u.pKx * u.pKy;
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));

    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            const u64 n_y = u64((s.oh - cy + z - 1) / z);
            const u64 n_x = u64((s.ow - cx + z - 1) / z);
            std::vector<int> eff_ky =
                classKernelAxis(s, s.kh, true, cy, z);
            std::vector<int> eff_kx =
                classKernelAxis(s, s.kw, false, cx, z);
            const u64 n_eff = u64(eff_ky.size()) * eff_kx.size();
            if (n_eff == 0)
                continue;
            const u64 n_chunks = ceilDiv(n_eff, u64(cap));
            const u64 positions = n_y * n_x;

            st.cycles += n_ofb * n_chunks * s.nif * positions;
            st.weightLoads += u64(s.nof) * n_eff;

            // Register traffic per (ofb, chunk, c): the chunk's
            // footprint once, then a column shift per later output.
            u64 chunk_loads = 0;
            for (u64 chunk = 0; chunk < n_chunks; ++chunk) {
                u64 e_cnt = std::min(u64(cap), n_eff - chunk * cap);
                chunk_loads +=
                    e_cnt + (positions - 1) * std::min(e_cnt, u64(u.pKy));
            }
            st.inputLoads += n_ofb * s.nif * chunk_loads;

            // Effective slots factorize exactly as in ZFOST; the
            // chunking only partitions the same kernel-element set.
            u64 rows_sum = 0, cols_sum = 0;
            for (int ky : eff_ky)
                rows_sum += u64(countNonzeroCoords(
                    0, int(n_y), z * s.stride,
                    cy * s.stride + ky - s.pad, 0, s.ih, s.inZeroStride,
                    s.inOrigH));
            for (int kx : eff_kx)
                cols_sum += u64(countNonzeroCoords(
                    0, int(n_x), z * s.stride,
                    cx * s.stride + kx - s.pad, 0, s.iw, s.inZeroStride,
                    s.inOrigW));
            const u64 scheduled = u64(s.nof) * s.nif * positions * n_eff;
            st.effectiveMacs += u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.ineffectualMacs +=
                scheduled - u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.idlePeSlots +=
                st.nPes * (n_ofb * n_chunks * s.nif * positions) -
                scheduled;

            st.outputWrites += u64(s.nof) * n_chunks * s.nif * positions;
            // Accumulating passes read the partial back: every pass
            // but the first per output for accumulating jobs, every
            // chunk but the first per (c, output) for four-dim jobs.
            st.outputReads +=
                s.fourDimOutput
                    ? u64(s.nof) * (n_chunks - 1) * s.nif * positions
                    : u64(s.nof) * (n_chunks * s.nif - 1) * positions;
        }
    }
    return st;
}

} // namespace sim
} // namespace ganacc
