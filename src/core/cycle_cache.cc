/**
 * @file
 * Cycle-cache implementation.
 */

#include "core/cycle_cache.hh"

#include <mutex>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/closed_form.hh"

namespace ganacc {
namespace core {

namespace {

/** Cache-key engine tag. "*" marks kinds whose fast path is proven
 *  bit-identical to the cycle walk (all five dataflows, enforced by
 *  the differential-fuzz parity suite), so fast and walk runs share
 *  entries. A future kind without proven parity must return the
 *  active engine's name here to keep its results segregated. */
std::string
engineTag(ArchKind kind)
{
    switch (kind) {
      case ArchKind::NLR:
      case ArchKind::WST:
      case ArchKind::OST:
      case ArchKind::ZFOST:
      case ArchKind::ZFWST:
        return "*";
    }
    return sim::simEngineName(sim::simEngine());
}

/** Every field that shapes a timing-only run, label excluded. */
std::string
keyOf(ArchKind kind, const sim::Unroll &u, const sim::ConvSpec &s)
{
    std::ostringstream os;
    os << int(kind) << '|' << u.pIf << ',' << u.pOf << ',' << u.pKx
       << ',' << u.pKy << ',' << u.pOx << ',' << u.pOy << '|' << s.nif
       << ',' << s.nof << ',' << s.ih << ',' << s.iw << ',' << s.kh
       << ',' << s.kw << ',' << s.oh << ',' << s.ow << ',' << s.stride
       << ',' << s.pad << ',' << s.inZeroStride << ',' << s.inOrigH
       << ',' << s.inOrigW << ',' << s.kZeroStride << ',' << s.kOrigH
       << ',' << s.kOrigW << ',' << int(s.fourDimOutput) << '|'
       << engineTag(kind);
    return os.str();
}

} // namespace

std::string
cacheOutcomeName(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::MemoryHit: return "mem";
      case CacheOutcome::DiskHit: return "disk";
      case CacheOutcome::Simulated: return "sim";
    }
    return "?";
}

CycleCache::CycleCache(bool publishMetrics)
{
    if (!publishMetrics)
        return;
    collector_ = obs::Registry::instance().addCollector(
        [this](obs::Snapshot &snap) {
            const CacheStats s = cacheStats();
            snap.counter("ganacc_cache_mem_hits_total", s.hits);
            snap.counter("ganacc_cache_misses_total", s.misses);
            snap.counter("ganacc_cache_disk_hits_total", s.diskHits);
            snap.counter("ganacc_cache_simulated_total",
                         s.simulated());
            snap.gauge("ganacc_cache_entries",
                       std::int64_t(s.entries));
        });
}

CycleCache::~CycleCache()
{
    if (collector_ >= 0)
        obs::Registry::instance().removeCollector(collector_);
}

CycleCache &
CycleCache::instance()
{
    static CycleCache cache;
    // Publish the cache's own atomics into the telemetry registry; a
    // collector copies them at snapshot time, so lookups stay free of
    // registry traffic. Registered once, on first use.
    static const int collector = obs::Registry::instance().addCollector(
        [](obs::Snapshot &snap) {
            const CacheStats s = cache.cacheStats();
            snap.counter("ganacc_cache_mem_hits_total", s.hits);
            snap.counter("ganacc_cache_misses_total", s.misses);
            snap.counter("ganacc_cache_disk_hits_total", s.diskHits);
            snap.counter("ganacc_cache_simulated_total",
                         s.simulated());
            snap.gauge("ganacc_cache_entries",
                       std::int64_t(s.entries));
        });
    (void)collector;
    return cache;
}

void
CycleCache::attachDiskTier(StatsDiskTier *tier)
{
    disk_ = tier;
}

sim::RunStats
CycleCache::stats(ArchKind kind, const sim::Unroll &u,
                  const sim::ConvSpec &spec, CacheOutcome *outcome)
{
    const std::string key = keyOf(kind, u, spec);
    {
        std::shared_lock<std::shared_mutex> lk(m_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (outcome)
                *outcome = CacheOutcome::MemoryHit;
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    sim::RunStats st;
    CacheOutcome got = CacheOutcome::Simulated;
    std::optional<sim::RunStats> fromDisk =
        disk_ ? disk_->load(kind, u, spec) : std::nullopt;
    if (fromDisk) {
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        got = CacheOutcome::DiskHit;
        st = *fromDisk;
    } else {
        // One span per actual cycle walk; a no-op unless --trace /
        // GANACC_TRACE armed the sink.
        obs::Span span("simulate", "sim",
                       "{\"arch\":\"" + archKindName(kind) + "\"}");
        st = makeArch(kind, u)->run(spec);
        if (disk_)
            disk_->store(kind, u, spec, st);
    }
    {
        std::unique_lock<std::shared_mutex> lk(m_);
        map_.emplace(key, st);
    }
    if (outcome)
        *outcome = got;
    return st;
}

void
CycleCache::insert(ArchKind kind, const sim::Unroll &u,
                   const sim::ConvSpec &spec,
                   const sim::RunStats &stats)
{
    {
        std::unique_lock<std::shared_mutex> lk(m_);
        map_[keyOf(kind, u, spec)] = stats;
    }
    if (disk_)
        disk_->store(kind, u, spec, stats);
}

void
CycleCache::clear()
{
    std::unique_lock<std::shared_mutex> lk(m_);
    map_.clear();
    hits_.store(0);
    misses_.store(0);
    diskHits_.store(0);
}

std::size_t
CycleCache::size() const
{
    std::shared_lock<std::shared_mutex> lk(m_);
    return map_.size();
}

CacheStats
CycleCache::cacheStats() const
{
    CacheStats s;
    s.entries = size();
    s.hits = hits();
    s.misses = misses();
    s.diskHits = diskHits();
    return s;
}

std::string
CycleCache::summary() const
{
    std::ostringstream os;
    os << "cycle cache: " << size() << " entries, " << hits()
       << " memory hits, " << misses() << " misses";
    if (disk_)
        os << " (" << diskHits() << " served by the disk tier)";
    return os.str();
}

sim::RunStats
cachedRun(ArchKind kind, const sim::Unroll &u,
          const sim::ConvSpec &spec)
{
    return CycleCache::instance().stats(kind, u, spec);
}

} // namespace core
} // namespace ganacc
