/**
 * @file
 * TCP transport + protocol-extension tests: a loopback daemon must
 * answer bit-identically to direct simulation, survive the whole
 * pinned malformed-frame table on one connection, expose its fleet
 * topology through the {"fleet":true} probe (and refuse it when not
 * part of a fleet), accept `put` write-through, and the client's
 * connect retry must ride out a daemon that binds late.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "conform/ops.hh"
#include "core/unrolling.hh"
#include "fleet/topology.hh"
#include "gan/models.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "sim/json.hh"
#include "sim/phase.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
namespace fs = std::filesystem;

std::string
scratchDir(const char *tag)
{
    return (fs::temp_directory_path() /
            ("ganacc-tcp-test-" + std::to_string(::getpid()) + "-" +
             tag))
        .string();
}

/** One loopback TCP daemon on an ephemeral port, its own cache. */
class TcpDaemon
{
  public:
    explicit TcpDaemon(serve::EngineOptions eo)
    {
        eo.ownCache = true;
        engine_ = std::make_unique<serve::Engine>(eo);
        const int listener = serve::listenTcp("127.0.0.1:0", &bound_);
        thread_ = std::thread([this, listener] {
            serve::serveListener(listener, *engine_, stop_);
        });
    }

    ~TcpDaemon()
    {
        stop_.store(true);
        thread_.join();
    }

    const std::string &address() const { return bound_; }

  private:
    std::string bound_;
    std::unique_ptr<serve::Engine> engine_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
};

serve::Request
specRequest(std::uint64_t id, core::ArchKind kind,
            const sim::Unroll &u, const sim::ConvSpec &spec)
{
    serve::Request req;
    req.id = id;
    req.kind = kind;
    req.unroll = u;
    req.hasSpec = true;
    req.spec = spec;
    return req;
}

TEST(ServeTcp, AddressClassifierSplitsTcpFromUnixPaths)
{
    EXPECT_TRUE(serve::isTcpAddress("127.0.0.1:7741"));
    EXPECT_TRUE(serve::isTcpAddress("localhost:80"));
    EXPECT_TRUE(serve::isTcpAddress(":7741"));
    EXPECT_FALSE(serve::isTcpAddress("/tmp/ganacc.sock"));
    EXPECT_FALSE(serve::isTcpAddress("ganacc.sock"));
    EXPECT_FALSE(serve::isTcpAddress("./relative:odd/path"));
}

TEST(ServeTcp, LoopbackDaemonServesBitIdenticalStats)
{
    serve::EngineOptions eo;
    eo.jobs = 2;
    eo.deterministic = true;
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());

    const gan::GanModel model = gan::makeMnistGan();
    const sim::Unroll u = core::paperUnroll(
        core::ArchKind::NLR, core::BankRole::ST, sim::PhaseFamily::D,
        1200);
    std::uint64_t id = 1;
    for (const auto &job :
         sim::familyJobs(model, sim::PhaseFamily::D)) {
        const serve::Response rsp = client.roundTrip(
            specRequest(id, core::ArchKind::NLR, u, job));
        ASSERT_TRUE(rsp.ok) << rsp.error;
        EXPECT_EQ(rsp.id, id);
        const sim::RunStats direct =
            core::makeArch(core::ArchKind::NLR, u)->run(job);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
        ++id;
    }
}

TEST(ServeTcp, OneConnectionSurvivesTheWholeMalformedTable)
{
    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());
    for (const conform::MalformedFrame &frame :
         conform::malformedFrames()) {
        const std::vector<std::string> out =
            serve::replayLines(client, {frame.line});
        ASSERT_EQ(out.size(), 1u) << frame.name;
        const serve::Response rsp = serve::decodeResponse(out[0]);
        EXPECT_FALSE(rsp.ok) << frame.name;
        EXPECT_EQ(rsp.error, frame.error) << frame.name;
    }
    // The connection is still healthy: a probe round-trips.
    serve::Request probe;
    probe.id = 1;
    probe.statsProbe = true;
    const serve::Response rsp = client.roundTrip(probe);
    EXPECT_TRUE(rsp.ok) << rsp.error;
}

TEST(ServeTcp, FleetProbeAnswersTheConfiguredTopology)
{
    fleet::Topology topo;
    topo.shards = {"127.0.0.1:7741", "127.0.0.1:7742",
                   "127.0.0.1:7743"};
    topo.rf = 2;
    topo.self = 2;

    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    eo.fleetJson = fleet::toJson(topo);
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());
    serve::Request probe;
    probe.id = 7;
    probe.fleetProbe = true;
    const serve::Response rsp = client.roundTrip(probe);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_EQ(rsp.fleet, fleet::toJson(topo));
    const fleet::Topology back = fleet::topologyFromJson(rsp.fleet);
    EXPECT_EQ(back.shards, topo.shards);
    EXPECT_EQ(back.self, 2);
}

TEST(ServeTcp, FleetProbeOnALoneDaemonIsAPinnedError)
{
    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());
    serve::Request probe;
    probe.id = 3;
    probe.fleetProbe = true;
    const serve::Response rsp = client.roundTrip(probe);
    EXPECT_FALSE(rsp.ok);
    EXPECT_EQ(rsp.error, "daemon is not part of a fleet");
}

TEST(ServeTcp, PutWritesThroughAndTheNextRequestServesFromMemory)
{
    const std::string store = scratchDir("put");
    fs::remove_all(store);
    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    eo.cacheDir = store;
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());

    const gan::GanModel model = gan::makeMnistGan();
    const sim::Unroll u = core::paperUnroll(
        core::ArchKind::NLR, core::BankRole::ST, sim::PhaseFamily::D,
        1200);
    const sim::ConvSpec job =
        sim::familyJobs(model, sim::PhaseFamily::D).front();
    const sim::RunStats direct =
        core::makeArch(core::ArchKind::NLR, u)->run(job);

    serve::Request put;
    put.id = 1;
    put.kind = core::ArchKind::NLR;
    put.unroll = u;
    put.spec = job;
    put.put = true;
    put.putStats = direct;
    put.putSimVersion = serve::simulatorVersion();
    const serve::Response ack = client.roundTrip(put);
    ASSERT_TRUE(ack.ok) << ack.error;
    EXPECT_EQ(ack.cache, "put");
    EXPECT_EQ(sim::toJson(ack.stats), sim::toJson(direct));

    // The entry landed on disk at the content-key fan-out path…
    const std::string key =
        serve::contentKey(core::ArchKind::NLR, u, job);
    EXPECT_TRUE(fs::exists(store + "/" + key.substr(0, 2) + "/" +
                           key + ".json"));

    // …and the daemon now serves the triple from memory, no sim run.
    const serve::Response got =
        client.roundTrip(specRequest(2, core::ArchKind::NLR, u, job));
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_EQ(got.cache, "mem");
    EXPECT_EQ(sim::toJson(got.stats), sim::toJson(direct));
    fs::remove_all(store);
}

TEST(ServeTcp, PutWithAForeignSimVersionIsRefused)
{
    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    TcpDaemon daemon(eo);

    serve::Client client;
    client.connect(daemon.address());

    const gan::GanModel model = gan::makeMnistGan();
    const sim::Unroll u = core::paperUnroll(
        core::ArchKind::NLR, core::BankRole::ST, sim::PhaseFamily::D,
        1200);
    const sim::ConvSpec job =
        sim::familyJobs(model, sim::PhaseFamily::D).front();

    serve::Request put;
    put.id = 1;
    put.kind = core::ArchKind::NLR;
    put.unroll = u;
    put.spec = job;
    put.put = true;
    put.putStats = core::makeArch(core::ArchKind::NLR, u)->run(job);
    put.putSimVersion = "sim-v0-foreign";
    const serve::Response rsp = client.roundTrip(put);
    EXPECT_FALSE(rsp.ok);
    EXPECT_EQ(rsp.error,
              "fatal: put carries simulator version "
              "\"sim-v0-foreign\", this daemon runs \"" +
                  serve::simulatorVersion() + "\"");
}

/** Satellite: connect retry against a daemon that binds late. */
TEST(ServeTcp, ConnectRetryRidesOutALateBindingDaemon)
{
    const std::string sock = scratchDir("late") + ".sock";
    fs::remove(sock);

    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    eo.ownCache = true;
    serve::Engine engine(eo);
    std::atomic<bool> stop{false};

    // The daemon binds ~100ms after the client starts dialing.
    std::thread daemon([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        serve::runSocketServer(sock, engine, stop);
    });

    serve::ConnectOptions copt;
    copt.retries = 50;
    copt.backoffMs = 5;
    serve::Client client;
    client.connect(sock, copt); // throws if the retry loop gives up

    serve::Request probe;
    probe.id = 1;
    probe.statsProbe = true;
    const serve::Response rsp = client.roundTrip(probe);
    EXPECT_TRUE(rsp.ok) << rsp.error;

    client.close();
    stop.store(true);
    daemon.join();
    fs::remove(sock);
}

TEST(ServeTcp, ZeroRetriesOnAMissingEndpointFailsFast)
{
    serve::ConnectOptions copt;
    copt.retries = 0;
    serve::Client client;
    EXPECT_THROW(client.connect(scratchDir("nope") + ".sock", copt),
                 util::FatalError);
}

} // namespace
