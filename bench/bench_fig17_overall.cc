/**
 * @file
 * Fig. 17 reproduction: overall performance of the five design points
 * (unique OST / ZFWST / ZFOST and the NLR-OST / ZFOST-ZFWST
 * combinations, all with 1680 PEs) on discriminator and generator
 * updates, with and without deferred synchronization. Also prints the
 * Fig. 9-vs-10 pipeline-utilization ablation.
 */

#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sched/pipeline.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;
    using sched::SyncPolicy;

    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    bench::CacheScope cache(args);
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    bench::banner(
        "Fig. 17 — overall performance (1680 PEs)",
        "sync: unique ZFOST beats the combos; deferred sync makes "
        "ZFOST-ZFWST best (average ~4.3x over the traditional "
        "baseline)");

    const Design designs[] = {
        Design::unique(ArchKind::OST, 1680),
        Design::unique(ArchKind::ZFWST, 1680),
        Design::unique(ArchKind::ZFOST, 1680),
        Design::combo(ArchKind::NLR, ArchKind::OST, 1680),
        Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680),
    };

    double total_speedup = 0.0;
    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (speedup normalized to NLR-OST under the "
                     "original synchronized algorithm)\n";
        double base = double(sched::iterationCycles(
            designs[3], m, SyncPolicy::Synchronized));
        double base_d = double(
            sched::discriminatorUpdateTiming(designs[3], m)
                .syncCycles);
        double base_g = double(
            sched::generatorUpdateTiming(designs[3], m).syncCycles);
        util::Table t({"design", "D-upd sync", "D-upd deferred",
                       "G-upd sync", "G-upd deferred", "iter sync",
                       "iter deferred"});
        // The five design evaluations are independent; map them in
        // parallel and print rows in design order.
        std::vector<const Design *> items;
        for (const Design &d : designs)
            items.push_back(&d);
        struct Timings
        {
            sched::UpdateTiming du, gu;
        };
        auto timings = util::parallelMap(
            items,
            [&](const Design *d) {
                return Timings{
                    sched::discriminatorUpdateTiming(*d, m),
                    sched::generatorUpdateTiming(*d, m)};
            },
            jobs);
        for (std::size_t i = 0; i < items.size(); ++i) {
            const Design &d = *items[i];
            const auto &du = timings[i].du;
            const auto &gu = timings[i].gu;
            double iter_sync = base / double(du.syncCycles +
                                             gu.syncCycles);
            double iter_def = base / double(du.deferredCycles +
                                            gu.deferredCycles);
            t.addRow(d.name(), base_d / double(du.syncCycles),
                     base_d / double(du.deferredCycles),
                     base_g / double(gu.syncCycles),
                     base_g / double(gu.deferredCycles), iter_sync,
                     iter_def);
            if (d.name() == "ZFOST-ZFWST")
                total_speedup += iter_def;
        }
        t.print(std::cout);
    }
    std::cout << "\nZFOST-ZFWST (deferred) average speedup over "
                 "NLR-OST (sync): "
              << total_speedup / 3.0 << "x  (paper: ~4.3x)\n";

    std::cout << "\nAblation — per-phase pipeline (Fig. 9) vs "
                 "time-multiplexed (Fig. 10) utilization:\n";
    util::Table p({"update", "organization", "T/ST-ARCH", "S-ARCH",
                   "W-ARCH"});
    for (auto k : {sched::UpdateKind::Discriminator,
                   sched::UpdateKind::Generator}) {
        auto pipe = sched::perPhasePipeline(k);
        p.addRow(sched::updateKindName(k), "per-phase pipeline",
                 pipe.utilizationOf("T-ARCH"),
                 pipe.utilizationOf("S-ARCH"),
                 pipe.utilizationOf("W-ARCH"));
        auto mux = sched::timeMultiplexed(k, 0.4);
        p.addRow(sched::updateKindName(k), "time-multiplexed",
                 mux.utilizationOf("ST-ARCH"), std::string("(merged)"),
                 mux.utilizationOf("W-ARCH"));
    }
    p.print(std::cout);
    return 0;
}
