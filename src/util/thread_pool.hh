/**
 * @file
 * Work-stealing thread pool and the parallelMap helper behind the
 * parallel sweep engine.
 *
 * Every design-point evaluation of the DSE sweeps is an independent
 * pure function, so the engine is deliberately simple: a pool of
 * workers with per-worker deques (submissions round-robin, idle
 * workers steal from the back of their neighbours), plus a
 * parallelMap that evaluates fn over a vector and writes results by
 * index — output ordering is therefore identical to the serial loop
 * no matter how the work interleaves.
 *
 * Worker count resolution (resolveJobs): an explicit request wins,
 * then the GANACC_JOBS environment variable, then
 * std::thread::hardware_concurrency().
 */

#ifndef GANACC_UTIL_THREAD_POOL_HH
#define GANACC_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ganacc {
namespace util {

/** Worker count from the hardware, never less than 1. */
int hardwareJobs();

/**
 * Resolve a worker count: `requested` if positive, else the
 * GANACC_JOBS environment variable if set and positive, else
 * hardwareJobs().
 */
int resolveJobs(int requested = 0);

/** A small work-stealing pool of persistent worker threads. */
class ThreadPool
{
  public:
    /** Spawn resolveJobs(jobs) workers. */
    explicit ThreadPool(int jobs = 0);

    /** Joins after draining the queues. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int jobs() const { return int(workers_.size()); }

    /** Enqueue a task; runs on some worker, in no guaranteed order. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

  private:
    struct Queue
    {
        std::mutex m;
        std::deque<std::function<void()>> tasks;
    };

    bool tryPop(std::size_t self, std::function<void()> &task);
    void workerLoop(std::size_t self);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable workCv_; ///< wakes workers on submit/stop
    std::condition_variable idleCv_; ///< wakes wait() when drained
    std::size_t nextQueue_ = 0;      ///< round-robin submit cursor
    std::size_t queued_ = 0;         ///< enqueued, not yet dequeued
    std::size_t pending_ = 0;        ///< submitted, not yet finished
    bool stop_ = false;
};

/**
 * Run fn(i) for every i in [0, n) on a private pool of `jobs` workers
 * (resolved via resolveJobs). Indices are claimed one at a time from
 * a shared counter, so uneven point costs balance automatically. The
 * first exception thrown by fn stops further claims and is rethrown
 * in the caller. jobs == 1 (or n <= 1) runs serially in the caller.
 */
template <typename Fn>
void
parallelFor(std::size_t n, int jobs, Fn &&fn)
{
    const int workers = resolveJobs(jobs);
    if (workers <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_m;
    auto drain = [&] {
        std::size_t i;
        while ((i = next.fetch_add(1)) < n &&
               !failed.load(std::memory_order_relaxed)) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(error_m);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };
    {
        ThreadPool pool(workers);
        const std::size_t spawn =
            std::min<std::size_t>(std::size_t(pool.jobs()), n);
        for (std::size_t t = 0; t < spawn; ++t)
            pool.submit(drain);
        pool.wait();
    }
    if (error)
        std::rethrow_exception(error);
}

/**
 * Map fn over items on `jobs` workers; result[i] == fn(items[i]) with
 * the output vector in input order regardless of scheduling, so the
 * parallel result is bit-identical to the serial loop.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn &&fn, int jobs = 0)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>>
{
    using R = std::decay_t<decltype(fn(items[0]))>;
    std::vector<R> out(items.size());
    parallelFor(items.size(), jobs,
                [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_THREAD_POOL_HH
