/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() reports unrecoverable *user*
 * errors (bad configuration, invalid arguments) and exits cleanly;
 * panic() reports *internal* invariant violations (simulator bugs) and
 * aborts; warn()/inform() print status without stopping.
 */

#ifndef GANACC_UTIL_LOGGING_HH
#define GANACC_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ganacc {
namespace util {

/** Exception carrying a fatal (user-caused) error message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Exception carrying a panic (internal-bug) error message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an unrecoverable user/configuration error.
 *
 * Throws FatalError so library consumers (and tests) can catch it;
 * an uncaught FatalError terminates with a clean message.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format("fatal: ", args...));
}

/**
 * Report an internal invariant violation (a bug in ganacc itself).
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format("panic: ", args...));
}

/** Print a warning; simulation continues. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::format(args...) << "\n";
}

/** Print an informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cout << "info: " << detail::format(args...) << "\n";
}

/**
 * Assert an internal invariant; panics with the given message when the
 * condition does not hold. Always enabled (not compiled out) because
 * the simulator's correctness claims depend on these checks.
 */
#define GANACC_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ganacc::util::panic("assertion '", #cond, "' failed at ",    \
                                  __FILE__, ":", __LINE__, ": ",           \
                                  ##__VA_ARGS__);                          \
        }                                                                  \
    } while (0)

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_LOGGING_HH
