/**
 * @file
 * OST — the traditional Output-STationary architecture (Fig. 5(c),
 * ShiDianNao-style).
 *
 * A P_oy x P_ox tile of output neurons is pinned to the PE array and
 * P_of output feature maps run in parallel channels. Each cycle one
 * kernel weight per channel is broadcast and every PE accumulates into
 * its private output register.
 *
 * Weaknesses on GAN (Section III-C3): kernel weights are streamed in
 * plain raster order, so on S-CONV (stride 2) adjacent cycles need
 * disjoint inputs — the register-array temporal sharing collapses and
 * the whole tile reloads each cycle; and the inserted zeros of T-CONV
 * inputs cannot be skipped, so ~3/4 of the MACs are ineffectual.
 */

#ifndef GANACC_SIM_OST_HH
#define GANACC_SIM_OST_HH

#include "sim/arch.hh"

namespace ganacc {
namespace sim {

/** Traditional output-stationary array. */
class Ost : public Architecture
{
  public:
    explicit Ost(Unroll unroll) : Architecture("OST", unroll) {}

    int
    numPes() const override
    {
        return unroll_.pOx * unroll_.pOy * unroll_.pOf;
    }

  protected:
    RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                   const tensor::Tensor *w,
                   tensor::Tensor *out) const override;

    bool fastStats(const ConvSpec &spec, RunStats &st) const override;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_OST_HH
