/**
 * @file
 * The ZFOST/ZFWST input register array (Figs. 11-13), modeled at the
 * register level.
 *
 * The array holds one input operand per PE. Between weight steps the
 * demanded operand set changes; if the new set is a pure translation
 * of the current one by a whole number of register positions, the
 * array *shifts* (circularly, loading only the incoming row/column
 * from the buffer); otherwise it must reload entirely. Whether a
 * weight feed order produces shiftable transitions is exactly the
 * paper's Fig. 7(b) vs Fig. 12(a) argument:
 *
 *  - raster-order weights on a stride-2 S-CONV move the demand by 1
 *    while the registers sit at pitch 2 — never shiftable;
 *  - parity-reordered weights move the demand by the pitch — a
 *    single-column shift every step.
 *
 * This module lets the tests *derive* the access accounting that the
 * cycle-level models assert.
 */

#ifndef GANACC_CORE_REGISTER_ARRAY_HH
#define GANACC_CORE_REGISTER_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace ganacc {
namespace core {

/** An input-space coordinate held by a register. */
struct Coord
{
    int y = 0;
    int x = 0;
    bool operator==(const Coord &) const = default;
};

/** How one operand-set transition was satisfied. */
struct Delivery
{
    /// Buffer reads performed (full grid, incoming rows/cols, or 0).
    int bufferLoads = 0;
    /// Positional shifts executed (rows + columns).
    int shifts = 0;
    /// True when the transition was not a whole-pitch translation and
    /// the grid had to reload.
    bool reloaded = false;
};

/**
 * A rows x cols register grid with circular shift paths. Register
 * contents are tracked as input-space coordinates so tests can verify
 * which operand each PE would read.
 */
class InputRegisterArray
{
  public:
    InputRegisterArray(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    bool loaded() const { return loaded_; }

    /** Coordinate currently held for PE (r, c); panics if unloaded. */
    Coord held(int r, int c) const;

    /**
     * Make the array hold exactly `want` (row-major rows x cols
     * coordinates). Uses shifts when `want` is a translation of the
     * current contents by a multiple of the register pitch; reloads
     * otherwise. Returns what it did and updates cumulative counters.
     */
    Delivery deliver(const std::vector<Coord> &want);

    std::uint64_t totalBufferLoads() const { return totalLoads_; }
    std::uint64_t totalShifts() const { return totalShifts_; }
    std::uint64_t totalReloads() const { return totalReloads_; }

  private:
    bool translationOf(const std::vector<Coord> &want, int &dy,
                       int &dx) const;

    int rows_;
    int cols_;
    bool loaded_ = false;
    std::vector<Coord> grid_; ///< row-major coordinates
    std::uint64_t totalLoads_ = 0;
    std::uint64_t totalShifts_ = 0;
    std::uint64_t totalReloads_ = 0;
};

/**
 * The operand set a ZFOST output tile demands at one weight step:
 * coordinates (oy*stride + ky - pad, ox*stride + kx - pad) for the
 * tile's outputs. Outputs are class members oy = cy + (ty0 + r) * zc.
 */
std::vector<Coord> zfostDemand(int ty0, int tx0, int rows, int cols,
                               int cy, int cx, int zc, int stride,
                               int ky, int kx, int pad);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_REGISTER_ARRAY_HH
