/**
 * @file
 * Telemetry-lifecycle implementation.
 */

#include "obs/telemetry.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ganacc {
namespace obs {

namespace {

struct TelemetryState
{
    std::mutex m;
    bool enabled = false;
    TelemetryConfig cfg;
    MetricsProbe probe;

    std::mutex log_m;
    std::ofstream log;
    std::chrono::steady_clock::time_point logT0{};
};

TelemetryState &
state()
{
    // Leaked: the event log may be written from worker threads that
    // unwind during static destruction.
    static TelemetryState *s = new TelemetryState;
    return *s;
}

std::string
envOr(const char *name)
{
    const char *v = std::getenv(name);
    return v ? v : "";
}

} // namespace

TelemetryConfig
configFromEnv()
{
    TelemetryConfig cfg;
    cfg.tracePath = envOr("GANACC_TRACE");
    cfg.eventsPath = envOr("GANACC_EVENTS");
    cfg.metricsPath = envOr("GANACC_METRICS");
    const std::string rate = envOr("GANACC_TRACE_SAMPLE");
    if (!rate.empty()) {
        try {
            cfg.traceSampleRate = std::stod(rate);
        } catch (...) {
            util::warn("GANACC_TRACE_SAMPLE is not a number: ", rate);
        }
    }
    const std::string tail = envOr("GANACC_TRACE_TAIL_US");
    if (!tail.empty()) {
        try {
            cfg.traceTailUs = std::stoull(tail);
        } catch (...) {
            util::warn("GANACC_TRACE_TAIL_US is not a number: ", tail);
        }
    }
    return cfg;
}

bool
telemetryEnabled()
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    return s.enabled;
}

void
enableTelemetry(const TelemetryConfig &cfg)
{
    if (!cfg.any())
        return;
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    if (s.enabled) {
        // Re-arming drops the previous (unflushed) streams.
        TraceSink::instance().disable();
        EventLog::instance().close();
    }
    s.cfg = cfg;
    s.enabled = true;
    TraceSink::instance().setSampling(cfg.traceSampleRate,
                                      cfg.traceTailUs);
    if (!cfg.tracePath.empty() || cfg.traceLive)
        // An empty path is the sink's live mode: spans buffer for
        // trace-drain probes and nothing touches the filesystem.
        TraceSink::instance().enable(cfg.tracePath);
    if (!cfg.eventsPath.empty())
        EventLog::instance().open(cfg.eventsPath);
    setRunProbe(&s.probe);
}

void
shutdownTelemetry()
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    if (!s.enabled)
        return;
    s.enabled = false;
    setRunProbe(nullptr);
    if (!s.cfg.tracePath.empty() && TraceSink::instance().flush())
        util::inform("trace written to ", s.cfg.tracePath);
    else if (s.cfg.traceLive)
        TraceSink::instance().disable(); // live mode: nothing to write
    EventLog::instance().close();
    if (!s.cfg.metricsPath.empty()) {
        std::ofstream os(s.cfg.metricsPath, std::ios::trunc);
        if (os) {
            os << renderPrometheus(Registry::instance().snapshot());
            util::inform("metrics written to ", s.cfg.metricsPath);
        } else {
            util::warn("cannot write metrics to ", s.cfg.metricsPath);
        }
    }
}

EventLog &
EventLog::instance()
{
    static EventLog *log = new EventLog;
    return *log;
}

bool
EventLog::enabled() const
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.log_m);
    return s.log.is_open();
}

void
EventLog::open(const std::string &path)
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.log_m);
    s.log.open(path, std::ios::trunc);
    if (!s.log)
        util::warn("cannot open event log ", path);
    s.logT0 = std::chrono::steady_clock::now();
}

void
EventLog::close()
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.log_m);
    if (s.log.is_open())
        s.log.close();
}

void
EventLog::log(const std::string &type, const std::string &fields)
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lk(s.log_m);
    if (!s.log.is_open())
        return;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - s.logT0)
            .count();
    s.log << "{\"ev\":\"" << type << "\",\"ts\":" << us;
    if (!fields.empty())
        s.log << ',' << fields;
    s.log << "}\n";
    s.log.flush();
}

namespace {

std::atomic<bool> g_dump_requested{false};
std::string *g_dump_path = nullptr;

void
onDumpSignal(int)
{
    // Async-signal-safe: just raise the flag; the file is written by
    // serviceMetricsDump() on a normal thread.
    g_dump_requested.store(true);
}

} // namespace

void
installMetricsDumpSignal(const std::string &path)
{
    GANACC_ASSERT(!path.empty(), "metrics dump needs a path");
    if (!g_dump_path)
        g_dump_path = new std::string;
    *g_dump_path = path;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onDumpSignal;
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &sa, nullptr);
}

bool
serviceMetricsDump()
{
    if (!g_dump_requested.exchange(false))
        return false;
    if (!g_dump_path || g_dump_path->empty())
        return false;
    std::ofstream os(*g_dump_path, std::ios::trunc);
    if (!os) {
        util::warn("cannot write metrics dump to ", *g_dump_path);
        return false;
    }
    os << renderPrometheus(Registry::instance().snapshot());
    util::inform("metrics dumped to ", *g_dump_path);
    return true;
}

} // namespace obs
} // namespace ganacc
