/**
 * @file
 * The per-phase pipeline of Fig. 9 versus the time-multiplexed design
 * of Fig. 10.
 *
 * A naive per-phase design instantiates T-ARCH, S-ARCH and W-ARCH and
 * pipelines samples through them; because the phase counts per loop
 * iteration are unequal (T runs 3 of the 7 discriminator-update
 * passes, S only 2), the slower resource paces the pipeline and the
 * others stall — the "B" bubbles of Fig. 9. Merging T and S into one
 * time-multiplexed ST-ARCH removes those bubbles, and slowing W-ARCH
 * to 2/5 of ST speed (by giving it 2/7 of the PEs) keeps it fully
 * busy during discriminator updates (Fig. 10).
 */

#ifndef GANACC_SCHED_PIPELINE_HH
#define GANACC_SCHED_PIPELINE_HH

#include <string>
#include <vector>

#include "sim/phase.hh"

namespace ganacc {
namespace sched {

/** Which network is being updated (the two halves of Fig. 8). */
enum class UpdateKind
{
    Discriminator,
    Generator,
};

std::string updateKindName(UpdateKind k);

/** Per-sample phase passes of one update, in execution order. */
std::vector<sim::Phase> updatePhaseSequence(UpdateKind k);

/** Utilization of one pipeline resource (slot-equivalents; fractional
 *  for the deliberately slowed W-ARCH). */
struct ResourceUtilization
{
    std::string resource;
    double busySlots = 0.0;
    double totalSlots = 0.0;

    double
    utilization() const
    {
        return totalSlots > 0.0 ? busySlots / totalSlots : 0.0;
    }
};

/** Report for one pipeline organization. */
struct PipelineReport
{
    std::vector<ResourceUtilization> resources;
    int slotsPerLoop = 0; ///< pipeline initiation interval (slots)

    /** Utilization of a named resource; panics if absent. */
    double utilizationOf(const std::string &resource) const;
};

/**
 * The Fig. 9 per-phase pipeline: T-ARCH runs the T-CONV phases
 * (G→, D←), S-ARCH the S-CONV phases (D→, G←), W-ARCH the W-CONV
 * phases. Each phase pass occupies one slot on its resource; the
 * busiest resource sets the initiation interval and the others carry
 * bubbles. Reproduces the paper's 66.7% / 50% W-ARCH utilization.
 */
PipelineReport perPhasePipeline(UpdateKind k);

/**
 * The Fig. 10 time-multiplexed organization: one ST-ARCH absorbs the
 * T and S phases (no bubbles possible between them) and W-ARCH runs
 * at `w_speed_ratio` of ST speed (2/5 with the eq. 8 split), its
 * work buffered through the Data/Error buffers.
 */
PipelineReport timeMultiplexed(UpdateKind k, double w_speed_ratio = 0.4);

} // namespace sched
} // namespace ganacc

#endif // GANACC_SCHED_PIPELINE_HH
