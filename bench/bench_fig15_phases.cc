/**
 * @file
 * Fig. 15 reproduction: processing-throughput comparison of NLR, WST,
 * OST, ZFOST and ZFWST on the four computing-phase families
 * (D: D→/G←, G: G→/D←, Dw, Gw) for all three networks, normalized to
 * the improved (zero-skipping) NLR exactly as the paper plots it.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    bench::CacheScope cache(args);
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    bench::banner(
        "Fig. 15 — performance on the four computing phases",
        "ZFOST/ZFWST yield the optimal performance among all phases; "
        "OST loses ~4x on zero-inserted phases; WST obeys eq. (5)");

    const sim::PhaseFamily families[] = {
        sim::PhaseFamily::D, sim::PhaseFamily::G, sim::PhaseFamily::Dw,
        sim::PhaseFamily::Gw};

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (speedup normalized to improved NLR; ST phases "
                     "on 1200 PEs, W phases on 480)\n";
        util::Table t({"phase", "NLR", "WST", "OST", "ZFOST", "ZFWST",
                       "best"});
        for (sim::PhaseFamily f : families) {
            core::BankRole role =
                (f == sim::PhaseFamily::D || f == sim::PhaseFamily::G)
                    ? core::BankRole::ST
                    : core::BankRole::W;
            int pes = role == core::BankRole::ST ? 1200 : 480;
            auto jobs = sim::familyJobs(m, f);

            std::uint64_t nlr_cycles = 0;
            std::vector<double> speedups;
            std::string best_name;
            double best = 0.0;
            for (core::ArchKind kind : core::allArchKinds()) {
                const sim::Unroll u =
                    core::paperUnroll(kind, role, f, pes);
                std::uint64_t cycles = 0;
                for (const auto &j : jobs)
                    cycles += core::cachedRun(kind, u, j).cycles;
                if (kind == core::ArchKind::NLR)
                    nlr_cycles = cycles;
                double speedup = double(nlr_cycles) / double(cycles);
                speedups.push_back(speedup);
                if (speedup > best) {
                    best = speedup;
                    best_name = core::archKindName(kind);
                }
            }
            t.addRow(sim::phaseFamilyName(f), speedups[0], speedups[1],
                     speedups[2], speedups[3], speedups[4], best_name);
        }
        t.print(std::cout);
    }
    std::cout << "\nExpected shape: D — NLR/OST/ZFOST comparable, WST "
                 "~0.2-0.3; G — ZFOST >= NLR >> OST (~4x); Dw/Gw — "
                 "ZFOST/ZFWST far ahead, NLR crippled by its idle "
                 "adder tree.\n";
    return 0;
}
