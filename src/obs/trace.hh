/**
 * @file
 * Chrome trace_event emission: one escaping/formatting code path for
 * every trace the project writes, plus the process-wide span sink.
 *
 * Two layers:
 *
 *  - writeChromeTraceJson() serializes a prepared event list in the
 *    Chrome trace_event JSON format (the "X" complete-event flavour
 *    Perfetto and chrome://tracing accept). The event simulator's
 *    deterministic cycle-timestamped trace and the wall-clock span
 *    trace below both go through it, so there is exactly one
 *    JSON-escaping/emitting path (util::escapeJson).
 *
 *  - TraceSink is the process-wide wall-clock span recorder behind
 *    GANACC_TRACE/--trace: disabled it is a single relaxed atomic
 *    load per would-be span; enabled it buffers TraceEvents (ts/dur
 *    in microseconds since enable, tid a small dense per-thread lane)
 *    and flushes them as one Chrome trace at shutdown. Wall-clock
 *    time lives only in these records, never in simulation results,
 *    so tracing cannot perturb determinism.
 */

#ifndef GANACC_OBS_TRACE_HH
#define GANACC_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include <atomic>

namespace ganacc {
namespace obs {

/**
 * Distributed trace context: the identity a request carries across
 * process boundaries so the router's root span and every shard's
 * child spans stitch into one trace. 128-bit trace id plus the
 * sender's span id (the parent of whatever span the receiver opens).
 *
 * Wire form (the serve protocol's optional "trace" field):
 * 32 lowercase hex digits, '-', 16 lowercase hex digits —
 * "0123…cdef-89ab…0123". Strictly observational: the field is only
 * ever attached when tracing is armed, and no simulation output
 * depends on it.
 */
struct TraceContext
{
    std::uint64_t traceHi = 0; ///< trace id, high 64 bits
    std::uint64_t traceLo = 0; ///< trace id, low 64 bits
    std::uint64_t span = 0;    ///< this hop's span id

    bool
    valid() const
    {
        return (traceHi | traceLo) != 0;
    }

    /** The 32-hex-digit trace id. */
    std::string traceIdHex() const;
    /** The 16-hex-digit span id. */
    std::string spanIdHex() const;
};

/** "<32 hex>-<16 hex>" (see TraceContext). */
std::string encodeTraceContext(const TraceContext &ctx);

/** Parse the wire form; throws util::FatalError on malformed input. */
TraceContext decodeTraceContext(const std::string &text);

/** A fresh root context: new random trace id + span id. */
TraceContext newTraceContext();

/** A fresh span id (for child spans within a known trace). */
std::uint64_t newSpanId();

/**
 * The canonical span-args JSON for a distributed span:
 * {"trace":"<32hex>","span":"<16hex>"[,"parent":"<16hex>"][,extra]}.
 * `extraFields` is raw JSON object *content* (e.g. "\"id\":7") pasted
 * verbatim, or "". Parent 0 means root (field omitted).
 */
std::string spanArgs(const TraceContext &ctx, std::uint64_t span,
                     std::uint64_t parent,
                     const std::string &extraFields = std::string());

/** Same, for callers that only hold the 32-hex trace id. */
std::string spanArgs(const std::string &traceIdHex,
                     std::uint64_t span, std::uint64_t parent,
                     const std::string &extraFields = std::string());


/** One Chrome trace_event entry. */
struct TraceEvent
{
    std::string name;
    std::string cat;      ///< comma-separated categories ("" = none)
    char ph = 'X';        ///< event type; 'X' = complete (ts + dur)
    int pid = 0;
    int tid = 0;
    std::uint64_t ts = 0; ///< microseconds (or cycles for event-sim)
    std::uint64_t dur = 0;
    std::string args;     ///< raw JSON object text ("" = no args)
};

/**
 * Serialize `events` as a Chrome trace_event JSON document. Metadata
 * pairs land in the top-level "metadata" object (values are strings,
 * escaped here). The output is deterministic given deterministic
 * inputs — the event-sim golden trace byte-compares across runs.
 */
void writeChromeTraceJson(
    std::ostream &os, const std::vector<TraceEvent> &events,
    const std::vector<std::pair<std::string, std::string>> &metadata,
    const std::string &displayTimeUnit = "ns");

/** The process-wide span recorder (leaked singleton). */
class TraceSink
{
  public:
    static TraceSink &instance();

    /** One relaxed load; every span checks this before doing work. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start recording; spans ending from now on are buffered and
     * flushed to `path` (by flush(), shutdownTelemetry() or atexit).
     * Re-enabling clears previously buffered events. An empty path is
     * *live* mode: events buffer for drain() (the trace-drain probe)
     * and flush() is a no-op — nothing is ever written to disk.
     */
    void enable(const std::string &path);

    /** Stop recording; buffered events stay until flush/enable. */
    void disable();

    /**
     * Head-sampling + tail-keep policy for request traces. `rate` in
     * [0, 1] head-samples by a pure hash of the trace id, so every
     * process in a fleet makes the same decision for the same trace
     * without extra wire bits; `tailUs` > 0 additionally keeps any
     * request whose end-to-end latency reaches the threshold even
     * when head sampling dropped it. Defaults: rate 1, tail off.
     */
    void setSampling(double rate, std::uint64_t tailUs);

    /** The head-sampling decision for a trace id (pure, shared). */
    bool headSampled(const TraceContext &ctx) const;

    /** headSampled(ctx) || the latency crossed the tail threshold. */
    bool keep(const TraceContext &ctx, std::uint64_t latencyUs) const;

    /** Microseconds since enable() on the steady clock. */
    std::uint64_t nowUs() const;

    /** Dense per-thread lane id (0, 1, 2, … in first-use order). */
    static int threadLane();

    /** Buffer one event (dropped when disabled). */
    void record(TraceEvent ev);

    /** Buffer a whole batch at once (dropped when disabled). */
    void recordBatch(std::vector<TraceEvent> events);

    /**
     * Take every buffered event and keep recording — the trace-drain
     * probe's read side. Unlike flush(), the sink stays enabled and
     * nothing touches the filesystem, so a live daemon can be drained
     * repeatedly while requests are still opening spans.
     */
    std::vector<TraceEvent> drain();

    std::size_t eventCount() const;

    const std::string &path() const { return path_; }

    /**
     * Write the buffered events to path() as a Chrome trace and clear
     * the buffer. Returns false (leaving a warning) when the file
     * cannot be written. Safe to call with nothing buffered.
     */
    bool flush();

  private:
    TraceSink() = default;

    std::atomic<bool> enabled_{false};
    /// Head-sampling threshold in parts per million (1e6 = keep all).
    std::atomic<std::uint32_t> samplePpm_{1000000};
    /// Tail-keep latency threshold in microseconds (0 = off).
    std::atomic<std::uint64_t> tailUs_{0};
    mutable std::mutex m_;
    std::string path_;
    std::vector<TraceEvent> events_;
    std::chrono::steady_clock::time_point t0_{};
};

/**
 * RAII span: times the enclosed scope on the steady clock and records
 * one complete event on destruction. When the sink is disabled the
 * constructor is one atomic load and the destructor a branch.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "",
                  std::string args = std::string());
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool armed_;
    std::uint64_t t0_ = 0;
    const char *name_;
    const char *cat_;
    std::string args_;
};

} // namespace obs
} // namespace ganacc

#endif // GANACC_OBS_TRACE_HH
