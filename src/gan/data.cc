/**
 * @file
 * Synthetic dataset implementations.
 */

#include "gan/data.hh"

#include <cmath>

#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Shape4;
using tensor::Tensor;

Tensor
makeBlobImages(int n, int channels, int h, int w, util::Rng &rng)
{
    GANACC_ASSERT(n > 0 && channels > 0 && h > 0 && w > 0,
                  "bad blob image dims");
    Tensor out(Shape4(n, channels, h, w), -1.0f);
    for (int i = 0; i < n; ++i) {
        double cy = rng.uniform(0.3, 0.7) * h;
        double cx = rng.uniform(0.3, 0.7) * w;
        double sigma = rng.uniform(0.10, 0.22) * std::min(h, w);
        for (int c = 0; c < channels; ++c) {
            double gain = 1.0 - 0.1 * c;
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x) {
                    double dy = (y - cy) / sigma;
                    double dx = (x - cx) / sigma;
                    double v =
                        gain * std::exp(-0.5 * (dy * dy + dx * dx));
                    out.ref(i, c, y, x) = float(2.0 * v - 1.0);
                }
        }
    }
    return out;
}

Tensor
makeStripeImages(int n, int channels, int h, int w, util::Rng &rng)
{
    GANACC_ASSERT(n > 0 && channels > 0 && h > 0 && w > 0,
                  "bad stripe image dims");
    Tensor out(Shape4(n, channels, h, w));
    for (int i = 0; i < n; ++i) {
        double theta = rng.uniform(0.0, 3.14159265);
        double freq = rng.uniform(0.15, 0.45);
        double phase = rng.uniform(0.0, 6.2831853);
        double ky = std::sin(theta) * freq;
        double kx = std::cos(theta) * freq;
        for (int c = 0; c < channels; ++c)
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x)
                    out.ref(i, c, y, x) = float(
                        std::sin(ky * y + kx * x + phase + 0.5 * c));
    }
    return out;
}

double
meanPixel(const Tensor &batch)
{
    GANACC_ASSERT(batch.numel() > 0, "empty batch");
    return batch.sum() / double(batch.numel());
}

} // namespace gan
} // namespace ganacc
