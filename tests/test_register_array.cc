/**
 * @file
 * Register-level derivation of the Fig. 12 dataflows: with the
 * parity-reordered weight feed every within-class weight step is a
 * single circular shift; with the raster feed of Fig. 7(b) a stride-2
 * convolution can never shift. These tests derive the input-access
 * accounting the cycle-level ZFOST model asserts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/register_array.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
using core::Coord;
using core::Delivery;
using core::InputRegisterArray;
using core::zfostDemand;

TEST(RegisterArray, FirstDeliveryIsAFullLoad)
{
    InputRegisterArray arr(2, 3);
    auto want = zfostDemand(0, 0, 2, 3, 0, 0, 1, 1, 0, 0, 0);
    Delivery d = arr.deliver(want);
    EXPECT_TRUE(d.reloaded);
    EXPECT_EQ(d.bufferLoads, 6);
    EXPECT_EQ(arr.held(1, 2), (Coord{1, 2}));
}

TEST(RegisterArray, UnitTranslationIsOneShift)
{
    InputRegisterArray arr(3, 3);
    arr.deliver(zfostDemand(0, 0, 3, 3, 0, 0, 1, 1, 0, 0, 0));
    // Next kernel column at stride 1: demand moves by +1 = the pitch.
    Delivery d = arr.deliver(zfostDemand(0, 0, 3, 3, 0, 0, 1, 1, 0, 1, 0));
    EXPECT_FALSE(d.reloaded);
    EXPECT_EQ(d.shifts, 1);
    EXPECT_EQ(d.bufferLoads, 3); // one incoming column
}

TEST(RegisterArray, SameDemandCostsNothing)
{
    InputRegisterArray arr(2, 2);
    auto want = zfostDemand(0, 0, 2, 2, 0, 0, 1, 1, 0, 0, 0);
    arr.deliver(want);
    Delivery d = arr.deliver(want);
    EXPECT_EQ(d.bufferLoads, 0);
    EXPECT_EQ(d.shifts, 0);
    EXPECT_FALSE(d.reloaded);
}

TEST(RegisterArray, NonTranslationForcesReload)
{
    InputRegisterArray arr(2, 2);
    arr.deliver({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
    // A demand that stretches the spacing cannot be shifted in.
    Delivery d = arr.deliver({{0, 0}, {0, 2}, {1, 0}, {1, 2}});
    EXPECT_TRUE(d.reloaded);
}

TEST(RegisterArray, Fig7bRasterOrderOnStride2NeverShifts)
{
    // S-CONV, stride 2, 4x4 output tile, raster weight order
    // K(0,0), K(0,1), K(0,2), ...: registers sit at pitch 2 but the
    // demand moves by 1 — every transition reloads (the Fig. 7(b)
    // observation "PEs have totally different input neurons among
    // the adjacent cycles").
    InputRegisterArray arr(4, 4);
    const int stride = 2, pad = 2, k = 5;
    int reloads = 0, steps = 0;
    for (int ky = 0; ky < k; ++ky)
        for (int kx = 0; kx < k; ++kx) {
            Delivery d = arr.deliver(zfostDemand(
                0, 0, 4, 4, 0, 0, 1, stride, ky, kx, pad));
            if (steps > 0)
                reloads += d.reloaded ? 1 : 0;
            ++steps;
        }
    EXPECT_EQ(reloads, steps - 1); // every single transition reloaded
}

TEST(RegisterArray, Fig12aReorderedFeedShiftsWithinParityClasses)
{
    // Same tile, but weights grouped K(even,even) -> K(even,odd) ->
    // K(odd,even) -> K(odd,odd): within a class the demand moves by
    // the pitch (2), a single-column or single-row shift.
    InputRegisterArray arr(4, 4);
    const int stride = 2, pad = 2, k = 5;
    std::uint64_t reloads = 0;
    int transitions = 0, shift_only = 0;
    bool first = true;
    for (int py = 0; py < 2; ++py)
        for (int px = 0; px < 2; ++px)
            for (int ky = py; ky < k; ky += 2)
                for (int kx = px; kx < k; kx += 2) {
                    Delivery d = arr.deliver(zfostDemand(
                        0, 0, 4, 4, 0, 0, 1, stride, ky, kx, pad));
                    if (!first) {
                        ++transitions;
                        if (!d.reloaded)
                            ++shift_only;
                    }
                    first = false;
                    reloads += d.reloaded ? 1 : 0;
                }
    // Only the three class boundaries (and the initial fill) reload;
    // every within-class transition is a pure shift.
    EXPECT_EQ(reloads, 4u);
    EXPECT_EQ(shift_only, transitions - 3);
    // Access ledger: far fewer buffer loads than the raster feed.
    EXPECT_LT(arr.totalBufferLoads(), 25u * 16u / 2);
}

TEST(RegisterArray, TconvParityClassFeedShifts)
{
    // T-CONV (stuffed input, stride-1 conv, zc = 2): outputs of one
    // parity class sit 2 apart, so register pitch is 2; effective
    // kernel positions within the class also step by 2 — shiftable.
    InputRegisterArray arr(3, 3);
    const int z = 2, pad = 2, k = 5, cy = 0, cx = 0;
    bool first = true;
    int reloads = 0;
    for (int ky = (pad + cy) % 2; ky < k; ky += 2)
        for (int kx = (pad + cx) % 2; kx < k; kx += 2) {
            Delivery d = arr.deliver(zfostDemand(0, 0, 3, 3, cy, cx, z,
                                                 1, ky, kx, pad));
            if (!first)
                reloads += d.reloaded ? 1 : 0;
            first = false;
        }
    EXPECT_EQ(reloads, 0);
}

TEST(RegisterArray, MultiStepTranslationCostsProportionally)
{
    InputRegisterArray arr(2, 4);
    arr.deliver({{0, 0}, {0, 1}, {0, 2}, {0, 3},
                 {1, 0}, {1, 1}, {1, 2}, {1, 3}});
    // Jump by 2 columns: two shifts, two incoming columns.
    Delivery d = arr.deliver({{0, 2}, {0, 3}, {0, 4}, {0, 5},
                              {1, 2}, {1, 3}, {1, 4}, {1, 5}});
    EXPECT_FALSE(d.reloaded);
    EXPECT_EQ(d.shifts, 2);
    EXPECT_EQ(d.bufferLoads, 4);
}

TEST(RegisterArray, RejectsWrongDemandSize)
{
    InputRegisterArray arr(2, 2);
    EXPECT_THROW(arr.deliver({{0, 0}}), ganacc::util::PanicError);
}

TEST(RegisterArray, DerivedLedgerMatchesZfostAccountingShape)
{
    // Full S-CONV tile pass with reordered feed: total buffer loads
    // = initial tile + one row/col per within-class step + class
    // reloads — the structure the Zfost cycle model charges.
    const int rows = 4, cols = 4, stride = 2, pad = 2, k = 5;
    InputRegisterArray arr(rows, cols);
    for (int py = 0; py < 2; ++py)
        for (int px = 0; px < 2; ++px)
            for (int ky = py; ky < k; ky += 2)
                for (int kx = px; kx < k; kx += 2)
                    arr.deliver(zfostDemand(0, 0, rows, cols, 0, 0, 1,
                                            stride, ky, kx, pad));
    // 25 weight steps. Per class: a 16-load fill, 4-load column
    // shifts along each row, and a row-advance shift whose cost
    // includes rewinding the columns (e.g. (2,-4) = 12 loads).
    // Classes: 64 + 44 + 44 + 32 = 184 loads in total — versus 400
    // (25 x 16) for the raster feed that reloads every step.
    EXPECT_EQ(arr.totalBufferLoads(), 184u);
    InputRegisterArray raster(rows, cols);
    for (int ky = 0; ky < k; ++ky)
        for (int kx = 0; kx < k; ++kx)
            raster.deliver(zfostDemand(0, 0, rows, cols, 0, 0, 1,
                                       stride, ky, kx, pad));
    EXPECT_EQ(raster.totalBufferLoads(), 400u);
}

} // namespace
