/**
 * @file
 * Shared helpers for the reproduction benches: each bench binary
 * regenerates one table or figure of the paper and prints it in a
 * diffable plain-text format, leading with a header that names the
 * experiment (see DESIGN.md section 3 for the index).
 */

#ifndef GANACC_BENCH_BENCH_COMMON_HH
#define GANACC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "core/cycle_cache.hh"
#include "obs/telemetry.hh"
#include "serve/result_store.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace ganacc {
namespace bench {

/** Print the experiment banner. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "==================================================="
                 "=====================\n";
    std::cout << "Reproduction: " << experiment << "\n";
    std::cout << "Paper claim:  " << paper_claim << "\n";
    std::cout << "==================================================="
                 "=====================\n";
}

/**
 * Standard cache wiring for a bench binary: registers --cache-dir
 * (falling back to GANACC_CACHE_DIR), attaches the persistent result
 * store under the process-wide CycleCache when a directory is given,
 * and prints the cache/store summary when the bench exits — so every
 * figure report ends with its hit/miss accounting (and a warm rerun
 * is visibly a stream of disk hits).
 *
 * Also the telemetry arming point for benches: --trace / GANACC_TRACE
 * / GANACC_EVENTS / GANACC_METRICS turn the process-wide sinks on for
 * the scope's lifetime. All telemetry status goes through
 * util::inform (stderr), so the figure text on stdout stays
 * byte-identical whether or not tracing is enabled.
 */
class CacheScope
{
  public:
    explicit CacheScope(util::ArgParser &args)
        : disk_(args.getCacheDir())
    {
        obs::TelemetryConfig cfg = obs::configFromEnv();
        const std::string trace = args.getTracePath();
        if (!trace.empty())
            cfg.tracePath = trace;
        if (cfg.any())
            obs::enableTelemetry(cfg);
    }

    ~CacheScope()
    {
        obs::shutdownTelemetry();
        std::cout << "\n[" << core::CycleCache::instance().summary();
        if (disk_.attached())
            std::cout << "; " << disk_.store()->summary();
        std::cout << "]\n";
    }

    CacheScope(const CacheScope &) = delete;
    CacheScope &operator=(const CacheScope &) = delete;

  private:
    serve::ScopedDiskCache disk_;
};

} // namespace bench
} // namespace ganacc

#endif // GANACC_BENCH_BENCH_COMMON_HH
