/**
 * @file
 * Batch-normalization ablation: the deferred-synchronization proof
 * (eq. 6) assumes each sample's backward pass is independent, which
 * the DCGAN recipe's batch-statistics BN violates. This bench
 * measures the gradient divergence between the synchronized and
 * deferred algorithms with (a) no BN, (b) batch-statistics BN and
 * (c) frozen-statistics BN — the variant a deferred-sync hardware
 * implementation must adopt.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "gan/data.hh"
#include "gan/models.hh"
#include "gan/trainer.hh"
#include "nn/batchnorm.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;
using tensor::Tensor;

gan::GanModel
smallModel(bool bn)
{
    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec l1;
    l1.kind = nn::ConvKind::Strided;
    l1.act = nn::Activation::LeakyReLU;
    l1.batchNorm = bn;
    l1.inChannels = 1;
    l1.outChannels = 12;
    l1.inH = l1.inW = 16;
    l1.geom = nn::Conv2dGeom{4, 2, 1, 0};
    disc.push_back(l1);
    gan::LayerSpec l2 = l1;
    l2.inChannels = 12;
    l2.outChannels = 24;
    l2.inH = l2.inW = 8;
    disc.push_back(l2);
    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.batchNorm = false;
    head.inChannels = 24;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};
    disc.push_back(head);
    return gan::makeModel("bn-study", std::move(disc), 16);
}

/** Relative L2 distance between the two algorithms' gradients. */
double
gradientDivergence(bool bn, nn::BatchNormLayer::Mode mode, int batch)
{
    gan::GanModel m = smallModel(bn);
    gan::Trainer sync(m, 1234, gan::SyncMode::Synchronized);
    gan::Trainer defer(m, 1234, gan::SyncMode::Deferred);
    sync.discriminator().setBnMode(mode);
    defer.discriminator().setBnMode(mode);

    util::Rng rng(55);
    Tensor real = gan::makeBlobImages(batch, 1, 16, 16, rng);
    Tensor noise = sync.sampleNoise(batch, rng);
    sync.accumulateDiscriminatorGradients(real, noise);
    defer.accumulateDiscriminatorGradients(real, noise);

    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < m.disc.size(); ++i) {
        const Tensor &a =
            sync.discriminator().layers()[i]->gradAccum();
        const Tensor &b =
            defer.discriminator().layers()[i]->gradAccum();
        for (std::size_t k = 0; k < a.numel(); ++k) {
            double d = double(a.data()[k]) - b.data()[k];
            num += d * d;
            den += double(a.data()[k]) * a.data()[k];
        }
    }
    return den > 0 ? std::sqrt(num / den) : 0.0;
}

} // namespace

int
main()
{
    using namespace ganacc;
    bench::banner("Ablation — batch norm vs deferred synchronization",
                  "eq. (6) holds without BN or with frozen statistics; "
                  "batch statistics couple samples and break it");

    util::Table t({"configuration", "batch", "rel. gradient "
                                             "divergence",
                   "deferred-sync exact?"});
    for (int batch : {4, 16}) {
        double none = gradientDivergence(
            false, nn::BatchNormLayer::Mode::Batch, batch);
        double bn_batch = gradientDivergence(
            true, nn::BatchNormLayer::Mode::Batch, batch);
        double bn_frozen = gradientDivergence(
            true, nn::BatchNormLayer::Mode::Frozen, batch);
        t.addRow("no batch norm", batch, none,
                 none < 1e-3 ? "yes" : "NO");
        t.addRow("BN, batch statistics", batch, bn_batch,
                 bn_batch < 1e-3 ? "yes" : "NO");
        t.addRow("BN, frozen statistics", batch, bn_frozen,
                 bn_frozen < 1e-3 ? "yes" : "NO");
    }
    t.print(std::cout);

    std::cout
        << "\nConclusion: a deferred-synchronization accelerator must "
           "freeze (or per-sample-localize) normalization statistics; "
           "with frozen statistics the per-sample loops reproduce the "
           "mini-batch gradient exactly, preserving the paper's "
           "algorithmic equivalence.\n";
    return 0;
}
